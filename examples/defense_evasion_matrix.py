#!/usr/bin/env python
"""Section V-C in one table: every attack vs every monitor.

Runs the three ARES gradual manipulations (integrator creep, scaler
drift, output perturbation) and the naive roll attack against the
control-invariants, ML-output and EKF-residual monitors simultaneously,
then prints the evasion matrix — the paper's central empirical claim in
one screen.

Run:  python examples/defense_evasion_matrix.py   (~3 minutes)
"""

from repro.core.defense_matrix import evaluate_defense_matrix


def main() -> None:
    print("Evaluating 4 attacks x 3 monitors (each attack flies its own "
          "mission)...")
    matrix = evaluate_defense_matrix(duration=35.0, seed=3)
    print()
    print(matrix.render())
    print()
    for attack in matrix.attacks:
        cell = matrix.cell(attack, matrix.detectors[0])
        print(f"  {attack:18s} path deviation {cell.path_deviation:7.1f} m   "
              f"crashed={cell.crashed}")


if __name__ == "__main__":
    main()
