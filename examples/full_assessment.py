#!/usr/bin/env python
"""The complete ARES campaign through the high-level facade.

profile → identify → exploit → report, as Fig. 2 of the paper draws it.

Run:  python examples/full_assessment.py
"""

from repro import Ares, AresConfig
from repro.firmware.mission import line_mission
from repro.rl.env import EnvConfig


def main() -> None:
    config = AresConfig(
        controller_kind="PID",
        env=EnvConfig(max_episode_steps=40, physics_hz=100.0, seed=3),
        episodes=15,
    )
    ares = Ares(config)

    print("Stage 1 — profiling (benign missions, ESVL collection)...")
    dataset = ares.profile(
        missions=[line_mission(length=45.0, altitude=10.0, legs=1)]
    )
    print(f"  {dataset.num_samples} samples over "
          f"{len(dataset.esvl_columns)} ESVL variables")

    print("Stage 2 — identification (Algorithm 1 → TSVL)...")
    tsvl = ares.identify()
    print(f"  TSVL: {', '.join(tsvl.tsvl)}")

    print("Stage 3 — exploit generation (RL over PIDR.INTEG)...")
    training = ares.exploit(variable="PIDR.INTEG", failure="uncontrolled")
    returns = training.returns
    print(f"  episode returns: first {returns[0]:.2f} ... "
          f"best {returns.max():.2f}")

    print("\n" + "=" * 60)
    print(ares.report().render())


if __name__ == "__main__":
    main()
