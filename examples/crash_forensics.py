#!/usr/bin/env python
"""Post-mortem: find the attack onset in a downloaded flight log.

The investigator's side of the story (the paper cites MAYDAY as the
accident-investigation counterpart of ARES): a drone deviated from its
mission and the operator downloads the binary dataflash log. This example

1. flies a mission that comes under a gradual ``PIDR.INTEG`` attack,
2. saves the dataflash log to a binary ``.bin`` file (the real download),
3. reloads and scans it with the offline forensics analyser, and
4. reports which signals left their benign envelope first, and when.

Run:  python examples/crash_forensics.py
"""

import tempfile
from pathlib import Path

from repro.analysis.forensics import analyse_flight_log
from repro.attacks import GradualRollAttack
from repro.firmware import Vehicle, line_mission, load_log, save_log
from repro.firmware.modes import FlightMode
from repro.sim import SimConfig


def main() -> None:
    print("Flying the victim mission (attack begins mid-flight)...")
    vehicle = Vehicle(
        SimConfig(seed=6, physics_hz=100.0),
        use_truth_state=True, estimation_enabled=False,
    )
    vehicle.mission = line_mission(length=300.0, altitude=10.0, legs=1)
    vehicle.takeoff(10.0)
    attack_start = vehicle.sim.time + 10.0
    attack = GradualRollAttack(rate_deg_s=4.0, start_time=attack_start)
    attack.attach(vehicle)
    vehicle.set_mode(FlightMode.AUTO)
    vehicle.run(30.0)
    deviation = vehicle.mission.cross_track_distance(
        vehicle.sim.vehicle.state.position
    )
    print(f"  attack started  : t={attack_start:.1f}s")
    print(f"  final deviation : {deviation:.1f} m")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "flight.bin"
        size = save_log(vehicle.logger, path)
        print(f"\nDataflash log saved: {path.name} ({size / 1024:.0f} KiB)")
        decoded = load_log(path)
        print(f"  decoded {sum(len(v) for v in decoded.values())} records "
              f"across {len(decoded)} message types")

    print("\nOffline forensics over the log:")
    report = analyse_flight_log(vehicle.logger)
    print(report.render())
    if report.earliest_onset is not None:
        delta = report.earliest_onset - attack_start
        print(f"\nEstimated onset is {abs(delta):.1f}s "
              f"{'after' if delta >= 0 else 'before'} the true attack start.")


if __name__ == "__main__":
    main()
