#!/usr/bin/env python
"""Quickstart: fly a benign mission and inspect the dataflash log.

This is the smallest useful tour of the substrate the ARES pipeline runs
on: build a virtual IRIS+ running the ArduCopter-style firmware, fly a
waypoint mission in AUTO mode through the full sensor → EKF → cascaded
controller loop, and pull signals from the onboard dataflash logger.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.firmware import Vehicle, square_mission
from repro.sim import SimConfig


def main() -> None:
    # A virtual IRIS+ in light wind; the seed makes the run reproducible.
    vehicle = Vehicle(SimConfig(seed=42, wind_gust_std=0.3))

    print("Flying a 25 m square mission at 10 m altitude...")
    mission = square_mission(side=25.0, altitude=10.0)
    status = vehicle.fly_mission(mission, timeout=180.0)

    state = vehicle.sim.vehicle.state
    print(f"  mission status : {status.name}")
    print(f"  flight time    : {vehicle.sim.time:.1f} s")
    print(f"  final position : N {state.position[0]:.1f} m, "
          f"E {state.position[1]:.1f} m, alt {state.altitude:.1f} m")
    print(f"  crashed        : {vehicle.sim.vehicle.crashed}")

    # The dataflash log is the paper's KSVL source: 40 message types.
    logger = vehicle.logger
    print("\nDataflash log contents (records per message type):")
    for msg in ("ATT", "IMU", "EKF1", "PIDR", "RATE", "GPS", "CTUN"):
        print(f"  {msg:5s} {logger.num_records(msg):5d} records")

    rolls = logger.field("ATT", "R")
    des_rolls = logger.field("ATT", "DesR")
    print("\nRoll tracking over the mission:")
    print(f"  max |roll|        : {np.abs(rolls).max():.1f} deg")
    print(f"  mean |DesR - R|   : {np.abs(des_rolls - rolls).mean():.2f} deg")

    # The 2 600+ configurable parameters are the paper's attack surface.
    print(f"\nConfigurable parameters: {len(vehicle.params)}")
    print(f"  ATC_RAT_RLL_P = {vehicle.params.get('ATC_RAT_RLL_P')}")

    # And the MPU memory map confines each task's variables to a region.
    print("\nMPU memory regions and bound state variables:")
    for region in vehicle.memory.regions():
        count = len(vehicle.memory.variable_names(region.name))
        print(f"  {region.name:16s} base {region.base:#010x}  "
              f"{count:3d} variables")


if __name__ == "__main__":
    main()
