#!/usr/bin/env python
"""ARES stage 1+2: profile a RAV and identify its vulnerable state variables.

Reproduces the data-driven search of the paper's Section V-B at laptop
scale: fly benign missions, collect the expanded state variable list
(ESVL = dataflash KSVL + traced intermediate controller variables from the
compromised memory region), then run Algorithm 1 — correlation analysis,
assumption pruning, hierarchical clustering and stepwise-AIC regression —
to produce the target state variable list (TSVL).

Run:  python examples/find_vulnerable_variables.py
"""

from repro.analysis import TsvlConfig, generate_tsvl
from repro.firmware.mission import line_mission, square_mission
from repro.profiling import ProfileCollector, identify_controller_functions
from repro.profiling.ksvl import ROLL_DISPLAY_NAMES, ROLL_ESVL_COLUMNS


def main() -> None:
    print("Profiling: flying 2 benign missions, tracing the stabilizer "
          "region's intermediate variables at 16 Hz...")
    collector = ProfileCollector("PID")
    dataset = collector.collect(
        missions=[
            square_mission(side=30.0, altitude=10.0),
            line_mission(length=45.0, altitude=10.0, legs=1),
        ]
    )
    print(f"  missions flown : {dataset.missions_flown} "
          f"({', '.join(f'{d:.0f}s' for d in dataset.mission_durations)})")
    print(f"  ESVL           : {len(dataset.esvl_columns)} state variables "
          f"({len(dataset.ksvl_columns)} KSVL + "
          f"{len(dataset.intermediate_columns)} traced intermediates)")
    print(f"  samples        : {dataset.num_samples} value vectors")

    # What the data-driven "controller function identification" found.
    vehicle = collector._default_factory(0)
    functions = identify_controller_functions(vehicle)
    print("\nController functions by MPU region:")
    for region, variables in functions.items():
        print(f"  {region:16s} {len(variables):3d} variables "
              f"(e.g. {', '.join(variables[:4])} ...)")

    print("\nRunning Algorithm 1 (full PID experiment, responses R/P/Y)...")
    result = generate_tsvl(
        dataset.table,
        dynamics_variables=["ATT.R", "ATT.P", "ATT.Y"],
        config=TsvlConfig(max_per_response=2),
    )
    print(f"  pruned ESVL    : {result.pruning.num_kept} kept, "
          f"{len(result.pruning.dropped)} dropped "
          f"(constants: "
          f"{sum(1 for r in result.pruning.dropped.values() if r == 'constant')})")
    print(f"  clusters       : {result.clustering.num_clusters}")
    print(f"  TSVL ({len(result.tsvl)})       : {', '.join(result.tsvl)}")
    print(f"  selection ratio: {result.selection_ratio * 100.0:.1f}% "
          f"(paper Table II, PID row: 9.4%)")

    print("\nRoll-specific analysis (the paper's Fig. 5 24-variable ESVL)...")
    roll_table = dataset.table.select(
        [c for c in ROLL_ESVL_COLUMNS if c in dataset.table]
    )
    roll = generate_tsvl(roll_table, dynamics_variables=["ATT.R"])
    labels = [ROLL_DISPLAY_NAMES.get(n, n) for n in roll.tsvl]
    print(f"  roll TSVL      : {', '.join(labels)}")
    print("  (paper selects : INTEG, DesR, IR, tv)")

    model = roll.models.get("ATT.R")
    if model and model.model:
        print("\n  optimal regression model for the roll angle:")
        for name, p in zip(model.model.predictors, model.model.p_values):
            marker = "*" if p < 0.05 else " "
            print(f"   {marker} {ROLL_DISPLAY_NAMES.get(name, name):8s} "
                  f"p = {p:.3g}")


if __name__ == "__main__":
    main()
