#!/usr/bin/env python
"""ARES stage 3, scripted: stealthy roll creep vs the naive attack (Fig. 6).

Flies the same path-following mission three times under a
control-invariants monitor (400 Hz, window 1024, threshold 400 000):

* benign — the reference run;
* ARES — gradual ``PIDR.INTEG`` injection through the compromised
  stabilizer memory region, creeping the roll angle 2.5°/s and deviating
  the drone from its path without triggering the monitor;
* naive — the roll estimate slammed to 30°, detected almost immediately.

Run:  python examples/evade_control_invariants.py
"""

from repro.experiments.fig6 import run_fig6


def main() -> None:
    print("Running the three Fig. 6 conditions (this flies three full "
          "sensor+EKF missions; ~2 minutes)...")
    result = run_fig6(duration=45.0, seed=3)
    print()
    print(result.render())

    ares = result.conditions["ares"]
    naive = result.conditions["naive"]
    print("\nRoll-angle time series (deg), sampled every 5 s:")
    print("  t(s)   normal    ares     naive")
    normal = result.conditions["normal"]
    for t in range(0, int(normal.times[-1]), 5):
        def at(c):
            import numpy as np

            idx = int(np.searchsorted(c.times, t))
            return c.roll_deg[min(idx, len(c.roll_deg) - 1)]

        naive_val = at(naive) if t <= naive.times[-1] else float("nan")
        print(f"  {t:4d}  {at(normal):7.1f}  {at(ares):7.1f}  {naive_val:7.1f}")

    print("\nOutcome:")
    print(f"  ARES deviated the mission by {ares.path_deviation:.0f} m "
          f"with max cumulative error {ares.max_ci:,.0f} "
          f"({'NO ALARM' if not ares.alarmed else 'ALARMED'})")
    print(f"  the naive attack reached {naive.max_ci:,.0f} "
          f"and was detected at t={naive.first_alarm:.1f}s")


if __name__ == "__main__":
    main()
