"""Bench Fig. 8: evading sensor-estimation (SAVIOR-style) detection.

Shape assertions (paper): the controller-output perturbation drives the
roll into unstable, aggressive stabilisation after the attack starts,
while the residual between the AHRS attitude and the EKF estimate stays
near zero — the detector never alarms.
"""

import numpy as np

from repro.experiments.fig8 import run_fig8


def test_fig8_ekf_residual_monitor(once):
    result = once(run_fig8, experiment="fig8", duration=55.0,
                  attack_start=25.0, seed=9)
    print()
    print(result.render())

    # The attack destabilises the roll axis (Fig. 8a).
    assert result.destabilised
    assert result.roll_excursion_after_attack() > 4.0

    # PID terms show the compensation fight after the attack starts.
    post = result.times >= result.attack_start
    pre = ~post
    assert np.abs(result.pid_p[post]).max() > np.abs(result.pid_p[pre]).max()

    # The AHRS-vs-EKF residual stays small and no alarm fires (Fig. 8b).
    post_residual = np.abs(result.residual_deg[post]).max()
    assert post_residual < 5.0
    assert not result.alarmed
