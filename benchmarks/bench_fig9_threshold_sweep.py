"""Bench Fig. 9: CI detection robustness to threshold tuning.

Shape assertions (paper): Attack 1 (fast creep) separates from the benign
max-cumulative-error distribution; Attack 2 (slow creep) does not; and
sweeping the threshold downward buys Attack-1 true positives only at the
cost of a false-positive rate that becomes unacceptable, with Attack 2
staying near-indistinguishable throughout.
"""

import numpy as np

from repro.experiments.fig9 import run_fig9


def test_fig9_threshold_sweep(once):
    result = once(run_fig9, experiment="fig9", trials=4, duration=40.0,
                  steady_after=22.0)
    print()
    print(result.render())

    benign = np.asarray(result.benign)
    attack1 = np.asarray(result.attack1)
    attack2 = np.asarray(result.attack2)

    # Fig. 9a: attack1 sits clearly above benign; attack2 overlaps it.
    assert np.median(attack1) > 1.8 * np.median(benign)
    assert np.median(attack2) < 1.8 * np.median(benign)

    # Fig. 9b: sweeping the threshold down raises TPR(attack1)...
    thresholds = sorted(result.thresholds, reverse=True)
    tpr1 = [result.rates[t][1] for t in thresholds]
    fpr = [result.rates[t][0] for t in thresholds]
    assert tpr1 == sorted(tpr1), "TPR(attack1) must not decrease"
    assert max(tpr1) >= 0.75
    # ...but the most sensitive setting has an unacceptable FPR while
    # attack2 still mostly slips through.
    assert fpr[-1] >= 0.5
    tpr2_at_safe_threshold = result.rates[thresholds[0]][2]
    assert tpr2_at_safe_threshold <= 0.25
