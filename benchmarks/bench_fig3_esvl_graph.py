"""Bench Fig. 3: the roll-control ESVL correlation-dependency graph.

Shape assertions: the constant PID gains (v1 KP, v2 KI, v3 KD) are pruned
exactly as the paper describes; significant edges link the PID
intermediates to the roll dynamics (the INPUT↔IRErr and INTEG↔rate
relations the figure draws).
"""

from repro.experiments.fig3 import run_fig3
from repro.firmware.mission import line_mission


def test_fig3_dependency_graph(once):
    result = once(
        run_fig3, experiment="fig3",
        missions=[line_mission(length=45.0, altitude=10.0, legs=1)],
    )
    print()
    print(result.render(top=12))

    # Constants pruned (paper: v1 KP, v2 KI, v3 KD "will not be considered").
    pruned = set(result.pruned_constants)
    assert {"PIDR.KP", "PIDR.KI", "PIDR.KD"} <= pruned

    # The PID input error is (near-)perfectly tied to the rate error it is.
    edge_lookup = {frozenset((a, b)): abs(r) for a, b, r in result.edges}
    assert edge_lookup.get(frozenset(("ATT.IRErr", "PIDR.INPUT")), 0.0) > 0.9

    # Intermediate controller variables participate in strong edges —
    # the figure's core message.
    intermediate_edges = [
        (a, b, r) for a, b, r in result.edges
        if a.startswith("PIDR.") or b.startswith("PIDR.")
    ]
    assert len(intermediate_edges) >= 3
    assert result.samples > 200
