"""Bench: the vectorized fleet engine vs the scalar oracle.

The tentpole claim is quantitative — stepping N=16 vehicles as one
batched :class:`~repro.sim.vectorized.VectorizedFleet` must beat 16
scalar :class:`~repro.firmware.vehicle.Vehicle` runs by at least 4× on
the hot loop — so this bench measures exactly that and fails when the
margin erodes. The workload helpers are module-level on purpose:
``benchmarks/trajectory.py`` imports them to produce the ``BENCH_*.json``
performance-trajectory snapshots, so the snapshot series and this bench
time the identical code path.

The speedup floor can be relaxed for noisy shared runners via
``REPRO_BENCH_MIN_SPEEDUP`` (CI sets 2.0; the default 4.0 is the
acceptance bar on dedicated hardware).
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from repro.firmware.vehicle import Vehicle
from repro.sim.config import SimConfig
from repro.sim.vectorized import VectorizedFleet

#: Hot-loop parameters shared with the trajectory writer.
FLEET_N = 16
HOT_LOOP_DURATION_S = 5.0


def build_scalar(seed: int = 0) -> Vehicle:
    """One scalar vehicle, hovering and ready for the timed run."""
    vehicle = Vehicle(SimConfig(seed=seed, wind_gust_std=0.4))
    vehicle.takeoff(10.0)
    return vehicle


def build_fleet(n: int = FLEET_N) -> VectorizedFleet:
    """A fleet of ``n`` lanes (seeds 0..n-1), hovering like the scalar."""
    fleet = VectorizedFleet(SimConfig(wind_gust_std=0.4), seeds=list(range(n)))
    fleet.takeoff(10.0)
    return fleet


def time_scalar(duration: float = HOT_LOOP_DURATION_S, seed: int = 0) -> float:
    """Wall-clock seconds for one scalar vehicle's hot loop."""
    vehicle = build_scalar(seed)
    begin = perf_counter()
    vehicle.run(duration)
    return perf_counter() - begin


def time_fleet(n: int = FLEET_N,
               duration: float = HOT_LOOP_DURATION_S) -> float:
    """Wall-clock seconds for the batched ``n``-lane hot loop."""
    fleet = build_fleet(n)
    begin = perf_counter()
    fleet.run(duration)
    return perf_counter() - begin


def measure_speedup(
    n: int = FLEET_N,
    duration: float = HOT_LOOP_DURATION_S,
    repeats: int = 2,
) -> dict[str, float]:
    """Best-of-``repeats`` speedup of the fleet over ``n`` scalar runs.

    Minimum-of-repeats is the standard anti-jitter estimator: the fastest
    observation is the least-perturbed one on a busy machine.
    """
    scalar_s = min(time_scalar(duration) for _ in range(repeats))
    fleet_s = min(time_fleet(n, duration) for _ in range(repeats))
    return {
        "n": float(n),
        "scalar_s": scalar_s,
        "fleet_s": fleet_s,
        "speedup": n * scalar_s / fleet_s,
    }


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "4.0"))


def test_fleet_oracle_spot_check(once):
    """Lane i of a 4-lane fleet is bit-identical to scalar seed i.

    A cheap in-suite guard (the exhaustive proofs live in
    ``tests/test_vectorized_oracle.py``): a speedup measured against a
    diverged simulation would be meaningless.
    """

    def check():
        fleet = build_fleet(4)
        fleet.run(2.0)
        for i in range(4):
            vehicle = build_scalar(seed=i)
            vehicle.run(2.0)
            state = vehicle.sim.vehicle.state
            assert np.array_equal(fleet._pos[i], state.position)
            assert np.array_equal(fleet._quat[i], state.quaternion)
        return True

    assert once(check)


def test_vectorized_speedup_n16(benchmark):
    """The batched hot loop clears the 4× acceptance bar at N=16."""
    result = benchmark.pedantic(measure_speedup, rounds=1, iterations=1)
    benchmark.extra_info["speedup_n16"] = round(result["speedup"], 2)
    benchmark.extra_info["scalar_s"] = round(result["scalar_s"], 3)
    benchmark.extra_info["fleet_s"] = round(result["fleet_s"], 3)
    print(
        f"\nvectorized speedup @ N={FLEET_N}: {result['speedup']:.2f}x "
        f"(scalar {result['scalar_s']:.3f}s x{FLEET_N} vs "
        f"fleet {result['fleet_s']:.3f}s)"
    )
    assert result["speedup"] >= _min_speedup(), (
        f"vectorized speedup {result['speedup']:.2f}x fell below the "
        f"{_min_speedup():.1f}x floor"
    )
