"""Bench Fig. 5: the 24-variable roll-control correlation heat map + TSVL.

Shape assertions: 24 analysed variables; hierarchical clustering groups
the roll block (Roll/DesR) together; the roll TSVL is compact (paper: 4
variables — INTEG, DesR, IR, tv) and reaches beyond plain dynamics into
desired-value/intermediate variables.
"""

import numpy as np

from repro.experiments.fig5 import run_fig5
from repro.firmware.mission import line_mission, square_mission


def test_fig5_heatmap_and_roll_tsvl(once):
    result = once(
        run_fig5,
        experiment="fig5",
        missions=[
            square_mission(side=30.0, altitude=10.0),
            line_mission(length=45.0, altitude=10.0, legs=1),
        ],
    )
    print()
    print(result.render())

    assert result.esvl_size == 24
    assert result.samples > 500

    # Heat map is a valid correlation matrix in dendrogram order.
    finite = result.matrix[np.isfinite(result.matrix)]
    assert np.all(finite <= 1.0 + 1e-9) and np.all(finite >= -1.0 - 1e-9)

    # The clustered ordering puts DesR adjacent to the roll block: their
    # |r| ~ 0.9 pairing must sit within 4 positions of each other.
    order = result.names
    assert abs(order.index("ATT.DesR") - order.index("ATT.R")) <= 4

    # Roll TSVL: compact, like the paper's {INTEG, DesR, IR, tv}.
    assert 1 <= len(result.tsvl) <= 6
    # It must include a non-trivial variable (desired value, rate or PID
    # intermediate) — not merely another copy of the roll angle.
    interesting = {
        "ATT.DesR", "ATT.IR", "ATT.tv",
        "PIDR.INTEG", "PIDR.INPUT", "PIDR.DERIV", "IMU.GyrX",
    }
    assert interesting & set(result.tsvl)
