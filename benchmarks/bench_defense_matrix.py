"""Bench: the Section V-C evasion summary as one matrix.

Every attack class against every deployed monitor family on a common
mission. Shape assertions: the three ARES gradual attacks evade all
monitors; the naive baseline is caught promptly by the state-facing
monitors (control invariants + ML output); the gyro-spoofing attack —
the threat SAVIOR-style monitors exist for — is caught by the
sensor-facing EKF-residual monitor.
"""

from repro.core.defense_matrix import evaluate_defense_matrix


def test_defense_evasion_matrix(once):
    matrix = once(evaluate_defense_matrix, experiment="defense_matrix",
                  duration=35.0, seed=3)
    print()
    print(matrix.render())

    # Each paper figure's pairing: the tailored ARES attack evades the
    # monitor that figure evaluates...
    assert matrix.cell("ares-integrator", "control-invariants").evaded  # Fig. 6
    assert matrix.cell("ares-scaler", "ml-output").evaded               # Fig. 7
    assert matrix.cell("ares-output", "ekf-residual").evaded            # Fig. 8

    # ...and every ARES manipulation evades the physics-facing monitors
    # (the motion is genuinely produced by the motors).
    for attack in ("ares-integrator", "ares-scaler", "ares-output"):
        assert matrix.cell(attack, "control-invariants").evaded, attack
        assert matrix.cell(attack, "ekf-residual").evaded, attack

    # The full-magnitude integrator attack is a mission failure.
    assert matrix.cell("ares-integrator", "control-invariants").path_deviation > 20.0

    # The naive baseline is caught by the state-facing monitors.
    naive_detections = sum(
        matrix.cell("naive-roll-30", d).detected for d in matrix.detectors
    )
    assert naive_detections >= 2

    # The sensor-spoofing attack is what the EKF-residual monitor catches.
    assert matrix.cell("gyro-spoof", "ekf-residual").detected
