"""Write and compare ``BENCH_<date>.json`` performance-trajectory snapshots.

``write`` runs the vectorized-engine hot-loop suites (the same workload
functions ``benchmarks/bench_vectorized.py`` benches) and snapshots their
wall-clock timings, the obs counter deltas observed while they ran, and
the derived N=16 speedup into ``BENCH_<date>.json``; ``compare`` checks
the newest snapshot against its predecessor within a relative tolerance
band and exits nonzero on a regression. Both are robust to the bootstrap
case — an empty trajectory writes a first baseline and compares clean.

Run from the repo root with the usual ``PYTHONPATH=src``::

    PYTHONPATH=src python benchmarks/trajectory.py write --label "my change"
    PYTHONPATH=src python benchmarks/trajectory.py compare --tolerance 0.25
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_vectorized():
    """Import the sibling bench module (``benchmarks`` is not a package)."""
    path = Path(__file__).resolve().parent / "bench_vectorized.py"
    spec = importlib.util.spec_from_file_location("bench_vectorized", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cmd_write(args: argparse.Namespace) -> int:
    from repro.obs.metrics import get_registry
    from repro.obs.trajectory import write_snapshot

    bench = _load_bench_vectorized()
    before = get_registry().snapshot()
    scalar_s = min(
        bench.time_scalar(args.duration) for _ in range(args.repeats)
    )
    fleet_s = min(
        bench.time_fleet(args.n, args.duration) for _ in range(args.repeats)
    )
    after = get_registry().snapshot()
    counters = {}
    for key, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(key, 0.0)
        if delta:
            counters[key] = delta
    speedup = args.n * scalar_s / fleet_s
    path = write_snapshot(
        args.dir,
        suites={
            "scalar_hot_loop": {"wall_s": scalar_s},
            f"vectorized_hot_loop_n{args.n}": {"wall_s": fleet_s},
        },
        counters=counters,
        extras={f"speedup_n{args.n}": round(speedup, 2)},
        label=args.label,
        date=args.date,
    )
    print(
        f"wrote {path}: scalar {scalar_s:.3f}s, "
        f"fleet(n={args.n}) {fleet_s:.3f}s, speedup {speedup:.2f}x"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.trajectory import compare_snapshots, latest_snapshots

    current, previous = latest_snapshots(args.dir)
    comparison = compare_snapshots(current, previous,
                                   tolerance=args.tolerance)
    print(comparison.render())
    return 0 if comparison.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="bench performance-trajectory snapshots"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    write = sub.add_parser("write", help="run the suites, write BENCH_<date>.json")
    write.add_argument("--dir", default=str(REPO_ROOT),
                       help="snapshot directory (default: repo root)")
    write.add_argument("--label", default="", help="free-form snapshot label")
    write.add_argument("--date", default=None,
                       help="override the snapshot date (YYYY-MM-DD)")
    write.add_argument("--n", type=int, default=16, help="fleet width")
    write.add_argument("--duration", type=float, default=5.0,
                       help="simulated seconds per hot loop")
    write.add_argument("--repeats", type=int, default=2,
                       help="timing repeats (minimum is kept)")
    write.set_defaults(func=_cmd_write)

    compare = sub.add_parser(
        "compare", help="compare the newest snapshot against its predecessor"
    )
    compare.add_argument("--dir", default=str(REPO_ROOT),
                         help="snapshot directory (default: repo root)")
    compare.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed relative slowdown (0.25 = 25%%)")
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
