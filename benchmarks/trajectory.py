"""Write and compare ``BENCH_<date>.json`` performance-trajectory snapshots.

``write`` runs the vectorized-engine hot-loop suites (the same workload
functions ``benchmarks/bench_vectorized.py`` benches) and snapshots their
wall-clock timings, the obs counter deltas observed while they ran, the
speedup at every swept fleet width (``--sweep``, default ``4,16,64`` —
the N-sweep shows how the batched fraction amortizes the per-step serial
overhead), and a per-stage hot-loop breakdown for the scalar and the
primary-``--n`` fleet suite (a separate profiled pass, so the profiler's
bookkeeping never perturbs the timed numbers) into ``BENCH_<date>.json``;
``compare`` checks the newest snapshot against its predecessor within a
relative tolerance band — global via ``--tolerance``, per suite via
repeatable ``--suite-tolerance NAME=BAND`` — and exits nonzero on a
regression. Both are robust to the bootstrap case — an empty trajectory
writes a first baseline and compares clean.

Run from the repo root with the usual ``PYTHONPATH=src``::

    PYTHONPATH=src python benchmarks/trajectory.py write --label "my change"
    PYTHONPATH=src python benchmarks/trajectory.py compare --tolerance 0.25 \
        --suite-tolerance vectorized_hot_loop_n4=0.5
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_vectorized():
    """Import the sibling bench module (``benchmarks`` is not a package)."""
    path = Path(__file__).resolve().parent / "bench_vectorized.py"
    spec = importlib.util.spec_from_file_location("bench_vectorized", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _sweep_widths(text: str, primary: int) -> list[int]:
    """The fleet widths to bench: the ``--sweep`` list plus ``--n``."""
    widths = set()
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        width = int(token)
        if width < 1:
            raise ValueError(f"sweep width must be >= 1 (got {width})")
        widths.add(width)
    widths.add(primary)
    return sorted(widths)


def _stage_breakdowns(bench, n: int, duration: float) -> dict[str, dict]:
    """One profiled pass per engine; stage trees for the snapshot.

    Separate from the timed runs on purpose: the profiler's perf_counter
    bookkeeping costs a few percent, and the timed minima must stay
    comparable across snapshots with and without stage capture.
    """
    from repro.obs import hot_loop_profile

    with hot_loop_profile() as scalar_profile:
        bench.time_scalar(duration)
    with hot_loop_profile() as fleet_profile:
        bench.time_fleet(n, duration)
    return {
        "scalar_hot_loop": scalar_profile.stages(),
        f"vectorized_hot_loop_n{n}": fleet_profile.stages(),
    }


def _cmd_write(args: argparse.Namespace) -> int:
    from repro.obs.metrics import get_registry
    from repro.obs.trajectory import write_snapshot

    bench = _load_bench_vectorized()
    widths = _sweep_widths(args.sweep, args.n)
    before = get_registry().snapshot()
    scalar_s = min(
        bench.time_scalar(args.duration) for _ in range(args.repeats)
    )
    fleet_times = {
        n: min(bench.time_fleet(n, args.duration)
               for _ in range(args.repeats))
        for n in widths
    }
    after = get_registry().snapshot()
    counters = {}
    for key, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(key, 0.0)
        if delta:
            counters[key] = delta
    suites = {"scalar_hot_loop": {"wall_s": scalar_s}}
    extras = {}
    for n, fleet_s in fleet_times.items():
        suites[f"vectorized_hot_loop_n{n}"] = {"wall_s": fleet_s}
        extras[f"speedup_n{n}"] = round(n * scalar_s / fleet_s, 2)
    if not args.no_stages:
        for name, stages in _stage_breakdowns(
            bench, args.n, args.duration
        ).items():
            suites[name]["stages"] = stages
    path = write_snapshot(
        args.dir,
        suites=suites,
        counters=counters,
        extras=extras,
        label=args.label,
        date=args.date,
    )
    sweep = ", ".join(
        f"n={n} {fleet_times[n]:.3f}s ({extras[f'speedup_n{n}']:.2f}x)"
        for n in widths
    )
    print(f"wrote {path}: scalar {scalar_s:.3f}s; {sweep}")
    return 0


def _suite_tolerance(text: str) -> tuple[str, float]:
    """Parse one ``NAME=BAND`` per-suite tolerance override."""
    name, sep, band = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME=BAND (e.g. scalar_hot_loop=0.5), got '{text}'"
        )
    try:
        return name, float(band)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"band for suite '{name}' is not a number: '{band}'"
        ) from None


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.trajectory import compare_snapshots, latest_snapshots

    current, previous = latest_snapshots(args.dir)
    comparison = compare_snapshots(
        current, previous, tolerance=args.tolerance,
        suite_tolerances=dict(args.suite_tolerance or []),
    )
    print(comparison.render())
    return 0 if comparison.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="bench performance-trajectory snapshots"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    write = sub.add_parser("write", help="run the suites, write BENCH_<date>.json")
    write.add_argument("--dir", default=str(REPO_ROOT),
                       help="snapshot directory (default: repo root)")
    write.add_argument("--label", default="", help="free-form snapshot label")
    write.add_argument("--date", default=None,
                       help="override the snapshot date (YYYY-MM-DD)")
    write.add_argument("--n", type=int, default=16,
                       help="primary fleet width (gets the stage breakdown)")
    write.add_argument("--sweep", default="4,16,64",
                       help="comma-separated extra fleet widths to time "
                            "(--n is always included)")
    write.add_argument("--duration", type=float, default=5.0,
                       help="simulated seconds per hot loop")
    write.add_argument("--repeats", type=int, default=2,
                       help="timing repeats (minimum is kept)")
    write.add_argument("--no-stages", action="store_true",
                       help="skip the profiled per-stage pass")
    write.set_defaults(func=_cmd_write)

    compare = sub.add_parser(
        "compare", help="compare the newest snapshot against its predecessor"
    )
    compare.add_argument("--dir", default=str(REPO_ROOT),
                         help="snapshot directory (default: repo root)")
    compare.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed relative slowdown (0.25 = 25%%)")
    compare.add_argument("--suite-tolerance", type=_suite_tolerance,
                         action="append", metavar="NAME=BAND",
                         help="per-suite tolerance override (repeatable)")
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
