"""Bench Fig. 6: evading control-invariants detection.

Shape assertions (paper): the benign mission and the ARES gradual attack
stay under the 400 000 threshold (no alarm) while the ARES attack produces
a large mission deviation; the naive 30° attack trips the monitor almost
immediately with a cumulative error far above 1 000 000.
"""

from repro.experiments.fig6 import run_fig6


def test_fig6_control_invariants(once):
    result = once(run_fig6, experiment="fig6", duration=45.0, seed=3)
    print()
    print(result.render())

    normal = result.conditions["normal"]
    ares = result.conditions["ares"]
    naive = result.conditions["naive"]

    # Benign: no alarm, negligible deviation.
    assert not normal.alarmed
    assert normal.path_deviation < 2.0

    # ARES: mission failure scale deviation, roll creeps, no alarm.
    assert not ares.alarmed
    assert ares.path_deviation > 20.0
    assert ares.roll_deg.max() > 5.0

    # Naive: detected quickly, cumulative error over 1e6 (paper's scale).
    assert naive.alarmed
    assert naive.max_ci > 1_000_000.0
    assert naive.first_alarm is not None

    # Who wins by what factor: naive error dwarfs ares error.
    assert naive.max_ci > 3.0 * ares.max_ci
