"""Bench Fig. 7: evading the ML controller-output monitor during hover.

Shape assertions (paper): with threshold 0.01, the ARES scaler drift keeps
the control-output distance inside the benign band (no alarm) while the
naive attack's distance blows far past the threshold and alarms.
"""

from repro.experiments.fig7 import run_fig7


def test_fig7_ml_monitor(once):
    result = once(run_fig7, experiment="fig7", duration=28.0, seed=5)
    print()
    print(result.render())

    normal = result.conditions["normal"]
    ares = result.conditions["ares"]
    naive = result.conditions["naive"]

    assert result.threshold == 0.01

    # Benign hover: essentially zero output distance.
    assert not normal.alarmed
    assert normal.max_distance < result.threshold / 2.0

    # ARES scaler drift: stays within the benign error range (Fig. 7b).
    assert not ares.alarmed
    assert ares.max_distance < result.threshold

    # Naive attack: far outside the envelope, detected.
    assert naive.alarmed
    assert naive.max_distance > 10.0 * result.threshold
    # The naive attack visibly forces the roll estimate to ~30 deg.
    assert naive.roll_deg.max() > 25.0
