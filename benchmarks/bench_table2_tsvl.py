"""Bench Table II: the KSVL → ESVL → TSVL funnel per controller function.

Paper: PID 28/36/64 → 6 (9.4 %), Sqrt 9/12/21 → 3 (14.3 %),
SINS 14/19/33 → 3 (9.1 %). The KSVL/added/ESVL columns reproduce exactly
by construction; the TSVL sizes come out of Algorithm 1 on real flight
data and must land in the paper's small-single-digit band.
"""

from repro.experiments.table2 import PAPER_TABLE2, run_table2
from repro.firmware.mission import line_mission, square_mission


def test_table2_tsvl(once):
    result = once(
        run_table2,
        experiment="table2",
        missions=[
            square_mission(side=30.0, altitude=10.0),
            line_mission(length=45.0, altitude=10.0, legs=1),
        ],
    )
    print()
    print(result.render())
    for kind, (ksvl, added, esvl, tsvl) in PAPER_TABLE2.items():
        row = result.row(kind)
        # Structural counts reproduce exactly.
        assert row.ksvl == ksvl, kind
        assert row.added == added, kind
        assert row.esvl == esvl, kind
        # TSVL size: Algorithm 1 on our flight data, same small band.
        assert 1 <= row.tsvl <= 2 * tsvl + 2, (kind, row.tsvl)
        # Selection ratio stays far below half the ESVL (the funnel works).
        assert row.ratio < 0.35, kind
    assert result.samples > 500
