"""Bench Table I: regenerate the KSVL inventory (40 types, 342 ALVs)."""

from repro.experiments.table1 import run_table1


def test_table1_ksvl(once):
    result = once(run_table1, experiment="table1")
    print()
    print(result.render())
    # Exact reproduction: the logger schema matches the paper's Table I.
    assert result.matches_paper
    assert result.total == 342
    assert len(result.rows) == 40
