"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables or figures at laptop
scale, prints the same rows/series the paper reports and asserts the
paper's *shape* (who wins, rough factors, crossovers). Each experiment is
executed exactly once per bench via ``benchmark.pedantic`` — the interest
is the reproduced result, with wall-clock time as a by-product.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` with the bench's timer."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
