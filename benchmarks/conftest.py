"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables or figures at laptop
scale, prints the same rows/series the paper reports and asserts the
paper's *shape* (who wins, rough factors, crossovers). Each experiment is
executed exactly once per bench via ``benchmark.pedantic`` — the interest
is the reproduced result, with wall-clock time as a by-product.

Benches with a pure entry point pass ``experiment="<name>"`` so the call
routes through the content-addressed result cache
(:mod:`repro.experiments.cache`): a warm re-run of the suite decodes the
stored results instead of recomputing them. ``REPRO_NO_CACHE=1`` (or
deleting ``.repro_cache/``) forces a cold run; ``REPRO_CACHE_DIR``
relocates the store. Benches whose workload closes over fixtures or
mutates monitors stay uncached — their ``once`` call simply omits
``experiment``.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import cached_call, default_cache


def run_once(benchmark, fn, *args, experiment=None, **kwargs):
    """Execute ``fn`` exactly once under the benchmark timer.

    With ``experiment`` set, the call goes through the result cache, so a
    cache-warm bench invocation executes zero experiment callables.
    """
    if experiment is None:
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    cache = default_cache()

    def call():
        return cached_call(fn, *args, experiment=experiment, cache=cache,
                           **kwargs)

    return benchmark.pedantic(call, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` with the bench's timer."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
