"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables or figures at laptop
scale, prints the same rows/series the paper reports and asserts the
paper's *shape* (who wins, rough factors, crossovers). Each experiment is
executed exactly once per bench via ``benchmark.pedantic`` — the interest
is the reproduced result, with wall-clock time as a by-product.

Benches with a pure entry point pass ``experiment="<name>"`` so the call
routes through the content-addressed result cache
(:mod:`repro.experiments.cache`): a warm re-run of the suite decodes the
stored results instead of recomputing them. ``REPRO_NO_CACHE=1`` (or
deleting ``.repro_cache/``) forces a cold run; ``REPRO_CACHE_DIR``
relocates the store. Benches whose workload closes over fixtures or
mutates monitors stay uncached — their ``once`` call simply omits
``experiment``.

Each bench also records a telemetry snapshot: the per-bench delta of the
metrics registry (sim steps, cache hits/misses, RL episodes, ...) lands
in ``benchmark.extra_info["metrics"]`` so it is saved alongside timings
in pytest-benchmark's JSON output. Set ``REPRO_BENCH_METRICS=PATH`` to
additionally write the suite-wide final snapshot to ``PATH``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.cache import cached_call, default_cache
from repro.obs.metrics import get_registry


def _counter_deltas(before: dict, after: dict) -> dict:
    """Counter increments between two registry snapshots (nonzero only)."""
    deltas = {}
    for key, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(key, 0.0)
        if delta:
            deltas[key] = delta
    return deltas


def run_once(benchmark, fn, *args, experiment=None, **kwargs):
    """Execute ``fn`` exactly once under the benchmark timer.

    With ``experiment`` set, the call goes through the result cache, so a
    cache-warm bench invocation executes zero experiment callables.
    """
    before = get_registry().snapshot()
    if experiment is None:
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
    else:
        cache = default_cache()

        def call():
            return cached_call(fn, *args, experiment=experiment, cache=cache,
                               **kwargs)

        result = benchmark.pedantic(call, rounds=1, iterations=1)
    benchmark.extra_info["metrics"] = _counter_deltas(
        before, get_registry().snapshot()
    )
    return result


def pytest_sessionfinish(session, exitstatus):
    """Optionally persist the suite-wide metrics snapshot."""
    path = os.environ.get("REPRO_BENCH_METRICS")
    if path:
        with open(path, "w") as handle:
            json.dump(get_registry().snapshot(), handle,
                      sort_keys=True, indent=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` with the bench's timer."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
