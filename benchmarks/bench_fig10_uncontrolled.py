"""Bench Fig. 10: RL-learned uncontrolled failure (path deviation).

Shape assertions (paper): the trained agent deviates the RAV far from the
mission path, accumulating reward over the episode, while the untouched
baseline stays on the path; training (returns) improves over episodes.
The paper trains 5 000 episodes; this bench trains a laptop-scale run —
the APIs accept the full-scale numbers.
"""

from repro.experiments.fig10 import run_fig10


def test_fig10_uncontrolled_failure(once):
    result = once(run_fig10, experiment="fig10", train_episodes=20,
                  eval_steps=50, seed=1)
    print()
    print(result.render())

    trained = result.scenarios["trained"]
    baseline = result.scenarios["baseline"]
    random = result.scenarios["random"]

    # The baseline flies the mission: negligible deviation.
    assert baseline.final_deviation < 2.0

    # The trained policy produces a mission-failure-scale deviation and
    # dominates both baseline and random.
    assert trained.final_deviation > 5.0
    assert trained.final_deviation > 2.0 * baseline.final_deviation + 1.0
    assert trained.accumulated[-1] > random.accumulated[-1]

    # Deviation accumulates over time (the Fig. 10c series grows).
    assert trained.accumulated[-1] > trained.accumulated[len(trained.accumulated) // 2]
