"""Bench Fig. 11: RL-learned controlled failure (forbidden-zone crash).

Shape assertions (paper): the trained agent steers the RAV toward the
forbidden zone — far closer than the untouched baseline — and the episode
ends on contact (the controlled crash) when the approach succeeds.
"""

from repro.experiments.fig11 import run_fig11


def test_fig11_controlled_failure(once):
    result = once(
        run_fig11, experiment="fig11", train_episodes=25, eval_steps=80,
        zone_offset_east=14.0, seed=2,
    )
    print()
    print(result.render())

    trained = result.scenarios["trained"]
    baseline = result.scenarios["baseline"]

    # The baseline keeps its distance from the zone.
    assert baseline.closest_approach >= 8.0

    # The trained policy closes most of the gap (controlled steering).
    assert trained.closest_approach < 0.6 * baseline.closest_approach

    # Distance decreases over the episode for the trained policy.
    early = trained.zone_distance[: len(trained.zone_distance) // 3].min()
    assert trained.closest_approach < early
