"""Bench: the paper's proposed countermeasure (Section VI).

The paper concludes that monitors must move to the *variable level* —
watching the very intermediates ARES identifies. This bench shows the
asymmetry: the gradual integrator attack that evades the system-level
control-invariants monitor (Fig. 6) is caught by a variable-level monitor
trained on the TSVL's benign envelopes, while the benign mission still
raises no alarm.

This bench runs uncached on purpose (``once`` without an ``experiment``
name): the measured call mutates the trained monitor objects, whose alarm
state the assertions read back — a cache hit would skip those side
effects.
"""

from repro.attacks.gradual import GradualRollAttack
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.defenses.variable_monitor import VariableLevelMonitor
from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import Vehicle
from repro.sim.config import SimConfig

WATCHED = ["PIDR.INTEG", "PIDR.DERIV", "PIDP.INTEG"]


def _run(monitor, ci, attack, seed=3, duration=35.0):
    vehicle = Vehicle(SimConfig(seed=seed, wind_gust_std=0.4))
    monitor.reset()
    monitor.attach(vehicle)
    ci.reset()
    ci.attach(vehicle)
    vehicle.mission = line_mission(length=300.0, altitude=10.0, legs=1)
    vehicle.takeoff(10.0)
    if attack is not None:
        attack.attach(vehicle)
    vehicle.set_mode(FlightMode.AUTO)
    vehicle.run(duration)
    monitor.detach()
    ci.detach()
    return monitor.alarmed, ci.alarmed


def test_countermeasure_variable_level_monitor(once):
    monitor = VariableLevelMonitor(WATCHED)
    monitor.train_on_benign(
        lambda: Vehicle(SimConfig(seed=99, wind_gust_std=0.4)),
        lambda: line_mission(length=150.0, altitude=10.0, legs=1),
    )

    airframe = SimConfig().airframe
    ci = ControlInvariantsDetector(airframe)

    benign = once(_run, monitor, ci, None)
    attack = _run(
        monitor, ci, GradualRollAttack(rate_deg_s=2.5, start_time=5.0)
    )

    print(f"\nbenign:  variable-level alarm={benign[0]}  CI alarm={benign[1]}")
    print(f"attack:  variable-level alarm={attack[0]}  CI alarm={attack[1]}")

    # Benign flight: neither monitor alarms.
    assert not benign[0] and not benign[1]
    # The ARES gradual attack evades the system-level CI monitor...
    assert not attack[1]
    # ...but the variable-level monitor on the TSVL intermediates sees the
    # integrator leave its benign envelope.
    assert attack[0]
