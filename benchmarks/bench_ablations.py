"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation removes one ingredient of the ARES pipeline and shows the
cost, using a shared small profiling dataset:

* correlation-only selection vs full Algorithm 1 (stepwise AIC),
* no clustering before stepwise selection,
* unbounded/absolute manipulation vs bounded/gradual actions,
* detector-penalty term present vs absent in the RL reward.

These ablation workloads close over the module-scoped ``dataset`` fixture,
so they run uncached on purpose: ``once`` is called without an
``experiment`` name (a closure's identity alone would under-key the
result cache).
"""

import numpy as np
import pytest

from repro.analysis.correlation import correlation_matrix
from repro.analysis.pruning import prune_state_variables
from repro.analysis.tsvl import TsvlConfig, generate_tsvl
from repro.firmware.mission import line_mission
from repro.profiling.collector import ProfileCollector
from repro.rl.env import EnvConfig
from repro.rl.envs.deviation import PathDeviationEnv


@pytest.fixture(scope="module")
def dataset():
    collector = ProfileCollector("PID")
    return collector.collect(
        missions=[line_mission(length=45.0, altitude=10.0, legs=1)]
    )


def test_ablation_correlation_only_vs_algorithm1(dataset, once):
    """Correlation-only thresholding floods the TSVL; Algorithm 1 prunes it."""

    def correlation_only():
        pruning = prune_state_variables(dataset.table)
        corr = correlation_matrix(dataset.table.select(pruning.kept))
        selected = set()
        for response in ("ATT.R", "ATT.P", "ATT.Y"):
            if response not in pruning.kept:
                continue
            for name, r in corr.strongest_partners(response, k=len(pruning.kept)):
                if abs(r) >= 0.3 and name not in ("ATT.R", "ATT.P", "ATT.Y"):
                    selected.add(name)
        return selected

    naive_selection = once(correlation_only)
    full = generate_tsvl(
        dataset.table, dynamics_variables=["ATT.R", "ATT.P", "ATT.Y"]
    )
    print(f"\ncorrelation-only: {len(naive_selection)} variables; "
          f"Algorithm 1: {len(full.tsvl)} variables")
    # The regression/significance stage is what makes the TSVL small.
    assert len(full.tsvl) < len(naive_selection)


def test_ablation_no_clustering(dataset, once):
    """Disabling clustering (one giant cluster) still works but is slower
    and selects a comparable or larger set."""

    def without_clustering():
        config = TsvlConfig(cluster_distance_threshold=1.01)  # single cluster
        return generate_tsvl(
            dataset.table, dynamics_variables=["ATT.R"], config=config
        )

    merged = once(without_clustering)
    clustered = generate_tsvl(dataset.table, dynamics_variables=["ATT.R"])
    print(f"\nno clustering: {len(merged.tsvl)}; clustered: {len(clustered.tsvl)}")
    assert merged.clustering.num_clusters == 1
    assert clustered.clustering.num_clusters > 1
    assert merged.tsvl  # both find candidates


def test_ablation_bounded_vs_absolute_actions(once):
    """The paper's bounded 'gradual changes relative to the current value'
    vs absolute random writes: random absolute writes thrash the
    integrator and deviate less per unit of action budget."""

    def run(mode: str) -> float:
        config = EnvConfig(
            max_episode_steps=30, physics_hz=50.0, seed=7,
            manipulation_mode=mode,
        )
        env = PathDeviationEnv(config)
        rng = np.random.default_rng(0)
        obs = env.reset()
        done = False
        while not done:
            if mode == "delta":
                action = [config.action_limit]
            else:
                action = rng.uniform(-config.action_limit, config.action_limit, 1)
            obs, _, done, _ = env.step(action)
        return float(obs[3])  # final path distance

    bounded = once(run, "delta")
    absolute = run("absolute")
    print(f"\nbounded-delta deviation: {bounded:.2f} m; "
          f"absolute-random: {absolute:.2f} m")
    assert bounded > absolute


def test_ablation_detector_penalty(once):
    """With the CI detector in the loop, a reckless full-throttle policy is
    interrupted by the alarm penalty; without it the same policy keeps
    accumulating deviation reward."""

    def run(use_detector: bool, action_scale: float = 1.0):
        config = EnvConfig(
            max_episode_steps=40, physics_hz=50.0, seed=11,
            use_detector=use_detector, action_limit=0.4,
        )
        env = PathDeviationEnv(config)
        env.reset()
        total, done, detected = 0.0, False, False
        while not done:
            _, reward, done, info = env.step([config.action_limit * action_scale])
            total += reward
            detected = detected or info["detected"]
        return total, detected

    with_detector = once(run, True)
    without_detector = run(False)
    print(f"\nwith detector: return {with_detector[0]:.2f} detected={with_detector[1]}; "
          f"without: return {without_detector[0]:.2f}")
    # The aggressive policy gets caught when the detector is deployed...
    assert with_detector[1]
    assert with_detector[0] < without_detector[0]
    # ...and is never "caught" when no detector is present.
    assert not without_detector[1]
