"""Tests for the MPU memory model and the attacker's compromised view."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MemoryAccessViolation, ReproError
from repro.memory.attacker import CompromisedRegionView
from repro.memory.layout import AccessMode, MemoryLayout, MemoryRegion
from repro.memory.mpu import Mpu


def make_layout():
    layout = MemoryLayout()
    layout.add_region(MemoryRegion("FLASH", 0x0800_0000, 0x1000, AccessMode.READ))
    layout.add_region(MemoryRegion("STAB", 0x2000_0000, 0x100))
    layout.add_region(MemoryRegion("NAV", 0x2000_0100, 0x100))
    return layout


class TestMemoryRegion:
    def test_contains(self):
        r = MemoryRegion("R", 0x100, 0x10)
        assert r.contains(0x100)
        assert r.contains(0x10F)
        assert not r.contains(0x110)

    def test_permissions(self):
        ro = MemoryRegion("R", 0, 16, AccessMode.READ)
        assert ro.allows(AccessMode.READ)
        assert not ro.allows(AccessMode.WRITE)

    def test_invalid_size(self):
        with pytest.raises(ReproError):
            MemoryRegion("R", 0, 0)


class TestMemoryLayout:
    def test_overlap_rejected(self):
        layout = MemoryLayout()
        layout.add_region(MemoryRegion("A", 0x0, 0x100))
        with pytest.raises(ReproError):
            layout.add_region(MemoryRegion("B", 0x80, 0x100))

    def test_duplicate_name_rejected(self):
        layout = MemoryLayout()
        layout.add_region(MemoryRegion("A", 0x0, 0x100))
        with pytest.raises(ReproError):
            layout.add_region(MemoryRegion("A", 0x200, 0x100))

    def test_bind_allocates_sequential_addresses(self):
        layout = make_layout()
        holder = {"x": 1.0, "y": 2.0}
        b1 = layout.bind("X", "STAB", getter=lambda: holder["x"])
        b2 = layout.bind("Y", "STAB", getter=lambda: holder["y"])
        assert b2.address == b1.address + 4
        assert layout.region_of(b1.address).name == "STAB"

    def test_bind_duplicate_rejected(self):
        layout = make_layout()
        layout.bind("X", "STAB", getter=lambda: 0.0)
        with pytest.raises(ReproError):
            layout.bind("X", "NAV", getter=lambda: 0.0)

    def test_region_full(self):
        layout = MemoryLayout()
        layout.add_region(MemoryRegion("TINY", 0x0, 8))
        layout.bind("A", "TINY", getter=lambda: 0.0)
        layout.bind("B", "TINY", getter=lambda: 0.0)
        with pytest.raises(ReproError):
            layout.bind("C", "TINY", getter=lambda: 0.0)

    def test_variable_lookup(self):
        layout = make_layout()
        layout.bind("X", "STAB", getter=lambda: 7.0)
        assert layout.variable("X").read() == 7.0
        with pytest.raises(ReproError):
            layout.variable("NOPE")

    def test_read_only_binding(self):
        layout = make_layout()
        binding = layout.bind("X", "STAB", getter=lambda: 1.0)  # no setter
        assert not binding.writable
        with pytest.raises(MemoryAccessViolation):
            binding.write(2.0)

    def test_variables_by_region(self):
        layout = make_layout()
        layout.bind("A", "STAB", getter=lambda: 0.0)
        layout.bind("B", "NAV", getter=lambda: 0.0)
        assert layout.variable_names("STAB") == ["A"]
        assert layout.variable_names() == ["A", "B"]


class TestMpu:
    def test_kernel_context_all_access(self):
        layout = make_layout()
        mpu = Mpu(layout)
        mpu.check(0x2000_0000, AccessMode.WRITE, context=None)

    def test_cross_region_denied(self):
        layout = make_layout()
        mpu = Mpu(layout)
        with pytest.raises(MemoryAccessViolation):
            mpu.check(0x2000_0100, AccessMode.WRITE, context="STAB")
        assert len(mpu.violations) == 1

    def test_readonly_region_write_denied(self):
        layout = make_layout()
        mpu = Mpu(layout)
        with pytest.raises(MemoryAccessViolation):
            mpu.check(0x0800_0000, AccessMode.WRITE, context=None)

    def test_unmapped_address_denied(self):
        layout = make_layout()
        mpu = Mpu(layout)
        with pytest.raises(MemoryAccessViolation):
            mpu.check(0xDEAD_0000, AccessMode.READ, context=None)

    def test_can_access_non_raising(self):
        layout = make_layout()
        mpu = Mpu(layout)
        assert mpu.can_access(0x2000_0000, AccessMode.WRITE, "STAB")
        assert not mpu.can_access(0x2000_0100, AccessMode.WRITE, "STAB")
        assert len(mpu.violations) == 0


class TestCompromisedRegionView:
    def make_view(self):
        layout = make_layout()
        holder = {"stab_var": 1.0, "nav_var": 2.0}
        layout.bind(
            "STAB.X", "STAB",
            getter=lambda: holder["stab_var"],
            setter=lambda v: holder.__setitem__("stab_var", v),
        )
        layout.bind(
            "NAV.Y", "NAV",
            getter=lambda: holder["nav_var"],
            setter=lambda v: holder.__setitem__("nav_var", v),
        )
        mpu = Mpu(layout)
        return CompromisedRegionView(layout, mpu, "STAB"), holder

    def test_in_region_read_write(self):
        view, holder = self.make_view()
        assert view.read("STAB.X") == 1.0
        view.write("STAB.X", 5.0)
        assert holder["stab_var"] == 5.0
        assert view.write_log == [("STAB.X", 5.0)]

    def test_out_of_region_denied(self):
        view, holder = self.make_view()
        with pytest.raises(MemoryAccessViolation):
            view.write("NAV.Y", 9.0)
        with pytest.raises(MemoryAccessViolation):
            view.read("NAV.Y")
        assert holder["nav_var"] == 2.0  # untouched

    def test_accessible_variables(self):
        view, _ = self.make_view()
        assert view.accessible_variables() == ["STAB.X"]

    def test_can_write(self):
        view, _ = self.make_view()
        assert view.can_write("STAB.X")
        assert not view.can_write("NAV.Y")
        assert not view.can_write("UNBOUND")

    def test_unknown_region_rejected(self):
        layout = make_layout()
        mpu = Mpu(layout)
        with pytest.raises(ReproError):
            CompromisedRegionView(layout, mpu, "NOT_A_REGION")

    @given(st.floats(-1e9, 1e9))
    @settings(max_examples=30)
    def test_write_read_round_trip(self, value):
        view, _ = self.make_view()
        view.write("STAB.X", value)
        assert view.read("STAB.X") == value
