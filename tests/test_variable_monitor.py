"""Tests for the variable-level countermeasure monitor (paper Section VI)."""

import pytest

from repro.defenses.variable_monitor import VariableEnvelope, VariableLevelMonitor
from repro.exceptions import AnalysisError
from tests.conftest import make_vehicle


class TestVariableEnvelope:
    def test_inside_envelope_zero(self):
        env = VariableEnvelope("x", low=-1.0, high=1.0, max_abs_step=0.1)
        assert env.exceedance(0.5, 0.05) == 0.0

    def test_value_exceedance(self):
        env = VariableEnvelope("x", low=-1.0, high=1.0, max_abs_step=0.1)
        assert env.exceedance(2.0, 0.0) == pytest.approx(1.0)  # 1 over / margin 1
        assert env.exceedance(-3.0, 0.0) == pytest.approx(2.0)

    def test_step_exceedance(self):
        env = VariableEnvelope("x", low=-1.0, high=1.0, max_abs_step=0.1)
        assert env.exceedance(0.0, 0.3) == pytest.approx(2.0)  # 0.2 over / 0.1

    def test_combined(self):
        env = VariableEnvelope("x", low=-1.0, high=1.0, max_abs_step=0.1)
        assert env.exceedance(2.0, -0.2) == pytest.approx(2.0)


class TestVariableLevelMonitor:
    def test_requires_variables(self):
        with pytest.raises(AnalysisError):
            VariableLevelMonitor([])

    def test_untrained_does_not_score(self, fast_vehicle):
        monitor = VariableLevelMonitor(["PIDR.INTEG"])
        monitor.attach(fast_vehicle)
        fast_vehicle.arm()
        fast_vehicle.step()
        assert len(monitor.record.scores) == 0

    def test_collection_requires_enough_samples(self, fast_vehicle):
        monitor = VariableLevelMonitor(["PIDR.INTEG"])
        monitor.collecting = True
        monitor.attach(fast_vehicle)
        fast_vehicle.arm()
        fast_vehicle.step()
        with pytest.raises(AnalysisError):
            monitor.finish_collection()

    def test_learns_and_stays_silent_on_benign(self):
        train = make_vehicle(seed=21, fast=True)
        monitor = VariableLevelMonitor(["PIDR.INTEG", "PIDP.INTEG"], warmup_s=2.0)
        monitor.collecting = True
        monitor.attach(train)
        train.takeoff(5.0)
        train.run(6.0)
        monitor.detach()
        monitor.finish_collection()
        assert monitor.trained

        probe = make_vehicle(seed=22, fast=True)
        monitor.reset()
        monitor.attach(probe)
        probe.takeoff(5.0)
        probe.run(6.0)
        assert not monitor.alarmed

    def test_detects_integrator_injection(self):
        train = make_vehicle(seed=21, fast=True)
        monitor = VariableLevelMonitor(["PIDR.INTEG"], warmup_s=2.0)
        monitor.collecting = True
        monitor.attach(train)
        train.takeoff(5.0)
        train.run(6.0)
        monitor.detach()
        monitor.finish_collection()

        victim = make_vehicle(seed=23, fast=True)
        monitor.reset()
        monitor.attach(victim)
        victim.takeoff(5.0)
        view = victim.compromised_view()
        for _ in range(int(6.0 / victim.sim.dt)):
            view.write("PIDR.INTEG", 0.4)  # far outside the benign envelope
            victim.step()
            if monitor.alarmed:
                break
        assert monitor.alarmed
