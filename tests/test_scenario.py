"""The scenario DSL: spec validation, serialisation, builders, library.

Every scenario is a frozen, schema-validated value; the builders must
construct exactly what the pre-DSL experiments built inline (``None``
world/fault-schedule stand-ins, untouched default battery), and the
named library must stay schema-valid and cover both fleet-eligible and
scalar-only corners of the cube.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.faults import FaultSchedule, FaultSpec
from repro.obs.schema import validate, validate_file
from repro.scenario import (
    SCENARIOS,
    AttackSpec,
    BatterySpec,
    DefenseSpec,
    MissionSpec,
    ObstacleSpec,
    PhysicsSpec,
    Scenario,
    ScenarioError,
    TerrainSpec,
    get_scenario,
    load_scenarios,
    parse_scenarios,
    scenario_names,
)
from repro.sim.config import SimConfig

SCHEMA_PATH = Path("schemas/scenario.schema.json")
SCHEMA = json.loads(SCHEMA_PATH.read_text())


def _schema_errors(scenario: Scenario) -> list[str]:
    return validate({"version": 1, "scenario": scenario.to_dict()}, SCHEMA)


class TestSpecValidation:
    def test_unknown_mission_shape(self):
        with pytest.raises(ScenarioError, match="unknown mission shape"):
            MissionSpec(shape="spiral")

    def test_bad_mission_bounds(self):
        with pytest.raises(ScenarioError, match="length"):
            MissionSpec(length=0.0)
        with pytest.raises(ScenarioError, match="altitude"):
            MissionSpec(altitude=-1.0)
        with pytest.raises(ScenarioError, match="legs"):
            MissionSpec(legs=0)

    def test_unknown_airframe(self):
        with pytest.raises(ScenarioError, match="unknown airframe"):
            PhysicsSpec(airframe="ornithopter")

    def test_bad_wind(self):
        with pytest.raises(ScenarioError, match="wind_mean"):
            PhysicsSpec(wind_mean=(1.0, 2.0))
        with pytest.raises(ScenarioError, match="wind_gust_std"):
            PhysicsSpec(wind_gust_std=-0.1)

    def test_bad_battery(self):
        with pytest.raises(ScenarioError, match="capacity"):
            BatterySpec(capacity_mah=0.0)
        with pytest.raises(ScenarioError, match="cells"):
            BatterySpec(cells=0)

    def test_obstacle_corner_ordering(self):
        with pytest.raises(ScenarioError, match="min_corner < max_corner"):
            ObstacleSpec(
                name="bad", min_corner=(1.0, 0.0, 0.0),
                max_corner=(0.0, 1.0, 1.0),
            )

    def test_unknown_attack_and_defense_kinds(self):
        with pytest.raises(ScenarioError, match="unknown attack kind"):
            AttackSpec(kind="emp")
        with pytest.raises(ScenarioError, match="unknown defense kind"):
            DefenseSpec(kind="prayer")

    def test_defense_threshold_must_be_positive(self):
        with pytest.raises(ScenarioError, match="threshold"):
            DefenseSpec(kind="control_invariants", threshold=0.0)

    def test_scenario_needs_name(self):
        with pytest.raises(ScenarioError, match="name"):
            Scenario(name="")

    def test_duplicate_defense_kinds_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate defense"):
            Scenario(name="x", defenses=(
                DefenseSpec(kind="control_invariants"),
                DefenseSpec(kind="control_invariants", threshold=1.0),
            ))


class TestSerialisation:
    @pytest.mark.parametrize("name", scenario_names())
    def test_library_round_trip(self, name):
        scenario = get_scenario(name)
        rebuilt = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        )
        assert rebuilt == scenario

    def test_unknown_keys_rejected_at_every_level(self):
        good = get_scenario("fig9-cruise").to_dict()
        for mutate in (
            lambda d: d.update(warp_drive=1),
            lambda d: d["mission"].update(spin=2),
            lambda d: d["physics"].update(gravity=1.6),
            lambda d: d["battery"].update(chemistry="LiFe"),
            lambda d: d["terrain"].update(trees=3),
            lambda d: d["attack"].update(strength=9),
        ):
            data = json.loads(json.dumps(good))
            mutate(data)
            with pytest.raises(ScenarioError, match="unknown"):
                Scenario.from_dict(data)

    def test_fault_entries_validated(self):
        data = get_scenario("fig9-cruise").to_dict()
        data["faults"] = [{"kind": "gremlins"}]
        from repro.faults.schedule import FaultConfigError

        with pytest.raises(FaultConfigError, match="unknown fault kind"):
            Scenario.from_dict(data)

    def test_defaults_fill_missing_sections(self):
        scenario = Scenario.from_dict({"name": "bare"})
        assert scenario.mission == MissionSpec()
        assert scenario.faults.empty
        assert scenario.attack.is_none
        assert scenario.defenses == ()


class TestDocuments:
    def test_example_files_schema_valid(self):
        assert validate_file("examples/scenario.json", SCHEMA_PATH) == []
        assert validate_file("examples/scenario_sweep.json", SCHEMA_PATH) == []

    def test_example_files_load(self):
        (single,) = load_scenarios("examples/scenario.json")
        assert single.name == "contested-ridge"
        assert not single.vectorizable  # faults + terrain + battery
        sweep = load_scenarios("examples/scenario_sweep.json")
        assert [s.name for s in sweep] == [
            "sweep-baseline", "sweep-square-pixhawk", "sweep-attacked-link",
        ]

    def test_sweep_entries_deep_schema_valid(self):
        # The sweep document's entries are full scenario objects; the
        # validator subset has no $ref, so pin each entry by wrapping it
        # as a single-scenario document.
        sweep = json.loads(Path("examples/scenario_sweep.json").read_text())
        for entry in sweep["scenarios"]:
            assert validate({"version": 1, "scenario": entry}, SCHEMA) == []

    def test_document_needs_exactly_one_source(self):
        with pytest.raises(ScenarioError, match="exactly one"):
            parse_scenarios(json.dumps({"version": 1}))
        with pytest.raises(ScenarioError, match="exactly one"):
            parse_scenarios(json.dumps({
                "version": 1, "scenario": {"name": "a"},
                "scenarios": [{"name": "b"}],
            }))

    def test_document_rejects_bad_version_and_keys(self):
        with pytest.raises(ScenarioError, match="version"):
            parse_scenarios(json.dumps(
                {"version": 2, "scenario": {"name": "a"}}
            ))
        with pytest.raises(ScenarioError, match="unknown scenario document"):
            parse_scenarios(json.dumps(
                {"version": 1, "scenario": {"name": "a"}, "extra": 1}
            ))

    def test_duplicate_sweep_names_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            parse_scenarios(json.dumps({
                "version": 1,
                "scenarios": [{"name": "a"}, {"name": "a"}],
            }))

    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            load_scenarios(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenarios(bad)


class TestBuilders:
    def test_sim_config_matches_pre_dsl_inline_construction(self):
        # fig9's hardcoded setup was SimConfig(seed=s, wind_gust_std=0.4);
        # the scenario builder must produce a field-identical config.
        scenario = get_scenario("fig9-cruise")
        assert scenario.sim_config(20) == SimConfig(seed=20, wind_gust_std=0.4)
        assert scenario.fleet_config() == SimConfig(wind_gust_std=0.4)

    def test_default_terrain_builds_no_world(self):
        assert get_scenario("fig9-cruise").terrain.build_world() is None
        vehicle = get_scenario("fig9-cruise").build_vehicle(0)
        assert vehicle.fault_schedule is None or vehicle.fault_schedule.empty

    def test_obstacle_terrain_builds_world(self):
        scenario = get_scenario("obstacle-corridor")
        world = scenario.terrain.build_world()
        assert world is not None
        assert [o.name for o in world.obstacles] == [
            "tower-east", "tower-west",
        ]

    def test_custom_battery_swapped_in(self):
        vehicle = get_scenario("low-battery").build_vehicle(0)
        assert vehicle.sim.vehicle.battery.capacity_mah == 1200.0
        stock = get_scenario("fig9-cruise").build_vehicle(0)
        assert stock.sim.vehicle.battery.capacity_mah == 5100.0

    def test_mission_shapes(self):
        line = get_scenario("fig9-cruise").make_mission()
        square = get_scenario("square-patrol").make_mission()
        assert len(square.waypoints) == 5
        assert len(line.waypoints) < len(square.waypoints)

    def test_defense_ensemble_built_for_airframe(self):
        scenario = get_scenario("link-contested")
        airframe = scenario.physics.build_airframe()
        detectors = scenario.build_defenses(airframe)
        names = [type(d).__name__ for d in detectors]
        assert names == ["ControlInvariantsDetector", "EKFResidualDetector"]

    def test_build_fleet_refuses_scalar_only_scenarios(self):
        with pytest.raises(ScenarioError, match="cannot vectorize"):
            get_scenario("degraded-gps").build_fleet([0, 1])

    def test_attack_builder(self):
        assert get_scenario("fig9-cruise").attack.build() is None
        attack = get_scenario("fig9-attack1").attack.build()
        assert attack is not None


class TestLibrary:
    def test_library_size_and_lookup(self):
        assert len(SCENARIOS) >= 10
        assert get_scenario("fig9-cruise").name == "fig9-cruise"
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("fig9-attack3")

    @pytest.mark.parametrize("name", scenario_names())
    def test_library_schema_valid(self, name):
        assert _schema_errors(get_scenario(name)) == []

    def test_fig9_scenarios_pin_the_paper_rates(self):
        assert get_scenario("fig9-attack1").attack.rate_deg_s == 5.0
        assert get_scenario("fig9-attack2").attack.rate_deg_s == 0.25
        assert get_scenario("fig9-cruise").attack.is_none

    def test_vectorization_split(self):
        fleet_ok = {n for n in scenario_names()
                    if get_scenario(n).vectorizable}
        scalar_only = set(scenario_names()) - fleet_ok
        assert {"fig9-cruise", "fig9-attack1", "fig9-attack2",
                "square-patrol", "pixhawk-line"} <= fleet_ok
        assert {"degraded-gps", "obstacle-corridor", "low-battery",
                "link-contested"} <= scalar_only

    def test_fallback_reasons_name_the_cause(self):
        assert any(
            "fault" in r
            for r in get_scenario("degraded-gps").fallback_reasons()
        )
        assert any(
            "battery" in r
            for r in get_scenario("low-battery").fallback_reasons()
        )
        assert any(
            "terrain" in r
            for r in get_scenario("obstacle-corridor").fallback_reasons()
        )
        assert any(
            "ekf_residual" in r
            for r in get_scenario("link-contested").fallback_reasons()
        )

    def test_with_replaces_fields(self):
        widened = get_scenario("fig9-cruise").with_(
            physics=replace(
                get_scenario("fig9-cruise").physics, physics_hz=100.0
            )
        )
        assert widened.physics.physics_hz == 100.0
        assert widened.name == "fig9-cruise"


class TestFaultScheduleEmbedding:
    def test_schedule_round_trips_through_scenario(self):
        schedule = FaultSchedule((
            FaultSpec(kind="motor_efficiency", start=3.0, duration=None,
                      intensity=0.7, motor=1),
        ))
        scenario = Scenario(name="s", faults=schedule)
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.faults == schedule

    def test_empty_schedule_means_none_passed_to_vehicle(self):
        vehicle = Scenario(name="s").build_vehicle(0)
        assert vehicle.fault_schedule is None or vehicle.fault_schedule.empty
