"""Tests for RL spaces, networks (gradient check), replay and agents."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RLError
from repro.rl.ddpg import DdpgAgent, DdpgConfig
from repro.rl.networks import MLP, AdamOptimizer
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.rl.replay import ReplayBuffer
from repro.rl.spaces import Box


class TestBox:
    def test_shapes(self):
        box = Box(low=-1.0, high=1.0, shape=(3,))
        assert box.shape == (3,)
        assert box.dim == 3

    def test_mismatched_bounds(self):
        with pytest.raises(RLError):
            Box(low=np.zeros(2), high=np.zeros(3))

    def test_inverted_bounds(self):
        with pytest.raises(RLError):
            Box(low=1.0, high=-1.0, shape=(1,))

    @given(st.floats(-10, 10))
    @settings(max_examples=30)
    def test_clip_into_box(self, x):
        box = Box(low=-1.0, high=1.0, shape=(1,))
        clipped = box.clip([x])
        assert box.contains(clipped)

    def test_sample_inside(self):
        box = Box(low=np.array([-1.0, 0.0]), high=np.array([1.0, 5.0]), seed=0)
        for _ in range(100):
            assert box.contains(box.sample())


class TestMLPGradients:
    def _numeric_grad(self, net, x, grad_out, param, index, eps=1e-6):
        original = param.flat[index]
        param.flat[index] = original + eps
        plus = float(np.sum(net.forward(x) * grad_out))
        param.flat[index] = original - eps
        minus = float(np.sum(net.forward(x) * grad_out))
        param.flat[index] = original
        return (plus - minus) / (2.0 * eps)

    def test_backprop_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        net = MLP([3, 5, 2], seed=1)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        net.forward(x, cache=True)
        w_grads, b_grads, _ = net.backward(grad_out)
        for layer in range(len(net.weights)):
            for index in range(min(6, net.weights[layer].size)):
                numeric = self._numeric_grad(net, x, grad_out, net.weights[layer], index)
                assert w_grads[layer].flat[index] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-6
                )
            numeric_b = self._numeric_grad(net, x, grad_out, net.biases[layer], 0)
            assert b_grads[layer].flat[0] == pytest.approx(numeric_b, rel=1e-4, abs=1e-6)

    def test_input_gradient(self):
        rng = np.random.default_rng(2)
        net = MLP([2, 4, 1], seed=3)
        x = rng.normal(size=(1, 2))
        net.forward(x, cache=True)
        _, _, grad_in = net.backward(np.ones((1, 1)))
        eps = 1e-6
        for i in range(2):
            xp = x.copy(); xp[0, i] += eps
            xm = x.copy(); xm[0, i] -= eps
            numeric = float((net.forward(xp) - net.forward(xm)).item()) / (2 * eps)
            assert grad_in[0, i] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_tanh_output_bounded(self):
        net = MLP([2, 4, 1], output_activation="tanh", seed=0)
        out = net.forward(np.array([100.0, -100.0]))
        assert -1.0 <= out[0] <= 1.0

    def test_clone_independent(self):
        net = MLP([2, 3, 1], seed=0)
        twin = net.clone()
        np.testing.assert_allclose(net.weights[0], twin.weights[0])
        twin.weights[0][0, 0] += 1.0
        assert net.weights[0][0, 0] != twin.weights[0][0, 0]

    def test_polyak_copy(self):
        a = MLP([2, 3, 1], seed=0)
        b = MLP([2, 3, 1], seed=5)
        before = b.weights[0].copy()
        b.copy_from(a, tau=0.5)
        np.testing.assert_allclose(
            b.weights[0], 0.5 * a.weights[0] + 0.5 * before
        )

    def test_backward_without_forward_raises(self):
        net = MLP([2, 3, 1])
        with pytest.raises(RLError):
            net.backward(np.ones((1, 1)))


class TestAdam:
    def test_minimises_quadratic(self):
        param = np.array([5.0])
        opt = AdamOptimizer([param], lr=0.1)
        for _ in range(500):
            opt.step([2.0 * param])  # grad of param^2
        assert abs(param[0]) < 0.05

    def test_gradient_count_mismatch(self):
        opt = AdamOptimizer([np.zeros(2)])
        with pytest.raises(RLError):
            opt.step([np.zeros(2), np.zeros(2)])


class TestReplayBuffer:
    def test_add_and_sample(self):
        buf = ReplayBuffer(10, obs_dim=2, act_dim=1, seed=0)
        for i in range(5):
            buf.add([i, 0.0], [0.1], float(i), [i + 1, 0.0], False)
        obs, act, rew, next_obs, done = buf.sample(32)
        assert obs.shape == (32, 2)
        assert set(rew).issubset({0.0, 1.0, 2.0, 3.0, 4.0})

    def test_wraps_at_capacity(self):
        buf = ReplayBuffer(3, obs_dim=1, act_dim=1, seed=0)
        for i in range(10):
            buf.add([i], [0.0], float(i), [i], False)
        assert len(buf) == 3
        _, _, rew, _, _ = buf.sample(64)
        assert set(rew).issubset({7.0, 8.0, 9.0})

    def test_empty_sample_raises(self):
        buf = ReplayBuffer(3, 1, 1)
        with pytest.raises(RLError):
            buf.sample(1)


class Toy1DEnv:
    """Move a point toward +1: reward = -(x - 1)^2 increment, one action dim.

    Optimal policy pushes action to +limit; both agents must learn that.
    """

    def __init__(self, limit=0.2, horizon=20):
        self.limit = limit
        self.horizon = horizon
        self.x = 0.0
        self.t = 0

    def reset(self):
        self.x = 0.0
        self.t = 0
        return np.array([self.x])

    def step(self, action):
        a = float(np.clip(np.asarray(action).reshape(-1)[0], -self.limit, self.limit))
        self.x += a
        self.t += 1
        reward = -abs(self.x - 1.0)
        done = self.t >= self.horizon
        return np.array([self.x]), reward, done, {}


class TestReinforceAgent:
    def test_learns_toy_env(self):
        env = Toy1DEnv()
        agent = ReinforceAgent(1, env.limit, ReinforceConfig(seed=0, policy_lr=0.01))
        returns = []
        for _ in range(80):
            obs = env.reset()
            episode = []
            total = 0.0
            done = False
            while not done:
                action = agent.act(obs)
                next_obs, r, done, _ = env.step(action)
                episode.append((obs, action, r))
                total += r
                obs = next_obs
            agent.update(episode)
            returns.append(total)
        assert np.mean(returns[-10:]) > np.mean(returns[:10])

    def test_deterministic_act_repeatable(self):
        agent = ReinforceAgent(2, 0.1, ReinforceConfig(seed=0))
        obs = np.array([0.5, -0.5])
        a1 = agent.act(obs, deterministic=True)
        a2 = agent.act(obs, deterministic=True)
        np.testing.assert_allclose(a1, a2)

    def test_action_within_limit(self):
        agent = ReinforceAgent(1, 0.05, ReinforceConfig(seed=0))
        for _ in range(50):
            a = agent.act(np.array([0.0]))
            assert abs(a[0]) <= 0.05 + 1e-12


class TestDdpgAgent:
    def test_learns_toy_env(self):
        env = Toy1DEnv()
        agent = DdpgAgent(1, env.limit, DdpgConfig(seed=0, warmup_transitions=50))
        returns = []
        for _ in range(40):
            obs = env.reset()
            total = 0.0
            done = False
            while not done:
                action = agent.act(obs)
                next_obs, r, done, _ = env.step(action)
                agent.observe(obs, action, r, next_obs, done)
                agent.update()
                total += r
                obs = next_obs
            agent.end_episode()
            returns.append(total)
        assert np.mean(returns[-8:]) > np.mean(returns[:8])

    def test_update_returns_none_during_warmup(self):
        agent = DdpgAgent(1, 0.1, DdpgConfig(warmup_transitions=100))
        assert agent.update() is None

    def test_noise_decays(self):
        agent = DdpgAgent(1, 0.1, DdpgConfig(noise_decay=0.5))
        agent.end_episode()
        agent.end_episode()
        assert agent._noise_scale == pytest.approx(0.25)
