"""Unit and property tests for the 3-D rotation math."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import math3d as m3


angles = st.floats(-math.pi + 1e-6, math.pi - 1e-6)
pitches = st.floats(-math.pi / 2 + 0.05, math.pi / 2 - 0.05)
vec3 = st.tuples(
    st.floats(-100, 100), st.floats(-100, 100), st.floats(-100, 100)
).map(np.array)
rates = st.tuples(
    st.floats(-10, 10), st.floats(-10, 10), st.floats(-10, 10)
).map(np.array)


class TestWrap:
    def test_wrap_pi_range(self):
        for angle in np.linspace(-20, 20, 101):
            wrapped = m3.wrap_pi(float(angle))
            assert -math.pi <= wrapped < math.pi + 1e-12

    @given(angles)
    def test_wrap_pi_identity_in_range(self, a):
        assert m3.wrap_pi(a) == pytest.approx(a, abs=1e-12)

    @given(st.floats(-50, 50))
    def test_wrap_pi_periodic(self, a):
        assert m3.wrap_pi(a + 2 * math.pi) == pytest.approx(m3.wrap_pi(a), abs=1e-9)

    def test_wrap_2pi(self):
        assert m3.wrap_2pi(-0.1) == pytest.approx(2 * math.pi - 0.1)
        assert m3.wrap_2pi(7.0) == pytest.approx(7.0 - 2 * math.pi)

    def test_wrap_pi_array(self):
        out = m3.wrap_pi(np.array([0.0, 4.0, -4.0]))
        assert out.shape == (3,)
        assert np.all(out >= -math.pi) and np.all(out < math.pi)


class TestDegRad:
    def test_round_trip(self):
        assert m3.rad2deg(m3.deg2rad(123.4)) == pytest.approx(123.4)

    def test_array(self):
        np.testing.assert_allclose(
            m3.deg2rad(np.array([0.0, 180.0])), [0.0, math.pi]
        )


class TestConstrain:
    def test_basic(self):
        assert m3.constrain(5.0, 0.0, 1.0) == 1.0
        assert m3.constrain(-5.0, 0.0, 1.0) == 0.0
        assert m3.constrain(0.5, 0.0, 1.0) == 0.5

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            m3.constrain(0.0, 1.0, -1.0)


class TestQuaternionBasics:
    def test_identity(self):
        q = m3.quat_identity()
        np.testing.assert_allclose(q, [1, 0, 0, 0])

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            m3.quat_normalize(np.zeros(4))

    @given(angles, pitches, angles)
    @settings(max_examples=50)
    def test_from_euler_unit_norm(self, r, p, y):
        q = m3.quat_from_euler(r, p, y)
        assert np.linalg.norm(q) == pytest.approx(1.0, abs=1e-12)

    @given(angles, pitches, angles)
    @settings(max_examples=50)
    def test_euler_round_trip(self, r, p, y):
        q = m3.quat_from_euler(r, p, y)
        r2, p2, y2 = m3.quat_to_euler(q)
        assert m3.wrap_pi(r - r2) == pytest.approx(0.0, abs=1e-9)
        assert p2 == pytest.approx(p, abs=1e-9)
        assert m3.wrap_pi(y - y2) == pytest.approx(0.0, abs=1e-9)

    def test_multiply_identity(self):
        q = m3.quat_from_euler(0.3, 0.2, -0.5)
        np.testing.assert_allclose(
            m3.quat_multiply(m3.quat_identity(), q), q, atol=1e-12
        )

    def test_conjugate_inverts(self):
        q = m3.quat_from_euler(0.4, -0.1, 0.9)
        prod = m3.quat_multiply(q, m3.quat_conjugate(q))
        np.testing.assert_allclose(prod, [1, 0, 0, 0], atol=1e-12)


class TestRotation:
    @given(angles, pitches, angles, vec3)
    @settings(max_examples=50)
    def test_rotation_preserves_norm(self, r, p, y, v):
        q = m3.quat_from_euler(r, p, y)
        assert np.linalg.norm(m3.quat_rotate(q, v)) == pytest.approx(
            np.linalg.norm(v), rel=1e-9, abs=1e-9
        )

    @given(angles, pitches, angles, vec3)
    @settings(max_examples=50)
    def test_rotate_inverse_round_trip(self, r, p, y, v):
        q = m3.quat_from_euler(r, p, y)
        np.testing.assert_allclose(
            m3.quat_inverse_rotate(q, m3.quat_rotate(q, v)), v, atol=1e-6
        )

    def test_yaw_rotation_geometry(self):
        # yaw +90 deg: body X (forward) points world East (+Y in NED).
        q = m3.quat_from_euler(0.0, 0.0, math.pi / 2)
        world = m3.quat_rotate(q, np.array([1.0, 0.0, 0.0]))
        np.testing.assert_allclose(world, [0.0, 1.0, 0.0], atol=1e-12)

    @given(angles, pitches, angles)
    @settings(max_examples=50)
    def test_dcm_matches_quat(self, r, p, y):
        q = m3.quat_from_euler(r, p, y)
        dcm = m3.quat_to_dcm(q)
        v = np.array([0.3, -1.2, 2.0])
        np.testing.assert_allclose(dcm @ v, m3.quat_rotate(q, v), atol=1e-9)

    @given(angles, pitches, angles)
    @settings(max_examples=50)
    def test_dcm_quat_round_trip(self, r, p, y):
        q = m3.quat_from_euler(r, p, y)
        q2 = m3.dcm_to_quat(m3.quat_to_dcm(q))
        # q and -q encode the same rotation.
        assert min(np.linalg.norm(q - q2), np.linalg.norm(q + q2)) < 1e-9

    @given(angles, pitches, angles)
    @settings(max_examples=30)
    def test_dcm_orthonormal(self, r, p, y):
        dcm = m3.dcm_from_euler(r, p, y)
        np.testing.assert_allclose(dcm @ dcm.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(dcm) == pytest.approx(1.0)


class TestIntegration:
    @given(rates)
    @settings(max_examples=50)
    def test_integrate_stays_unit(self, omega):
        q = m3.quat_from_euler(0.1, 0.2, 0.3)
        for _ in range(10):
            q = m3.quat_integrate(q, omega, 0.01)
        assert np.linalg.norm(q) == pytest.approx(1.0, abs=1e-12)

    def test_integrate_pure_roll(self):
        q = m3.quat_identity()
        omega = np.array([0.5, 0.0, 0.0])
        for _ in range(100):
            q = m3.quat_integrate(q, omega, 0.01)
        roll, pitch, yaw = m3.quat_to_euler(q)
        assert roll == pytest.approx(0.5, abs=1e-9)
        assert pitch == pytest.approx(0.0, abs=1e-9)

    def test_derivative_consistent_with_integration(self):
        q = m3.quat_from_euler(0.1, -0.2, 0.4)
        omega = np.array([0.3, -0.1, 0.2])
        dt = 1e-5
        numeric = (m3.quat_integrate(q, omega, dt) - q) / dt
        analytic = m3.quat_derivative(q, omega)
        np.testing.assert_allclose(numeric, analytic, atol=1e-4)

    def test_zero_rate_is_identity(self):
        q = m3.quat_from_euler(0.2, 0.1, -0.3)
        np.testing.assert_allclose(
            m3.quat_integrate(q, np.zeros(3), 0.01), q, atol=1e-12
        )


class TestSkewAndAngles:
    @given(vec3, vec3)
    @settings(max_examples=50)
    def test_skew_is_cross_product(self, a, b):
        np.testing.assert_allclose(m3.skew(a) @ b, np.cross(a, b), atol=1e-6)

    def test_skew_antisymmetric(self):
        s = m3.skew(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(s, -s.T)

    def test_angle_between_orthogonal(self):
        assert m3.angle_between(
            np.array([1.0, 0, 0]), np.array([0, 1.0, 0])
        ) == pytest.approx(math.pi / 2)

    def test_angle_between_zero_raises(self):
        with pytest.raises(ValueError):
            m3.angle_between(np.zeros(3), np.array([1.0, 0, 0]))

    def test_vector_norm(self):
        assert m3.vector_norm(np.array([3.0, 4.0, 0.0])) == pytest.approx(5.0)
