"""Tests for the PID controller and its attacker-visible intermediates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.pid import PIDController, PIDGains
from repro.exceptions import ControlError


def make_pid(**kwargs) -> PIDController:
    defaults = dict(kp=1.0, ki=0.0, kd=0.0, imax=1.0, filt_hz=0.0)
    defaults.update(kwargs)
    return PIDController("PIDT", PIDGains(**defaults))


class TestProportional:
    def test_pure_p(self):
        pid = make_pid(kp=2.0)
        assert pid.update(1.0, 0.0, 0.01) == pytest.approx(2.0)
        assert pid.update(0.5, 1.0, 0.01) == pytest.approx(-1.0)

    @given(st.floats(-10, 10), st.floats(-10, 10), st.floats(0.1, 5.0))
    @settings(max_examples=50)
    def test_p_linear_in_error(self, target, measurement, kp):
        pid = make_pid(kp=kp)
        out = pid.update(target, measurement, 0.01)
        assert out == pytest.approx(
            max(-5000.0, min(5000.0, kp * (target - measurement)))
        )


class TestIntegrator:
    def test_accumulates(self):
        pid = make_pid(kp=0.0, ki=1.0, imax=10.0)
        for _ in range(100):
            pid.update(1.0, 0.0, 0.01)
        assert pid.integrator == pytest.approx(1.0, rel=1e-9)

    def test_clamped_at_imax(self):
        pid = make_pid(kp=0.0, ki=10.0, imax=0.5)
        for _ in range(1000):
            pid.update(1.0, 0.0, 0.01)
        assert pid.integrator == pytest.approx(0.5)

    def test_external_write_persists_into_output(self):
        # The attack primitive: a written INTEG value feeds the next cycle.
        pid = make_pid(kp=0.0, ki=0.0, imax=1.0)
        pid.set_state_variable("INTEG", 0.4)
        out = pid.update(0.0, 0.0, 0.01)
        assert out == pytest.approx(0.4)

    def test_reset_clears(self):
        pid = make_pid(ki=1.0)
        pid.update(1.0, 0.0, 0.1)
        pid.reset()
        assert pid.integrator == 0.0
        assert pid.input_error == 0.0


class TestDerivative:
    def test_first_cycle_zero_d(self):
        pid = make_pid(kp=0.0, kd=1.0)
        assert pid.update(1.0, 0.0, 0.01) == pytest.approx(0.0)

    def test_ramp_derivative(self):
        pid = make_pid(kp=0.0, kd=1.0, filt_hz=0.0)
        out = 0.0
        for n in range(50):
            out = pid.update(n * 0.02, 0.0, 0.01)  # error slope = 2/s
        assert out == pytest.approx(2.0, rel=1e-6)

    def test_filtering_smooths(self):
        sharp = make_pid(kp=0.0, kd=1.0, filt_hz=0.0)
        smooth = make_pid(kp=0.0, kd=1.0, filt_hz=5.0)
        sharp.update(0.0, 0.0, 0.01)
        smooth.update(0.0, 0.0, 0.01)
        out_sharp = sharp.update(1.0, 0.0, 0.01)
        out_smooth = smooth.update(1.0, 0.0, 0.01)
        assert abs(out_smooth) < abs(out_sharp)


class TestFeedForwardAndScaler:
    def test_ff_term(self):
        pid = make_pid(kp=0.0, kff=0.5)
        assert pid.update(2.0, 0.0, 0.01) == pytest.approx(1.0)

    def test_scaler_multiplies_output(self):
        pid = make_pid(kp=1.0)
        pid.scaler = 2.0
        assert pid.update(1.0, 0.0, 0.01) == pytest.approx(2.0)
        assert pid.last_output.p == pytest.approx(1.0)  # terms pre-scaler

    def test_output_limit(self):
        pid = PIDController("PIDT", PIDGains(kp=1.0), output_limit=10.0)
        assert pid.update(1e6, 0.0, 0.01) == 10.0
        assert pid.update(-1e6, 0.0, 0.01) == -10.0

    def test_oversized_default_range(self):
        # The paper's +/-5000 "oversized safety range" is the default.
        pid = make_pid(kp=1.0)
        assert pid.output_limit == 5000.0


class TestStateVariables:
    def test_nine_state_variables(self):
        # Table II: 9 traced intermediates per PID controller.
        assert len(PIDController.STATE_VARIABLES) == 9

    def test_snapshot_contains_all(self):
        pid = make_pid()
        snapshot = pid.state_variables()
        assert set(snapshot) == set(PIDController.STATE_VARIABLES)

    @given(st.sampled_from(PIDController.STATE_VARIABLES),
           st.floats(-100, 100))
    @settings(max_examples=50)
    def test_set_then_get_round_trips(self, name, value):
        pid = make_pid()
        pid.set_state_variable(name, value)
        assert pid.state_variables()[name] == pytest.approx(value)

    def test_unknown_variable_raises(self):
        pid = make_pid()
        with pytest.raises(ControlError):
            pid.set_state_variable("BOGUS", 1.0)

    def test_gain_write_changes_behaviour(self):
        pid = make_pid(kp=1.0)
        pid.set_state_variable("KP", 3.0)
        assert pid.update(1.0, 0.0, 0.01) == pytest.approx(3.0)

    def test_input_updated_each_cycle(self):
        pid = make_pid()
        pid.update(2.0, 0.5, 0.01)
        assert pid.input_error == pytest.approx(1.5)
        assert pid.last_dt == pytest.approx(0.01)


class TestValidation:
    def test_bad_dt(self):
        pid = make_pid()
        with pytest.raises(ControlError):
            pid.update(0.0, 0.0, 0.0)

    def test_negative_imax_rejected(self):
        with pytest.raises(ControlError):
            PIDGains(imax=-1.0)

    def test_bad_output_limit(self):
        with pytest.raises(ControlError):
            PIDController("X", PIDGains(), output_limit=0.0)
