"""Tests for the exploit-generation RL environments."""

import numpy as np
import pytest

from repro.exceptions import RLError
from repro.rl.env import EnvConfig
from repro.rl.envs.crash import ControlledCrashEnv
from repro.rl.envs.deviation import PathDeviationEnv


def small_config(**kwargs) -> EnvConfig:
    defaults = dict(max_episode_steps=10, physics_hz=50.0, seed=3)
    defaults.update(kwargs)
    return EnvConfig(**defaults)


class TestPathDeviationEnv:
    def test_step_before_reset_raises(self):
        env = PathDeviationEnv(small_config())
        with pytest.raises(RLError):
            env.step([0.0])

    def test_reset_returns_valid_observation(self):
        env = PathDeviationEnv(small_config())
        obs = env.reset()
        assert obs.shape == env.observation_space.shape
        assert np.all(np.isfinite(obs))

    def test_episode_terminates_at_max_steps(self):
        env = PathDeviationEnv(small_config(max_episode_steps=4))
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done, info = env.step([0.0])
            steps += 1
        assert steps == 4

    def test_zero_action_near_zero_reward(self):
        env = PathDeviationEnv(small_config())
        env.reset()
        total = 0.0
        for _ in range(5):
            _, reward, _, _ = env.step([0.0])
            total += abs(reward)
        assert total < 1.0  # benign flight barely deviates

    def test_max_action_earns_positive_reward(self):
        env = PathDeviationEnv(small_config(max_episode_steps=30))
        env.reset()
        total = 0.0
        done = False
        while not done:
            _, reward, done, _ = env.step([env.config.action_limit])
            total += reward
        assert total > 1.0  # deviation accumulates (Eq. 4 reward)

    def test_action_clipped_to_space(self):
        env = PathDeviationEnv(small_config())
        env.reset()
        env.step([1e9])  # must not blow up the integrator beyond its clip
        assert abs(env.manipulator.read()) <= 0.45 + 1e-9

    def test_manipulates_target_variable_only(self):
        env = PathDeviationEnv(small_config())
        env.reset()
        env.step([0.05])
        writes = env.manipulator.view.write_log
        assert writes and all(name == "PIDR.INTEG" for name, _ in writes)

    def test_info_fields(self):
        env = PathDeviationEnv(small_config())
        env.reset()
        _, _, _, info = env.step([0.0])
        assert {"steps", "crashed", "detected", "time"} <= set(info)

    def test_episode_seeds_differ(self):
        env = PathDeviationEnv(small_config())
        env.reset()
        first = env.vehicle.config.seed
        env.reset()
        assert env.vehicle.config.seed != first


class TestControlledCrashEnv:
    @staticmethod
    def _rollout(env, action_value):
        env.reset()
        total = 0.0
        closest = np.inf
        done = False
        info = {}
        while not done:
            obs, reward, done, info = env.step([action_value])
            total += reward
            closest = min(closest, obs[3])
        return total, closest, info

    def test_steering_toward_zone_beats_retreat(self):
        # Eq. 5 rewards any distance reduction (including mission progress),
        # so the discriminating signal is toward-vs-away totals.
        env = ControlledCrashEnv(small_config(max_episode_steps=40),
                                 zone_offset_east=15.0)
        toward, closest_toward, _ = self._rollout(env, env.config.action_limit)
        away, closest_away, _ = self._rollout(env, -env.config.action_limit)
        assert toward > away
        assert closest_toward < closest_away

    def test_episode_ends_after_passing_zone(self):
        env = ControlledCrashEnv(small_config(max_episode_steps=300),
                                 zone_offset_east=40.0)
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done, _ = env.step([0.0])
            steps += 1
        # The pass-by terminal fires long before the step cap.
        assert steps < 300

    def test_zone_is_an_obstacle(self):
        env = ControlledCrashEnv(small_config())
        env.reset()
        assert env.vehicle.world.obstacles
        assert env.vehicle.world.forbidden_zones

    def test_contact_gives_bonus_and_terminates(self):
        env = ControlledCrashEnv(
            small_config(max_episode_steps=200), zone_offset_east=8.0,
        )
        env.reset()
        done = False
        rewards = []
        while not done:
            _, reward, done, info = env.step([env.config.action_limit])
            rewards.append(reward)
        # Either the episode hit the zone (bonus) or crashed into it.
        assert max(rewards) >= env.contact_bonus or info["crashed"]
