"""Tests for motors, rigid body, battery, environment and the quadrotor plant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.sim.battery import Battery
from repro.sim.config import AirframeConfig, SimConfig, iris_plus_airframe, pixhawk4_airframe
from repro.sim.environment import Environment
from repro.sim.motor import Motor, MotorArray
from repro.sim.quadrotor import QuadrotorModel
from repro.sim.rigidbody import RigidBody6DoF, RigidBodyState


class TestAirframeConfig:
    def test_presets_valid(self):
        for preset in (iris_plus_airframe(), pixhawk4_airframe()):
            assert preset.mass > 0
            assert 0.0 < preset.hover_throttle < 1.0

    def test_underpowered_frame_rejected(self):
        with pytest.raises(SimulationError):
            AirframeConfig(
                name="brick", mass=10.0, arm_length=0.25,
                inertia_diag=(0.02, 0.02, 0.03),
                motor_time_constant=0.02, motor_max_thrust=1.0,
                motor_torque_coeff=0.01, linear_drag_coeff=0.3,
                angular_drag_coeff=0.003,
            )

    def test_negative_mass_rejected(self):
        with pytest.raises(SimulationError):
            AirframeConfig(
                name="x", mass=-1.0, arm_length=0.25,
                inertia_diag=(0.02, 0.02, 0.03),
                motor_time_constant=0.02, motor_max_thrust=9.0,
                motor_torque_coeff=0.01, linear_drag_coeff=0.3,
                angular_drag_coeff=0.003,
            )

    def test_hover_throttle_balances_weight(self):
        frame = iris_plus_airframe()
        thrust = frame.hover_throttle * 4.0 * frame.motor_max_thrust
        assert thrust == pytest.approx(frame.mass * 9.80665, rel=1e-9)


class TestMotor:
    def test_command_clamped(self):
        m = Motor(9.0, 0.02, 0.016)
        m.set_command(2.0)
        assert m.command == 1.0
        m.set_command(-1.0)
        assert m.command == 0.0

    def test_first_order_response(self):
        m = Motor(10.0, 0.02, 0.016)
        m.set_command(1.0)
        # After one time constant the thrust is ~63 % of target.
        t = 0.0
        while t < 0.02:
            m.step(0.001)
            t += 0.001
        assert m.thrust == pytest.approx(10.0 * 0.632, rel=0.05)

    def test_steady_state(self):
        m = Motor(10.0, 0.02, 0.016)
        m.set_command(0.5)
        for _ in range(1000):
            m.step(0.001)
        assert m.thrust == pytest.approx(5.0, rel=1e-3)

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            Motor(0.0, 0.02, 0.01)
        with pytest.raises(SimulationError):
            Motor(1.0, 0.0, 0.01)


class TestMotorArray:
    @pytest.fixture
    def array(self):
        return MotorArray(iris_plus_airframe())

    def _settle(self, array, commands, steps=2000):
        array.set_commands(commands)
        force = torque = None
        for _ in range(steps):
            force, torque = array.step(0.001)
        return force, torque

    def test_equal_commands_no_torque(self, array):
        force, torque = self._settle(array, [0.5] * 4)
        np.testing.assert_allclose(torque[:2], 0.0, atol=1e-9)
        assert force[2] < 0  # thrust is up (-Z in FRD)

    def test_roll_command_sign(self, array):
        # Increase left motors (2, 3), decrease right (1, 4) -> roll right (+).
        force, torque = self._settle(array, [0.4, 0.6, 0.6, 0.4])
        assert torque[0] > 0.0
        assert abs(torque[1]) < 1e-9

    def test_pitch_command_sign(self, array):
        # Increase front motors (1, 3) -> nose up (+pitch torque).
        force, torque = self._settle(array, [0.6, 0.4, 0.6, 0.4])
        assert torque[1] > 0.0
        assert abs(torque[0]) < 1e-9

    def test_yaw_command_sign(self, array):
        # Increase CCW motors (3, 4) -> positive yaw reaction.
        force, torque = self._settle(array, [0.4, 0.4, 0.6, 0.6])
        assert torque[2] > 0.0

    def test_wrong_command_count(self, array):
        with pytest.raises(SimulationError):
            array.set_commands([0.5, 0.5])


class TestRigidBody:
    def test_free_fall(self):
        body = RigidBody6DoF(2.0, np.diag([0.02, 0.02, 0.03]))
        gravity = np.array([0.0, 0.0, 9.80665 * 2.0])
        for _ in range(1000):
            body.step(gravity, np.zeros(3), 0.001)
        # After 1 s: v = g*t, z = g*t^2/2 (down positive).
        assert body.state.velocity[2] == pytest.approx(9.80665, rel=1e-3)
        assert body.state.position[2] == pytest.approx(9.80665 / 2.0, rel=1e-2)

    def test_pure_torque_spins(self):
        body = RigidBody6DoF(1.0, np.diag([0.02, 0.02, 0.03]))
        for _ in range(100):
            body.step(np.zeros(3), np.array([0.02, 0.0, 0.0]), 0.001)
        # omega = tau/I * t = 0.02/0.02 * 0.1 = 0.1 rad/s
        assert body.state.omega_body[0] == pytest.approx(0.1, rel=1e-6)

    def test_momentum_conserved_without_torque(self):
        body = RigidBody6DoF(1.0, np.diag([0.02, 0.03, 0.04]))
        body.state.omega_body = np.array([1.0, 2.0, 3.0])
        momentum0 = body.inertia @ body.state.omega_body
        for _ in range(1000):
            body.step(np.zeros(3), np.zeros(3), 0.0005)
        # |L| in the body frame is conserved for torque-free motion.
        momentum1 = body.inertia @ body.state.omega_body
        assert np.linalg.norm(momentum1) == pytest.approx(
            np.linalg.norm(momentum0), rel=5e-3
        )

    def test_bad_dt_raises(self):
        body = RigidBody6DoF(1.0, np.diag([0.02, 0.02, 0.03]))
        with pytest.raises(SimulationError):
            body.step(np.zeros(3), np.zeros(3), 0.0)

    def test_state_copy_is_deep(self):
        s = RigidBodyState()
        c = s.copy()
        c.position[0] = 99.0
        assert s.position[0] == 0.0


class TestBattery:
    def test_full_on_creation(self):
        b = Battery()
        assert b.remaining_fraction == 1.0
        assert b.voltage == pytest.approx(4.2 * 3)

    def test_discharges(self):
        b = Battery(capacity_mah=100.0)
        for _ in range(1000):
            b.step(1.0, 0.1)
        assert b.remaining_fraction < 1.0
        assert b.consumed_mah > 0.0

    def test_depletes(self):
        b = Battery(capacity_mah=1.0, max_current_a=100.0)
        for _ in range(10000):
            b.step(1.0, 0.1)
            if b.depleted:
                break
        assert b.depleted
        assert b.voltage == pytest.approx(3.3 * 3)

    def test_current_scales_with_throttle(self):
        b = Battery()
        b.step(0.0, 0.01)
        idle = b.current
        b.step(1.0, 0.01)
        assert b.current > idle

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            Battery(capacity_mah=-1.0)
        with pytest.raises(SimulationError):
            Battery(cells=0)


class TestEnvironment:
    def test_no_gusts_by_default(self):
        env = Environment(SimConfig(seed=0))
        for _ in range(100):
            env.step(0.0025)
        np.testing.assert_allclose(env.wind, 0.0)

    def test_gusts_bounded_statistics(self):
        env = Environment(SimConfig(seed=0, wind_gust_std=1.0))
        samples = []
        for _ in range(20000):
            env.step(0.0025)
            samples.append(env.wind.copy())
        samples = np.asarray(samples)
        assert abs(samples.mean()) < 0.2
        assert samples.std() == pytest.approx(1.0, rel=0.25)

    def test_drag_opposes_airspeed(self):
        env = Environment(SimConfig(seed=0))
        drag = env.drag_force(np.array([2.0, 0.0, 0.0]), 0.5)
        assert drag[0] == pytest.approx(-1.0)

    def test_reset_reseeds(self):
        env = Environment(SimConfig(seed=0, wind_gust_std=1.0))
        env.step(0.01)
        env.reset(seed=0)
        np.testing.assert_allclose(env.wind, 0.0)


class TestQuadrotorPlant:
    def test_hover_equilibrium(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        hover = config.airframe.hover_throttle
        # Slightly above hover to lift off, then exact hover.
        for _ in range(400):
            quad.step([hover * 1.2] * 4, config.dt)
        v_up = -quad.state.velocity[2]
        assert v_up > 0.0  # climbing
        assert not quad.crashed

    def test_stays_on_ground_below_hover_thrust(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        for _ in range(400):
            quad.step([0.1] * 4, config.dt)
        assert quad.landed
        assert quad.state.altitude == pytest.approx(0.0, abs=1e-6)

    def test_accelerometer_reads_minus_g_at_rest(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        quad.step([0.0] * 4, config.dt)
        np.testing.assert_allclose(
            quad.specific_force_body, [0.0, 0.0, -config.gravity], atol=1e-9
        )

    def test_hard_impact_crashes(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        quad.reset(position=np.array([0.0, 0.0, -20.0]))
        quad._landed = False
        for _ in range(int(10.0 / config.dt)):
            quad.step([0.0] * 4, config.dt)
            if quad.crashed:
                break
        assert quad.crashed
        assert "ground impact" in quad.crash_reason

    def test_reset_restores_rest(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        for _ in range(100):
            quad.step([0.9] * 4, config.dt)
        quad.reset()
        assert quad.landed
        assert not quad.crashed
        np.testing.assert_allclose(quad.state.position, 0.0)

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_any_constant_throttle_keeps_finite_state(self, throttle):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        for _ in range(200):
            quad.step([throttle] * 4, config.dt)
        assert np.all(np.isfinite(quad.state.position))
        assert np.all(np.isfinite(quad.state.quaternion))
