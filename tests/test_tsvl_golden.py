"""Golden regression test for Algorithm 1 (the TSVL pipeline).

A fixed-seed profiling trace (one line mission, per-mission seed 1, the
default IRIS+ with 0.4 m/s wind gusts) is pushed through the full
correlation → pruning → clustering → stepwise-AIC pipeline, and the
outcome is frozen into ``tests/golden/tsvl_pid.json``. Any change to the
statistics — a reordered cluster, a different stepwise selection, a
pruning threshold drift — shows up as a diff against the golden file
instead of silently shifting the paper-table results downstream.

Regenerate after an *intentional* pipeline change with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_tsvl_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.tsvl import TsvlConfig, generate_tsvl
from repro.firmware.mission import line_mission
from repro.profiling.collector import ProfileCollector

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "tsvl_pid.json"
RESPONSES = ["ATT.R", "ATT.P", "ATT.Y"]


@pytest.fixture(scope="module")
def pipeline_snapshot() -> dict:
    """Run Algorithm 1 on the fixed-seed trace; summarise every stage."""
    collector = ProfileCollector("PID")
    dataset = collector.collect(
        missions=[line_mission(length=40.0, altitude=10.0, legs=1)]
    )
    # max_per_response=2 is the Table II configuration — the paper's
    # compact per-response TSVLs rather than the unbounded selection.
    result = generate_tsvl(
        dataset.table, dynamics_variables=RESPONSES,
        config=TsvlConfig(max_per_response=2),
    )
    corr = result.correlation
    return {
        "samples": dataset.num_samples,
        "esvl_size": result.esvl_size,
        # Stage 1 — correlation: spot values at full precision (repr) so
        # numeric drift in the matrix itself is caught, not just its
        # downstream consequences.
        "correlation_spots": {
            f"{a}|{b}": repr(corr.value(a, b))
            for a, b in [
                ("ATT.IRErr", "PIDR.INPUT"),
                ("ATT.R", "PIDR.INTEG"),
                ("ATT.P", "PIDP.INPUT"),
            ]
        },
        # Stage 2 — pruning: every dropped variable and its reason.
        "pruned": dict(sorted(result.pruning.dropped.items())),
        "kept": list(result.pruning.kept),
        # Stage 3 — clustering: full cluster membership.
        "clusters": sorted(sorted(c) for c in result.clustering.clusters),
        # Stage 4 — stepwise selection per response.
        "models": {
            response: list(model.selected)
            for response, model in sorted(result.models.items())
        },
        "responses_used": list(result.responses_used),
        # The final answer.
        "tsvl": list(result.tsvl),
    }


def test_tsvl_pipeline_matches_golden(pipeline_snapshot):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(pipeline_snapshot, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        "golden file missing — regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert pipeline_snapshot == golden


def test_golden_file_sanity():
    """The checked-in golden must describe a plausible Algorithm 1 run."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["samples"] > 200
    assert golden["esvl_size"] == 64  # PID row of Table II
    # Constant PID gains must be pruned (the paper's v1 KP, v2 KI, v3 KD).
    assert {"PIDR.KP", "PIDR.KI", "PIDR.KD"} <= set(golden["pruned"])
    # The TSVL is compact (≤ 2 per response) and excludes the responses.
    assert 1 <= len(golden["tsvl"]) <= 6
    assert not set(golden["tsvl"]) & set(RESPONSES)
    # Every TSVL entry came out of some response's stepwise model.
    selected_union = {
        name for names in golden["models"].values() for name in names
    }
    assert set(golden["tsvl"]) <= selected_union
