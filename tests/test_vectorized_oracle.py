"""Differential-oracle tests: the vectorized fleet vs the scalar Vehicle.

The scalar :class:`~repro.firmware.vehicle.Vehicle` is the reference
implementation; :class:`~repro.sim.vectorized.VectorizedFleet` claims lane
``i`` of an N-wide batch is *bit-identical* to a scalar run with seed
``i`` — not approximately equal, ``np.array_equal`` on every float. These
tests pin that claim over full closed-loop runs: rigid-body state, motor
thrusts, sensor samples, SINS/AHRS/EKF estimator state, PID bank
internals, crash flags and the per-lane clock, at N=1 and per-column at
N>1, plus a Hypothesis sweep over fleet width, physics rate and mission
profile.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks.gradual import GradualRollAttack
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.faults.schedule import FaultSchedule
from repro.faults.sensors import SensorFaultInjector
from repro.firmware.mission import line_mission, square_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import Vehicle
from repro.obs import hot_loop_profile
from repro.sensors.base import NoiseModel
from repro.sim.config import SimConfig
from repro.sim.vectorized import (
    VectorizedFleet,
    _quat_from_euler_cols,
    _quat_integrate_cols,
    _row_norm,
)
from repro.utils.math3d import quat_from_euler, quat_integrate

#: Gusty air everywhere: bit-equality with active per-lane noise streams
#: is a much stronger statement than in still air.
GUST_STD = 0.4


def _scalar(seed: int, physics_hz: float = 400.0) -> Vehicle:
    return Vehicle(SimConfig(
        seed=seed, wind_gust_std=GUST_STD, physics_hz=physics_hz,
    ))


def _fleet(seeds, physics_hz: float = 400.0) -> VectorizedFleet:
    return VectorizedFleet(
        SimConfig(wind_gust_std=GUST_STD, physics_hz=physics_hz),
        seeds=list(seeds),
    )


def _assert_sample_equal(name: str, lane_sample, scalar_sample) -> None:
    """Field-by-field bitwise comparison of one sensor sample dataclass."""
    for field in dataclasses.fields(scalar_sample):
        lane_value = getattr(lane_sample, field.name)
        scalar_value = getattr(scalar_sample, field.name)
        if isinstance(scalar_value, np.ndarray):
            assert np.array_equal(lane_value, scalar_value), (
                f"{name}.{field.name} diverged"
            )
        else:
            assert lane_value == scalar_value, f"{name}.{field.name} diverged"


def _assert_readings_equal(lane_readings, scalar_readings) -> None:
    assert (lane_readings is None) == (scalar_readings is None)
    if scalar_readings is None:
        return
    for part in ("imu", "gps", "baro", "mag"):
        _assert_sample_equal(
            part, getattr(lane_readings, part), getattr(scalar_readings, part)
        )
    assert lane_readings.time_s == scalar_readings.time_s


#: (fleet bank attribute, path to the scalar PIDController).
_PID_PAIRS = (
    ("_pid_roll", ("attitude_ctrl", "pid_roll")),
    ("_pid_pitch", ("attitude_ctrl", "pid_pitch")),
    ("_pid_yaw", ("attitude_ctrl", "pid_yaw")),
    ("_pid_vel_x", ("position_ctrl", "axis_x", "vel_ctrl")),
    ("_pid_vel_y", ("position_ctrl", "axis_y", "vel_ctrl")),
    ("_pid_vel_z", ("position_ctrl", "axis_z", "vel_ctrl")),
)


def _assert_pid_banks_equal(fleet: VectorizedFleet, i: int,
                            vehicle: Vehicle) -> None:
    for bank_attr, scalar_path in _PID_PAIRS:
        bank = getattr(fleet, bank_attr)
        pid = vehicle
        for part in scalar_path:
            pid = getattr(pid, part)
        label = ".".join(scalar_path)
        assert bank.integrator[i] == pid.integrator, f"{label}.integrator"
        assert bank.input_error[i] == pid.input_error, f"{label}.input_error"
        assert bank.derivative[i] == pid.derivative, f"{label}.derivative"
        assert bank.last_dt[i] == pid.last_dt, f"{label}.last_dt"
        if pid._last_error is None:
            assert not bank._has_last[i], f"{label}: spurious error history"
        else:
            assert bank._has_last[i], f"{label}: missing error history"
            assert bank._last_error[i] == pid._last_error, f"{label}.last_error"


def _assert_lane_equal(fleet: VectorizedFleet, i: int,
                       vehicle: Vehicle) -> None:
    """Lane ``i`` of the fleet is bit-identical to the scalar vehicle."""
    state = vehicle.sim.vehicle.state
    assert np.array_equal(fleet._pos[i], state.position)
    assert np.array_equal(fleet._vel[i], state.velocity)
    assert np.array_equal(fleet._quat[i], state.quaternion)
    assert np.array_equal(fleet._omega[i], state.omega_body)
    assert np.array_equal(fleet._thrusts[i], vehicle.sim.vehicle.motors.thrusts)
    assert fleet._time[i] == vehicle.sim.time
    assert bool(fleet._crashed[i]) == vehicle.sim.vehicle.crashed
    _assert_readings_equal(fleet._last_readings[i], vehicle.last_readings)
    assert np.array_equal(fleet._ekfs[i].x, vehicle.ekf.x)
    assert np.array_equal(fleet._ekfs[i].P, vehicle.ekf.P)
    assert np.array_equal(fleet._sins[i]._position, vehicle.sins._position)
    assert np.array_equal(fleet._sins[i]._velocity, vehicle.sins._velocity)
    assert np.array_equal(fleet._sins[i]._quat, vehicle.sins._quat)
    assert fleet._sins[i].intermediates == vehicle.sins.intermediates
    assert np.array_equal(fleet._ahrs[i]._quat, vehicle.ahrs._quat)
    battery = vehicle.sim.vehicle.battery
    assert fleet._batteries[i]._consumed_mah == battery._consumed_mah
    assert fleet._batteries[i]._current_a == battery._current_a
    assert fleet._batteries[i].voltage == battery.voltage
    _assert_pid_banks_equal(fleet, i, vehicle)


def _fly_scalar(seed: int, duration: float, mission_factory=None,
                attack_rate: float | None = None,
                physics_hz: float = 400.0,
                altitude: float = 10.0) -> Vehicle:
    """The scalar reference flight the fleet procedures mirror."""
    vehicle = _scalar(seed, physics_hz)
    if mission_factory is not None:
        vehicle.mission = mission_factory()
    vehicle.takeoff(altitude)
    if attack_rate is not None:
        GradualRollAttack(rate_deg_s=attack_rate, start_time=5.0).attach(vehicle)
    if mission_factory is not None:
        vehicle.set_mode(FlightMode.AUTO)
    vehicle.run(duration)
    return vehicle


def _fly_fleet(seeds, duration: float, mission_factory=None,
               attack_rate: float | None = None,
               physics_hz: float = 400.0,
               altitude: float = 10.0) -> VectorizedFleet:
    fleet = _fleet(seeds, physics_hz)
    if mission_factory is not None:
        fleet.set_mission(mission_factory)
    fleet.takeoff(altitude)
    if attack_rate is not None:
        for lane in fleet.lanes:
            GradualRollAttack(rate_deg_s=attack_rate, start_time=5.0).attach(lane)
    if mission_factory is not None:
        fleet.set_mode(FlightMode.AUTO)
    fleet.run(duration)
    return fleet


class TestSingleLaneOracle:
    """N=1: the fleet degenerates to exactly the scalar simulation."""

    def test_hover_run_bit_identical(self):
        fleet = _fly_fleet([7], duration=4.0)
        vehicle = _fly_scalar(7, duration=4.0)
        _assert_lane_equal(fleet, 0, vehicle)

    def test_mission_run_bit_identical(self):
        factory = lambda: line_mission(length=500.0, altitude=10.0, legs=1)
        fleet = _fly_fleet([3], duration=6.0, mission_factory=factory)
        vehicle = _fly_scalar(3, duration=6.0, mission_factory=factory)
        _assert_lane_equal(fleet, 0, vehicle)


class TestMultiLaneOracle:
    """N>1: column i is bit-identical to an independent scalar seed i."""

    SEEDS = [3, 5, 9, 11]

    def test_columns_match_scalar_seeds(self):
        factory = lambda: line_mission(length=500.0, altitude=10.0, legs=1)
        fleet = _fly_fleet(self.SEEDS, duration=5.0, mission_factory=factory)
        for i, seed in enumerate(self.SEEDS):
            vehicle = _fly_scalar(seed, duration=5.0, mission_factory=factory)
            _assert_lane_equal(fleet, i, vehicle)

    def test_width_does_not_perturb_lanes(self):
        """The same seed yields the same bits regardless of fleet width."""
        wide = _fly_fleet([3, 5, 9, 11], duration=3.0)
        narrow = _fly_fleet([9], duration=3.0)
        assert np.array_equal(wide._pos[2], narrow._pos[0])
        assert np.array_equal(wide._quat[2], narrow._quat[0])
        assert np.array_equal(wide._ekfs[2].x, narrow._ekfs[0].x)

    def test_attack_and_detector_match_fig9_scenario(self):
        """The fig9 workload: attack + CI detector, per-lane byte equality."""
        seeds = [20, 21, 22]
        factory = lambda: line_mission(length=500.0, altitude=10.0, legs=1)

        fleet = _fleet(seeds)
        fleet_detectors = []
        for lane in fleet.lanes:
            detector = ControlInvariantsDetector(
                lane.config.airframe, threshold=float("inf")
            )
            detector.attach(lane)
            fleet_detectors.append(detector)
        fleet.set_mission(factory)
        fleet.takeoff(10.0)
        for lane in fleet.lanes:
            GradualRollAttack(rate_deg_s=5.0, start_time=5.0).attach(lane)
        fleet.set_mode(FlightMode.AUTO)
        fleet.run(12.0)

        for i, seed in enumerate(seeds):
            vehicle = _scalar(seed)
            detector = ControlInvariantsDetector(
                vehicle.config.airframe, threshold=float("inf")
            )
            detector.attach(vehicle)
            vehicle.mission = factory()
            vehicle.takeoff(10.0)
            GradualRollAttack(rate_deg_s=5.0, start_time=5.0).attach(vehicle)
            vehicle.set_mode(FlightMode.AUTO)
            vehicle.run(12.0)
            _assert_lane_equal(fleet, i, vehicle)
            assert np.array_equal(
                fleet_detectors[i].record.times_array(),
                detector.record.times_array(),
            )
            assert np.array_equal(
                fleet_detectors[i].record.scores_array(),
                detector.record.scores_array(),
            )

    def test_crash_flags_and_frozen_clock_match(self):
        """A mid-air disarm free-falls into a ground-impact crash; the lane
        crashes exactly when the scalar does and its clock freezes there."""
        seeds = [2, 4]
        fleet = _fleet(seeds)
        fleet.takeoff(10.0)
        fleet.disarm()
        fleet.run(6.0)
        crashed = [bool(flag) for flag in fleet._crashed]
        # Seed 4 registers a ground-impact crash, seed 2 happens to settle
        # without one — a mixed outcome is exactly what must match, and the
        # crashed lane's frozen clock must differ from the survivor's.
        assert any(crashed), "free fall from 10 m should crash some lane"
        assert not all(crashed)
        assert len(set(fleet._time)) == len(fleet._time)
        for i, seed in enumerate(seeds):
            vehicle = _scalar(seed)
            vehicle.takeoff(10.0)
            vehicle.disarm()
            vehicle.run(6.0)
            assert crashed[i] == vehicle.sim.vehicle.crashed
            _assert_lane_equal(fleet, i, vehicle)


class TestBatchedKernels:
    """Unit pins for the batched helpers: bit-equal to their scalar twins
    across magnitudes, not just inside the closed-loop envelope."""

    def _rows(self, dims: int = 3, n: int = 256) -> np.ndarray:
        rng = np.random.default_rng(123)
        rows = rng.standard_normal((n, dims))
        # Spread rows across ~300 decades; the last few rows pin the
        # denormal/huge extremes explicitly.
        rows *= 10.0 ** rng.integers(-150, 151, size=(n, 1)).astype(float)
        rows[-1] *= 1e140
        rows[-2] *= 1e-140
        rows[-3] = 0.0
        return rows

    def test_row_norm_matches_sqrt_dot(self):
        # The huge-magnitude pin overflows norm**2 to inf on both paths
        # (identically — that IS the assertion), so mute the warning.
        with np.errstate(over="ignore"):
            for dims in (3, 4):
                rows = self._rows(dims)
                batched = _row_norm(rows)
                for k, row in enumerate(rows):
                    assert batched[k] == math.sqrt(row.dot(row)), f"row {k}"

    def test_quat_from_euler_cols_matches_scalar(self):
        rng = np.random.default_rng(7)
        roll = rng.uniform(-np.pi, np.pi, 128)
        pitch = rng.uniform(-np.pi / 2, np.pi / 2, 128)
        yaw = rng.uniform(-np.pi, np.pi, 128)
        batched = _quat_from_euler_cols(roll, pitch, yaw)
        for k in range(roll.size):
            scalar = quat_from_euler(float(roll[k]), float(pitch[k]),
                                     float(yaw[k]))
            assert np.array_equal(batched[k], scalar), f"row {k}"

    def test_quat_integrate_cols_matches_scalar(self):
        rng = np.random.default_rng(11)
        q = rng.standard_normal((64, 4))
        q /= np.linalg.norm(q, axis=1, keepdims=True)
        omega = rng.standard_normal((64, 3)) * 10.0 ** rng.integers(
            -12, 2, size=(64, 1)
        ).astype(float)
        omega[-1] = 0.0  # the small-angle branch must match too
        batched = _quat_integrate_cols(q.copy(), omega, dt=0.0025)
        for k in range(q.shape[0]):
            scalar = quat_integrate(q[k].copy(), omega[k], 0.0025)
            assert np.array_equal(batched[k], scalar), f"row {k}"

    def test_noise_draw_reproduces_apply_stream(self):
        """``truth + bias + draw(dt)`` (the batched engine's split, with
        its fused two-half standard_normal draw) replays ``apply`` bit for
        bit, bias walk included."""
        kwargs = dict(std=0.3, bias_std=0.01, bias_instability=0.05, seed=42)
        reference = NoiseModel(**kwargs)
        split = NoiseModel(**kwargs)
        truth = np.array([0.1, -9.8, 0.02])
        for _ in range(500):
            via_apply = reference.apply(truth, dt=0.0025)
            noise = split.draw(0.0025)
            via_split = truth + split.bias + noise
            assert np.array_equal(via_apply, via_split)
        assert np.array_equal(reference.bias, split.bias)

    def test_noise_draw_without_instability(self):
        """The bias-walk-free path (one ``normal`` call) also matches."""
        reference = NoiseModel(std=0.5, seed=9)
        split = NoiseModel(std=0.5, seed=9)
        truth = np.zeros(3)
        for _ in range(100):
            assert np.array_equal(
                reference.apply(truth, dt=0.01),
                truth + split.bias + split.draw(0.01),
            )


class TestProfiledRunOracle:
    """The hot-loop profiler is strictly passive: a profiled fleet run is
    bit-identical to an unprofiled one and reports all five stages."""

    def test_profiled_run_bit_identical_with_stage_breakdown(self):
        plain = _fly_fleet([5, 8], duration=2.0)
        with hot_loop_profile() as profile:
            profiled = _fly_fleet([5, 8], duration=2.0)

        assert np.array_equal(profiled._pos, plain._pos)
        assert np.array_equal(profiled._quat, plain._quat)
        assert np.array_equal(profiled._time, plain._time)
        for i in range(2):
            assert np.array_equal(profiled._ekfs[i].x, plain._ekfs[i].x)
            assert np.array_equal(profiled._ekfs[i].P, plain._ekfs[i].P)

        stages = profile.stages()
        expected_kinds = {
            "sensors": "mixed",
            "estimation": "batched",
            "mission": "scalar",
            "control": "mixed",
            "physics": "batched",
        }
        assert set(stages) == set(expected_kinds)
        for name, kind in expected_kinds.items():
            assert stages[name]["kind"] == kind, name
            assert stages[name]["wall_s"] > 0.0, name
            assert stages[name]["calls"] > 0, name
        assert profile.total_seconds == sum(
            entry["wall_s"] for entry in stages.values()
        )


class TestFaultLaneFallback:
    """A lane with a sensor-fault injector drops to the scalar sampling
    path; it must match a scalar faulted run bit for bit, and pristine
    lanes in the same batch must stay on the batched path untouched."""

    def test_faulted_lane_and_clean_neighbors_match(self):
        schedule = FaultSchedule.single(
            "gps_dropout", intensity=1.0, start=1.0, duration=1.5
        )
        seeds = [6, 13]
        fleet = _fleet(seeds)
        fleet._sensors[0].fault_injector = SensorFaultInjector(
            schedule, seed=seeds[0]
        )
        fleet.takeoff(10.0)
        fleet.run(4.0)

        faulted = Vehicle(
            SimConfig(seed=seeds[0], wind_gust_std=GUST_STD),
            fault_schedule=schedule,
        )
        faulted.takeoff(10.0)
        faulted.run(4.0)
        assert faulted.sensors.fault_injector is not None
        assert faulted.sensors.fault_injector.applied.get("gps_dropout", 0) > 0
        _assert_lane_equal(fleet, 0, faulted)

        clean = _fly_scalar(seeds[1], duration=4.0)
        _assert_lane_equal(fleet, 1, clean)


_PROFILES = {
    "hover": None,
    "line": lambda: line_mission(length=120.0, altitude=6.0, legs=1),
    "square": lambda: square_mission(side=30.0, altitude=6.0),
}


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(min_value=1, max_value=8),
    physics_hz=st.sampled_from([100.0, 200.0, 400.0]),
    profile=st.sampled_from(sorted(_PROFILES)),
    base_seed=st.integers(min_value=0, max_value=40),
    probe=st.integers(min_value=0, max_value=7),
)
def test_property_any_column_matches_scalar(n, physics_hz, profile,
                                            base_seed, probe):
    """Any lane of any fleet width at any physics rate and mission profile
    is bit-identical to its scalar seed (one probed lane per example keeps
    the property affordable)."""
    seeds = list(range(base_seed, base_seed + n))
    factory = _PROFILES[profile]
    fleet = _fly_fleet(seeds, duration=1.5, mission_factory=factory,
                       physics_hz=physics_hz, altitude=4.0)
    i = probe % n
    vehicle = _fly_scalar(seeds[i], duration=1.5, mission_factory=factory,
                          physics_hz=physics_hz, altitude=4.0)
    _assert_lane_equal(fleet, i, vehicle)
