"""Tests for ring buffers, time series and trace tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.timeseries import RingBuffer, TimeSeries, TraceTable


class TestRingBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_fill_and_evict(self):
        rb = RingBuffer(3)
        assert rb.append(1.0) is None
        assert rb.append(2.0) is None
        assert rb.append(3.0) is None
        assert rb.full
        evicted = rb.append(4.0)
        assert evicted == 1.0
        np.testing.assert_allclose(rb.to_array(), [2.0, 3.0, 4.0])

    def test_sum_incremental(self):
        rb = RingBuffer(4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            rb.append(v)
        assert rb.sum == pytest.approx(2 + 3 + 4 + 5)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
           st.integers(1, 20))
    @settings(max_examples=50)
    def test_sum_matches_array(self, values, capacity):
        rb = RingBuffer(capacity)
        for v in values:
            rb.append(v)
        assert rb.sum == pytest.approx(float(rb.to_array().sum()), rel=1e-9, abs=1e-6)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_order_is_oldest_first(self, values):
        capacity = 7
        rb = RingBuffer(capacity)
        for v in values:
            rb.append(v)
        np.testing.assert_allclose(rb.to_array(), values[-capacity:])

    def test_clear(self):
        rb = RingBuffer(3)
        rb.append(5.0)
        rb.clear()
        assert len(rb) == 0
        assert rb.sum == 0.0
        assert rb.to_array().size == 0


class TestTimeSeries:
    def test_append_and_arrays(self):
        ts = TimeSeries("roll")
        ts.append(0.0, 1.0)
        ts.append(0.1, 2.0)
        np.testing.assert_allclose(ts.times, [0.0, 0.1])
        np.testing.assert_allclose(ts.values, [1.0, 2.0])

    def test_window(self):
        ts = TimeSeries("x")
        for i in range(10):
            ts.append(i * 0.1, float(i))
        w = ts.window(0.25, 0.65)
        assert len(w) == 4  # t = 0.3, 0.4, 0.5, 0.6
        assert w.name == "x"


class TestTraceTable:
    def test_duplicate_columns_raise(self):
        with pytest.raises(ValueError):
            TraceTable(["a", "a"])

    def test_append_and_column(self):
        t = TraceTable(["a", "b"])
        t.append_row(0.0, {"a": 1.0, "b": 2.0})
        t.append_row(0.1, {"a": 3.0, "b": 4.0})
        np.testing.assert_allclose(t.column("a"), [1.0, 3.0])
        np.testing.assert_allclose(t.to_matrix(), [[1.0, 2.0], [3.0, 4.0]])

    def test_missing_column_value_raises(self):
        t = TraceTable(["a", "b"])
        with pytest.raises(KeyError):
            t.append_row(0.0, {"a": 1.0})

    def test_select_preserves_rows(self):
        t = TraceTable(["a", "b", "c"])
        for i in range(5):
            t.append_row(i * 1.0, {"a": i, "b": 2 * i, "c": 3 * i})
        s = t.select(["c", "a"])
        assert s.columns == ["c", "a"]
        np.testing.assert_allclose(s.column("c"), [0, 3, 6, 9, 12])
        assert len(s) == 5

    def test_select_unknown_raises(self):
        t = TraceTable(["a"])
        with pytest.raises(KeyError):
            t.select(["zzz"])

    def test_extend_schema_mismatch(self):
        t1 = TraceTable(["a"])
        t2 = TraceTable(["b"])
        with pytest.raises(ValueError):
            t1.extend(t2)

    def test_extend(self):
        t1 = TraceTable(["a"])
        t2 = TraceTable(["a"])
        t1.append_row(0.0, {"a": 1.0})
        t2.append_row(1.0, {"a": 2.0})
        t1.extend(t2)
        assert len(t1) == 2
        np.testing.assert_allclose(t1.column("a"), [1.0, 2.0])

    def test_iter_rows(self):
        t = TraceTable(["a", "b"])
        t.append_row(0.5, {"a": 1.0, "b": 2.0})
        rows = list(t.iter_rows())
        assert rows == [(0.5, {"a": 1.0, "b": 2.0})]

    def test_empty_matrix_shape(self):
        t = TraceTable(["a", "b"])
        assert t.to_matrix().shape == (0, 2)

    def test_contains(self):
        t = TraceTable(["a"])
        assert "a" in t
        assert "b" not in t
