"""The BENCH_<date>.json performance-trajectory machinery.

Pins the snapshot writer (schema-valid output, validated with the same
``repro.obs.schema`` validator the CLI's ``obs validate`` uses), the
tolerance-band comparison (detects an injected regression, passes within
tolerance, survives the bootstrap/no-previous case) and the
``benchmarks/trajectory.py`` CLI wrapper, plus the checked-in first
snapshot itself.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.exceptions import AnalysisError
from repro.obs.schema import validate, validate_file
from repro.obs.trajectory import (
    compare_snapshots,
    latest_snapshots,
    load_trajectory,
    snapshot_path,
    write_snapshot,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = REPO_ROOT / "schemas" / "bench_trajectory.schema.json"


def _suites(scalar=1.0, fleet=3.5):
    return {
        "scalar_hot_loop": {"wall_s": scalar},
        "vectorized_hot_loop_n16": {"wall_s": fleet},
    }


def _stages():
    return {
        "sensors": {"wall_s": 0.4, "calls": 2000, "kind": "mixed"},
        "estimation": {"wall_s": 0.3, "calls": 2000, "kind": "batched"},
        "mission": {"wall_s": 0.1, "calls": 2000, "kind": "scalar"},
        "control": {"wall_s": 0.2, "calls": 2000, "kind": "mixed"},
        "physics": {"wall_s": 0.5, "calls": 2000, "kind": "batched"},
    }


class TestWriteSnapshot:
    def test_writes_schema_valid_json(self, tmp_path):
        path = write_snapshot(
            tmp_path, _suites(), counters={"sim.steps": 64000.0},
            extras={"speedup_n16": 4.5}, label="unit test",
            date="2026-08-09",
        )
        assert path.name == "BENCH_2026-08-09.json"
        assert validate_file(path, SCHEMA) == []
        document = json.loads(path.read_text())
        assert document["date"] == "2026-08-09"
        assert document["suites"]["scalar_hot_loop"]["wall_s"] == 1.0
        assert document["extras"]["speedup_n16"] == 4.5

    def test_default_date_is_today(self, tmp_path):
        path = write_snapshot(tmp_path, _suites())
        assert path == snapshot_path(tmp_path)
        assert validate_file(path, SCHEMA) == []

    def test_rejects_malformed_suites(self, tmp_path):
        with pytest.raises(AnalysisError, match="missing 'wall_s'"):
            write_snapshot(tmp_path, {"bad": {"seconds": 1.0}})
        with pytest.raises(AnalysisError, match="negative"):
            write_snapshot(tmp_path, {"bad": {"wall_s": -1.0}})

    def test_stage_breakdown_round_trips(self, tmp_path):
        suites = _suites()
        suites["vectorized_hot_loop_n16"]["stages"] = _stages()
        path = write_snapshot(tmp_path, suites, date="2026-08-09")
        assert validate_file(path, SCHEMA) == []
        document = json.loads(path.read_text())
        assert document["schema"] == 2
        stages = document["suites"]["vectorized_hot_loop_n16"]["stages"]
        assert set(stages) == {
            "sensors", "estimation", "mission", "control", "physics",
        }
        assert stages["estimation"]["kind"] == "batched"
        assert stages["mission"]["calls"] == 2000.0

    def test_rejects_malformed_stages(self, tmp_path):
        for broken, match in (
            ({"physics": {"wall_s": 0.5, "calls": 1}}, "missing 'kind'"),
            ({"physics": {"calls": 1, "kind": "batched"}},
             "missing 'wall_s'"),
            ({"physics": {"wall_s": -0.5, "calls": 1, "kind": "batched"}},
             "negative"),
            ({"physics": {"wall_s": 0.5, "calls": 1, "kind": "quantum"}},
             "unknown kind"),
        ):
            suites = _suites()
            suites["scalar_hot_loop"]["stages"] = broken
            with pytest.raises(AnalysisError, match=match):
                write_snapshot(tmp_path, suites)

    def test_schema_rejects_corrupt_snapshot(self, tmp_path):
        path = write_snapshot(tmp_path, _suites(), date="2026-08-09")
        document = json.loads(path.read_text())
        del document["suites"]
        document["bogus"] = True
        errors = validate(document, json.loads(SCHEMA.read_text()))
        assert any("suites" in e for e in errors)
        assert any("bogus" in e for e in errors)


class TestTrajectory:
    def test_empty_and_missing_directories(self, tmp_path):
        assert load_trajectory(tmp_path) == []
        assert load_trajectory(tmp_path / "nope") == []
        assert latest_snapshots(tmp_path) == (None, None)

    def test_sorted_by_date_with_latest_pair(self, tmp_path):
        write_snapshot(tmp_path, _suites(1.0), date="2026-08-01")
        write_snapshot(tmp_path, _suites(1.2), date="2026-08-08")
        write_snapshot(tmp_path, _suites(1.1), date="2026-08-05")
        trajectory = load_trajectory(tmp_path)
        assert [p.name for p, _ in trajectory] == [
            "BENCH_2026-08-01.json", "BENCH_2026-08-05.json",
            "BENCH_2026-08-08.json",
        ]
        current, previous = latest_snapshots(tmp_path)
        assert current["date"] == "2026-08-08"
        assert previous["date"] == "2026-08-05"

    def test_corrupt_snapshot_raises(self, tmp_path):
        (tmp_path / "BENCH_2026-08-01.json").write_text("{nope")
        with pytest.raises(AnalysisError, match="corrupt"):
            load_trajectory(tmp_path)


def _v1_document(date="2026-08-01", scalar=1.0, fleet=3.5):
    """A literal schema-v1 snapshot, as written before the stage era."""
    return {
        "schema": 1,
        "date": date,
        "label": "v1 era",
        "python": "3.11.7",
        "numpy": "2.4.6",
        "suites": {
            "scalar_hot_loop": {"wall_s": scalar},
            "vectorized_hot_loop_n16": {"wall_s": fleet},
        },
        "counters": {"sim.steps": 12800.0},
        "extras": {"speedup_n16": 4.5},
    }


class TestV1Compat:
    """Schema-v1 snapshots stay loadable, valid and comparable."""

    def test_v1_document_still_validates(self, tmp_path):
        path = tmp_path / "BENCH_2026-08-01.json"
        path.write_text(json.dumps(_v1_document()))
        assert validate_file(path, SCHEMA) == []

    def test_v2_current_compares_against_v1_previous(self, tmp_path):
        (tmp_path / "BENCH_2026-08-01.json").write_text(
            json.dumps(_v1_document(scalar=1.0))
        )
        suites = _suites(scalar=1.1)
        suites["scalar_hot_loop"]["stages"] = _stages()
        write_snapshot(tmp_path, suites, date="2026-08-08")
        current, previous = latest_snapshots(tmp_path)
        assert previous["schema"] == 1 and current["schema"] == 2
        comparison = compare_snapshots(current, previous, tolerance=0.25)
        assert comparison.ok
        names = [suite.name for suite in comparison.suites]
        assert "scalar_hot_loop" in names


class TestCompare:
    def _docs(self, tmp_path, prev_scalar, cur_scalar):
        write_snapshot(tmp_path, _suites(scalar=prev_scalar),
                       date="2026-08-01")
        write_snapshot(tmp_path, _suites(scalar=cur_scalar),
                       date="2026-08-08")
        return latest_snapshots(tmp_path)

    def test_detects_injected_regression(self, tmp_path):
        current, previous = self._docs(tmp_path, 1.0, 1.5)
        comparison = compare_snapshots(current, previous, tolerance=0.25)
        assert not comparison.ok
        names = [suite.name for suite in comparison.regressions]
        assert names == ["scalar_hot_loop"]
        assert comparison.regressions[0].slowdown == pytest.approx(0.5)
        assert "REGRESSION" in comparison.render()

    def test_passes_within_tolerance_band(self, tmp_path):
        current, previous = self._docs(tmp_path, 1.0, 1.2)
        comparison = compare_snapshots(current, previous, tolerance=0.25)
        assert comparison.ok
        assert "ok" in comparison.render()

    def test_speedup_never_flags(self, tmp_path):
        current, previous = self._docs(tmp_path, 1.0, 0.5)
        assert compare_snapshots(current, previous, tolerance=0.25).ok

    def test_bootstrap_cases_pass(self, tmp_path):
        assert compare_snapshots(None, None).ok
        write_snapshot(tmp_path, _suites(), date="2026-08-08")
        current, previous = latest_snapshots(tmp_path)
        assert previous is None
        comparison = compare_snapshots(current, previous)
        assert comparison.ok and comparison.bootstrap
        assert "baseline" in comparison.render()

    def test_new_suite_is_not_a_regression(self, tmp_path):
        write_snapshot(tmp_path, {"old": {"wall_s": 1.0}}, date="2026-08-01")
        write_snapshot(
            tmp_path,
            {"old": {"wall_s": 1.0}, "fresh": {"wall_s": 99.0}},
            date="2026-08-08",
        )
        current, previous = latest_snapshots(tmp_path)
        comparison = compare_snapshots(current, previous, tolerance=0.25)
        assert comparison.ok
        assert "new suite" in comparison.render()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(AnalysisError, match="tolerance"):
            compare_snapshots(None, None, tolerance=-0.1)

    def test_per_suite_band_loosens_one_suite(self, tmp_path):
        # 50% slower: fails the 25% global band, passes a 60% override.
        current, previous = self._docs(tmp_path, 1.0, 1.5)
        assert not compare_snapshots(current, previous, tolerance=0.25).ok
        comparison = compare_snapshots(
            current, previous, tolerance=0.25,
            suite_tolerances={"scalar_hot_loop": 0.6},
        )
        assert comparison.ok
        assert "[band +60%]" in comparison.render()

    def test_per_suite_band_tightens_one_suite(self, tmp_path):
        # 20% slower: inside the 25% global band, outside a 10% override.
        current, previous = self._docs(tmp_path, 1.0, 1.2)
        assert compare_snapshots(current, previous, tolerance=0.25).ok
        comparison = compare_snapshots(
            current, previous, tolerance=0.25,
            suite_tolerances={"scalar_hot_loop": 0.1},
        )
        assert not comparison.ok
        assert [s.name for s in comparison.regressions] == ["scalar_hot_loop"]

    def test_per_suite_band_for_unknown_suite_rejected(self, tmp_path):
        current, previous = self._docs(tmp_path, 1.0, 1.0)
        with pytest.raises(AnalysisError, match="unknown suite"):
            compare_snapshots(current, previous,
                              suite_tolerances={"typo_suite": 0.5})

    def test_negative_per_suite_band_rejected(self):
        with pytest.raises(AnalysisError, match="scalar_hot_loop"):
            compare_snapshots(None, None,
                              suite_tolerances={"scalar_hot_loop": -0.5})


class TestCompareEdgeCases:
    """Degenerate snapshots the gate must survive without a false verdict."""

    @staticmethod
    def _doc(**suites):
        return {"schema": 2, "date": "2026-08-08",
                "suites": {name: {"wall_s": wall}
                           for name, wall in suites.items()}}

    def test_suite_missing_from_baseline_cannot_regress(self):
        comparison = compare_snapshots(
            self._doc(kept=1.0, fresh=99.0), self._doc(kept=1.0),
        )
        fresh = next(s for s in comparison.suites if s.name == "fresh")
        assert fresh.previous_s is None
        assert fresh.slowdown is None and not fresh.regressed
        assert comparison.ok

    def test_vanished_suite_is_ignored(self):
        comparison = compare_snapshots(
            self._doc(kept=1.0), self._doc(kept=1.0, gone=0.001),
        )
        assert [s.name for s in comparison.suites] == ["kept"]
        assert comparison.ok

    def test_zero_baseline_timing_yields_no_slowdown(self):
        # current/0 would be a division blow-up and an infinite-percent
        # "regression"; a zero-span baseline must read as incomparable.
        comparison = compare_snapshots(
            self._doc(suite=1.0), self._doc(suite=0.0),
        )
        assert comparison.suites[0].slowdown is None
        assert not comparison.suites[0].regressed
        assert comparison.ok
        assert "new suite" in comparison.render()

    def test_nan_timings_never_flag(self):
        nan = float("nan")
        for current, previous in ((nan, 1.0), (1.0, nan), (nan, nan)):
            comparison = compare_snapshots(
                self._doc(suite=current), self._doc(suite=previous),
            )
            assert not comparison.suites[0].regressed
            assert comparison.ok
            comparison.render()  # must not raise on NaN formatting

    def test_v1_vs_v2_with_per_suite_bands(self, tmp_path):
        """A v1-era baseline gates a stage-era snapshot, with one noisy
        suite loosened and the headline suite kept on the tight band."""
        (tmp_path / "BENCH_2026-08-01.json").write_text(
            json.dumps(_v1_document(scalar=1.0, fleet=2.0))
        )
        suites = _suites(scalar=1.1, fleet=3.0)  # fleet 50% slower
        suites["vectorized_hot_loop_n16"]["stages"] = _stages()
        write_snapshot(tmp_path, suites, date="2026-08-08")
        current, previous = latest_snapshots(tmp_path)
        assert previous["schema"] == 1 and current["schema"] == 2
        assert not compare_snapshots(current, previous, tolerance=0.25).ok
        comparison = compare_snapshots(
            current, previous, tolerance=0.25,
            suite_tolerances={"vectorized_hot_loop_n16": 0.6},
        )
        assert comparison.ok
        assert "[band +60%]" in comparison.render()

    def test_override_for_vanished_suite_still_resolves(self):
        # The suite exists in the baseline only — the override names a
        # real (if unmeasurable) suite, not a typo, so it is accepted.
        comparison = compare_snapshots(
            self._doc(kept=1.0), self._doc(kept=1.0, gone=1.0),
            suite_tolerances={"gone": 0.5},
        )
        assert comparison.ok


class TestTrajectoryCli:
    """The benchmarks/trajectory.py compare command (the CI gate)."""

    @staticmethod
    def _load_cli():
        path = REPO_ROOT / "benchmarks" / "trajectory.py"
        spec = importlib.util.spec_from_file_location("bench_trajectory_cli",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_compare_exits_clean_on_empty_and_single(self, tmp_path, capsys):
        cli = self._load_cli()
        assert cli.main(["compare", "--dir", str(tmp_path)]) == 0
        write_snapshot(tmp_path, _suites(), date="2026-08-08")
        assert cli.main(["compare", "--dir", str(tmp_path)]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_compare_fails_on_regression_and_respects_tolerance(
        self, tmp_path, capsys
    ):
        cli = self._load_cli()
        write_snapshot(tmp_path, _suites(scalar=1.0), date="2026-08-01")
        write_snapshot(tmp_path, _suites(scalar=1.5), date="2026-08-08")
        assert cli.main(["compare", "--dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # A looser band accepts the same pair.
        assert cli.main(["compare", "--dir", str(tmp_path),
                         "--tolerance", "0.6"]) == 0

    def test_compare_per_suite_tolerance_flag(self, tmp_path, capsys):
        cli = self._load_cli()
        write_snapshot(tmp_path, _suites(scalar=1.0), date="2026-08-01")
        write_snapshot(tmp_path, _suites(scalar=1.5), date="2026-08-08")
        # The offending suite gets its own looser band; the global band
        # still gates everything else.
        assert cli.main([
            "compare", "--dir", str(tmp_path),
            "--suite-tolerance", "scalar_hot_loop=0.6",
        ]) == 0
        assert "[band +60%]" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            cli.main(["compare", "--dir", str(tmp_path),
                      "--suite-tolerance", "not-a-pair"])

    def test_write_sweep_with_stage_breakdown(self, tmp_path, capsys):
        """A miniature end-to-end write: real sims, tiny duration."""
        cli = self._load_cli()
        assert cli.main([
            "write", "--dir", str(tmp_path), "--date", "2026-08-08",
            "--n", "2", "--sweep", "4", "--duration", "0.2",
            "--repeats", "1", "--label", "unit sweep",
        ]) == 0
        path = tmp_path / "BENCH_2026-08-08.json"
        assert validate_file(path, SCHEMA) == []
        document = json.loads(path.read_text())
        assert set(document["extras"]) == {"speedup_n2", "speedup_n4"}
        suites = document["suites"]
        assert set(suites) == {
            "scalar_hot_loop", "vectorized_hot_loop_n2",
            "vectorized_hot_loop_n4",
        }
        scalar_stages = suites["scalar_hot_loop"]["stages"]
        fleet_stages = suites["vectorized_hot_loop_n2"]["stages"]
        assert set(scalar_stages) == set(fleet_stages) == {
            "sensors", "estimation", "mission", "control", "physics",
        }
        assert all(s["kind"] == "scalar" for s in scalar_stages.values())
        assert fleet_stages["physics"]["kind"] == "batched"
        # The non-primary sweep width is timed but not profiled.
        assert "stages" not in suites["vectorized_hot_loop_n4"]


class TestCheckedInSnapshot:
    """The committed BENCH_*.json series is valid and records the
    acceptance speedup."""

    def test_snapshots_checked_in_and_valid(self):
        trajectory = load_trajectory(REPO_ROOT)
        assert trajectory, "no BENCH_*.json checked in at the repo root"
        for path, _ in trajectory:
            assert validate_file(path, SCHEMA) == [], path
        latest = trajectory[-1][1]
        assert latest["extras"]["speedup_n16"] >= 4.0

    def test_latest_snapshot_has_sweep_and_stage_breakdown(self):
        latest = load_trajectory(REPO_ROOT)[-1][1]
        assert latest["schema"] == 2
        for extra in ("speedup_n4", "speedup_n16", "speedup_n64"):
            assert extra in latest["extras"], extra
        # The batched fraction amortizes: wider fleets, better speedup.
        assert (latest["extras"]["speedup_n64"]
                > latest["extras"]["speedup_n4"])
        stage_names = {"sensors", "estimation", "mission", "control",
                       "physics"}
        for suite in ("scalar_hot_loop", "vectorized_hot_loop_n16"):
            stages = latest["suites"][suite]["stages"]
            assert set(stages) == stage_names, suite
        scalar = latest["suites"]["scalar_hot_loop"]["stages"]
        fleet = latest["suites"]["vectorized_hot_loop_n16"]["stages"]
        assert all(s["kind"] == "scalar" for s in scalar.values())
        assert fleet["estimation"]["kind"] == "batched"
        assert fleet["physics"]["kind"] == "batched"
        assert fleet["mission"]["kind"] == "scalar"
