"""Tests for the attack implementations."""

import numpy as np
import pytest

from repro.attacks.base import Attack
from repro.attacks.gradual import (
    GradualRollAttack,
    OutputPerturbationAttack,
    ScalerDriftAttack,
)
from repro.attacks.injection import ParamSetAttack, VariableManipulator
from repro.attacks.naive import NaiveRollAttack
from repro.exceptions import SimulationError
from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from tests.conftest import make_vehicle


class TestAttackLifecycle:
    class _Noop(Attack):
        def __init__(self, **kw):
            super().__init__("noop", **kw)
            self.injections = 0

        def _inject(self, vehicle):
            self.injections += 1

    def test_inactive_before_start_time(self, fast_vehicle):
        attack = self._Noop(start_time=1e9)
        attack.attach(fast_vehicle)
        for _ in range(10):
            fast_vehicle.step()
        assert attack.injections == 0
        assert not attack.active

    def test_activates_at_start_time(self, fast_vehicle):
        attack = self._Noop(start_time=0.0)
        attack.attach(fast_vehicle)
        for _ in range(5):
            fast_vehicle.step()
        assert attack.active
        assert attack.injections == 5

    def test_detach_stops_injection(self, fast_vehicle):
        attack = self._Noop(start_time=0.0)
        attack.attach(fast_vehicle)
        fast_vehicle.step()
        attack.detach()
        fast_vehicle.step()
        assert attack.injections == 1

    def test_finalize_requires_attach(self):
        with pytest.raises(RuntimeError):
            self._Noop().finalize()

    def test_finalize_summarises(self, fast_vehicle):
        attack = self._Noop(start_time=0.0)
        attack.attach(fast_vehicle)
        fast_vehicle.step()
        result = attack.finalize()
        assert result.name == "noop"
        assert not result.detected


class TestVariableManipulator:
    def test_delta_mode_accumulates(self, fast_vehicle):
        view = fast_vehicle.compromised_view()
        manip = VariableManipulator(view, "PIDR.INTEG", mode="delta", clip=0.45)
        manip.apply(0.1)
        manip.apply(0.1)
        assert manip.read() == pytest.approx(0.2)
        assert manip.writes == 2

    def test_clip_enforced(self, fast_vehicle):
        view = fast_vehicle.compromised_view()
        manip = VariableManipulator(view, "PIDR.INTEG", clip=0.3)
        manip.apply(10.0)
        assert manip.read() == pytest.approx(0.3)

    def test_absolute_mode(self, fast_vehicle):
        view = fast_vehicle.compromised_view()
        manip = VariableManipulator(view, "PIDR.SCALER", mode="absolute", clip=None)
        manip.apply(2.5)
        assert fast_vehicle.attitude_ctrl.pid_roll.scaler == 2.5

    def test_unwritable_variable_rejected(self, fast_vehicle):
        view = fast_vehicle.compromised_view()
        with pytest.raises(PermissionError):
            VariableManipulator(view, "SINS.KVEL")  # other region

    def test_unknown_mode(self, fast_vehicle):
        view = fast_vehicle.compromised_view()
        with pytest.raises(ValueError):
            VariableManipulator(view, "PIDR.INTEG", mode="bogus")


class TestGradualRollAttack:
    def test_deviates_mission(self):
        v = make_vehicle(seed=6, fast=True)
        v.mission = line_mission(length=200.0, altitude=10.0, legs=1)
        v.takeoff(10.0)
        attack = GradualRollAttack(rate_deg_s=4.0, start_time=1.0)
        attack.attach(v)
        v.set_mode(FlightMode.AUTO)
        v.run(20.0)
        deviation = v.mission.cross_track_distance(v.sim.vehicle.state.position)
        assert deviation > 5.0
        result = attack.finalize()
        assert result.injections > 10

    def test_benign_mission_stays_on_path(self):
        v = make_vehicle(seed=6, fast=True)
        v.mission = line_mission(length=200.0, altitude=10.0, legs=1)
        v.takeoff(10.0)
        v.set_mode(FlightMode.AUTO)
        v.run(20.0)
        deviation = v.mission.cross_track_distance(v.sim.vehicle.state.position)
        assert deviation < 2.0

    def test_injection_cadence(self):
        v = make_vehicle(seed=6, fast=True)
        v.takeoff(5.0)
        attack = GradualRollAttack(start_time=0.0, injection_period=0.5)
        attack.attach(v)
        v.run(5.0)
        # ~10 injections in 5 s at 0.5 s period.
        assert 8 <= len(attack.view.write_log) <= 12

    def test_writes_go_through_memory_view(self):
        v = make_vehicle(seed=6, fast=True)
        v.takeoff(5.0)
        attack = GradualRollAttack(start_time=0.0)
        attack.attach(v)
        v.run(1.0)
        assert all(name == "PIDR.INTEG" for name, _ in attack.view.write_log)


class TestNaiveRollAttack:
    def test_rejected_on_truth_state_vehicle(self, fast_vehicle):
        attack = NaiveRollAttack()
        with pytest.raises(SimulationError):
            attack.attach(fast_vehicle)

    def test_pins_ekf_roll(self):
        v = make_vehicle(seed=7)
        v.takeoff(5.0)
        attack = NaiveRollAttack(roll_deg=30.0, start_time=0.0)
        attack.attach(v)
        v.step()
        assert np.rad2deg(v.ekf.roll) == pytest.approx(30.0, abs=1.0)

    def test_destabilises_quickly(self):
        v = make_vehicle(seed=7)
        v.takeoff(8.0)
        attack = NaiveRollAttack(start_time=0.0)
        attack.attach(v)
        v.run(10.0)
        # Real roll diverges away from the spoofed value or vehicle crashes.
        true_roll = np.rad2deg(v.sim.vehicle.state.euler[0])
        assert v.sim.vehicle.crashed or abs(true_roll - 30.0) > 15.0


class TestScalerDrift:
    def test_scaler_written_with_limit(self):
        v = make_vehicle(seed=8, fast=True)
        v.takeoff(3.0)
        attack = ScalerDriftAttack(drift_per_s=-0.5, scaler_limit=0.6, start_time=0.0)
        attack.attach(v)
        v.run(5.0)
        assert v.attitude_ctrl.pid_roll.scaler == pytest.approx(0.6)


class TestOutputPerturbation:
    def test_amplitude_grows_then_caps(self):
        v = make_vehicle(seed=8, fast=True)
        v.takeoff(3.0)
        attack = OutputPerturbationAttack(
            growth_per_s=0.01, amplitude_limit=0.02, start_time=0.0
        )
        attack.attach(v)
        v.run(5.0)
        # Perturbation visible on roll oscillation.
        assert attack.active
        attack.detach()
        assert attack._tamper not in v.torque_hooks


class TestParamSetAttack:
    def test_accepted_and_rejected_counted(self, fast_vehicle):
        schedule = lambda t: [("ATC_RAT_RLL_P", 0.2), ("ATC_RAT_RLL_P", 99.0)]
        attack = ParamSetAttack(schedule, period=0.0, start_time=0.0)
        attack.attach(fast_vehicle)
        fast_vehicle.step()
        assert attack.accepted >= 1
        assert attack.rejected >= 1
        assert fast_vehicle.attitude_ctrl.pid_roll.gains.kp == pytest.approx(0.2)
