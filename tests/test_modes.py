"""Tests for the flight-mode machine."""

import pytest

from repro.exceptions import MissionError
from repro.firmware.modes import FlightMode, ModeManager


class TestFlightMode:
    def test_mode_numbers_match_arducopter(self):
        assert FlightMode.STABILIZE.value == 0
        assert FlightMode.AUTO.value == 3
        assert FlightMode.GUIDED.value == 4
        assert FlightMode.RTL.value == 6
        assert FlightMode.LAND.value == 9

    def test_autonomy_flag(self):
        assert FlightMode.AUTO.is_autonomous
        assert FlightMode.GUIDED.is_autonomous
        assert not FlightMode.STABILIZE.is_autonomous


class TestModeManager:
    def test_initial_mode(self):
        assert ModeManager().mode is FlightMode.STABILIZE

    def test_legal_transition(self):
        m = ModeManager()
        m.set_mode(FlightMode.GUIDED, 1.0)
        assert m.mode is FlightMode.GUIDED
        m.set_mode(FlightMode.AUTO, 2.0)
        assert m.mode is FlightMode.AUTO

    def test_same_mode_is_noop(self):
        m = ModeManager()
        m.set_mode(FlightMode.STABILIZE)
        assert len(m.history) == 1

    def test_history_records_transitions(self):
        m = ModeManager()
        m.set_mode(FlightMode.GUIDED, 5.0)
        assert m.history[-1] == (5.0, FlightMode.GUIDED)

    def test_every_documented_transition_is_reachable(self):
        # All five modes are mutually reachable in ArduCopter.
        for source in FlightMode:
            for target in FlightMode:
                if source is target:
                    continue
                m = ModeManager(source)
                m.set_mode(target)
                assert m.mode is target
