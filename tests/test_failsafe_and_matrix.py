"""Tests for the battery failsafe and the defense-evasion matrix."""

import pytest

from repro.core.defense_matrix import DefenseCell, DefenseMatrix
from repro.firmware.modes import FlightMode
from repro.sim.battery import Battery
from tests.conftest import make_vehicle


class TestBatteryFailsafe:
    def _drained_vehicle(self, capacity_mah: float):
        v = make_vehicle(seed=3, fast=True)
        v.sim.vehicle.battery = Battery(capacity_mah=capacity_mah)
        return v

    def test_low_battery_triggers_rtl(self):
        v = self._drained_vehicle(capacity_mah=18.0)
        v.takeoff(5.0)
        v.set_guided_target(30.0, 0.0, 5.0)
        v.run(60.0, stop_when=lambda vv: vv.modes.mode is FlightMode.RTL)
        assert v.modes.mode in (FlightMode.RTL, FlightMode.LAND)

    def test_critical_battery_lands(self):
        v = self._drained_vehicle(capacity_mah=10.0)
        v.takeoff(5.0)
        v.run(120.0, stop_when=lambda vv: vv.modes.mode is FlightMode.LAND)
        assert v.modes.mode is FlightMode.LAND

    def test_healthy_battery_no_failsafe(self):
        v = make_vehicle(seed=3, fast=True)
        v.takeoff(5.0)
        v.run(5.0)
        assert v.modes.mode is FlightMode.GUIDED


class TestDefenseMatrixStructure:
    def make(self) -> DefenseMatrix:
        return DefenseMatrix(cells=[
            DefenseCell("ares", "ci", detected=False, detection_time=None,
                        max_score=10.0, threshold=100.0, path_deviation=50.0,
                        crashed=False),
            DefenseCell("naive", "ci", detected=True, detection_time=12.0,
                        max_score=500.0, threshold=100.0, path_deviation=5.0,
                        crashed=True),
        ])

    def test_cell_lookup(self):
        matrix = self.make()
        assert matrix.cell("ares", "ci").evaded
        assert not matrix.cell("naive", "ci").evaded
        with pytest.raises(KeyError):
            matrix.cell("nope", "ci")

    def test_axes(self):
        matrix = self.make()
        assert matrix.attacks == ["ares", "naive"]
        assert matrix.detectors == ["ci"]

    def test_render(self):
        text = self.make().render()
        assert "EVADED" in text
        assert "detected@12s" in text
