"""Chaos suite for fault-tolerant campaign execution.

The resilience layer's core contract: the recovery machinery (timeouts,
retries, worker respawn, checkpoint/resume, cache eviction) may change
*when* a seed computes, never *what* it computes. Every test here injects
deterministic faults and asserts the surviving results are bit-identical
to a fault-free run — including the ISSUE acceptance scenario of crashes
+ a hang + a corrupt payload on ``workers=4``.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AnalysisError
from repro.experiments.cache import ResultCache
from repro.experiments.campaign import run_campaign
from repro.experiments.faults import (
    CampaignManifest,
    CorruptResult,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    InjectedFault,
    ManifestRecord,
    SeedTimeout,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_file
from repro.obs.tracing import Tracer, use_telemetry

SCHEMAS = Path(__file__).resolve().parent.parent / "schemas"

#: Fast-retry policy used throughout — keeps the chaos tests quick while
#: still exercising the real backoff code path.
FAST = dict(backoff_base_s=0.001, backoff_max_s=0.01)


# Module-level experiments so ProcessPoolExecutor can pickle them.

def _chaos_experiment(seed: int) -> dict[str, float]:
    """Deterministic per-seed metrics (no RNG state shared across seeds)."""
    return {
        "deviation": float(seed) * 1.25 + 0.125,
        "detected": float(seed % 2),
    }


_CALLS: list[int] = []


def _counting_experiment(seed: int) -> dict[str, float]:
    _CALLS.append(seed)
    return _chaos_experiment(seed)


def _interrupting_experiment(seed: int) -> dict[str, float]:
    if seed == 3:
        raise KeyboardInterrupt
    return _chaos_experiment(seed)


def _values(result) -> dict[str, list[float]]:
    return {name: list(m.values) for name, m in result.metrics.items()}


def _render_stable(result) -> str:
    """The rendered result minus the (intentionally varying) wall line."""
    return "\n".join(
        line for line in result.render().splitlines() if "wall " not in line
    )


def _injector(tmp_path, plan) -> FaultInjector:
    return FaultInjector(plan, tmp_path / "fault-state")


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(AnalysisError, match="timeout must be > 0"):
            FaultPolicy(seed_timeout=0)
        with pytest.raises(AnalysisError, match="retries"):
            FaultPolicy(max_retries=-1)
        with pytest.raises(AnalysisError, match="budget"):
            FaultPolicy(failure_budget=-1)
        with pytest.raises(AnalysisError, match="jitter"):
            FaultPolicy(jitter=1.5)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = FaultPolicy(backoff_base_s=0.1, backoff_max_s=1.0, jitter=0.5)
        first = policy.backoff_seconds(7, 1)
        assert first == policy.backoff_seconds(7, 1)  # rerun-identical
        assert first != policy.backoff_seconds(8, 1)  # seed-derived jitter
        # Exponential growth, capped: base * factor^(n-1) up to max, plus
        # at most `jitter` of itself on top.
        for attempt in range(1, 12):
            delay = policy.backoff_seconds(3, attempt)
            assert 0.1 <= delay <= 1.0 * 1.5
        assert policy.backoff_seconds(3, 10) >= 1.0

    def test_backoff_consumes_no_global_rng(self):
        import random

        random.seed(1234)
        before = random.random()
        random.seed(1234)
        FaultPolicy().backoff_seconds(5, 2)
        assert random.random() == before

    def test_transient_classification(self):
        policy = FaultPolicy()
        assert policy.is_transient(InjectedFault("x"))
        assert policy.is_transient(SeedTimeout("x"))
        assert policy.is_transient(CorruptResult("x"))
        assert policy.is_transient(TimeoutError())
        assert not policy.is_transient(ValueError("science said no"))
        assert not policy.is_transient(AnalysisError("x"))


class TestFaultInjector:
    def test_once_per_seed_across_calls(self, tmp_path):
        inj = _injector(tmp_path, {"mid_seed": [FaultSpec("crash", frozenset({4}))]})
        with pytest.raises(InjectedFault):
            inj.fire("mid_seed", 4)
        assert inj.fire("mid_seed", 4) is None  # budget spent
        assert inj.fire("mid_seed", 5) is None  # other seeds untouched
        assert inj.fire("worker_start", 4) is None  # other points untouched

    def test_times_budget(self, tmp_path):
        inj = _injector(
            tmp_path,
            {"serialize": [FaultSpec("corrupt", frozenset({1}), times=2)]},
        )
        assert inj.fire("serialize", 1) == "corrupt"
        assert inj.fire("serialize", 1) == "corrupt"
        assert inj.fire("serialize", 1) is None

    def test_unknown_point_rejected(self, tmp_path):
        with pytest.raises(AnalysisError, match="injection point"):
            _injector(tmp_path, {"teardown": []})
        with pytest.raises(AnalysisError, match="action"):
            FaultSpec("melt", frozenset({1}))

    def test_from_env(self, tmp_path):
        assert FaultInjector.from_env({}) is None
        with pytest.raises(AnalysisError, match="REPRO_FAULT_STATE"):
            FaultInjector.from_env({"REPRO_FAULTS": "mid_seed:crash:1"})
        inj = FaultInjector.from_env({
            "REPRO_FAULTS": "worker_start:crash:22,23; serialize:corrupt:24:2",
            "REPRO_FAULT_STATE": str(tmp_path / "state"),
        })
        assert inj.plan["worker_start"][0].seeds == frozenset({22, 23})
        assert inj.plan["serialize"][0].times == 2
        for bad in ("worker_start", "worker_start:crash", "nope:crash:1",
                    "worker_start:crash:x"):
            with pytest.raises(AnalysisError):
                FaultInjector.from_env({
                    "REPRO_FAULTS": bad,
                    "REPRO_FAULT_STATE": str(tmp_path / "state"),
                })


class TestChaosCampaign:
    SEEDS = list(range(10, 20))

    def clean(self):
        return run_campaign(_chaos_experiment, self.SEEDS)

    def test_crash_once_on_a_third_of_seeds(self, tmp_path):
        crashing = frozenset(self.SEEDS[::3])  # ~30% of seeds
        inj = _injector(
            tmp_path, {"worker_start": [FaultSpec("crash", crashing)]}
        )
        chaos = run_campaign(
            _chaos_experiment, self.SEEDS,
            policy=FaultPolicy(max_retries=2, **FAST), injector=inj,
        )
        clean = self.clean()
        assert _values(chaos) == _values(clean)
        assert _render_stable(chaos) == _render_stable(clean)
        assert not chaos.failures
        assert set(chaos.retried_seeds) == set(crashing)
        assert all(chaos.attempts[s] == 2 for s in crashing)

    def test_acceptance_scenario_workers4(self, tmp_path):
        """ISSUE acceptance: crashes + a hang hitting the timeout + a
        corrupt payload, on ``workers=4`` — byte-identical to a fault-free
        serial run."""
        crashing = frozenset(self.SEEDS[::3])
        hanging = self.SEEDS[1]
        corrupted = self.SEEDS[2]
        inj = _injector(tmp_path, {
            "worker_start": [
                FaultSpec("crash", crashing),
                FaultSpec("hang", frozenset({hanging}), hang_s=20.0),
            ],
            "serialize": [FaultSpec("corrupt", frozenset({corrupted}))],
        })
        chaos = run_campaign(
            _chaos_experiment, self.SEEDS, workers=4,
            policy=FaultPolicy(seed_timeout=3.0, max_retries=5, **FAST),
            injector=inj,
        )
        clean = self.clean()
        assert _values(chaos) == _values(clean)
        assert _render_stable(chaos) == _render_stable(clean)
        assert not chaos.failures
        # The hung seed was killed at the deadline and retried clean.
        assert chaos.statuses[hanging] == "retried"
        assert chaos.statuses[corrupted] == "retried"
        # A pool-breaking crash can take innocent in-flight seeds down
        # with it, so more seeds than the planned set may retry — but
        # every planned victim must have needed at least one extra try.
        assert crashing <= set(chaos.retried_seeds)

    def test_corrupt_payload_is_transient_and_bit_identical(self, tmp_path):
        inj = _injector(
            tmp_path,
            {"serialize": [FaultSpec("corrupt", frozenset({self.SEEDS[0]}))]},
        )
        chaos = run_campaign(
            _chaos_experiment, self.SEEDS,
            policy=FaultPolicy(max_retries=1, **FAST), injector=inj,
        )
        assert _values(chaos) == _values(self.clean())
        assert chaos.statuses[self.SEEDS[0]] == "retried"

    def test_retries_exhausted_becomes_failed(self, tmp_path):
        inj = _injector(
            tmp_path,
            {"mid_seed": [FaultSpec("crash", frozenset({self.SEEDS[0]}),
                                    times=3)]},
        )
        chaos = run_campaign(
            _chaos_experiment, self.SEEDS,
            policy=FaultPolicy(max_retries=1, **FAST), injector=inj,
        )
        assert chaos.statuses[self.SEEDS[0]] == "failed"
        assert self.SEEDS[0] in chaos.failures
        # The other seeds are untouched.
        assert len(chaos.metrics["deviation"].values) == len(self.SEEDS) - 1

    def test_deterministic_failures_never_retried(self):
        def flaky(seed):
            _CALLS.append(seed)
            if seed == self.SEEDS[0]:
                raise ValueError("deterministic science bug")
            return _chaos_experiment(seed)

        _CALLS.clear()
        result = run_campaign(
            flaky, self.SEEDS, policy=FaultPolicy(max_retries=3, **FAST)
        )
        assert _CALLS.count(self.SEEDS[0]) == 1  # no retry on science bugs
        assert result.statuses[self.SEEDS[0]] == "failed"

    def test_failure_budget_aborts_and_keeps_checkpoint(self, tmp_path):
        def doomed(seed):
            if seed >= self.SEEDS[2]:
                raise ValueError(f"boom {seed}")
            return _chaos_experiment(seed)

        manifest = tmp_path / "m.jsonl"
        with pytest.raises(AnalysisError, match="failure budget exhausted"):
            run_campaign(
                doomed, self.SEEDS, manifest=manifest,
                policy=FaultPolicy(max_retries=0, failure_budget=1, **FAST),
            )
        records = CampaignManifest(manifest).load()
        # The two pre-failure seeds were checkpointed before the abort.
        assert all(records[s].finished for s in self.SEEDS[:2])

    def test_retry_and_timeout_counters(self, tmp_path):
        inj = _injector(
            tmp_path,
            {"worker_start": [FaultSpec("hang", frozenset({self.SEEDS[0]}),
                                        hang_s=20.0)]},
        )
        registry = MetricsRegistry()
        with use_telemetry(registry, Tracer()):
            run_campaign(
                _chaos_experiment, self.SEEDS, workers=2,
                policy=FaultPolicy(seed_timeout=2.0, max_retries=3, **FAST),
                injector=inj, experiment_name="counted",
            )
            counters = registry.snapshot()["counters"]
        assert counters["campaign.retries{experiment=counted}"] >= 1
        assert counters["campaign.seed_timeouts{experiment=counted}"] >= 1

    def test_telemetry_deterministic_under_chaos(self, tmp_path):
        """With in-process (soft) faults the whole counter snapshot —
        including retry totals — is rerun-identical. (Hard pool crashes
        may take a timing-dependent number of innocent in-flight seeds
        down with them, so only *results* are pinned there.)"""
        def snapshot(state):
            inj = _injector(
                state, {"worker_start": [FaultSpec("crash",
                                                   frozenset(self.SEEDS[:2]))]}
            )
            registry = MetricsRegistry()
            with use_telemetry(registry, Tracer()):
                run_campaign(
                    _chaos_experiment, self.SEEDS,
                    policy=FaultPolicy(max_retries=2, **FAST),
                    injector=inj, experiment_name="det-merge",
                )
                return registry.snapshot()["counters"]

        first = snapshot(tmp_path / "a")
        second = snapshot(tmp_path / "b")
        assert first == second
        assert first["campaign.retries{experiment=det-merge}"] == 2.0


class TestCacheEviction:
    """Regression: a corrupt ``.repro_cache`` record must evict-and-
    recompute instead of crashing or missing forever."""

    def _warm(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(_chaos_experiment, [1, 2, 3], cache=cache,
                     experiment_name="evict", params=None)
        return cache

    def _paths(self, cache):
        return sorted((cache.root / "evict").glob("*.json"))

    @pytest.mark.parametrize("garbage", [
        '{"schema": 1, "result',  # truncated mid-write
        "42",                     # valid JSON, not a record (AttributeError
                                  # crash before this fix)
        "[]",
        "not json at all",
    ])
    def test_corrupt_entry_evicted_and_recomputed(self, tmp_path, garbage):
        cache = self._warm(tmp_path)
        victim = self._paths(cache)[0]
        victim.write_text(garbage)
        registry = MetricsRegistry()
        with use_telemetry(registry, Tracer()):
            rerun = run_campaign(_chaos_experiment, [1, 2, 3], cache=cache,
                                 experiment_name="evict", params=None)
            counters = registry.snapshot()["counters"]
        assert cache.stats.evictions == 1
        assert counters["cache.evictions{experiment=evict}"] == 1.0
        assert _values(rerun) == _values(run_campaign(_chaos_experiment,
                                                      [1, 2, 3]))
        assert len(rerun.cached_seeds) == 2  # the victim recomputed
        # ... and was re-stored: a third run is fully warm again.
        assert run_campaign(_chaos_experiment, [1, 2, 3], cache=cache,
                            experiment_name="evict",
                            params=None).cached_seeds == [1, 2, 3]

    def test_missing_file_is_a_plain_miss_not_an_eviction(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("evict", "0" * 64) is None
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 0

    def test_injected_cache_corruption_end_to_end(self, tmp_path):
        cache = self._warm(tmp_path)
        inj = _injector(
            tmp_path, {"cache_decode": [FaultSpec("corrupt", frozenset({2}))]}
        )
        rerun = run_campaign(_chaos_experiment, [1, 2, 3], cache=cache,
                             experiment_name="evict", params=None,
                             injector=inj)
        assert cache.stats.evictions == 1
        assert rerun.cached_seeds == [1, 3]
        assert rerun.statuses[2] == "ok"
        assert _values(rerun) == _values(run_campaign(_chaos_experiment,
                                                      [1, 2, 3]))


class TestManifestResume:
    SEEDS = list(range(5))

    def test_resume_recomputes_zero_finished_seeds(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        first = run_campaign(_counting_experiment, self.SEEDS,
                             manifest=manifest)
        assert validate_file(manifest, SCHEMAS / "manifest.schema.json") == []
        _CALLS.clear()
        resumed = run_campaign(_counting_experiment, self.SEEDS,
                               manifest=manifest, resume=True)
        assert _CALLS == []  # zero recomputation
        assert resumed.resumed_seeds == self.SEEDS
        assert all(s == "resumed" for s in resumed.statuses.values())
        assert _values(resumed) == _values(first)

    def test_keyboard_interrupt_flushes_manifest_then_resume(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(_interrupting_experiment, self.SEEDS,
                         manifest=manifest)
        records = CampaignManifest(manifest).load()
        assert sorted(records) == [0, 1, 2]  # flushed before the interrupt
        _CALLS.clear()
        resumed = run_campaign(_counting_experiment, self.SEEDS,
                               manifest=manifest, resume=True)
        assert sorted(_CALLS) == [3, 4]  # only the unfinished seeds
        assert resumed.resumed_seeds == [0, 1, 2]
        assert _values(resumed) == _values(
            run_campaign(_chaos_experiment, self.SEEDS)
        )

    def test_failed_seeds_recompute_on_resume(self, tmp_path):
        manifest = tmp_path / "m.jsonl"

        def flaky(seed):
            if seed == 2:
                raise ValueError("boom")
            return _chaos_experiment(seed)

        run_campaign(flaky, self.SEEDS, manifest=manifest)
        _CALLS.clear()
        resumed = run_campaign(_counting_experiment, self.SEEDS,
                               manifest=manifest, resume=True)
        assert _CALLS == [2]  # failed seed retried, finished ones adopted
        assert not resumed.failures

    def test_corrupt_manifest_lines_skipped(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        run_campaign(_chaos_experiment, self.SEEDS, manifest=manifest)
        lines = manifest.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn write
        lines.append("not json")
        manifest.write_text("\n".join(lines) + "\n")
        records = CampaignManifest(manifest).load()
        assert len(records) == len(self.SEEDS) - 1
        _CALLS.clear()
        run_campaign(_counting_experiment, self.SEEDS, manifest=manifest,
                     resume=True)
        assert len(_CALLS) == 1  # only the torn seed recomputes

    def test_later_lines_win(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        manifest.append(ManifestRecord("e", 1, "failed", error="boom"))
        manifest.append(ManifestRecord("e", 1, "ok", metrics={"m": 2.0}))
        manifest.close()
        records = manifest.load()
        assert records[1].status == "ok" and records[1].finished

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot resume"):
            run_campaign(_chaos_experiment, self.SEEDS, resume=True)
        with pytest.raises(AnalysisError, match="cannot resume"):
            run_campaign(_chaos_experiment, self.SEEDS,
                         manifest=tmp_path / "nope.jsonl", resume=True)

    def test_fresh_run_truncates_stale_manifest(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        run_campaign(_chaos_experiment, self.SEEDS, manifest=manifest)
        run_campaign(_chaos_experiment, self.SEEDS[:2], manifest=manifest)
        assert sorted(CampaignManifest(manifest).load()) == self.SEEDS[:2]


# Random fault schedules within budget: the surviving `ok` results must
# always equal the clean run's (satellite: Hypothesis property test).

_PROPERTY_SEEDS = list(range(6))
_CLEAN = {s: _chaos_experiment(s) for s in _PROPERTY_SEEDS}


@settings(max_examples=30, deadline=None)
@given(
    crashes=st.dictionaries(
        st.sampled_from(["worker_start", "mid_seed"]),
        st.sets(st.sampled_from(_PROPERTY_SEEDS), max_size=4),
    ),
    corrupts=st.sets(st.sampled_from(_PROPERTY_SEEDS), max_size=3),
    jitter=st.floats(min_value=0.0, max_value=1.0),
)
def test_random_fault_schedules_never_perturb_ok_results(
    crashes, corrupts, jitter
):
    plan = {
        point: [FaultSpec("crash", frozenset(seeds))]
        for point, seeds in crashes.items() if seeds
    }
    if corrupts:
        plan["serialize"] = [FaultSpec("corrupt", frozenset(corrupts))]
    with tempfile.TemporaryDirectory() as state:
        injector = FaultInjector(plan, Path(state)) if plan else None
        result = run_campaign(
            _chaos_experiment, _PROPERTY_SEEDS,
            # Each of the 3 points fires at most once per seed, so 3
            # retries always stay within the transient budget.
            policy=FaultPolicy(max_retries=3, jitter=jitter,
                               backoff_base_s=0.0005, backoff_max_s=0.002),
            injector=injector,
        )
    assert not result.failures
    for idx, seed in enumerate(_PROPERTY_SEEDS):
        for name, value in _CLEAN[seed].items():
            assert result.metrics[name].values[idx] == value
    faulted = set().union(*crashes.values(), corrupts) if crashes or corrupts \
        else set()
    for seed in _PROPERTY_SEEDS:
        expected = "retried" if seed in faulted else "ok"
        assert result.statuses[seed] == expected


def test_manifest_record_roundtrip():
    record = ManifestRecord(
        experiment="e", seed=7, status="retried", attempts=3,
        elapsed_s=0.25, fingerprint="ab" * 32,
        metrics={"deviation": 1.5}, created_at=1e9,
    )
    back = ManifestRecord.from_json(json.loads(json.dumps(record.to_json())))
    assert back == record
    assert back.finished
    assert not ManifestRecord("e", 1, "failed", error="x").finished
    assert not ManifestRecord("e", 1, "ok").finished  # no metrics
