"""Tests for semantics-free function identification from memory accesses."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.profiling.access_patterns import (
    AccessTrace,
    MemoryAccessTracer,
    identify_functions_from_access,
)
from tests.conftest import make_vehicle


class TestAccessTrace:
    def test_write_rate(self):
        activity = np.array([[True, False], [True, False], [True, True]])
        trace = AccessTrace(addresses=[0x10, 0x14], activity=activity)
        np.testing.assert_allclose(trace.write_rate(), [1.0, 1 / 3])

    def test_empty_trace(self):
        trace = AccessTrace(addresses=[0x10], activity=np.zeros((0, 1), dtype=bool))
        assert trace.num_cycles == 0
        np.testing.assert_allclose(trace.write_rate(), [0.0])


class TestIdentification:
    def test_needs_cycles(self):
        trace = AccessTrace(addresses=[1], activity=np.zeros((3, 1), dtype=bool))
        with pytest.raises(AnalysisError):
            identify_functions_from_access(trace)

    def test_constants_excluded(self):
        rng = np.random.default_rng(0)
        activity = np.zeros((100, 3), dtype=bool)
        activity[:, 0] = True  # every cycle
        activity[:, 1] = rng.random(100) < 0.5
        # column 2 never written: a constant
        trace = AccessTrace(addresses=[0x0, 0x4, 0x8], activity=activity)
        clusters = identify_functions_from_access(trace)
        clustered = [a for c in clusters for a in c.addresses]
        assert 0x8 not in clustered

    def test_coactive_addresses_grouped(self):
        activity = np.zeros((200, 4), dtype=bool)
        activity[::2, 0] = True
        activity[::2, 1] = True  # same phase as 0
        activity[1::2, 2] = True
        activity[1::2, 3] = True  # same phase as 2, opposite to 0/1
        trace = AccessTrace(addresses=[0, 4, 8, 12], activity=activity)
        clusters = identify_functions_from_access(trace)
        assert len(clusters) == 2
        groups = [set(c.addresses) for c in clusters]
        assert {0, 4} in groups
        assert {8, 12} in groups


class TestOnRealVehicle:
    def test_live_trace_separates_rates_and_constants(self):
        vehicle = make_vehicle(seed=5, fast=True)
        tracer = MemoryAccessTracer(vehicle)
        vehicle.takeoff(5.0)
        # Fly sideways so the roll loop is genuinely active (a perfectly
        # level noiseless hover leaves the roll PID's state at exactly 0).
        vehicle.set_guided_target(0.0, 20.0, 5.0)
        vehicle.run(4.0)
        tracer.detach()
        trace = tracer.trace()
        assert trace.num_cycles > 100

        clusters = identify_functions_from_access(trace)
        clustered = {a for c in clusters for a in c.addresses}
        # Gains are constants: never in any cluster.
        kp_addr = vehicle.memory.variable("PIDR.KP").address
        assert kp_addr not in clustered
        # The live integrator is clustered with other per-cycle variables.
        integ_addr = vehicle.memory.variable("PIDR.INTEG").address
        assert integ_addr in clustered
        # Co-active rate-PID intermediates share a cluster.
        input_addr = vehicle.memory.variable("PIDR.INPUT").address
        cluster_of = {
            addr: i for i, c in enumerate(clusters) for addr in c.addresses
        }
        assert cluster_of[integ_addr] == cluster_of[input_addr]
