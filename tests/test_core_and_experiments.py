"""Tests for the Ares facade and the experiment runners (scaled down)."""

import numpy as np
import pytest

from repro.core.ares import Ares, AresConfig
from repro.core.report import AssessmentReport, ExploitOutcome
from repro.exceptions import AnalysisError
from repro.experiments.table1 import run_table1
from repro.firmware.mission import line_mission
from repro.profiling.collector import ProfileCollector
from repro.rl.env import EnvConfig


class TestAresPipeline:
    @pytest.fixture(scope="class")
    def campaign(self):
        """One small end-to-end campaign shared by the class's tests."""
        config = AresConfig(
            controller_kind="PID",
            env=EnvConfig(max_episode_steps=12, physics_hz=50.0, seed=5),
            episodes=4,
        )
        ares = Ares(config)
        ares.profile(missions=[line_mission(length=40.0, altitude=10.0, legs=1)])
        ares.identify()
        return ares

    def test_identify_requires_profile(self):
        with pytest.raises(AnalysisError):
            Ares().identify()

    def test_exploit_requires_identify(self):
        ares = Ares()
        with pytest.raises(AnalysisError):
            ares.exploit()

    def test_profile_produces_esvl(self, campaign):
        assert campaign.dataset.num_samples > 50
        assert len(campaign.dataset.esvl_columns) == 64

    def test_identify_produces_tsvl(self, campaign):
        assert campaign.tsvl_result is not None
        # Default config caps at 4 per response x 3 responses.
        assert 1 <= len(campaign.tsvl_result.tsvl) <= 12

    def test_exploit_trains_and_reports(self, campaign):
        result = campaign.exploit(variable="PIDR.INTEG", failure="uncontrolled")
        assert len(result.episodes) == 4
        report = campaign.report()
        assert isinstance(report, AssessmentReport)
        assert report.exploits
        assert report.esvl_size == 64
        text = report.render()
        assert "PIDR.INTEG" in text

    def test_unknown_failure_category(self, campaign):
        with pytest.raises(AnalysisError):
            campaign.exploit(variable="PIDR.INTEG", failure="weird")

    def test_unknown_agent_rejected(self, campaign):
        campaign.config.agent = "alphago"
        try:
            with pytest.raises(AnalysisError):
                campaign.exploit(variable="PIDR.INTEG")
        finally:
            campaign.config.agent = "reinforce"


class TestExploitOutcome:
    def test_vulnerable_logic(self):
        good = ExploitOutcome(
            failure_category="uncontrolled", variable="X", episodes=10,
            best_return=5.0, improved=True, any_crash=False, any_detection=False,
        )
        assert good.vulnerable
        bad = ExploitOutcome(
            failure_category="uncontrolled", variable="X", episodes=10,
            best_return=-1.0, improved=True, any_crash=False, any_detection=False,
        )
        assert not bad.vulnerable


class TestTable1Experiment:
    def test_exact_match_with_paper(self):
        result = run_table1()
        assert result.matches_paper
        assert result.total == 342
        assert len(result.rows) == 40
        assert "342" in result.render()
