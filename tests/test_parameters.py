"""Tests for the parameter registry and the ArduCopter parameter table."""

import math

import pytest

from repro.exceptions import ParameterError, ParameterRangeError
from repro.firmware.param_defs import (
    CONTROL_PARAMETER_NAMES,
    arducopter_parameter_defs,
)
from repro.firmware.parameters import ParameterDef, ParameterStore


class TestParameterDef:
    def test_default_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            ParameterDef("X", default=5.0, min_value=0.0, max_value=1.0)

    def test_inverted_range_rejected(self):
        with pytest.raises(ParameterError):
            ParameterDef("X", default=0.0, min_value=1.0, max_value=-1.0)

    def test_validate(self):
        d = ParameterDef("X", default=0.5, min_value=0.0, max_value=1.0)
        assert d.validate(0.7) == 0.7
        with pytest.raises(ParameterRangeError):
            d.validate(1.5)
        with pytest.raises(ParameterRangeError):
            d.validate(math.nan)


class TestParameterStore:
    @pytest.fixture
    def store(self):
        s = ParameterStore()
        s.declare(ParameterDef("GAIN", 1.0, 0.0, 10.0))
        return s

    def test_declare_duplicate_rejected(self, store):
        with pytest.raises(ParameterError):
            store.declare(ParameterDef("GAIN", 2.0))

    def test_get_set(self, store):
        assert store.get("GAIN") == 1.0
        store.set("GAIN", 3.0)
        assert store.get("GAIN") == 3.0

    def test_unknown_name(self, store):
        with pytest.raises(ParameterError):
            store.get("NOPE")
        with pytest.raises(ParameterError):
            store.set("NOPE", 1.0)

    def test_range_enforced(self, store):
        with pytest.raises(ParameterRangeError):
            store.set("GAIN", 100.0)
        assert store.get("GAIN") == 1.0  # unchanged

    def test_unchecked_bypasses_range(self, store):
        # The compromised-memory write path skips validation.
        store.set_unchecked("GAIN", 100.0)
        assert store.get("GAIN") == 100.0

    def test_unchecked_still_requires_existence(self, store):
        with pytest.raises(ParameterError):
            store.set_unchecked("NOPE", 1.0)

    def test_listener_notified(self, store):
        seen = []
        store.subscribe(lambda name, value: seen.append((name, value)))
        store.set("GAIN", 2.0)
        store.set_unchecked("GAIN", 99.0)
        assert seen == [("GAIN", 2.0), ("GAIN", 99.0)]

    def test_reset_defaults(self, store):
        store.set("GAIN", 5.0)
        store.reset_defaults()
        assert store.get("GAIN") == 1.0

    def test_names_by_group(self):
        s = ParameterStore()
        s.declare(ParameterDef("A_ONE", 0.0, group="A"))
        s.declare(ParameterDef("B_ONE", 0.0, group="B"))
        assert s.names("A") == ["A_ONE"]
        assert s.names() == ["A_ONE", "B_ONE"]

    def test_snapshot_is_copy(self, store):
        snap = store.snapshot()
        snap["GAIN"] = 42.0
        assert store.get("GAIN") == 1.0


class TestArduCopterTable:
    def test_substantial_parameter_surface(self):
        defs = arducopter_parameter_defs()
        # The paper's point: hundreds of configurable parameters.
        assert len(defs) > 300

    def test_no_duplicates(self):
        defs = arducopter_parameter_defs()
        names = [d.name for d in defs]
        assert len(names) == len(set(names))

    def test_all_defaults_valid(self):
        store = ParameterStore()
        store.declare_all(arducopter_parameter_defs())
        for name in store:
            definition = store.definition(name)
            assert definition.validate(store.get(name)) == store.get(name)

    def test_control_parameters_present(self):
        store = ParameterStore()
        store.declare_all(arducopter_parameter_defs())
        for name in CONTROL_PARAMETER_NAMES:
            assert name in store, name

    def test_rate_pid_defaults_match_ardupilot(self):
        store = ParameterStore()
        store.declare_all(arducopter_parameter_defs())
        assert store.get("ATC_RAT_RLL_P") == pytest.approx(0.135)
        assert store.get("ATC_ANG_RLL_P") == pytest.approx(4.5)
        assert store.get("SCHED_LOOP_RATE") == 400.0
