"""Tests for the three reimplemented defense families."""

import numpy as np
import pytest

from repro.defenses.base import Detector
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.defenses.ekf_monitor import EKFResidualDetector
from repro.defenses.ml_monitor import MLOutputMonitor, PidApproximator
from repro.exceptions import AnalysisError, DetectionAlarm
from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from repro.sim.config import SimConfig
from tests.conftest import make_vehicle


class TestDetectorBase:
    class _Spike(Detector):
        def __init__(self, **kw):
            super().__init__("spike", threshold=1.0, **kw)
            self.value = 0.0

        def _score(self, vehicle):
            return self.value

        def _reset_state(self):
            self.value = 0.0

    def test_records_and_alarms(self, fast_vehicle):
        det = self._Spike()
        det.attach(fast_vehicle)
        fast_vehicle.step()
        det.value = 5.0
        fast_vehicle.step()
        assert det.alarmed
        assert det.record.max_score == 5.0
        assert det.first_alarm_time is not None

    def test_strict_raises(self, fast_vehicle):
        det = self._Spike(strict=True)
        det.attach(fast_vehicle)
        det.value = 5.0
        with pytest.raises(DetectionAlarm):
            fast_vehicle.step()

    def test_detach_stops_sampling(self, fast_vehicle):
        det = self._Spike()
        det.attach(fast_vehicle)
        fast_vehicle.step()
        det.detach()
        fast_vehicle.step()
        assert len(det.record.scores) == 1

    def test_reset_clears_history(self, fast_vehicle):
        det = self._Spike()
        det.attach(fast_vehicle)
        det.value = 9.0
        fast_vehicle.step()
        det.reset()
        assert not det.alarmed
        assert det.record.max_score == 0.0


class TestControlInvariants:
    def test_silent_before_arming(self, fast_vehicle):
        det = ControlInvariantsDetector(fast_vehicle.config.airframe)
        det.attach(fast_vehicle)
        for _ in range(50):
            fast_vehicle.step()
        assert len(det.record.scores) == 0

    def test_benign_truth_flight_stays_low(self):
        v = make_vehicle(seed=5, fast=True)
        det = ControlInvariantsDetector(v.config.airframe, warmup_s=4.0)
        det.attach(v)
        v.takeoff(6.0)
        v.run(10.0)
        assert not det.alarmed
        assert det.record.max_score < det.threshold

    def test_window_bounds_score(self):
        # The windowed sum can never exceed window * max_step_error for
        # bounded attitude errors (3 axes x 180 deg x 100 cdeg).
        det = ControlInvariantsDetector(SimConfig().airframe, window=16)
        assert det.window == 16

    def test_reset_state(self):
        det = ControlInvariantsDetector(SimConfig().airframe)
        det._errors.append(100.0)
        det.reset()
        assert det._errors.sum == 0.0


class TestPidApproximator:
    def test_fits_linear_map(self, rng):
        features = rng.normal(size=(500, 5))
        weights = np.array([0.1, 0.5, -0.5, 1.0, 0.2])
        outputs = features @ weights + 0.05
        approx = PidApproximator()
        approx.fit(features, outputs)
        prediction = approx.predict(features[0])
        assert prediction == pytest.approx(outputs[0], abs=1e-6)

    def test_clipping_bounds_extrapolation(self, rng):
        features = rng.normal(size=(200, 5))
        outputs = features @ np.ones(5)
        approx = PidApproximator()
        approx.fit(features, outputs)
        wild = np.full(5, 1e6)
        # Clipped inference bounds the prediction near the training range
        # (sum of per-feature maxima), orders of magnitude below the input.
        assert abs(approx.predict(wild)) <= abs(outputs).max() * 10.0

    def test_untrained_predict_raises(self):
        with pytest.raises(AnalysisError):
            PidApproximator().predict(np.zeros(5))

    def test_too_few_samples(self):
        with pytest.raises(AnalysisError):
            PidApproximator().fit(np.zeros((3, 5)), np.zeros(3))

    def test_wrong_feature_count(self):
        with pytest.raises(AnalysisError):
            PidApproximator().fit(np.zeros((50, 3)), np.zeros(50))


class TestMLOutputMonitor:
    def test_collection_then_silence_on_benign(self):
        monitor = MLOutputMonitor()
        monitor.train_on_benign(
            lambda: make_vehicle(seed=11, fast=True), duration=6.0
        )
        v = make_vehicle(seed=12, fast=True)
        monitor.reset()
        monitor.attach(v)
        v.takeoff(3.0)
        v.run(5.0)
        assert not monitor.alarmed
        assert monitor.record.max_score < monitor.threshold

    def test_finish_without_samples_raises(self):
        monitor = MLOutputMonitor()
        with pytest.raises(AnalysisError):
            monitor.finish_collection()


class TestEKFResidualDetector:
    def test_benign_flight_silent(self):
        v = make_vehicle(seed=4)
        det = EKFResidualDetector()  # default warmup skips the takeoff transient
        det.attach(v)
        v.takeoff(5.0)
        v.run(10.0)
        assert not det.alarmed

    def test_gyro_spoof_detected(self):
        from repro.attacks.sensor_spoof import GyroSpoofAttack

        v = make_vehicle(seed=4)
        det = EKFResidualDetector(warmup_s=4.0)
        det.attach(v)
        v.takeoff(5.0)
        attack = GyroSpoofAttack(bias_dps=40.0, start_time=0.0)
        attack.attach(v)
        v.run(10.0, stop_when=lambda vv: det.alarmed)
        # Spoofed rates diverge from the motor-implied physics: alarm.
        assert det.alarmed

    def test_controller_attack_evades(self):
        from repro.attacks.gradual import GradualRollAttack

        v = make_vehicle(seed=4)
        det = EKFResidualDetector(warmup_s=4.0)
        det.attach(v)
        v.takeoff(5.0)
        attack = GradualRollAttack(rate_deg_s=3.0, start_time=0.0)
        attack.attach(v)
        v.run(10.0)
        # The motion is genuinely produced by the motors: no alarm.
        assert not det.alarmed

    def test_skipped_without_estimation(self):
        v = make_vehicle(seed=4, fast=True)  # estimation disabled
        det = EKFResidualDetector()
        det.attach(v)
        v.arm()
        v.step()
        assert len(det.record.scores) == 0
