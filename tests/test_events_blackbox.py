"""Live campaign event bus + crash blackbox flight recorder.

Two hard contracts pinned here:

* **Passivity** — streaming/recording on vs. off produces bit-identical
  campaign results, statuses and cache entries, serial and ``workers=4``:
  the bus and the recorder only observe, never steer.
* **Every casualty leaves a blackbox** — any seed that ends in
  crash/timeout/failed/corrupt yields a schema-valid content-addressed
  artifact, even when the worker died before a single vehicle stepped
  (the stub-artifact path).
"""

from __future__ import annotations

import json
import queue as queue_module
from io import StringIO
from pathlib import Path

import pytest

from repro.exceptions import AnalysisError
from repro.experiments.cache import ResultCache
from repro.experiments.campaign import run_campaign
from repro.experiments.faults import FaultInjector, FaultPolicy, FaultSpec
from repro.firmware.vehicle import Vehicle
from repro.obs.blackbox import (
    BlackboxSession,
    active_blackbox,
    blackbox_session,
    export_blackbox,
    load_blackbox,
    promote_spools,
    summarize_blackbox,
    write_stub_artifact,
)
from repro.obs.events import (
    EVENT_KINDS,
    EventBus,
    format_event,
    queue_event,
    tail_events,
)
from repro.obs.schema import validate_file
from repro.sim.config import SimConfig
from repro.sim.vectorized import VectorizedFleet

SCHEMAS = Path(__file__).resolve().parent.parent / "schemas"
EVENTS_SCHEMA = SCHEMAS / "events.schema.json"
BLACKBOX_SCHEMA = SCHEMAS / "blackbox.schema.json"

FAST = dict(backoff_base_s=0.001, backoff_max_s=0.01)


# Module-level so ProcessPoolExecutor can pickle them.
def _cheap_experiment(seed: int) -> dict[str, float]:
    import numpy as np

    rng = np.random.default_rng(seed)
    return {"deviation": float(rng.normal(size=8).sum())}


_FAIL_SEED = 12


def _failing_experiment(seed: int) -> dict[str, float]:
    if seed == _FAIL_SEED:
        raise ValueError("deterministic science bug")
    return _cheap_experiment(seed)


def _flight_experiment(seed: int) -> dict[str, float]:
    vehicle = Vehicle(SimConfig(seed=seed))
    vehicle.arm()
    for _ in range(40):
        vehicle.step()
    if seed == _FAIL_SEED:
        raise RuntimeError("mid-flight failure")
    return {"alt": -float(vehicle.sim.vehicle.state.position[2])}


def _cheap_batch(seeds: list[int]) -> dict[int, dict[str, float]]:
    return {seed: _cheap_experiment(seed) for seed in seeds}


def _values(result) -> dict[str, list[float]]:
    return {name: list(m.values) for name, m in result.metrics.items()}


def _event_records(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()]


def _cache_payloads(cache_dir: Path) -> dict[str, str]:
    """Relative record path -> canonical result payload (wall-clock
    fields like elapsed_s/created_at excluded — they vary run to run)."""
    payloads = {}
    for record_path in sorted(cache_dir.rglob("*.json")):
        record = json.loads(record_path.read_text())
        payloads[str(record_path.relative_to(cache_dir))] = json.dumps(
            record["result"], sort_keys=True
        )
    return payloads


# --------------------------------------------------------------------- #
# Event records and the bus
# --------------------------------------------------------------------- #
class TestEventBus:
    def test_unknown_kind_rejected(self):
        bus = EventBus("exp", 3)
        with pytest.raises(AnalysisError, match="unknown event kind"):
            bus.emit("seed_exploded", seed=1)

    def test_queue_event_swallows_broken_queues(self):
        class Broken:
            def put_nowait(self, record):
                raise RuntimeError("proxy is gone")

        queue_event(None, "seed_started", "exp", seed=1)  # no queue: no-op
        queue_event(Broken(), "seed_started", "exp", seed=1)  # must not raise

    def test_drain_routes_worker_records(self):
        bus = EventBus("exp", 2)
        q = queue_module.Queue()
        queue_event(q, "seed_started", "exp", seed=7, attempt=1)
        queue_event(q, "seed_started", "exp", seed=8, attempt=1)
        q.put("not a record")  # ignored, not fatal
        bus.drain(q)
        bus.drain(None)  # no queue: no-op
        assert bus.done == 0  # seed_started is not terminal

    def test_counters_and_duration_histogram(self):
        bus = EventBus("exp", 4)
        bus.emit("seed_finished", seed=1, attempt=1, status="ok",
                 elapsed_s=0.2)
        bus.emit("seed_cached", seed=2, attempt=1, status="cached")
        bus.emit("seed_failed", seed=3, attempt=2, status="failed")
        bus.emit("seed_retried", seed=4, attempt=1)
        assert (bus.done, bus.failed, bus.cached, bus.retries) == (3, 1, 1, 1)
        assert bus.durations.count == 1  # only real computes feed the ETA

    def test_eta_scales_with_workers(self):
        serial = EventBus("exp", 10, workers=0)
        pooled = EventBus("exp", 10, workers=4)
        for bus in (serial, pooled):
            bus.emit("seed_finished", seed=0, attempt=1, status="ok",
                     elapsed_s=2.0)
        assert serial.eta_seconds() == pytest.approx(
            pooled.eta_seconds() * 4
        )
        done = EventBus("exp", 0)
        assert done.eta_seconds() == 0.0

    def test_log_lines_are_schema_valid(self, tmp_path):
        log = tmp_path / "events.jsonl"
        bus = EventBus("exp", 2, log_path=log)
        bus.emit("campaign_started", seeds=2, workers=0, engine="scalar")
        bus.emit("seed_finished", seed=0, attempt=1, status="ok",
                 elapsed_s=0.01)
        bus.finish()
        bus.close()
        assert validate_file(log, EVENTS_SCHEMA) == []
        kinds = [r["kind"] for r in _event_records(log)]
        assert kinds == ["campaign_started", "seed_finished",
                         "campaign_finished"]

    def test_finish_is_idempotent(self, tmp_path):
        log = tmp_path / "events.jsonl"
        bus = EventBus("exp", 1, log_path=log)
        bus.finish()
        bus.finish()  # the runner's finally calls it again on abort paths
        bus.close()
        assert [r["kind"] for r in _event_records(log)] == [
            "campaign_finished"
        ]

    def test_progress_line_renders_to_stream(self):
        stream = StringIO()
        bus = EventBus("exp", 3, progress=True, stream=stream)
        bus.emit("seed_finished", seed=0, attempt=1, status="ok",
                 elapsed_s=0.5)
        bus.emit("seed_failed", seed=1, attempt=1, status="failed")
        bus._paint(force=True)
        bus.close()
        text = stream.getvalue()
        assert "2/3 seeds" in text
        assert "1 failed" in text
        assert text.endswith("\n")  # closed with the cursor off the line

    def test_heartbeat_throttled(self):
        bus = EventBus("exp", 4)
        bus.heartbeat(in_flight=2)
        first = bus._last_heartbeat
        bus.heartbeat(in_flight=2)  # within the interval: dropped
        assert bus._last_heartbeat == first


class TestTailEvents:
    def _write_log(self, path: Path) -> None:
        bus = EventBus("exp", 2, log_path=path)
        bus.emit("campaign_started", seeds=2, workers=0, engine="scalar")
        bus.emit("seed_finished", seed=4, attempt=1, status="ok",
                 elapsed_s=0.25)
        bus.finish()
        bus.close()

    def test_prints_formatted_lines(self, tmp_path):
        log = tmp_path / "events.jsonl"
        self._write_log(log)
        out = StringIO()
        printed = tail_events(log, stream=out)
        assert printed == 3
        text = out.getvalue()
        assert "seed_finished" in text and "seed=4" in text
        assert "status=ok" in text and "0.250s" in text

    def test_kind_filter(self, tmp_path):
        log = tmp_path / "events.jsonl"
        self._write_log(log)
        out = StringIO()
        assert tail_events(log, kinds=("seed_finished",), stream=out) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="no event log"):
            tail_events(tmp_path / "absent.jsonl")

    def test_skips_torn_and_garbage_lines(self, tmp_path):
        log = tmp_path / "events.jsonl"
        self._write_log(log)
        with log.open("a") as handle:
            handle.write("{not json}\n")
            handle.write('{"kind": "heartbeat"')  # torn mid-append
        out = StringIO()
        assert tail_events(log, stream=out) == 3

    def test_follow_stops_at_campaign_finished(self, tmp_path):
        log = tmp_path / "events.jsonl"
        self._write_log(log)
        out = StringIO()
        # campaign_finished is already in the log, so follow terminates
        # without waiting for the timeout.
        printed = tail_events(log, follow=True, stream=out, poll_s=0.01,
                              timeout_s=5.0)
        assert printed == 3

    def test_format_event_tolerates_sparse_records(self):
        line = format_event({"kind": "heartbeat"})
        assert "heartbeat" in line and "--:--:--" in line


# --------------------------------------------------------------------- #
# Campaign integration: events on every execution path
# --------------------------------------------------------------------- #
class TestCampaignEvents:
    SEEDS = list(range(10, 16))

    def test_serial_event_stream_schema_valid(self, tmp_path):
        log = tmp_path / "events.jsonl"
        run_campaign(_failing_experiment, self.SEEDS, events=log)
        assert validate_file(log, EVENTS_SCHEMA) == []
        records = _event_records(log)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert kinds.count("seed_started") == len(self.SEEDS)
        assert kinds.count("seed_finished") == len(self.SEEDS) - 1
        assert kinds.count("seed_failed") == 1
        failed = next(r for r in records if r["kind"] == "seed_failed")
        assert failed["seed"] == _FAIL_SEED
        assert failed["status"] == "failed"
        finished = records[-1]
        assert finished["data"]["done"] == len(self.SEEDS)
        assert finished["data"]["failed"] == 1
        assert all(r["kind"] in EVENT_KINDS for r in records)

    def test_cached_seeds_emit_seed_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(_cheap_experiment, self.SEEDS, cache=cache,
                     experiment_name="evt")
        log = tmp_path / "events.jsonl"
        run_campaign(_cheap_experiment, self.SEEDS, cache=cache,
                     experiment_name="evt", events=log)
        records = _event_records(log)
        cached = [r for r in records if r["kind"] == "seed_cached"]
        assert sorted(r["seed"] for r in cached) == self.SEEDS
        assert all(r["status"] == "cached" for r in cached)

    def test_pool_workers_stream_seed_started(self, tmp_path):
        log = tmp_path / "events.jsonl"
        run_campaign(_cheap_experiment, self.SEEDS, workers=4, events=log)
        assert validate_file(log, EVENTS_SCHEMA) == []
        records = _event_records(log)
        started = [r for r in records if r["kind"] == "seed_started"]
        # Worker-side events carry the worker's pid, not the parent's.
        parent_pid = records[0]["pid"]
        assert sorted(r["seed"] for r in started) == self.SEEDS
        assert all(r["pid"] != parent_pid for r in started)
        finished = [r for r in records if r["kind"] == "seed_finished"]
        assert sorted(r["seed"] for r in finished) == self.SEEDS

    def test_vectorized_chunk_events(self, tmp_path):
        log = tmp_path / "events.jsonl"
        run_campaign(_cheap_experiment, self.SEEDS, engine="vectorized",
                     batch=_cheap_batch, batch_size=3, events=log)
        assert validate_file(log, EVENTS_SCHEMA) == []
        kinds = [r["kind"] for r in _event_records(log)]
        assert kinds.count("chunk_dispatched") == 2
        assert kinds.count("chunk_finished") == 2
        assert kinds.count("seed_finished") == len(self.SEEDS)

    def test_sharded_vectorized_chunk_events(self, tmp_path):
        log = tmp_path / "events.jsonl"
        run_campaign(_cheap_experiment, self.SEEDS, workers=2,
                     engine="vectorized", batch=_cheap_batch, batch_size=3,
                     events=log)
        assert validate_file(log, EVENTS_SCHEMA) == []
        kinds = [r["kind"] for r in _event_records(log)]
        assert kinds.count("chunk_dispatched") == 2
        assert kinds.count("chunk_finished") == 2
        assert kinds.count("seed_finished") == len(self.SEEDS)

    def test_retry_emits_seed_retried(self, tmp_path):
        inj = FaultInjector(
            {"mid_seed": [FaultSpec("crash", frozenset({self.SEEDS[0]}))]},
            tmp_path / "fault-state",
        )
        log = tmp_path / "events.jsonl"
        result = run_campaign(
            _cheap_experiment, self.SEEDS, workers=2,
            policy=FaultPolicy(max_retries=2, **FAST), injector=inj,
            events=log,
        )
        assert result.statuses[self.SEEDS[0]] == "retried"
        records = _event_records(log)
        retried = [r for r in records if r["kind"] == "seed_retried"]
        assert self.SEEDS[0] in {r["seed"] for r in retried}


# --------------------------------------------------------------------- #
# Passivity: the ISSUE's hard contract
# --------------------------------------------------------------------- #
class TestPassivity:
    SEEDS = list(range(30, 36))

    def _run(self, tmp_path, tag, workers, observed):
        cache = ResultCache(tmp_path / f"cache-{tag}")
        kwargs = {}
        if observed:
            kwargs = dict(events=tmp_path / f"ev-{tag}.jsonl",
                          blackbox_dir=tmp_path / f"bb-{tag}")
        result = run_campaign(
            _cheap_experiment, self.SEEDS, workers=workers, cache=cache,
            experiment_name="passivity", **kwargs,
        )
        return result, _cache_payloads(tmp_path / f"cache-{tag}")

    @pytest.mark.parametrize("workers", [0, 4])
    def test_results_and_cache_identical_on_vs_off(self, tmp_path, workers):
        on, cache_on = self._run(tmp_path, f"on{workers}", workers, True)
        off, cache_off = self._run(tmp_path, f"off{workers}", workers, False)
        assert _values(on) == _values(off)
        assert on.statuses == off.statuses
        assert on.attempts == off.attempts
        # Same fingerprints, same stored result payloads, byte for byte.
        assert cache_on == cache_off

    def test_flight_recorder_does_not_perturb_flight(self, tmp_path):
        """Recording reads state only: a recorded flight's trajectory is
        bit-identical to an unrecorded one."""
        off = _flight_experiment(30)
        with blackbox_session(tmp_path / "spool", experiment="x", seed=30):
            on = _flight_experiment(30)
        assert on == off


# --------------------------------------------------------------------- #
# Blackbox recorder
# --------------------------------------------------------------------- #
class TestBlackboxRecorder:
    def test_attaches_at_construction_only_when_active(self, tmp_path):
        vehicle = Vehicle(SimConfig(seed=0))
        assert vehicle.post_step_hooks == []  # off: zero per-step cost
        with blackbox_session(tmp_path / "spool", experiment="x",
                              seed=0) as session:
            recorded = Vehicle(SimConfig(seed=0))
            assert len(session.recorders) == 1
            assert len(recorded.post_step_hooks) == 1
        assert active_blackbox() is None  # restored on exit

    def test_ring_caps_at_capacity(self, tmp_path):
        with blackbox_session(tmp_path / "spool", experiment="x", seed=1,
                              capacity=16) as session:
            vehicle = Vehicle(SimConfig(seed=1))
            vehicle.arm()
            for _ in range(50):
                vehicle.step()
        recorder = session.recorders[0]
        assert recorder.steps_seen == 50
        assert len(recorder.frames) == 16
        assert recorder.frames[-1]["step"] == 50

    def test_frames_capture_flight_state(self, tmp_path):
        with blackbox_session(tmp_path / "spool", experiment="x",
                              seed=2) as session:
            vehicle = Vehicle(SimConfig(seed=2))
            vehicle.arm()
            for _ in range(5):
                vehicle.step()
        frame = session.recorders[0].frames[-1]
        assert len(frame["pos"]) == 3 and len(frame["quat"]) == 4
        assert len(frame["motors"]) == 4 and len(frame["targets"]) == 4
        assert frame["armed"] is True and frame["crashed"] is False
        assert frame["mode"] == "STABILIZE"
        assert frame["battery_v"] > 0

    def test_fleet_lanes_attach_one_recorder_each(self, tmp_path):
        with blackbox_session(tmp_path / "spool", experiment="x", seed=3,
                              label="chunk3") as session:
            fleet = VectorizedFleet(SimConfig(seed=3), seeds=[3, 4, 5])
            fleet.arm()
            for _ in range(5):
                fleet.step()
        assert len(session.recorders) == 3
        seeds = [rec.describe()["seed"] for rec in session.recorders]
        assert seeds == [3, 4, 5]
        assert all(rec.steps_seen == 5 for rec in session.recorders)

    def test_exception_exit_spools_with_reason(self, tmp_path):
        spool_dir = tmp_path / "spool"
        with pytest.raises(RuntimeError):
            with blackbox_session(spool_dir, experiment="x", seed=9):
                vehicle = Vehicle(SimConfig(seed=9))
                vehicle.arm()
                vehicle.step()
                raise RuntimeError("boom")
        spool = spool_dir / "seed9.attempt1.json"
        document = json.loads(spool.read_text())
        assert document["reason"] == "exception:RuntimeError"
        assert document["vehicles"][0]["frames"]

    def test_periodic_spool_is_step_deterministic(self, tmp_path):
        spool_dir = tmp_path / "spool"
        with blackbox_session(spool_dir, experiment="x", seed=5,
                              spool_every=10):
            vehicle = Vehicle(SimConfig(seed=5))
            vehicle.arm()
            for step in range(10):
                vehicle.step()
                if step < 9:
                    assert not (spool_dir / "seed5.attempt1.json").exists()
            assert (spool_dir / "seed5.attempt1.json").exists()


class TestPromotion:
    def _spool(self, tmp_path, seed, attempt, label=None):
        session = BlackboxSession(tmp_path / "spool", experiment="x",
                                  seed=seed, attempt=attempt, label=label)
        session.attach(Vehicle(SimConfig(seed=seed)))
        return session.spool()

    def test_terminal_failure_promotes_with_reason(self, tmp_path):
        self._spool(tmp_path, 7, 1)
        promoted = promote_spools(tmp_path, "seed7", "timeout",
                                  final_attempt=1)
        assert len(promoted) == 1
        assert promoted[0].name.startswith("bb_")
        assert load_blackbox(promoted[0])["reason"] == "timeout"
        assert not list((tmp_path / "spool").glob("*.json"))

    def test_clean_final_attempt_deleted_earlier_kept_as_crash(
        self, tmp_path
    ):
        self._spool(tmp_path, 7, 1)  # the crashed first attempt
        self._spool(tmp_path, 7, 2)  # the clean retry
        promoted = promote_spools(tmp_path, "seed7", None, final_attempt=2)
        assert len(promoted) == 1
        assert load_blackbox(promoted[0])["attempt"] == 1
        assert load_blackbox(promoted[0])["reason"] == "crash"
        assert not list((tmp_path / "spool").glob("*.json"))

    def test_unparseable_spool_discarded(self, tmp_path):
        spool_dir = tmp_path / "spool"
        spool_dir.mkdir(parents=True)
        (spool_dir / "seed8.attempt1.json").write_text("{torn")
        assert promote_spools(tmp_path, "seed8", "crash",
                              final_attempt=1) == []
        assert not list(spool_dir.glob("*.json"))

    def test_stub_artifact_is_schema_valid(self, tmp_path):
        path = write_stub_artifact(tmp_path, "exp", 3, 2, "timeout")
        assert validate_file(path, BLACKBOX_SCHEMA) == []
        document = load_blackbox(path)
        assert document["vehicles"] == []
        assert document["reason"] == "timeout"
        assert "died before any vehicle stepped" in summarize_blackbox(path)


# --------------------------------------------------------------------- #
# Campaign integration: every casualty leaves a blackbox
# --------------------------------------------------------------------- #
class TestCampaignBlackbox:
    SEEDS = list(range(10, 14))  # includes _FAIL_SEED

    def test_failed_flight_seed_leaves_schema_valid_artifact(
        self, tmp_path
    ):
        bb = tmp_path / "bb"
        result = run_campaign(_flight_experiment, self.SEEDS,
                              blackbox_dir=bb,
                              events=tmp_path / "events.jsonl")
        assert _FAIL_SEED in result.failures
        artifacts = sorted(bb.glob("bb_*.json"))
        assert len(artifacts) == 1
        assert validate_file(artifacts[0], BLACKBOX_SCHEMA) == []
        document = load_blackbox(artifacts[0])
        assert document["seed"] == _FAIL_SEED
        assert document["reason"] == "failed"
        assert document["vehicles"][0]["frames"]  # real flight data
        # Clean seeds leave neither artifacts nor spools behind.
        assert not list((bb / "spool").glob("*.json"))
        dumped = [r for r in _event_records(tmp_path / "events.jsonl")
                  if r["kind"] == "blackbox_dumped"]
        assert [r["seed"] for r in dumped] == [_FAIL_SEED]
        assert dumped[0]["data"]["path"] == str(artifacts[0])

    def test_worker_crash_after_flight_leaves_flight_data(self, tmp_path):
        """A mid_seed hard crash kills the worker *after* the session
        wrote its final spool: the retried seed succeeds, and the crashed
        attempt's flight data survives as a reason="crash" artifact."""
        crash_seed = self.SEEDS[1]
        inj = FaultInjector(
            {"mid_seed": [FaultSpec("crash", frozenset({crash_seed}))]},
            tmp_path / "fault-state",
        )
        bb = tmp_path / "bb"
        result = run_campaign(
            _flight_experiment, [s for s in self.SEEDS if s != _FAIL_SEED],
            workers=2, policy=FaultPolicy(max_retries=2, **FAST),
            injector=inj, blackbox_dir=bb,
        )
        assert result.statuses[crash_seed] == "retried"
        artifacts = sorted(bb.glob("bb_*.json"))
        assert len(artifacts) == 1
        document = load_blackbox(artifacts[0])
        assert validate_file(artifacts[0], BLACKBOX_SCHEMA) == []
        assert document["seed"] == crash_seed
        assert document["reason"] == "crash"
        assert document["attempt"] == 1
        assert document["vehicles"][0]["frames"]

    def test_timeout_without_flight_data_leaves_stub(self, tmp_path):
        """A seed hung at worker_start never builds a vehicle; when its
        retries exhaust, the terminal timeout still yields an artifact —
        the stub documents that the casualty predates any flight."""
        hang_seed = self.SEEDS[0]
        inj = FaultInjector(
            {"worker_start": [FaultSpec("hang", frozenset({hang_seed}),
                                        hang_s=30.0, times=5)]},
            tmp_path / "fault-state",
        )
        bb = tmp_path / "bb"
        result = run_campaign(
            _cheap_experiment, self.SEEDS, workers=2,
            policy=FaultPolicy(seed_timeout=0.5, max_retries=1, **FAST),
            injector=inj, blackbox_dir=bb,
        )
        assert result.statuses[hang_seed] == "timeout"
        artifacts = sorted(bb.glob("bb_*.json"))
        assert len(artifacts) == 1
        document = load_blackbox(artifacts[0])
        assert document["seed"] == hang_seed
        assert document["reason"] == "timeout"
        assert document["vehicles"] == []
        assert validate_file(artifacts[0], BLACKBOX_SCHEMA) == []


# --------------------------------------------------------------------- #
# CLI: obs tail / obs blackbox and the runner flags
# --------------------------------------------------------------------- #
class TestCli:
    def test_obs_tail(self, tmp_path, capsys):
        from repro.__main__ import main

        log = tmp_path / "events.jsonl"
        run_campaign(_cheap_experiment, [1, 2], events=log)
        assert main(["obs", "tail", str(log)]) == 0
        out = capsys.readouterr().out
        assert "campaign_started" in out and "campaign_finished" in out

    def test_obs_tail_kind_filter_and_missing(self, tmp_path, capsys):
        from repro.__main__ import main

        log = tmp_path / "events.jsonl"
        run_campaign(_cheap_experiment, [1, 2], events=log)
        assert main(["obs", "tail", str(log),
                     "--kinds", "seed_finished"]) == 0
        out = capsys.readouterr().out
        assert out.count("seed_finished") == 2
        assert "campaign_started" not in out
        assert main(["obs", "tail", str(tmp_path / "absent.jsonl")]) == 2

    def test_obs_blackbox_summary_and_export(self, tmp_path, capsys):
        from repro.__main__ import main

        bb = tmp_path / "bb"
        run_campaign(_flight_experiment, [11, _FAIL_SEED],
                     blackbox_dir=bb)
        artifact = next(iter(bb.glob("bb_*.json")))
        out_file = tmp_path / "export.json"
        assert main(["obs", "blackbox", str(artifact),
                     "--last", "5", "--export", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "reason failed" in out
        assert "5 of" in out  # --last trimmed the rendered window
        exported = json.loads(out_file.read_text())
        assert len(exported["vehicles"][0]["frames"]) == 5

    def test_obs_blackbox_rejects_garbage(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["obs", "blackbox", str(bad)]) == 2
        assert "not a blackbox artifact" in capsys.readouterr().err

    def test_runner_rejects_streaming_flags_for_non_campaigns(self):
        from repro.experiments.runner import run_experiment

        with pytest.raises(AnalysisError, match="--progress"):
            run_experiment("fig3", progress=True)
        with pytest.raises(AnalysisError, match="--events"):
            run_experiment("fig3", events="x.jsonl")

    def test_parser_accepts_streaming_flags(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["fig", "9", "--progress", "--events", "ev.jsonl",
             "--blackbox-dir", "bb"]
        )
        assert args.progress is True
        assert args.events == "ev.jsonl"
        assert args.blackbox_dir == "bb"
