"""Tests for the log schema (Table I) and the dataflash logger."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.firmware.log_defs import (
    LOG_MESSAGE_DEFS,
    TABLE1_ALV_COUNTS,
    total_alv_count,
)
from repro.firmware.logger import DataflashLogger


class TestLogSchema:
    def test_forty_message_types(self):
        assert len(LOG_MESSAGE_DEFS) == 40

    def test_total_alv_is_342(self):
        assert total_alv_count() == 342

    def test_counts_match_paper_table1(self):
        for name, definition in LOG_MESSAGE_DEFS.items():
            assert definition.num_fields == TABLE1_ALV_COUNTS[name], name

    def test_fig3_variables_present(self):
        att = LOG_MESSAGE_DEFS["ATT"].fields
        for field in ("DesR", "R", "IR", "IRErr", "tv"):
            assert field in att
        ekf1 = LOG_MESSAGE_DEFS["EKF1"].fields
        for field in ("VN", "VE", "VD", "dPD", "PN", "PE", "PD", "GX", "GY", "GZ"):
            assert field in ekf1

    def test_no_duplicate_fields_within_message(self):
        for name, definition in LOG_MESSAGE_DEFS.items():
            assert len(set(definition.fields)) == definition.num_fields, name


class TestDataflashLogger:
    def test_unknown_message_type_rejected(self):
        logger = DataflashLogger()
        with pytest.raises(ReproError):
            logger.write("ZZZZ", 0.0, {})

    def test_unknown_field_rejected(self):
        logger = DataflashLogger()
        with pytest.raises(ReproError):
            logger.write("BARO", 0.0, {"NotAField": 1.0})

    def test_missing_fields_default_zero(self):
        logger = DataflashLogger()
        logger.write("BARO", 0.0, {"Alt": 5.0})
        _, record = logger.records("BARO")[0]
        assert record["Alt"] == 5.0
        assert record["Press"] == 0.0

    def test_decimation(self):
        logger = DataflashLogger(log_rate_hz=10.0)
        stored = sum(
            logger.write("BARO", t, {"Alt": 1.0})
            for t in np.arange(0.0, 1.0, 0.0025)
        )
        assert stored == pytest.approx(10, abs=1)

    def test_force_bypasses_decimation(self):
        logger = DataflashLogger(log_rate_hz=1.0)
        assert logger.write("BARO", 0.0, {"Alt": 1.0})
        assert not logger.write("BARO", 0.01, {"Alt": 1.0})
        assert logger.write("BARO", 0.02, {"Alt": 1.0}, force=True)

    def test_timeus_stamped(self):
        logger = DataflashLogger()
        logger.write("BARO", 1.5, {"Alt": 1.0})
        _, record = logger.records("BARO")[0]
        assert record["TimeUS"] == pytest.approx(1.5e6)

    def test_field_extraction(self):
        logger = DataflashLogger(log_rate_hz=1000.0)
        for i in range(5):
            logger.write("BARO", i * 0.01, {"Alt": float(i)})
        np.testing.assert_allclose(logger.field("BARO", "Alt"), range(5))

    def test_field_unknown_raises(self):
        logger = DataflashLogger()
        with pytest.raises(ReproError):
            logger.field("BARO", "Nope")

    def test_trace_table_export(self):
        logger = DataflashLogger(log_rate_hz=1000.0)
        for i in range(4):
            t = i * 0.01
            logger.write("BARO", t, {"Alt": float(i)})
            logger.write("CTUN", t, {"Alt": float(i) * 2})
        table = logger.to_trace_table(["BARO.Alt", "CTUN.Alt"])
        assert table.columns == ["BARO.Alt", "CTUN.Alt"]
        np.testing.assert_allclose(table.column("CTUN.Alt"), [0, 2, 4, 6])

    def test_trace_table_bad_column_format(self):
        logger = DataflashLogger()
        with pytest.raises(ReproError):
            logger.to_trace_table(["JustAName"])

    def test_clear(self):
        logger = DataflashLogger()
        logger.write("BARO", 0.0, {"Alt": 1.0})
        logger.clear()
        assert logger.num_records("BARO") == 0
