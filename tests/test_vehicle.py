"""Tests for the Vehicle firmware assembly."""

import numpy as np
import pytest

from repro.exceptions import MemoryAccessViolation, MissionError
from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import NAV_REGION, STABILIZER_REGION
from tests.conftest import make_vehicle


class TestMemoryMap:
    def test_regions_exist(self, fast_vehicle):
        names = {r.name for r in fast_vehicle.memory.regions()}
        assert {STABILIZER_REGION, NAV_REGION, "FLASH", "SRAM_KERNEL", "SRAM_IO"} <= names

    def test_rate_pids_in_stabilizer_region(self, fast_vehicle):
        stab = fast_vehicle.memory.variable_names(STABILIZER_REGION)
        for pid in ("PIDR", "PIDP", "PIDY", "PIDA"):
            assert f"{pid}.INTEG" in stab

    def test_pid_intermediate_count_in_region(self, fast_vehicle):
        stab = fast_vehicle.memory.variable_names(STABILIZER_REGION)
        pid_vars = [v for v in stab if v.split(".")[0] in ("PIDR", "PIDP", "PIDY", "PIDA")]
        assert len(pid_vars) == 36  # Table II: 9 x 4 PIDs

    def test_nav_region_contents(self, fast_vehicle):
        nav = fast_vehicle.memory.variable_names(NAV_REGION)
        assert "SINS.KVEL" in nav
        assert "PSC_X_POS.ERR" in nav
        assert "EKF.ROLL" in nav

    def test_compromised_view_confined(self, fast_vehicle):
        view = fast_vehicle.compromised_view(STABILIZER_REGION)
        view.write("PIDR.INTEG", 0.2)
        assert fast_vehicle.attitude_ctrl.pid_roll.integrator == pytest.approx(0.2)
        with pytest.raises(MemoryAccessViolation):
            view.write("SINS.KVEL", 0.0)

    def test_memory_write_reaches_live_controller(self, fast_vehicle):
        view = fast_vehicle.compromised_view()
        view.write("PIDR.KP", 0.9)
        assert fast_vehicle.attitude_ctrl.pid_roll.gains.kp == pytest.approx(0.9)


class TestParameterWiring:
    def test_rate_gain_propagates(self, fast_vehicle):
        fast_vehicle.params.set("ATC_RAT_PIT_I", 0.2)
        assert fast_vehicle.attitude_ctrl.pid_pitch.gains.ki == pytest.approx(0.2)

    def test_angle_p_propagates(self, fast_vehicle):
        fast_vehicle.params.set("ATC_ANG_RLL_P", 6.0)
        assert fast_vehicle.attitude_ctrl.angle_p == 6.0

    def test_psc_gains_propagate(self, fast_vehicle):
        fast_vehicle.params.set("PSC_VELXY_P", 2.0)
        assert fast_vehicle.position_ctrl.axis_x.vel_ctrl.gains.kp == 2.0
        assert fast_vehicle.position_ctrl.axis_y.vel_ctrl.gains.kp == 2.0

    def test_angle_max_converts_to_radians(self, fast_vehicle):
        fast_vehicle.params.set("ANGLE_MAX", 30.0)
        assert fast_vehicle.position_ctrl.lean_angle_max == pytest.approx(
            np.deg2rad(30.0)
        )


class TestFlightBehaviour:
    def test_disarmed_vehicle_stays_put(self, fast_vehicle):
        for _ in range(200):
            fast_vehicle.step()
        assert fast_vehicle.sim.vehicle.state.altitude == pytest.approx(0.0, abs=1e-6)

    def test_takeoff_truth_state(self):
        v = make_vehicle(seed=3, fast=True)
        assert v.takeoff(6.0)
        assert v.sim.vehicle.state.altitude == pytest.approx(6.0, abs=0.5)

    def test_auto_requires_mission(self, fast_vehicle):
        with pytest.raises(MissionError):
            fast_vehicle.set_mode(FlightMode.AUTO)

    def test_mission_completes_truth_state(self):
        v = make_vehicle(seed=3, fast=True)
        status = v.fly_mission(line_mission(length=30.0, altitude=8.0, legs=1))
        assert status.name == "COMPLETE"
        assert not v.sim.vehicle.crashed

    def test_guided_holds_target(self):
        v = make_vehicle(seed=3, fast=True)
        v.takeoff(5.0)
        v.set_guided_target(5.0, 5.0, 5.0)
        v.run(15.0)
        pos = v.sim.vehicle.state.position
        np.testing.assert_allclose(pos, [5.0, 5.0, -5.0], atol=1.0)

    def test_land_descends(self):
        v = make_vehicle(seed=3, fast=True)
        v.takeoff(5.0)
        v.set_mode(FlightMode.LAND)
        v.run(20.0)
        assert v.sim.vehicle.state.altitude < 1.0

    def test_rtl_returns_home(self):
        v = make_vehicle(seed=3, fast=True)
        v.takeoff(5.0)
        v.set_guided_target(15.0, 0.0, 5.0)
        v.run(10.0)
        v.set_mode(FlightMode.RTL)
        v.run(20.0)
        pos = v.sim.vehicle.state.position
        assert abs(pos[0]) < 2.0 and abs(pos[1]) < 2.0


class TestHooks:
    def test_target_hook_overrides(self):
        v = make_vehicle(seed=3, fast=True)

        def force_roll(vehicle, targets):
            targets.roll = 0.1
            return targets

        v.target_hooks.append(force_roll)
        v.takeoff(5.0)
        v.run(3.0)
        assert v.sim.vehicle.state.euler[0] == pytest.approx(0.1, abs=0.05)

    def test_torque_hook_applies(self):
        v = make_vehicle(seed=3, fast=True)
        calls = []
        v.torque_hooks.append(lambda vv, tq: calls.append(1) or tq)
        v.takeoff(3.0)
        assert calls

    def test_pre_control_hook_runs_each_cycle(self, fast_vehicle):
        count = []
        fast_vehicle.pre_control_hooks.append(lambda v: count.append(1))
        for _ in range(10):
            fast_vehicle.step()
        assert len(count) == 10


class TestLogging:
    def test_logs_populated_during_flight(self, flown_vehicle):
        logger = flown_vehicle.logger
        for msg in ("ATT", "IMU", "EKF1", "PIDR", "RATE", "CTUN", "GPS", "AHR2"):
            assert logger.num_records(msg) > 10, msg

    def test_log_rate_is_decimated(self, flown_vehicle):
        records = flown_vehicle.logger.records("ATT")
        times = np.array([t for t, _ in records])
        intervals = np.diff(times)
        assert np.median(intervals) == pytest.approx(1.0 / 16.0, rel=0.1)

    def test_att_r_tracks_real_roll(self, flown_vehicle):
        # ATT.R is in degrees and bounded by the lean limit during cruise.
        rolls = flown_vehicle.logger.field("ATT", "R")
        assert np.abs(rolls).max() < 45.0
