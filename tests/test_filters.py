"""Tests for the discrete-time filters."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.filters import (
    DerivativeFilter,
    LowPassFilter,
    MovingAverage,
    NotchFilter,
    SecondOrderLowPass,
    alpha_from_cutoff,
)


class TestAlpha:
    def test_disabled_filter(self):
        assert alpha_from_cutoff(0.0, 0.01) == 1.0
        assert alpha_from_cutoff(-5.0, 0.01) == 1.0

    def test_bounds(self):
        for fc in (0.1, 1.0, 20.0, 200.0):
            a = alpha_from_cutoff(fc, 0.0025)
            assert 0.0 < a <= 1.0

    def test_monotonic_in_cutoff(self):
        alphas = [alpha_from_cutoff(fc, 0.01) for fc in (1.0, 5.0, 20.0)]
        assert alphas == sorted(alphas)

    def test_bad_dt_raises(self):
        with pytest.raises(ValueError):
            alpha_from_cutoff(10.0, 0.0)


class TestLowPassFilter:
    def test_first_sample_initialises(self):
        f = LowPassFilter(10.0, 0.01)
        assert f.update(5.0) == 5.0

    def test_converges_to_constant(self):
        f = LowPassFilter(10.0, 0.01)
        out = 0.0
        for _ in range(500):
            out = f.update(2.5)
        assert out == pytest.approx(2.5, abs=1e-6)

    def test_attenuates_steps(self):
        f = LowPassFilter(1.0, 0.01)
        f.update(0.0)
        assert abs(f.update(1.0)) < 0.1

    def test_vector_input(self):
        f = LowPassFilter(10.0, 0.01)
        f.update(np.zeros(3))
        out = f.update(np.ones(3))
        assert out.shape == (3,)
        assert np.all(out > 0.0) and np.all(out < 1.0)

    def test_reset(self):
        f = LowPassFilter(10.0, 0.01)
        f.update(3.0)
        f.reset()
        assert f.value is None
        assert f.update(7.0) == 7.0


class TestSecondOrderLowPass:
    def test_dc_gain_unity(self):
        f = SecondOrderLowPass(5.0, 400.0)
        out = 0.0
        for _ in range(4000):
            out = f.update(1.0)
        assert out == pytest.approx(1.0, abs=1e-3)

    def test_attenuates_high_frequency(self):
        f = SecondOrderLowPass(5.0, 400.0)
        # prime at steady state then drive at 100 Hz
        for _ in range(100):
            f.update(0.0)
        peaks = []
        for n in range(2000):
            out = f.update(math.sin(2 * math.pi * 100.0 * n / 400.0))
            if n > 1000:
                peaks.append(abs(out))
        assert max(peaks) < 0.05

    def test_cutoff_above_nyquist_raises(self):
        with pytest.raises(ValueError):
            SecondOrderLowPass(300.0, 400.0)

    def test_negative_cutoff_raises(self):
        with pytest.raises(ValueError):
            SecondOrderLowPass(-1.0, 400.0)


class TestDerivativeFilter:
    def test_first_sample_zero(self):
        d = DerivativeFilter(20.0, 0.01)
        assert d.update(3.0) == 0.0

    def test_ramp_derivative(self):
        d = DerivativeFilter(100.0, 0.01)
        out = 0.0
        for n in range(300):
            out = d.update(2.0 * n * 0.01)  # slope 2
        assert out == pytest.approx(2.0, rel=0.05)

    def test_reset(self):
        d = DerivativeFilter(20.0, 0.01)
        d.update(1.0)
        d.update(2.0)
        d.reset()
        assert d.value == 0.0
        assert d.update(10.0) == 0.0


class TestNotchFilter:
    def test_passes_dc(self):
        f = NotchFilter(80.0, 400.0, 20.0)
        out = 0.0
        for _ in range(2000):
            out = f.update(1.0)
        assert out == pytest.approx(1.0, abs=1e-2)

    def test_attenuates_center(self):
        f = NotchFilter(80.0, 400.0, 20.0)
        outputs = []
        for n in range(4000):
            out = f.update(math.sin(2 * math.pi * 80.0 * n / 400.0))
            if n > 2000:
                outputs.append(abs(out))
        assert max(outputs) < 0.1

    def test_center_above_nyquist_raises(self):
        with pytest.raises(ValueError):
            NotchFilter(250.0, 400.0, 10.0)


class TestMovingAverage:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            MovingAverage(0)

    def test_partial_window(self):
        m = MovingAverage(4)
        assert m.update(2.0) == 2.0
        assert m.update(4.0) == 3.0
        assert not m.full

    def test_full_window_evicts(self):
        m = MovingAverage(3)
        for v in (1.0, 2.0, 3.0):
            m.update(v)
        assert m.full
        assert m.update(4.0) == pytest.approx(3.0)  # (2+3+4)/3

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_matches_numpy(self, values):
        window = 5
        m = MovingAverage(window)
        for v in values:
            m.update(v)
        expected = float(np.mean(values[-window:]))
        assert m.value == pytest.approx(expected, rel=1e-9, abs=1e-6)

    def test_reset(self):
        m = MovingAverage(3)
        m.update(9.0)
        m.reset()
        assert len(m) == 0
        assert m.value == 0.0
