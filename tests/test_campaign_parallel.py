"""Determinism and caching guarantees of the parallel campaign runner.

The whole point of ``run_campaign(workers=N, cache=...)`` is that the
execution mode must never change the science: serial, process-pool and
cache-warm runs have to produce bit-identical metric values in identical
seed order. These tests pin that contract, plus the acceptance criterion
that a cache-warm invocation executes zero experiment callables.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.experiments.cache import (
    ResultCache,
    cached_call,
    decode_result,
    default_cache,
    encode_result,
    fingerprint_params,
)
from repro.experiments.campaign import run_campaign

# Module-level experiments so ProcessPoolExecutor can pickle them.

def _metric_experiment(seed: int) -> dict[str, float]:
    """Deterministic pseudo-random metrics, different per seed."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=32)
    return {
        "deviation": float(values.sum()),
        "max_roll": float(np.abs(values).max()),
        "detected": float(seed % 2),
    }


def _flaky_experiment(seed: int) -> dict[str, float]:
    if seed % 3 == 0:
        raise RuntimeError(f"boom {seed}")
    return {"x": float(seed)}


_CALLS: list[int] = []


def _counting_experiment(seed: int) -> dict[str, float]:
    _CALLS.append(seed)
    return _metric_experiment(seed)


def _knobby_entry(scale: float = 1.0, workers: int = 0, cache=None):
    """A fake whole-experiment entry point taking both execution knobs."""
    _CALLS.append(int(scale))
    return {
        "scale": scale,
        "workers": workers,
        "cache_enabled": None if cache is None else bool(cache.enabled),
    }


def _knobbed_experiment(seed: int, workers: int = 0) -> dict[str, float]:
    _CALLS.append(seed)
    return {"x": float(seed)}


def _values(result) -> dict[str, list[float]]:
    return {name: list(m.values) for name, m in result.metrics.items()}


class TestDeterminism:
    SEEDS = list(range(10, 18))

    def test_parallel_identical_to_serial(self):
        serial = run_campaign(_metric_experiment, self.SEEDS)
        parallel = run_campaign(_metric_experiment, self.SEEDS, workers=4)
        # Bit-identical values, identical metric key order, same seeds.
        assert _values(parallel) == _values(serial)
        assert list(parallel.metrics) == list(serial.metrics)
        assert parallel.seeds == serial.seeds == self.SEEDS

    def test_cache_warm_identical_to_serial(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        serial = run_campaign(_metric_experiment, self.SEEDS)
        cold = run_campaign(
            _metric_experiment, self.SEEDS, cache=cache,
            experiment_name="det", params={"n": 32},
        )
        warm = run_campaign(
            _metric_experiment, self.SEEDS, cache=cache,
            experiment_name="det", params={"n": 32},
        )
        assert _values(cold) == _values(warm) == _values(serial)
        assert not cold.cached_seeds
        assert warm.cached_seeds == self.SEEDS

    def test_cache_warm_executes_zero_callables(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _CALLS.clear()
        run_campaign(_counting_experiment, self.SEEDS, cache=cache,
                     experiment_name="count", params=None)
        assert sorted(_CALLS) == self.SEEDS
        _CALLS.clear()
        warm = run_campaign(_counting_experiment, self.SEEDS, cache=cache,
                            experiment_name="count", params=None)
        assert _CALLS == []  # zero experiment callables executed
        assert warm.cached_seeds == self.SEEDS

    def test_parallel_fills_only_missing_seeds(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        head = self.SEEDS[:4]
        run_campaign(_metric_experiment, head, cache=cache,
                     experiment_name="mixed", params="p")
        mixed = run_campaign(_metric_experiment, self.SEEDS, workers=4,
                             cache=cache, experiment_name="mixed", params="p")
        assert mixed.cached_seeds == head
        assert _values(mixed) == _values(run_campaign(_metric_experiment,
                                                      self.SEEDS))

    def test_different_params_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(_metric_experiment, [1], cache=cache,
                     experiment_name="p", params={"rate": 1.0})
        other = run_campaign(_metric_experiment, [1], cache=cache,
                             experiment_name="p", params={"rate": 2.0})
        assert not other.cached_seeds

    def test_failures_identical_across_modes(self):
        serial = run_campaign(_flaky_experiment, range(7))
        parallel = run_campaign(_flaky_experiment, range(7), workers=4)
        assert parallel.failures.keys() == serial.failures.keys() == {0, 3, 6}
        assert _values(parallel) == _values(serial)

    def test_raise_on_failure_parallel_raises_original_type(self):
        with pytest.raises(RuntimeError, match="boom 0"):
            run_campaign(_flaky_experiment, range(7), workers=4,
                         raise_on_failure=True)

    def test_timing_recorded(self):
        result = run_campaign(_metric_experiment, self.SEEDS[:3])
        assert sorted(result.timings) == self.SEEDS[:3]
        assert result.total_seconds > 0.0
        assert result.compute_seconds >= 0.0
        assert result.seeds_per_second > 0.0
        assert "seeds/s" in result.render()


class TestCacheCodec:
    """The JSON codec must round-trip the experiment result shapes."""

    def test_roundtrip_nested_structures(self):
        from repro.experiments.campaign import CampaignResult, MetricSummary
        from repro.firmware.modes import FlightMode

        original = {
            "arr": np.linspace(0.0, 1.0, 7),
            "ints": np.arange(4),
            "tup": (1, "two", 3.0),
            "float_keys": {0.5: (0.1, 0.2), 2.0: (0.3, 0.4)},
            "enum": FlightMode.AUTO,
            "campaign": CampaignResult(
                metrics={"m": MetricSummary(name="m", values=[1.0, 2.0])},
                seeds=[1, 2], failures={3: "boom"},
                timings={1: 0.5}, cached_seeds=[2], total_seconds=1.25,
            ),
            "special": [float("nan"), float("inf"), -0.0],
        }
        decoded = decode_result(json.loads(json.dumps(
            encode_result(original), allow_nan=True
        )))
        assert isinstance(decoded["arr"], np.ndarray)
        np.testing.assert_array_equal(decoded["arr"], original["arr"])
        assert decoded["ints"].dtype == original["ints"].dtype
        assert decoded["tup"] == (1, "two", 3.0)
        assert decoded["float_keys"][0.5] == (0.1, 0.2)
        assert decoded["enum"] is FlightMode.AUTO
        campaign = decoded["campaign"]
        assert campaign.metric("m").values == [1.0, 2.0]
        assert campaign.failures == {3: "boom"}
        assert campaign.cached_seeds == [2]
        assert np.isnan(decoded["special"][0])
        assert decoded["special"][1] == float("inf")

    def test_decode_refuses_foreign_types(self):
        record = {"__dataclass__": "subprocess.Popen", "fields": {}}
        with pytest.raises(AnalysisError):
            decode_result(record)

    def test_fingerprint_stability_and_sensitivity(self):
        a = fingerprint_params({"x": 1.0, "y": [1, 2, (3, 4)]})
        b = fingerprint_params({"y": [1, 2, (3, 4)], "x": 1.0})
        assert a == b  # key order irrelevant
        assert a != fingerprint_params({"x": 1.0, "y": [1, 2, [3, 4]]})
        assert a != fingerprint_params({"x": 1.0 + 1e-12, "y": [1, 2, (3, 4)]})

    def test_mission_params_fingerprint(self):
        from repro.firmware.mission import line_mission

        a = fingerprint_params(line_mission(length=45.0, altitude=10.0, legs=1))
        b = fingerprint_params(line_mission(length=45.0, altitude=10.0, legs=1))
        c = fingerprint_params(line_mission(length=46.0, altitude=10.0, legs=1))
        assert a == b
        assert a != c


class TestCachedCall:
    def test_second_call_decodes_instead_of_computing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _CALLS.clear()
        first = cached_call(_counting_experiment, 5, experiment="one-shot",
                            cache=cache)
        second = cached_call(_counting_experiment, 5, experiment="one-shot",
                             cache=cache)
        assert _CALLS == [5]
        assert second == first
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_execution_knobs_excluded_from_fingerprint(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _CALLS.clear()
        cached_call(_knobbed_experiment, 5, experiment="knobs", cache=cache,
                    workers=0)
        hit = cached_call(_knobbed_experiment, 5, experiment="knobs",
                          cache=cache, workers=3)
        assert _CALLS == [5]  # workers changed, fingerprint did not
        assert hit == {"x": 5.0}

    def test_disabled_cache_always_computes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cache = default_cache()
        assert not cache.enabled
        _CALLS.clear()
        cached_call(_counting_experiment, 5, experiment="off", cache=cache)
        cached_call(_counting_experiment, 5, experiment="off", cache=cache)
        assert _CALLS == [5, 5]
        assert not (tmp_path / "cache").exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cached_call(_counting_experiment, 1, experiment="a", cache=cache)
        cached_call(_counting_experiment, 2, experiment="b", cache=cache)
        assert cache.clear("a") == 1
        assert cache.clear() == 1


def _hammer_writer(cache_dir: str, worker: int, rounds: int) -> int:
    """One hammer process: repeated puts, all colliding on shared slots."""
    cache = ResultCache(cache_dir)
    for i in range(rounds):
        fingerprint = f"slot{i % 4:064d}"
        cache.put("hammer", fingerprint,
                  {"worker": float(worker), "round": float(i)},
                  elapsed_s=0.001)
    return worker


class TestCacheAtomicWrite:
    """put() under concurrent writers: no torn records, no temp litter."""

    def test_tmp_names_are_collision_proof(self, tmp_path):
        from repro.experiments.cache import _tmp_path_for

        target = tmp_path / "deadbeef.json"
        names = {_tmp_path_for(target).name for _ in range(64)}
        assert len(names) == 64  # same pid, still unique per call

    def test_concurrent_writer_hammer(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        cache_dir = tmp_path / "cache"
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_hammer_writer, str(cache_dir), worker, 25)
                for worker in range(4)
            ]
            assert sorted(f.result() for f in futures) == [0, 1, 2, 3]
        # Every surviving record decodes cleanly (last writer won, no
        # interleaved/torn content) and no in-flight temp files remain.
        cache = ResultCache(cache_dir)
        records = sorted((cache_dir / "hammer").glob("*.json"))
        assert len(records) == 4
        for path in records:
            entry = cache.get("hammer", path.stem)
            assert entry is not None, path
            assert set(entry.result) == {"worker", "round"}
        assert cache.stats.evictions == 0
        litter = [p for p in (cache_dir / "hammer").iterdir()
                  if ".tmp." in p.name]
        assert litter == []

    def test_stale_tmp_files_are_swept_on_put(self, tmp_path):
        import os as _os

        cache = ResultCache(tmp_path / "cache")
        cache.put("sweep", "a" * 64, {"x": 1.0})
        directory = tmp_path / "cache" / "sweep"
        stale = directory / ("b" * 64 + ".json.tmp.dead-crashed")
        stale.write_text("{torn")
        _os.utime(stale, (1.0, 1.0))  # ancient mtime: a crashed writer
        fresh = directory / ("c" * 64 + ".json.tmp.1234-live")
        fresh.write_text("{in-flight")
        cache.put("sweep", "d" * 64, {"y": 2.0})
        assert not stale.exists()
        assert fresh.exists()  # young temp files belong to live writers

    def test_failed_write_leaves_no_tmp_behind(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.experiments.cache.os.replace", explode)
        with pytest.raises(OSError, match="disk full"):
            cache.put("boom", "e" * 64, {"x": 1.0})
        directory = tmp_path / "cache" / "boom"
        assert [p.name for p in directory.iterdir()] == []


class TestBenchWiring:
    """A cache-warm bench invocation must execute zero experiment
    callables — proven with a counting stub through the actual bench
    ``run_once`` helper."""

    @staticmethod
    def _load_bench_conftest():
        path = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "conftest.py")
        spec = importlib.util.spec_from_file_location("bench_conftest", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    class _FakeBenchmark:
        """Minimal stand-in for pytest-benchmark's fixture."""

        def __init__(self):
            self.extra_info = {}

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    def test_bench_run_once_is_cache_warm_on_second_invocation(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "bench-cache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        bench_conftest = self._load_bench_conftest()
        _CALLS.clear()
        first = bench_conftest.run_once(
            self._FakeBenchmark(), _counting_experiment, 7,
            experiment="stub-bench",
        )
        assert _CALLS == [7]
        second = bench_conftest.run_once(
            self._FakeBenchmark(), _counting_experiment, 7,
            experiment="stub-bench",
        )
        assert _CALLS == [7]  # zero additional experiment callables
        assert second == first

    def test_bench_run_once_uncached_without_experiment_name(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "bench-cache"))
        bench_conftest = self._load_bench_conftest()
        _CALLS.clear()
        bench_conftest.run_once(self._FakeBenchmark(), _counting_experiment, 7)
        bench_conftest.run_once(self._FakeBenchmark(), _counting_experiment, 7)
        assert _CALLS == [7, 7]


class TestRunExperiment:
    """The named front door must forward the execution knobs correctly.

    Regression: entry points whose signature accepts ``cache`` (e.g.
    ``run_fig9``) used to collide with ``cached_call``'s own ``cache``
    parameter, so every ``python -m repro fig 9`` invocation raised
    TypeError before any experiment ran.
    """

    def test_entry_accepting_knobs_receives_them(self, tmp_path, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setitem(runner.EXPERIMENTS, "knobby", _knobby_entry)
        cache = ResultCache(cache_dir=tmp_path / "cache", enabled=True)
        _CALLS.clear()
        result = runner.run_experiment("knobby", cache=cache, workers=3,
                                       scale=2.0)
        assert result == {"scale": 2.0, "workers": 3, "cache_enabled": True}
        assert _CALLS == [2]

    def test_knobs_stay_out_of_the_experiment_fingerprint(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments import runner

        monkeypatch.setitem(runner.EXPERIMENTS, "knobby", _knobby_entry)
        cache = ResultCache(cache_dir=tmp_path / "cache", enabled=True)
        _CALLS.clear()
        first = runner.run_experiment("knobby", cache=cache, workers=3,
                                      scale=2.0)
        # Different workers, same science parameters: must be a cache hit
        # that replays the stored result without calling the entry again.
        second = runner.run_experiment("knobby", cache=cache, workers=5,
                                       scale=2.0)
        assert _CALLS == [2]
        assert second == first


# --------------------------------------------------------------------- #
# engine="vectorized": batched execution must never change the science
# --------------------------------------------------------------------- #

_BATCH_CALLS: list[list[int]] = []


def _batch_all(seeds: list[int]) -> dict[int, dict[str, float]]:
    """A batch callable that handles every seed (values match the scalar
    experiment bit-for-bit because it calls the same function)."""
    return {seed: _metric_experiment(seed) for seed in seeds}


def _batch_counting(seeds: list[int]) -> dict[int, dict[str, float]]:
    _BATCH_CALLS.append(list(seeds))
    return _batch_all(seeds)


def _batch_even_only(seeds: list[int]) -> dict[int, dict[str, float]]:
    """A batch callable that can only vectorize even seeds — the odd ones
    must fall back to the scalar engine per seed."""
    return {seed: _metric_experiment(seed) for seed in seeds if seed % 2 == 0}


def _batch_exploding(seeds: list[int]) -> dict[int, dict[str, float]]:
    raise RuntimeError("no SIMD today")


class TestVectorizedEngine:
    SEEDS = list(range(10, 18))

    def test_vectorized_identical_to_serial_and_parallel(self):
        serial = run_campaign(_metric_experiment, self.SEEDS)
        parallel = run_campaign(_metric_experiment, self.SEEDS, workers=4)
        vectorized = run_campaign(_metric_experiment, self.SEEDS,
                                  engine="vectorized", batch=_batch_all)
        assert _values(vectorized) == _values(parallel) == _values(serial)
        assert vectorized.seeds == serial.seeds == self.SEEDS
        assert vectorized.vectorized_seeds == self.SEEDS
        assert not vectorized.fallback_seeds
        assert set(vectorized.statuses.values()) == {"vectorized"}
        assert "vectorized" in vectorized.render()

    def test_unknown_engine_rejected(self):
        with pytest.raises(AnalysisError, match="unknown campaign engine"):
            run_campaign(_metric_experiment, [1], engine="simd")
        with pytest.raises(AnalysisError, match="batch_size"):
            run_campaign(_metric_experiment, [1], engine="vectorized",
                         batch=_batch_all, batch_size=0)

    def test_chunking_respects_batch_size(self):
        _BATCH_CALLS.clear()
        run_campaign(_metric_experiment, self.SEEDS, engine="vectorized",
                     batch=_batch_counting, batch_size=3)
        assert [len(chunk) for chunk in _BATCH_CALLS] == [3, 3, 2]
        assert [s for chunk in _BATCH_CALLS for s in chunk] == self.SEEDS

    def test_partial_batch_falls_back_per_seed(self):
        serial = run_campaign(_metric_experiment, self.SEEDS)
        mixed = run_campaign(_metric_experiment, self.SEEDS,
                             engine="vectorized", batch=_batch_even_only)
        assert _values(mixed) == _values(serial)
        assert mixed.seeds == self.SEEDS
        evens = [s for s in self.SEEDS if s % 2 == 0]
        odds = [s for s in self.SEEDS if s % 2 == 1]
        assert mixed.vectorized_seeds == evens
        assert mixed.fallback_seeds == odds
        for seed in evens:
            assert mixed.statuses[seed] == "vectorized"
        for seed in odds:
            assert mixed.statuses[seed] == "fallback"

    def test_raising_batch_falls_back_whole_chunks(self):
        serial = run_campaign(_metric_experiment, self.SEEDS)
        fallen = run_campaign(_metric_experiment, self.SEEDS,
                              engine="vectorized", batch=_batch_exploding,
                              batch_size=4)
        assert _values(fallen) == _values(serial)
        assert fallen.fallback_seeds == self.SEEDS
        assert not fallen.vectorized_seeds

    def test_engine_without_batch_runs_scalar(self):
        """vectorized without a batch callable (experiment has no batched
        implementation) silently behaves exactly like the scalar engine."""
        serial = run_campaign(_metric_experiment, self.SEEDS)
        result = run_campaign(_metric_experiment, self.SEEDS,
                              engine="vectorized", batch=None)
        assert _values(result) == _values(serial)
        assert not result.vectorized_seeds and not result.fallback_seeds

    def test_vectorized_run_populates_cache_for_scalar(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _CALLS.clear()
        cold = run_campaign(_counting_experiment, self.SEEDS,
                            engine="vectorized", batch=_batch_all,
                            cache=cache, experiment_name="xhit", params={"p": 1})
        assert _CALLS == []  # every seed batched; scalar callable never ran
        assert cold.vectorized_seeds == self.SEEDS
        warm = run_campaign(_counting_experiment, self.SEEDS, cache=cache,
                            experiment_name="xhit", params={"p": 1})
        assert _CALLS == []  # scalar engine fully served by the cache
        assert warm.cached_seeds == self.SEEDS
        assert _values(warm) == _values(cold)

    def test_scalar_run_populates_cache_for_vectorized(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_campaign(_metric_experiment, self.SEEDS, cache=cache,
                            experiment_name="xhit2", params=None)
        _BATCH_CALLS.clear()
        warm = run_campaign(_metric_experiment, self.SEEDS,
                            engine="vectorized", batch=_batch_counting,
                            cache=cache, experiment_name="xhit2", params=None)
        assert _BATCH_CALLS == []  # nothing left for the batch to compute
        assert warm.cached_seeds == self.SEEDS
        assert _values(warm) == _values(cold)

    def test_manifest_records_vectorized_and_fallback_statuses(self, tmp_path):
        from repro.obs.schema import validate_file

        manifest = tmp_path / "manifest.jsonl"
        run_campaign(_metric_experiment, self.SEEDS, engine="vectorized",
                     batch=_batch_even_only, manifest=manifest)
        schema = (Path(__file__).resolve().parent.parent
                  / "schemas" / "manifest.schema.json")
        assert validate_file(manifest, schema) == []
        statuses = {}
        for line in manifest.read_text().splitlines():
            record = json.loads(line)
            statuses[record["seed"]] = record["status"]
        for seed in self.SEEDS:
            expected = "vectorized" if seed % 2 == 0 else "fallback"
            assert statuses[seed] == expected


class TestShardedVectorized:
    """engine="vectorized" × workers>1: whole chunks ship to pool workers.

    The composed mode must stay bit-identical to every other mode, keep
    the per-seed statuses/fallbacks of the serial vectorized engine, and
    requeue an entire chunk when its worker dies mid-fleet.
    """

    SEEDS = list(range(10, 18))

    def test_sharded_identical_to_all_other_modes(self):
        serial = run_campaign(_metric_experiment, self.SEEDS)
        vec_serial = run_campaign(_metric_experiment, self.SEEDS,
                                  engine="vectorized", batch=_batch_all,
                                  batch_size=3)
        sharded = run_campaign(_metric_experiment, self.SEEDS,
                               engine="vectorized", batch=_batch_all,
                               batch_size=3, workers=4)
        assert _values(sharded) == _values(vec_serial) == _values(serial)
        assert sharded.seeds == self.SEEDS
        assert sharded.vectorized_seeds == self.SEEDS
        assert not sharded.fallback_seeds
        assert sharded.batch_size_used == 3

    def test_sharded_chunks_respect_batch_size(self):
        _BATCH_CALLS.clear()
        run_campaign(_metric_experiment, self.SEEDS, engine="vectorized",
                     batch=_batch_counting, batch_size=3, workers=2)
        # Pool workers append to their own copy of the list; the parent
        # list stays empty — which is itself the proof the batches ran
        # out-of-process.
        assert _BATCH_CALLS == []

    def test_sharded_partial_batch_falls_back_per_seed(self):
        serial = run_campaign(_metric_experiment, self.SEEDS)
        mixed = run_campaign(_metric_experiment, self.SEEDS,
                             engine="vectorized", batch=_batch_even_only,
                             batch_size=3, workers=2)
        assert _values(mixed) == _values(serial)
        assert mixed.vectorized_seeds == [s for s in self.SEEDS if s % 2 == 0]
        assert mixed.fallback_seeds == [s for s in self.SEEDS if s % 2 == 1]

    def test_sharded_raising_batch_falls_back_whole_chunks(self):
        serial = run_campaign(_metric_experiment, self.SEEDS)
        fallen = run_campaign(_metric_experiment, self.SEEDS,
                              engine="vectorized", batch=_batch_exploding,
                              batch_size=3, workers=2)
        assert _values(fallen) == _values(serial)
        assert fallen.fallback_seeds == self.SEEDS
        assert not fallen.vectorized_seeds

    def test_worker_crash_requeues_whole_chunk(self, tmp_path):
        """An injected worker crash (os._exit mid-fleet) takes its whole
        chunk down; the supervisor requeues the chunk and the retry —
        pure function of the seeds — is bit-identical to a clean run."""
        from repro.experiments.faults import (
            FaultInjector, FaultPolicy, FaultSpec,
        )

        serial = run_campaign(_metric_experiment, self.SEEDS)
        injector = FaultInjector(
            {"worker_start": (FaultSpec(action="crash", seeds=frozenset({12}),
                                        times=1),)},
            state_dir=tmp_path / "faults",
        )
        sharded = run_campaign(
            _metric_experiment, self.SEEDS, engine="vectorized",
            batch=_batch_all, batch_size=3, workers=2,
            policy=FaultPolicy(max_retries=2), injector=injector,
        )
        assert _values(sharded) == _values(serial)
        assert sharded.vectorized_seeds == self.SEEDS
        # Chunks are seed-ordered, so seed 12's crash cost its whole
        # chunk [10, 11, 12] a second attempt; the others sailed through.
        for seed in (10, 11, 12):
            assert sharded.attempts[seed] == 2, seed
        for seed in (13, 14, 15, 16, 17):
            assert sharded.attempts[seed] == 1, seed

    def test_crash_retries_exhausted_falls_back_scalar(self, tmp_path):
        """A chunk whose worker dies on every attempt (times > retries)
        falls back to the scalar engine instead of failing the seeds."""
        from repro.experiments.faults import (
            FaultInjector, FaultPolicy, FaultSpec,
        )

        serial = run_campaign(_metric_experiment, self.SEEDS)
        # times=2 covers the chunk's first attempt and its single retry,
        # so the scalar fallback (which fires the same chaos point) runs
        # with the fault budget already spent.
        injector = FaultInjector(
            {"worker_start": (FaultSpec(action="crash", seeds=frozenset({12}),
                                        times=2),)},
            state_dir=tmp_path / "faults",
        )
        sharded = run_campaign(
            _metric_experiment, self.SEEDS, engine="vectorized",
            batch=_batch_all, batch_size=3, workers=2,
            policy=FaultPolicy(max_retries=1), injector=injector,
        )
        assert _values(sharded) == _values(serial)
        assert set(sharded.fallback_seeds) == {10, 11, 12}
        assert sharded.vectorized_seeds == [13, 14, 15, 16, 17]

    def test_resume_mid_shard_recomputes_only_missing(self, tmp_path):
        """Resuming a partially sharded campaign adopts finished seeds
        from the manifest and offers only the remainder to the batch."""
        manifest = tmp_path / "manifest.jsonl"
        first = run_campaign(_metric_experiment, self.SEEDS[:5],
                             engine="vectorized", batch=_batch_all,
                             batch_size=2, workers=2, manifest=manifest)
        assert first.vectorized_seeds == self.SEEDS[:5]
        resumed = run_campaign(_metric_experiment, self.SEEDS,
                               engine="vectorized", batch=_batch_all,
                               batch_size=2, workers=2, manifest=manifest,
                               resume=True)
        assert resumed.resumed_seeds == self.SEEDS[:5]
        assert resumed.vectorized_seeds == self.SEEDS[5:]
        serial = run_campaign(_metric_experiment, self.SEEDS)
        assert _values(resumed) == _values(serial)


class TestAutoBatchSize:
    SEEDS = list(range(10, 18))

    def test_auto_resolves_to_one_chunk_per_worker(self, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        result = run_campaign(_metric_experiment, self.SEEDS,
                              engine="vectorized", batch=_batch_all,
                              batch_size="auto", workers=2,
                              manifest=manifest)
        assert result.batch_size_used == 4  # ceil(8 seeds / 2 workers)
        assert result.vectorized_seeds == self.SEEDS
        meta = [json.loads(line)
                for line in manifest.read_text().splitlines()]
        widths = [r for r in meta if r["status"] == "batch_size"]
        assert len(widths) == 1
        assert widths[0]["seed"] == -1
        assert widths[0]["metrics"] == {"batch_size": 4.0}

    def test_auto_manifest_stays_schema_valid_and_resumable(self, tmp_path):
        from repro.obs.schema import validate_file

        manifest = tmp_path / "manifest.jsonl"
        run_campaign(_metric_experiment, self.SEEDS, engine="vectorized",
                     batch=_batch_all, batch_size="auto", workers=2,
                     manifest=manifest)
        schema = (Path(__file__).resolve().parent.parent
                  / "schemas" / "manifest.schema.json")
        assert validate_file(manifest, schema) == []
        resumed = run_campaign(_metric_experiment, self.SEEDS,
                               engine="vectorized", batch=_batch_all,
                               batch_size="auto", workers=2,
                               manifest=manifest, resume=True)
        # The meta record must never be adopted as a seed result.
        assert resumed.resumed_seeds == self.SEEDS
        assert -1 not in resumed.statuses

    def test_auto_serial_uses_bounded_width(self):
        result = run_campaign(_metric_experiment, self.SEEDS,
                              engine="vectorized", batch=_batch_all,
                              batch_size="auto")
        assert result.batch_size_used == 8  # whole set, one fleet
        assert result.vectorized_seeds == self.SEEDS

    def test_bad_batch_size_rejected(self):
        with pytest.raises(AnalysisError, match="batch_size"):
            run_campaign(_metric_experiment, [1], engine="vectorized",
                         batch=_batch_all, batch_size="wide")


# --------------------------------------------------------------------- #
# Real-simulation fallback: fault-scheduled seeds are not batchable
# --------------------------------------------------------------------- #

_MIX_SEEDS = [30, 31, 32, 33]
_MIX_FAULTY = {31, 33}


def _mix_schedule():
    from repro.faults.schedule import FaultSchedule

    return FaultSchedule.single("imu_noise_burst", intensity=0.5, start=1.0)


def _mix_metrics(sim_vehicle) -> dict[str, float]:
    state = sim_vehicle.state
    return {
        "alt": float(state.altitude),
        "roll": float(state.euler[0]),
        "crashed": float(sim_vehicle.crashed),
    }


def _mix_experiment(seed: int) -> dict[str, float]:
    """Scalar trial: seeds in ``_MIX_FAULTY`` fly with a fault schedule."""
    from repro.firmware.vehicle import Vehicle
    from repro.sim.config import SimConfig

    schedule = _mix_schedule() if seed in _MIX_FAULTY else None
    vehicle = Vehicle(SimConfig(seed=seed, wind_gust_std=0.4),
                      fault_schedule=schedule)
    vehicle.takeoff(4.0)
    vehicle.run(1.5)
    return _mix_metrics(vehicle.sim.vehicle)


def _mix_batch(seeds: list[int]) -> dict[int, dict[str, float]]:
    """Vectorized where possible: fault schedules are a scalar-only
    feature, so the batch declines those seeds by omitting them."""
    from repro.sim.config import SimConfig
    from repro.sim.vectorized import VectorizedFleet

    clean = [seed for seed in seeds if seed not in _MIX_FAULTY]
    if not clean:
        return {}
    fleet = VectorizedFleet(SimConfig(wind_gust_std=0.4), seeds=clean)
    fleet.takeoff(4.0)
    fleet.run(1.5)
    return {
        seed: _mix_metrics(fleet.lanes[i].sim.vehicle)
        for i, seed in enumerate(clean)
    }


class TestFaultScheduleFallback:
    """A campaign mixing plain seeds with FaultSchedule seeds runs
    vectorized where possible, falls back per seed, and matches the
    all-scalar campaign byte for byte."""

    def test_mixed_campaign_matches_all_scalar(self):
        scalar = run_campaign(_mix_experiment, _MIX_SEEDS)
        mixed = run_campaign(_mix_experiment, _MIX_SEEDS,
                             engine="vectorized", batch=_mix_batch)
        blob = json.dumps(encode_result(_values(scalar)), sort_keys=True)
        assert json.dumps(encode_result(_values(mixed)),
                          sort_keys=True) == blob
        assert mixed.vectorized_seeds == [30, 32]
        assert mixed.fallback_seeds == [31, 33]
        assert mixed.statuses == {30: "vectorized", 31: "fallback",
                                  32: "vectorized", 33: "fallback"}
        assert mixed.seeds == scalar.seeds == _MIX_SEEDS


# --------------------------------------------------------------------- #
# Whole-experiment equivalence: fig9 and table2 across engines
# --------------------------------------------------------------------- #

def _blob(result) -> str:
    return json.dumps(encode_result(result), sort_keys=True, allow_nan=True)


class TestFig9EngineEquivalence:
    """Small-scale fig9: vectorized ≡ serial ≡ parallel ≡ cache-warm."""

    PARAMS = dict(trials=2, duration=5.0, steady_after=2.5)

    def test_all_execution_modes_byte_identical(self, tmp_path):
        from repro.experiments.fig9 import run_fig9

        serial = _blob(run_fig9(**self.PARAMS))
        parallel = _blob(run_fig9(**self.PARAMS, workers=2))
        vectorized = _blob(run_fig9(**self.PARAMS, engine="vectorized"))
        # batch_size=1 forces the sharded path even at two trials: two
        # single-seed fleets stepping on two pool workers.
        sharded = _blob(run_fig9(**self.PARAMS, engine="vectorized",
                                 workers=2, batch_size=1))
        assert sharded == vectorized == parallel == serial

        # A scalar-populated cache serves the vectorized engine: same
        # fingerprints, so the warm run computes nothing new.
        cache = ResultCache(tmp_path / "cache")
        cold = _blob(run_fig9(**self.PARAMS, cache=cache))
        stores = cache.stats.stores
        warm = _blob(run_fig9(**self.PARAMS, cache=cache,
                              engine="vectorized"))
        assert warm == cold == serial
        assert cache.stats.stores == stores  # nothing recomputed


class TestTable2EngineRequest:
    """table2 has no vectorized path: requesting one warns, runs scalar,
    and produces a byte-identical result."""

    def test_vectorized_request_warns_and_matches_scalar(
        self, tmp_path, caplog
    ):
        import logging

        from repro.experiments.runner import run_experiment
        from repro.firmware.mission import line_mission

        # Mission objects carry flight progress, so each run gets its own.
        def missions():
            return [line_mission(length=30.0, altitude=6.0, legs=1)]

        scalar = run_experiment(
            "table2", cache=ResultCache(tmp_path / "a"), missions=missions(),
        )
        with caplog.at_level(logging.WARNING):
            vectorized = run_experiment(
                "table2", cache=ResultCache(tmp_path / "b"),
                engine="vectorized", missions=missions(),
            )
        assert "no vectorized path" in caplog.text
        assert _blob(vectorized) == _blob(scalar)
