"""Tests for the sensor models."""

import numpy as np
import pytest

from repro.exceptions import SensorError
from repro.sensors.barometer import Barometer
from repro.sensors.base import NoiseModel, RateLimitedSensor
from repro.sensors.gps import Gps
from repro.sensors.imu import Imu
from repro.sensors.magnetometer import Magnetometer
from repro.sensors.suite import SensorSuite
from repro.sim.config import SimConfig
from repro.sim.quadrotor import QuadrotorModel
from repro.sim.rigidbody import RigidBodyState
from repro.utils.math3d import quat_from_euler


class TestNoiseModel:
    def test_negative_std_rejected(self):
        with pytest.raises(SensorError):
            NoiseModel(-1.0)

    def test_zero_noise_passthrough(self):
        n = NoiseModel(0.0, seed=0)
        truth = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(n.apply(truth, 0.01), truth)

    def test_noise_statistics(self):
        n = NoiseModel(0.5, seed=0)
        samples = np.array([n.apply(np.zeros(3), 0.01) for _ in range(5000)])
        assert abs(samples.mean()) < 0.05
        assert samples.std() == pytest.approx(0.5, rel=0.05)

    def test_bias_walk_moves(self):
        n = NoiseModel(0.0, bias_instability=0.1, seed=0)
        for _ in range(1000):
            n.apply(np.zeros(3), 0.01)
        assert np.any(n.bias != 0.0)

    def test_reset_restores_initial_bias(self):
        n = NoiseModel(0.0, bias_std=0.1, bias_instability=0.1, seed=0)
        initial = n.bias.copy()
        for _ in range(100):
            n.apply(np.zeros(3), 0.01)
        n.reset()
        np.testing.assert_allclose(n.bias, initial)


class TestRateLimiting:
    def test_holds_between_samples(self):
        class Counter(RateLimitedSensor):
            def __init__(self):
                super().__init__(rate_hz=10.0)
                self.calls = 0

            def _measure(self, time_s):
                self.calls += 1
                return self.calls

        c = Counter()
        assert c.sample(0.0) == 1
        assert c.sample(0.05) == 1  # held
        assert c.sample(0.1) == 2  # refreshed

    def test_bad_rate(self):
        with pytest.raises(SensorError):
            Barometer(rate_hz=0.0)


class TestImu:
    def test_static_reads_minus_gravity(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        quad.step([0.0] * 4, config.dt)
        imu = Imu(
            gyro_noise_std=0.0, gyro_bias_std=0.0, gyro_bias_instability=0.0,
            accel_noise_std=0.0, accel_bias_std=0.0, accel_bias_instability=0.0,
            vibration_gain=0.0, seed=0,
        )
        sample = imu.sample(quad, 0.0, config.dt)
        np.testing.assert_allclose(sample.accel, [0.0, 0.0, -config.gravity], atol=1e-9)
        np.testing.assert_allclose(sample.gyro, 0.0, atol=1e-12)

    def test_noise_present_by_default(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        imu = Imu(seed=0)
        s1 = imu.sample(quad, 0.0, config.dt)
        s2 = imu.sample(quad, config.dt, config.dt)
        assert not np.allclose(s1.gyro, s2.gyro)


class TestGps:
    def test_latency_returns_stale_position(self):
        gps = Gps(latency_s=0.5, horizontal_std=0.0, vertical_std=0.0,
                  velocity_std=0.0, seed=0)
        state = RigidBodyState()
        for i in range(100):
            state.position = np.array([float(i), 0.0, 0.0])
            gps.record_truth(i * 0.01, state)
        sample = gps.sample(1.0)
        # Delayed by 0.5 s: position from t<=0.5 -> index 50.
        assert sample.position[0] == pytest.approx(50.0, abs=1.0)

    def test_noise_magnitude(self):
        gps = Gps(horizontal_std=1.0, vertical_std=2.0, seed=0)
        state = RigidBodyState()
        samples = []
        for i in range(3000):
            t = i * 0.1
            gps.record_truth(t, state)
            samples.append(gps.sample(t).position.copy())
        samples = np.array(samples)
        assert samples[:, 0].std() == pytest.approx(1.0, rel=0.1)
        assert samples[:, 2].std() == pytest.approx(2.0, rel=0.1)

    def test_reset_clears_history(self):
        gps = Gps(seed=0)
        gps.record_truth(0.0, RigidBodyState())
        gps.reset()
        assert len(gps._history) == 0


class TestBarometer:
    def test_altitude_tracks_truth(self):
        baro = Barometer(altitude_std=0.0, drift_std=0.0, seed=0)
        state = RigidBodyState()
        state.position = np.array([0.0, 0.0, -12.0])
        sample = baro.sample(0.0, state)
        assert sample.altitude == pytest.approx(12.0)

    def test_pressure_decreases_with_altitude(self):
        baro = Barometer(altitude_std=0.0, drift_std=0.0, seed=0)
        low = RigidBodyState()
        high = RigidBodyState()
        high.position = np.array([0.0, 0.0, -100.0])
        p_low = baro.sample(0.0, low).pressure
        baro2 = Barometer(altitude_std=0.0, drift_std=0.0, seed=0)
        p_high = baro2.sample(0.0, high).pressure
        assert p_high < p_low


class TestMagnetometer:
    def test_level_north_heading(self):
        mag = Magnetometer(noise_std=0.0, seed=0)
        state = RigidBodyState()
        sample = mag.sample(0.0, state)
        np.testing.assert_allclose(sample.field, [400.0, 0.0, 450.0], atol=1e-9)

    def test_yaw_rotates_field(self):
        mag = Magnetometer(noise_std=0.0, seed=0)
        state = RigidBodyState()
        state.quaternion = quat_from_euler(0.0, 0.0, np.pi / 2)  # facing east
        sample = mag.sample(0.0, state)
        # North field appears on the -Y (left) body axis.
        assert sample.field[1] == pytest.approx(-400.0, abs=1e-6)

    def test_hard_iron_offset(self):
        mag = Magnetometer(noise_std=0.0, hard_iron=np.array([10.0, 0, 0]), seed=0)
        sample = mag.sample(0.0, RigidBodyState())
        assert sample.field[0] == pytest.approx(410.0)


class TestSensorSuite:
    def test_sample_all(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        suite = SensorSuite(seed=0)
        readings = suite.sample(quad, 0.0, config.dt)
        assert readings.imu is not None
        assert readings.gps is not None
        assert readings.baro is not None
        assert readings.mag is not None

    def test_reset(self):
        config = SimConfig(seed=0)
        quad = QuadrotorModel(config)
        suite = SensorSuite(seed=0)
        suite.sample(quad, 0.0, config.dt)
        suite.reset()
        assert not suite.gps.has_sample
