"""Tests for log forensics and multi-seed campaigns."""

import numpy as np
import pytest

from repro.analysis.forensics import analyse_flight_log
from repro.exceptions import AnalysisError
from repro.experiments.campaign import run_campaign
from repro.firmware.logger import DataflashLogger


def synthetic_log(anomaly_at: float | None = 30.0, duration: float = 60.0,
                  seed: int = 0) -> DataflashLogger:
    """A benign-then-anomalous ATT log at 16 Hz."""
    rng = np.random.default_rng(seed)
    logger = DataflashLogger(log_rate_hz=1000.0)
    t = 0.0
    while t < duration:
        roll = rng.normal(0.0, 0.5)
        if anomaly_at is not None and t >= anomaly_at:
            roll += (t - anomaly_at) * 3.0  # ramping attack
        logger.write("ATT", t, {"R": roll, "DesR": 0.0, "IRErr": rng.normal(0, 0.2)})
        logger.write("PIDR", t, {"I": rng.normal(0, 0.01), "P": rng.normal(0, 0.02)})
        logger.write("RATE", t, {"ROut": rng.normal(0, 0.02)})
        t += 1.0 / 16.0
    return logger


class TestForensics:
    def test_finds_onset_near_attack_start(self):
        logger = synthetic_log(anomaly_at=30.0)
        report = analyse_flight_log(logger)
        assert report.findings
        assert report.earliest_onset == pytest.approx(30.0, abs=5.0)
        assert any(f.signal == "ATT.R" for f in report.findings)

    def test_benign_log_clean(self):
        logger = synthetic_log(anomaly_at=None)
        report = analyse_flight_log(logger)
        assert not report.findings
        assert report.earliest_onset is None

    def test_render(self):
        report = analyse_flight_log(synthetic_log())
        text = report.render()
        assert "onset" in text
        assert "ATT.R" in text

    def test_bad_signal_format(self):
        with pytest.raises(AnalysisError):
            analyse_flight_log(synthetic_log(), signals=["NoDot"])

    def test_bad_baseline_fraction(self):
        with pytest.raises(AnalysisError):
            analyse_flight_log(synthetic_log(), baseline_fraction=1.5)

    def test_short_log_skipped(self):
        logger = DataflashLogger(log_rate_hz=1000.0)
        for i in range(10):
            logger.write("ATT", i * 0.1, {"R": float(i)})
        report = analyse_flight_log(logger, signals=["ATT.R"])
        assert not report.findings


class TestCampaign:
    def test_aggregates_metrics(self):
        result = run_campaign(
            lambda seed: {"score": float(seed), "constant": 1.0},
            seeds=range(5),
        )
        assert result.metric("score").mean == pytest.approx(2.0)
        assert result.metric("score").max == 4.0
        assert result.metric("constant").std == 0.0

    def test_failures_recorded(self):
        def flaky(seed):
            if seed == 2:
                raise RuntimeError("boom")
            return {"x": 1.0}

        result = run_campaign(flaky, seeds=range(4))
        assert 2 in result.failures
        assert len(result.metric("x").values) == 3

    def test_raise_on_failure(self):
        def broken(seed):
            raise RuntimeError("always")

        with pytest.raises(RuntimeError):
            run_campaign(broken, seeds=[0], raise_on_failure=True)

    def test_all_failed_raises(self):
        def broken(seed):
            raise RuntimeError("always")

        with pytest.raises(AnalysisError):
            run_campaign(broken, seeds=[0, 1])

    def test_empty_seeds(self):
        with pytest.raises(AnalysisError):
            run_campaign(lambda s: {"x": 1.0}, seeds=[])

    def test_unknown_metric(self):
        result = run_campaign(lambda s: {"x": 1.0}, seeds=[0])
        with pytest.raises(AnalysisError):
            result.metric("zzz")

    def test_render(self):
        result = run_campaign(lambda s: {"deviation": s * 2.0}, seeds=range(3))
        assert "deviation" in result.render()

    def test_real_flight_forensics_on_attacked_log(self):
        """End-to-end: attack a flight, then locate the onset from the log."""
        from repro.attacks.gradual import GradualRollAttack
        from repro.firmware.mission import line_mission
        from repro.firmware.modes import FlightMode
        from tests.conftest import make_vehicle

        v = make_vehicle(seed=6, fast=True)
        v.mission = line_mission(length=300.0, altitude=10.0, legs=1)
        v.takeoff(10.0)
        attack_start = v.sim.time + 10.0
        attack = GradualRollAttack(rate_deg_s=4.0, start_time=attack_start)
        attack.attach(v)
        v.set_mode(FlightMode.AUTO)
        v.run(25.0)

        report = analyse_flight_log(v.logger, signals=("ATT.R", "PIDR.I"))
        assert report.findings
        assert report.earliest_onset >= attack_start - 8.0
