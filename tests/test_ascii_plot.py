"""Tests for the ASCII chart utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.ascii_plot import bar_chart, histogram, line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        out = sparkline([5.0] * 10)
        assert len(out) == 10
        assert set(out) == {"▁"}

    def test_monotone_ramp_uses_full_range(self):
        out = sparkline(list(range(8)))
        assert out[0] == "▁"
        assert out[-1] == "█"

    def test_resampled_to_width(self):
        out = sparkline(list(range(1000)), width=40)
        assert len(out) == 40

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_never_longer_than_width(self, values):
        assert len(sparkline(values, width=30)) <= 30


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == "(no data)"

    def test_renders_axes_and_legend(self):
        x = np.linspace(0, 10, 50)
        out = line_chart({"alpha": (x, np.sin(x)), "beta": (x, np.cos(x))})
        assert "a=alpha" in out
        assert "b=beta" in out
        assert "└" in out

    def test_constant_series_does_not_crash(self):
        out = line_chart({"flat": ([0, 1, 2], [3.0, 3.0, 3.0])})
        assert "f=flat" in out

    def test_markers_present(self):
        out = line_chart({"z": ([0, 1], [0.0, 1.0])}, width=20, height=5)
        assert "z" in out


class TestHistogram:
    def test_empty(self):
        assert histogram([]) == "(no data)"

    def test_counts_sum(self):
        values = [1.0] * 7 + [9.0] * 3
        out = histogram(values, bins=2)
        assert " 7" in out and " 3" in out

    def test_title(self):
        out = histogram([1, 2, 3], title="spread")
        assert out.startswith("spread")


class TestBarChart:
    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_proportional_bars(self):
        out = bar_chart({"small": 1.0, "large": 10.0}, width=10)
        lines = out.splitlines()
        small_bar = lines[0].count("█")
        large_bar = lines[1].count("█")
        assert large_bar == 10
        assert small_bar == 1
