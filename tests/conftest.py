"""Shared fixtures for the test suite.

Expensive artefacts (flown missions, profiling datasets) are session-scoped
so the many tests that need "a completed benign flight" share one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.firmware.mission import line_mission
from repro.firmware.vehicle import Vehicle
from repro.profiling.collector import ProfileCollector
from repro.sim.config import SimConfig


def make_vehicle(seed: int = 1, fast: bool = False, **kwargs) -> Vehicle:
    """A fresh vehicle; ``fast`` uses 100 Hz truth-state control."""
    config = SimConfig(seed=seed, physics_hz=100.0 if fast else 400.0)
    defaults = dict(use_truth_state=fast, estimation_enabled=not fast)
    defaults.update(kwargs)
    return Vehicle(config, **defaults)


@pytest.fixture
def vehicle() -> Vehicle:
    """A fresh full-fidelity vehicle."""
    return make_vehicle(seed=1)


@pytest.fixture
def fast_vehicle() -> Vehicle:
    """A 100 Hz truth-state vehicle for cheap closed-loop tests."""
    return make_vehicle(seed=1, fast=True)


@pytest.fixture(scope="session")
def flown_vehicle() -> Vehicle:
    """A vehicle that has completed a short benign mission (shared)."""
    v = make_vehicle(seed=2)
    status = v.fly_mission(line_mission(length=30.0, altitude=8.0, legs=1))
    assert status.name == "COMPLETE"
    return v


@pytest.fixture(scope="session")
def profile_dataset():
    """A small shared profiling dataset (one mission, PID columns)."""
    collector = ProfileCollector("PID")
    return collector.collect(
        missions=[line_mission(length=40.0, altitude=10.0, legs=1)]
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded RNG for test-local randomness."""
    return np.random.default_rng(1234)
