"""Tests for KSVL definitions, the tracer and the profile collector."""

import pytest

from repro.exceptions import AnalysisError
from repro.firmware.mission import line_mission
from repro.profiling.collector import ProfileCollector, default_profile_missions
from repro.profiling.ksvl import (
    ROLL_ESVL_COLUMNS,
    intermediates_for_controller,
    ksvl_all,
    ksvl_for_controller,
)
from repro.profiling.tracer import VariableTracer, identify_controller_functions
from tests.conftest import make_vehicle


class TestKsvlDefinitions:
    def test_full_ksvl_is_342(self):
        assert len(ksvl_all()) == 342

    def test_table2_ksvl_counts(self):
        assert len(ksvl_for_controller("PID")) == 28
        assert len(ksvl_for_controller("Sqrt")) == 9
        assert len(ksvl_for_controller("SINS")) == 14

    def test_table2_intermediate_counts(self):
        assert len(intermediates_for_controller("PID")) == 36
        assert len(intermediates_for_controller("Sqrt")) == 12
        assert len(intermediates_for_controller("SINS")) == 19

    def test_table2_esvl_counts(self):
        for kind, expected in (("PID", 64), ("Sqrt", 21), ("SINS", 33)):
            esvl = ksvl_for_controller(kind) + intermediates_for_controller(kind)
            assert len(esvl) == expected, kind

    def test_roll_esvl_is_24(self):
        assert len(ROLL_ESVL_COLUMNS) == 24

    def test_unknown_kind_raises(self):
        with pytest.raises(AnalysisError):
            ksvl_for_controller("Fuzzy")

    def test_ksvl_entries_reference_real_log_fields(self):
        from repro.firmware.log_defs import LOG_MESSAGE_DEFS

        for kind in ("PID", "Sqrt", "SINS"):
            for column in ksvl_for_controller(kind):
                msg, _, field = column.partition(".")
                assert field in LOG_MESSAGE_DEFS[msg].fields, column


class TestControllerFunctionIdentification:
    def test_regions_and_variables_discovered(self, fast_vehicle):
        functions = identify_controller_functions(fast_vehicle)
        assert "SRAM_STABILIZER" in functions
        assert "PIDR.INTEG" in functions["SRAM_STABILIZER"]
        assert "SINS.KVEL" in functions["SRAM_NAV"]


class TestVariableTracer:
    def test_unbound_variable_rejected(self, fast_vehicle):
        with pytest.raises(AnalysisError):
            VariableTracer(fast_vehicle, ["NOT.BOUND"])

    def test_rows_align_with_att_log(self):
        v = make_vehicle(seed=2, fast=True)
        tracer = VariableTracer(v, ["PIDR.INTEG", "PIDR.INPUT"])
        v.takeoff(5.0)
        v.run(3.0)
        assert len(tracer.table) == v.logger.num_records("ATT")

    def test_detach(self):
        v = make_vehicle(seed=2, fast=True)
        tracer = VariableTracer(v, ["PIDR.INTEG"])
        v.takeoff(3.0)
        rows = len(tracer.table)
        tracer.detach()
        v.run(2.0)
        assert len(tracer.table) == rows


class TestProfileCollector:
    def test_dataset_shape(self, profile_dataset):
        ds = profile_dataset
        assert ds.num_samples > 100
        assert len(ds.esvl_columns) == 64  # PID experiment ESVL
        assert ds.missions_flown == 1

    def test_mission_durations_recorded(self, profile_dataset):
        assert len(profile_dataset.mission_durations) == 1
        assert profile_dataset.mission_durations[0] > 5.0

    def test_intermediates_vary(self, profile_dataset):
        integ = profile_dataset.table.column("PIDR.INTEG")
        assert integ.std() > 0.0

    def test_constants_are_constant(self, profile_dataset):
        kp = profile_dataset.table.column("PIDR.KP")
        assert kp.std() == 0.0
        assert kp[0] == pytest.approx(0.135)

    def test_default_missions_match_paper_campaign(self):
        missions = default_profile_missions()
        assert len(missions) == 5  # "5 benign missions"

    def test_empty_mission_list_rejected(self):
        with pytest.raises(AnalysisError):
            ProfileCollector("PID").collect(missions=[])

    def test_custom_columns(self):
        collector = ProfileCollector(
            "PID", ksvl_columns=["ATT.R"], intermediate_columns=["PIDR.INTEG"]
        )
        ds = collector.collect(
            missions=[line_mission(length=20.0, altitude=8.0, legs=1)]
        )
        assert ds.esvl_columns == ["ATT.R", "PIDR.INTEG"]
