"""Extra property-based invariants across subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import correlation_matrix
from repro.control.mixer import MotorMixer
from repro.estimation.ekf import AttitudePositionEKF
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.utils.timeseries import TraceTable


class TestMixerProperties:
    @given(
        st.floats(0.15, 0.85),
        st.floats(-0.2, 0.2), st.floats(-0.2, 0.2), st.floats(-0.2, 0.2),
    )
    @settings(max_examples=80)
    def test_unsaturated_allocation_is_exact(self, throttle, r, p, y):
        """Inside the headroom the mixer reproduces the commanded
        components exactly (factor rows are orthonormal up to 0.5-scale)."""
        mixer = MotorMixer()
        out = mixer.mix(throttle, np.array([r, p, y]))
        if mixer.saturated:
            return
        assert float(out.mean()) == pytest.approx(throttle, abs=1e-12)
        assert float(MotorMixer.ROLL_FACTORS @ out) == pytest.approx(r, abs=1e-9)
        assert float(MotorMixer.PITCH_FACTORS @ out) == pytest.approx(p, abs=1e-9)
        assert float(MotorMixer.YAW_FACTORS @ out) == pytest.approx(y, abs=1e-9)

    @given(st.floats(0.0, 1.0), st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1))
    @settings(max_examples=60)
    def test_saturated_roll_pitch_direction_preserved(self, throttle, r, p, y):
        """Even under saturation the sign of the roll/pitch response
        matches the demand (attitude authority is prioritised)."""
        mixer = MotorMixer()
        out = mixer.mix(throttle, np.array([r, p, y]))
        achieved_r = float(MotorMixer.ROLL_FACTORS @ out)
        if abs(r) > 1e-6 and abs(achieved_r) > 1e-9:
            assert np.sign(achieved_r) == np.sign(r)


class TestEkfProperties:
    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_covariance_stays_symmetric_positive(self, seed):
        rng = np.random.default_rng(seed)
        ekf = AttitudePositionEKF()
        for i in range(200):
            gyro = rng.normal(0, 0.05, 3)
            accel = np.array([0.0, 0.0, -9.80665]) + rng.normal(0, 0.1, 3)
            ekf.predict(gyro, accel, 0.0025)
            if i % 20 == 0:
                ekf.update_accel_attitude(accel)
            if i % 40 == 0:
                ekf.update_gps(rng.normal(0, 1, 3), rng.normal(0, 0.2, 3))
        sym_err = np.abs(ekf.P - ekf.P.T).max()
        assert sym_err < 1e-6
        eigenvalues = np.linalg.eigvalsh((ekf.P + ekf.P.T) / 2.0)
        assert eigenvalues.min() > -1e-9

    def test_state_remains_finite_under_garbage_updates(self):
        ekf = AttitudePositionEKF()
        for _ in range(50):
            ekf.predict(np.array([10.0, -10.0, 5.0]), np.array([50.0, 0, -50.0]), 0.0025)
            ekf.update_gps(np.array([1e4, -1e4, 0]), np.array([100.0, 0, 0]))
        assert np.all(np.isfinite(ekf.x))


class TestCorrelationMatrixProperties:
    @given(st.integers(0, 2**16), st.integers(3, 8))
    @settings(max_examples=20)
    def test_psd_up_to_nan_free_submatrix(self, seed, n_cols):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(60, n_cols))
        table = TraceTable([f"v{i}" for i in range(n_cols)])
        for row_idx in range(60):
            table.append_row(
                row_idx * 0.1,
                {f"v{i}": data[row_idx, i] for i in range(n_cols)},
            )
        corr = correlation_matrix(table).matrix
        eigenvalues = np.linalg.eigvalsh((corr + corr.T) / 2.0)
        assert eigenvalues.min() > -1e-9
        assert np.abs(corr).max() <= 1.0 + 1e-12


class TestSimulatorProperties:
    def test_clock_advances_monotonically(self):
        sim = Simulator(SimConfig(seed=0, physics_hz=100.0))
        times = []
        for _ in range(50):
            sim.step([0.3] * 4)
            times.append(sim.time)
        assert all(b > a for a, b in zip(times, times[1:]))
        assert sim.step_count == 50

    def test_reset_restores_clock_and_state(self):
        sim = Simulator(SimConfig(seed=0, physics_hz=100.0))
        for _ in range(30):
            sim.step([0.9] * 4)
        sim.reset()
        assert sim.time == 0.0
        assert sim.step_count == 0
        np.testing.assert_allclose(sim.vehicle.state.position, 0.0)

    def test_collision_callback_fires(self):
        from repro.sim.world import BoxObstacle, World

        box = BoxObstacle("wall", np.array([-5.0, -5.0, -2.0]),
                          np.array([5.0, 5.0, -0.5]))
        world = World(obstacles=[box])
        sim = Simulator(SimConfig(seed=0, physics_hz=100.0), world=world)
        hits = []
        sim.on_collision(hits.append)
        for _ in range(500):
            sim.step([0.9] * 4)  # climb straight into the box above
            if sim.vehicle.crashed:
                break
        assert hits and "wall" in hits[0]
