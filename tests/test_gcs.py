"""Tests for the GCS link, messages and MAVProxy client."""

import pytest

from repro.exceptions import LinkError
from repro.firmware.modes import FlightMode
from repro.gcs.link import Link
from repro.gcs.messages import MavResult, ParamSet, ParamValue


class TestLink:
    def test_immediate_delivery(self):
        link = Link()
        seen = []
        link.register_handler(ParamSet, lambda m: seen.append(m) or None)
        link.send(ParamSet(name="X", value=1.0))
        assert link.service() == 1
        assert seen[0].name == "X"

    def test_latency_delays_delivery(self):
        link = Link(latency_steps=3)
        seen = []
        link.register_handler(ParamSet, lambda m: seen.append(m) or None)
        link.send(ParamSet(name="X", value=1.0))
        assert link.service() == 0
        assert link.service() == 0
        assert link.service() == 1

    def test_loss_drops_messages(self):
        link = Link(loss_probability=0.5, seed=0)
        link.register_handler(ParamSet, lambda m: None)
        for _ in range(200):
            link.send(ParamSet(name="X", value=1.0))
        assert 0 < link.dropped_count < 200

    def test_missing_handler_raises(self):
        link = Link()
        link.send(ParamSet(name="X", value=1.0))
        with pytest.raises(LinkError):
            link.service()

    def test_replies_queued(self):
        link = Link()
        link.register_handler(
            ParamSet, lambda m: ParamValue(name=m.name, value=m.value)
        )
        link.send(ParamSet(name="X", value=2.0))
        link.service()
        reply = link.receive()
        assert isinstance(reply, ParamValue)
        assert reply.value == 2.0
        assert link.receive() is None

    def test_invalid_config(self):
        with pytest.raises(LinkError):
            Link(latency_steps=-1)
        with pytest.raises(LinkError):
            Link(loss_probability=1.0)


class TestMavProxyAgainstVehicle:
    def test_param_roundtrip(self, fast_vehicle):
        proxy = fast_vehicle.make_proxy()
        assert proxy.param_get("ATC_RAT_RLL_P") == pytest.approx(0.135)
        report = proxy.param_set("ATC_RAT_RLL_P", 0.2)
        assert report.ok
        # The write propagated into the live controller.
        assert fast_vehicle.attitude_ctrl.pid_roll.gains.kp == pytest.approx(0.2)

    def test_param_range_validation_rejects(self, fast_vehicle):
        proxy = fast_vehicle.make_proxy()
        report = proxy.param_set("ATC_RAT_RLL_P", 99.0)  # far out of range
        assert not report.ok
        assert fast_vehicle.attitude_ctrl.pid_roll.gains.kp == pytest.approx(0.135)

    def test_param_get_unknown(self, fast_vehicle):
        proxy = fast_vehicle.make_proxy()
        with pytest.raises(LinkError):
            proxy.param_get("NOT_A_PARAM")

    def test_mission_upload(self, fast_vehicle):
        proxy = fast_vehicle.make_proxy()
        ack = proxy.upload_mission([(0, 0, 10), (20, 0, 10), (20, 20, 10)])
        assert ack.result is MavResult.ACCEPTED
        assert fast_vehicle.mission is not None
        assert len(fast_vehicle.mission.waypoints) == 3

    def test_empty_mission_rejected(self, fast_vehicle):
        proxy = fast_vehicle.make_proxy()
        with pytest.raises(LinkError):
            proxy.upload_mission([])

    def test_set_mode(self, fast_vehicle):
        proxy = fast_vehicle.make_proxy()
        ack = proxy.set_mode(FlightMode.GUIDED.value)
        assert ack.result is MavResult.ACCEPTED
        assert fast_vehicle.modes.mode is FlightMode.GUIDED

    def test_set_mode_auto_without_mission_denied(self, fast_vehicle):
        proxy = fast_vehicle.make_proxy()
        ack = proxy.set_mode(FlightMode.AUTO.value)
        assert ack.result is MavResult.DENIED

    def test_unknown_mode_number_denied(self, fast_vehicle):
        proxy = fast_vehicle.make_proxy()
        ack = proxy.set_mode(77)
        assert ack.result is MavResult.DENIED
