"""Tests for the complementary filter, SINS and EKF."""

import numpy as np
import pytest

from repro.estimation.complementary import ComplementaryFilter
from repro.estimation.ekf import AttitudePositionEKF, EkfConfig
from repro.estimation.sins import StrapdownINS
from repro.exceptions import ControlError

G = 9.80665


class TestComplementaryFilter:
    def test_gyro_integration(self):
        f = ComplementaryFilter(accel_gain=0.0, mag_gain=0.0)
        for _ in range(100):
            f.update(np.array([0.5, 0.0, 0.0]), np.array([0.0, 0.0, -G]), 0.01)
        roll, _, _ = f.euler
        assert roll == pytest.approx(0.5, abs=0.05)

    def test_accel_corrects_drift(self):
        f = ComplementaryFilter(accel_gain=0.05, mag_gain=0.0)
        f.reset(roll=0.3)  # wrong initial attitude
        for _ in range(3000):
            f.update(np.zeros(3), np.array([0.0, 0.0, -G]), 0.0025)
        roll, pitch, _ = f.euler
        assert abs(roll) < 0.01
        assert abs(pitch) < 0.01

    def test_accel_rejected_when_not_1g(self):
        f = ComplementaryFilter(accel_gain=0.5, mag_gain=0.0)
        f.reset(roll=0.3)
        for _ in range(100):
            f.update(np.zeros(3), np.array([0.0, 0.0, -3.0 * G]), 0.0025)
        roll, _, _ = f.euler
        assert roll == pytest.approx(0.3, abs=1e-6)  # no correction applied

    def test_accel_rejected_at_high_rates(self):
        f = ComplementaryFilter(accel_gain=0.5, mag_gain=0.0)
        f.reset(roll=0.3)
        f.update(np.array([3.0, 0.0, 0.0]), np.array([0.0, 0.0, -G]), 0.0001)
        roll, _, _ = f.euler
        assert roll == pytest.approx(0.3, abs=1e-3)

    def test_mag_corrects_yaw(self):
        f = ComplementaryFilter(accel_gain=0.0, mag_gain=0.1)
        f.reset(yaw=0.5)
        for _ in range(500):
            f.update(np.zeros(3), np.array([0.0, 0.0, -G]), 0.0025, mag_yaw=0.0)
        _, _, yaw = f.euler
        assert abs(yaw) < 0.01

    def test_invalid_gains(self):
        with pytest.raises(ControlError):
            ComplementaryFilter(accel_gain=2.0)


class TestStrapdownINS:
    def test_static_dead_reckoning(self):
        sins = StrapdownINS()
        for _ in range(400):
            sins.predict(np.zeros(3), np.array([0.0, 0.0, -G]), 0.0025)
        np.testing.assert_allclose(sins.velocity, 0.0, atol=1e-9)
        np.testing.assert_allclose(sins.position, 0.0, atol=1e-9)

    def test_constant_accel_integration(self):
        sins = StrapdownINS()
        # 1 m/s^2 north in addition to gravity compensation.
        accel = np.array([1.0, 0.0, -G])
        for _ in range(400):
            sins.predict(np.zeros(3), accel, 0.0025)
        assert sins.velocity[0] == pytest.approx(1.0, rel=1e-6)
        assert sins.position[0] == pytest.approx(0.5, rel=1e-2)

    def test_gps_correction_pulls_state(self):
        sins = StrapdownINS(velocity_gain=0.5, position_gain=0.5)
        sins.correct_gps(np.array([10.0, 0.0, 0.0]), np.array([2.0, 0.0, 0.0]))
        assert sins.velocity[0] == pytest.approx(1.0)
        assert sins.position[0] == pytest.approx(5.0)
        assert sins.intermediates["VERR_N"] == pytest.approx(2.0)

    def test_baro_correction_down_channel(self):
        sins = StrapdownINS(baro_gain=1.0)
        sins.correct_baro(8.0)
        assert sins.position[2] == pytest.approx(-8.0)

    def test_nineteen_intermediates(self):
        # Table II: 19 traced SINS state variables.
        assert len(StrapdownINS().intermediates) == 19

    def test_intermediates_updated_by_predict(self):
        sins = StrapdownINS()
        sins.predict(np.zeros(3), np.array([1.0, 0.0, -G]), 0.01)
        assert sins.intermediates["ACC_N"] == pytest.approx(1.0)
        assert sins.intermediates["DV_N"] == pytest.approx(0.01)

    def test_invalid_gain(self):
        with pytest.raises(ControlError):
            StrapdownINS(velocity_gain=1.5)


class TestEKF:
    def _static_imu(self):
        return np.zeros(3), np.array([0.0, 0.0, -G])

    def test_static_convergence(self):
        ekf = AttitudePositionEKF()
        gyro, accel = self._static_imu()
        for i in range(2000):
            ekf.predict(gyro, accel, 0.0025)
            if i % 20 == 0:
                ekf.update_accel_attitude(accel)
            if i % 40 == 0:
                ekf.update_gps(np.zeros(3), np.zeros(3))
                ekf.update_baro(0.0)
        assert abs(ekf.roll) < 0.01
        assert abs(ekf.pitch) < 0.01
        assert np.linalg.norm(ekf.velocity) < 0.1
        assert np.linalg.norm(ekf.position) < 0.5

    def test_gyro_bias_estimated(self):
        ekf = AttitudePositionEKF()
        bias = np.array([0.02, 0.0, 0.0])
        _, accel = self._static_imu()
        for i in range(8000):
            ekf.predict(bias, accel, 0.0025)
            if i % 20 == 0:
                ekf.update_accel_attitude(accel)
        assert ekf.gyro_bias[0] == pytest.approx(0.02, abs=0.01)
        assert abs(ekf.roll) < 0.05

    def test_gps_position_tracking(self):
        ekf = AttitudePositionEKF()
        gyro, accel = self._static_imu()
        target = np.array([5.0, -3.0, -10.0])
        for i in range(4000):
            ekf.predict(gyro, accel, 0.0025)
            if i % 40 == 0:
                ekf.update_gps(target, np.zeros(3))
            if i % 20 == 0:
                ekf.update_baro(10.0)
        np.testing.assert_allclose(ekf.position, target, atol=0.5)

    def test_mag_yaw_update(self):
        ekf = AttitudePositionEKF()
        ekf.reset(euler=(0.0, 0.0, 0.4))
        field = np.array([400.0, 0.0, 450.0])  # level, facing north
        for _ in range(500):
            ekf.predict(*self._static_imu(), 0.0025)
            ekf.update_mag_yaw(field)
        assert abs(ekf.yaw) < 0.05

    def test_accel_update_skipped_during_maneuver(self):
        ekf = AttitudePositionEKF()
        ekf.reset(euler=(0.2, 0.0, 0.0))
        before = ekf.roll
        ekf.update_accel_attitude(np.array([0.0, 0.0, -3.0 * G]))
        assert ekf.roll == before

    def test_reset(self):
        ekf = AttitudePositionEKF()
        ekf.x[:] = 1.0
        ekf.reset(euler=(0.1, 0.2, 0.3))
        assert ekf.roll == pytest.approx(0.1)
        np.testing.assert_allclose(ekf.velocity, 0.0)

    def test_invalid_config(self):
        with pytest.raises(ControlError):
            EkfConfig(gyro_noise=0.0)
