"""Additional behavioural tests: sqrt-controller dynamics, SINS corrections,
attitude-loop coupling and the parameter→controller wiring under attack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.attitude import AttitudeController, AttitudeTargets
from repro.control.sqrt_controller import SqrtController
from repro.estimation.sins import StrapdownINS
from tests.conftest import make_vehicle

G = 9.80665


class TestSqrtControllerDynamics:
    @given(st.floats(0.2, 3.0), st.floats(0.5, 8.0))
    @settings(max_examples=40)
    def test_output_never_exceeds_sqrt_envelope(self, p, accel_max):
        """Beyond the linear region the response respects the
        2*a*(d - L/2) energy envelope that makes stops feasible."""
        c = SqrtController("SQ", p=p, accel_max=accel_max, output_max=1e9)
        for error in (0.1, 1.0, 5.0, 25.0, 100.0):
            out = c.update(error, 0.0)
            allowed = np.sqrt(2.0 * accel_max * error) + p * c.linear_region
            assert abs(out) <= allowed + 1e-9

    @given(st.floats(-50, 50), st.floats(-50, 50))
    @settings(max_examples=40)
    def test_monotone_in_error(self, e1, e2):
        c1 = SqrtController("SQ", p=1.0, accel_max=2.0, output_max=1e9)
        c2 = SqrtController("SQ", p=1.0, accel_max=2.0, output_max=1e9)
        o1, o2 = c1.update(e1, 0.0), c2.update(e2, 0.0)
        if e1 < e2:
            assert o1 <= o2 + 1e-12

    def test_closed_loop_converges_without_overshoot_blowup(self):
        """A kinematic particle driven by the sqrt controller reaches its
        target from far away without oscillating forever."""
        c = SqrtController("SQ", p=1.0, accel_max=2.0, output_max=5.0)
        position, velocity = 40.0, 0.0
        dt = 0.01
        for _ in range(6000):
            vel_cmd = c.update(0.0, position)
            # first-order velocity response
            velocity += (vel_cmd - velocity) * min(1.0, 5.0 * dt)
            position += velocity * dt
        assert abs(position) < 0.5


class TestSINSCorrectionLoop:
    def test_biased_accel_corrected_by_gps(self):
        """A constant accelerometer bias is bounded by repeated GPS fixes."""
        sins = StrapdownINS(velocity_gain=0.2, position_gain=0.1)
        biased_accel = np.array([0.05, 0.0, -G])  # 0.05 m/s^2 bias north
        for step in range(4000):
            sins.predict(np.zeros(3), biased_accel, 0.0025)
            if step % 40 == 0:  # 10 Hz GPS: truth is at rest
                sins.correct_gps(np.zeros(3), np.zeros(3))
        assert abs(sins.velocity[0]) < 0.1
        assert abs(sins.position[0]) < 1.0

    def test_without_corrections_bias_diverges(self):
        sins = StrapdownINS()
        biased_accel = np.array([0.05, 0.0, -G])
        for _ in range(4000):
            sins.predict(np.zeros(3), biased_accel, 0.0025)
        assert abs(sins.position[0]) > 1.0  # quadratic dead-reckoning drift

    def test_gain_manipulation_changes_behaviour(self):
        """The SINS.KVEL entry is a genuine attack surface: zeroing it
        disables velocity corrections."""
        sins = StrapdownINS(velocity_gain=0.2)
        sins.intermediates["KVEL"] = 0.0  # the memory-bound write target
        sins.velocity_gain = sins.intermediates["KVEL"]
        sins.correct_gps(np.zeros(3), np.array([3.0, 0.0, 0.0]))
        assert sins.velocity[0] == pytest.approx(0.0)


class TestAttitudeLoopCoupling:
    def test_axes_are_decoupled_at_level(self):
        att = AttitudeController()
        torque = att.update(
            AttitudeTargets(roll=0.1), (0.0, 0.0, 0.0), np.zeros(3), 0.0025
        )
        assert abs(torque[1]) < 1e-9 and abs(torque[2]) < 1e-9

    def test_rate_feedback_damps(self):
        """With the vehicle already rotating toward the target, the
        commanded torque is smaller than from rest."""
        att_static = AttitudeController()
        att_moving = AttitudeController()
        from_rest = att_static.update(
            AttitudeTargets(roll=0.2), (0.0, 0.0, 0.0), np.zeros(3), 0.0025
        )
        while_rotating = att_moving.update(
            AttitudeTargets(roll=0.2), (0.0, 0.0, 0.0),
            np.array([0.5, 0.0, 0.0]), 0.0025,
        )
        assert while_rotating[0] < from_rest[0]

    def test_integrator_write_shifts_torque(self):
        att = AttitudeController()
        baseline = att.update(
            AttitudeTargets(), (0.0, 0.0, 0.0), np.zeros(3), 0.0025
        )[0]
        att.pid_roll.set_state_variable("INTEG", 0.3)
        biased = att.update(
            AttitudeTargets(), (0.0, 0.0, 0.0), np.zeros(3), 0.0025
        )[0]
        assert biased > baseline + 0.25


class TestParameterAttackSurface:
    def test_gcs_param_change_alters_flight_behaviour(self):
        """A legitimate-looking PARAM_SET that weakens the rate loop is
        accepted (in range) and degrades stabilisation."""
        v = make_vehicle(seed=9, fast=True)
        proxy = v.make_proxy()
        report = proxy.param_set("ATC_RAT_RLL_P", 0.02)  # in range, terrible
        assert report.ok
        assert v.attitude_ctrl.pid_roll.gains.kp == pytest.approx(0.02)

    def test_imax_zeroing_through_memory_view(self):
        """An attacker in the stabilizer region can neuter the integrator
        clamp indirectly by rewriting the gains each cycle."""
        v = make_vehicle(seed=9, fast=True)
        view = v.compromised_view()
        view.write("PIDR.KI", 0.0)
        assert v.attitude_ctrl.pid_roll.gains.ki == 0.0
