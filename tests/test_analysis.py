"""Tests for the statistical identification pipeline (Algorithm 1 parts)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import cluster_by_correlation, dendrogram_order
from repro.analysis.correlation import correlation_matrix, pearson
from repro.analysis.pruning import PruningConfig, prune_state_variables
from repro.analysis.regression import fit_ols
from repro.analysis.stepwise import stepwise_aic
from repro.analysis.tsvl import TsvlConfig, generate_tsvl
from repro.exceptions import AnalysisError
from repro.utils.timeseries import TraceTable


def table_from_columns(**columns) -> TraceTable:
    names = list(columns)
    n = len(next(iter(columns.values())))
    table = TraceTable(names)
    for i in range(n):
        table.append_row(i * 0.1, {k: float(v[i]) for k, v in columns.items()})
    return table


class TestPearson:
    def test_perfect_positive(self, rng):
        x = rng.normal(size=200)
        assert pearson(x, 2.0 * x + 1.0) == pytest.approx(1.0)

    def test_perfect_negative(self, rng):
        x = rng.normal(size=200)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        x, y = rng.normal(size=2000), rng.normal(size=2000)
        assert abs(pearson(x, y)) < 0.1

    def test_constant_is_nan(self, rng):
        assert np.isnan(pearson(np.ones(50), rng.normal(size=50)))

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            pearson(np.zeros(5), np.zeros(6))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25)
    def test_symmetry_and_bounds(self, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.normal(size=50), rng.normal(size=50)
        r = pearson(x, y)
        assert -1.0 <= r <= 1.0
        assert pearson(y, x) == pytest.approx(r)

    @given(st.floats(0.1, 100.0), st.floats(-100.0, 100.0))
    @settings(max_examples=25)
    def test_scale_invariance(self, scale, offset):
        rng = np.random.default_rng(7)
        x, y = rng.normal(size=100), rng.normal(size=100)
        assert pearson(x * scale + offset, y) == pytest.approx(pearson(x, y), abs=1e-9)


class TestCorrelationMatrix:
    def test_matches_pairwise(self, rng):
        data = rng.normal(size=(100, 3))
        data[:, 2] = data[:, 0] * 0.5 + rng.normal(size=100) * 0.1
        table = table_from_columns(a=data[:, 0], b=data[:, 1], c=data[:, 2])
        result = correlation_matrix(table)
        assert result.value("a", "c") == pytest.approx(
            pearson(data[:, 0], data[:, 2]), abs=1e-12
        )
        np.testing.assert_allclose(result.matrix, result.matrix.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(result.matrix), 1.0)

    def test_constant_column_nan(self, rng):
        table = table_from_columns(a=rng.normal(size=50), c=np.ones(50))
        result = correlation_matrix(table)
        assert np.isnan(result.value("a", "c"))

    def test_strongest_partners(self, rng):
        x = rng.normal(size=200)
        table = table_from_columns(
            a=x, b=x + rng.normal(size=200) * 0.01, c=rng.normal(size=200)
        )
        partners = correlation_matrix(table).strongest_partners("a", k=1)
        assert partners[0][0] == "b"

    def test_significant_pairs_sorted(self, rng):
        x = rng.normal(size=200)
        table = table_from_columns(
            a=x, b=x + rng.normal(size=200) * 0.05,
            c=x + rng.normal(size=200) * 1.0,
        )
        pairs = correlation_matrix(table).significant_pairs(0.3)
        strengths = [abs(r) for _, _, r in pairs]
        assert strengths == sorted(strengths, reverse=True)


class TestCorrelationMatrixProperties:
    """Property tests: correlation_matrix vs numpy's reference."""

    @given(st.integers(0, 2**31 - 1), st.integers(10, 80), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_np_corrcoef(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(rows, cols))
        table = table_from_columns(
            **{f"v{i}": data[:, i] for i in range(cols)}
        )
        result = correlation_matrix(table)
        reference = np.corrcoef(data, rowvar=False)
        np.testing.assert_allclose(result.matrix, reference, atol=1e-10)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_pairwise_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.normal(size=60), rng.normal(size=60)
        table = table_from_columns(x=x, y=y)
        result = correlation_matrix(table)
        assert result.value("x", "y") == result.value("y", "x")
        assert result.value("x", "y") == pytest.approx(pearson(x, y), abs=1e-12)
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    @given(st.integers(0, 2**31 - 1), st.floats(-10.0, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_constant_columns_nan_everywhere(self, seed, constant):
        rng = np.random.default_rng(seed)
        table = table_from_columns(
            a=rng.normal(size=40),
            k=np.full(40, constant),
            b=rng.normal(size=40),
        )
        result = correlation_matrix(table)
        i = result.names.index("k")
        assert np.all(np.isnan(result.matrix[i, :]))
        assert np.all(np.isnan(result.matrix[:, i]))
        # Non-constant columns stay finite.
        assert np.isfinite(result.value("a", "b"))

    def test_wide_result_lookups_stay_correct(self, rng):
        """500-column result: the O(1) name index must agree with the
        matrix for every sampled pair (regression for the repeated
        list.index() lookups)."""
        n_cols, n_rows = 500, 6
        data = rng.normal(size=(n_rows, n_cols))
        names = [f"c{i}" for i in range(n_cols)]
        table = table_from_columns(**dict(zip(names, data.T)))
        result = correlation_matrix(table)
        assert result.names == names
        for i in (0, 1, 7, 249, 250, 498, 499):
            for j in (0, 3, 250, 499):
                assert result.value(names[i], names[j]) == float(
                    result.matrix[i, j]
                )
        # strongest_partners agrees with a manual scan on the last column.
        partners = result.strongest_partners("c499", k=3)
        row = np.abs(result.matrix[499])
        row[499] = -np.inf
        assert partners[0][0] == names[int(np.argmax(row))]
        with pytest.raises(AnalysisError):
            result.value("c0", "nope")


class TestPruning:
    def test_constant_dropped(self, rng):
        table = table_from_columns(a=rng.normal(size=100), k=np.full(100, 3.3))
        report = prune_state_variables(table)
        assert "a" in report.kept
        assert report.dropped["k"] == "constant"

    def test_discrete_dropped(self, rng):
        table = table_from_columns(
            a=rng.normal(size=100), mode=rng.integers(0, 3, size=100).astype(float)
        )
        report = prune_state_variables(table)
        assert "mode" in report.dropped

    def test_extreme_kurtosis_dropped(self, rng):
        spiky = np.zeros(1000)
        spiky[::200] = 100.0
        spiky += rng.normal(size=1000) * 1e-3
        table = table_from_columns(x=spiky)
        report = prune_state_variables(table)
        assert "x" in report.dropped

    def test_gaussian_kept(self, rng):
        table = table_from_columns(x=rng.normal(size=1000))
        report = prune_state_variables(table)
        assert report.kept == ["x"]

    def test_config_thresholds_respected(self, rng):
        table = table_from_columns(x=rng.normal(size=100))
        strict = PruningConfig(max_excess_kurtosis=-10.0)
        report = prune_state_variables(table, strict)
        assert "x" in report.dropped


class TestClustering:
    def test_correlated_variables_cluster_together(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(size=300)
        table = table_from_columns(
            x1=x, x2=x + rng.normal(size=300) * 0.05,
            y1=y, y2=-y + rng.normal(size=300) * 0.05,
        )
        corr = correlation_matrix(table)
        clusters = cluster_by_correlation(corr, distance_threshold=0.3)
        assert clusters.cluster_of("x1") == clusters.cluster_of("x2")
        assert clusters.cluster_of("y1") == clusters.cluster_of("y2")
        assert clusters.cluster_of("x1") != clusters.cluster_of("y1")

    def test_anticorrelation_clusters(self, rng):
        # distance uses |r|: perfectly anti-correlated pairs are together.
        x = rng.normal(size=200)
        table = table_from_columns(a=x, b=-x)
        corr = correlation_matrix(table)
        clusters = cluster_by_correlation(corr, distance_threshold=0.3)
        assert clusters.num_clusters == 1

    def test_single_variable(self, rng):
        table = table_from_columns(a=rng.normal(size=50))
        corr = correlation_matrix(table)
        clusters = cluster_by_correlation(corr)
        assert clusters.num_clusters == 1

    def test_nan_rejected(self, rng):
        table = table_from_columns(a=rng.normal(size=50), k=np.ones(50))
        corr = correlation_matrix(table)
        with pytest.raises(AnalysisError):
            cluster_by_correlation(corr, names=["a", "k"])

    def test_dendrogram_order_is_permutation(self, rng):
        data = rng.normal(size=(100, 5))
        table = table_from_columns(**{f"v{i}": data[:, i] for i in range(5)})
        corr = correlation_matrix(table)
        clusters = cluster_by_correlation(corr)
        order = dendrogram_order(clusters)
        assert sorted(order) == sorted(clusters.names)


class TestOLS:
    def test_recovers_coefficients(self, rng):
        X = rng.normal(size=(500, 2))
        y = 3.0 + 2.0 * X[:, 0] - 1.5 * X[:, 1] + rng.normal(size=500) * 0.01
        result = fit_ols(y, X, predictors=["a", "b"])
        assert result.coefficients[0] == pytest.approx(3.0, abs=0.01)
        assert result.coefficients[1] == pytest.approx(2.0, abs=0.01)
        assert result.coefficients[2] == pytest.approx(-1.5, abs=0.01)
        assert result.r_squared > 0.99

    def test_pvalues_flag_noise_predictor(self, rng):
        X = rng.normal(size=(500, 2))
        y = 2.0 * X[:, 0] + rng.normal(size=500) * 0.5
        result = fit_ols(y, X, predictors=["signal", "noise"])
        assert result.p_values[0] < 1e-6
        assert result.p_values[1] > 0.01
        assert result.significant_predictors() == ["signal"]

    def test_aic_prefers_true_model(self, rng):
        X = rng.normal(size=(300, 3))
        y = X[:, 0] + rng.normal(size=300) * 0.1
        full = fit_ols(y, X)
        true = fit_ols(y, X[:, :1])
        assert true.aic < full.aic

    def test_underdetermined_raises(self, rng):
        with pytest.raises(AnalysisError):
            fit_ols(np.zeros(3), rng.normal(size=(3, 5)))

    def test_predict(self, rng):
        X = rng.normal(size=(200, 1))
        y = 1.0 + 4.0 * X[:, 0]
        result = fit_ols(y, X)
        np.testing.assert_allclose(result.predict(X), y, atol=1e-8)


class TestStepwise:
    def test_selects_true_predictors(self, rng):
        n = 400
        x1, x2 = rng.normal(size=n), rng.normal(size=n)
        noise = [rng.normal(size=n) for _ in range(4)]
        y = 2.0 * x1 - 1.0 * x2 + rng.normal(size=n) * 0.1
        table = table_from_columns(
            y=y, x1=x1, x2=x2,
            **{f"n{i}": noise[i] for i in range(4)},
        )
        result = stepwise_aic(table, "y", ["x1", "x2", "n0", "n1", "n2", "n3"])
        assert set(result.selected) >= {"x1", "x2"}
        assert len(result.selected) <= 4  # most noise excluded

    def test_no_signal_selects_nothing_much(self, rng):
        n = 300
        table = table_from_columns(
            y=rng.normal(size=n), a=rng.normal(size=n), b=rng.normal(size=n)
        )
        result = stepwise_aic(table, "y", ["a", "b"])
        assert len(result.selected) <= 1

    def test_unknown_response_raises(self, rng):
        table = table_from_columns(a=rng.normal(size=50))
        with pytest.raises(AnalysisError):
            stepwise_aic(table, "zzz", ["a"])


class TestGenerateTsvl:
    def make_synthetic(self, rng):
        """A planted-structure dataset: resp driven by sv1/sv2; decoys."""
        n = 600
        sv1 = rng.normal(size=n)
        sv2 = np.cumsum(rng.normal(size=n)) * 0.05
        resp = 1.5 * sv1 + 0.8 * sv2 + rng.normal(size=n) * 0.1
        alias = resp + rng.normal(size=n) * 1e-4  # near-duplicate of resp
        decoy = rng.normal(size=n)
        const = np.full(n, 7.0)
        return table_from_columns(
            resp=resp, sv1=sv1, sv2=sv2, alias=alias, decoy=decoy, const=const
        )

    def test_finds_planted_variables(self, rng):
        table = self.make_synthetic(rng)
        result = generate_tsvl(table, dynamics_variables=["resp"])
        assert "sv1" in result.tsvl
        assert "sv2" in result.tsvl
        assert "const" not in result.tsvl

    def test_alias_excluded(self, rng):
        table = self.make_synthetic(rng)
        result = generate_tsvl(table, dynamics_variables=["resp"])
        assert "alias" not in result.tsvl

    def test_response_not_in_tsvl(self, rng):
        table = self.make_synthetic(rng)
        result = generate_tsvl(table, dynamics_variables=["resp"])
        assert "resp" not in result.tsvl

    def test_max_per_response_caps(self, rng):
        table = self.make_synthetic(rng)
        config = TsvlConfig(max_per_response=1)
        result = generate_tsvl(table, dynamics_variables=["resp"], config=config)
        assert len(result.tsvl) <= 1

    def test_selection_ratio(self, rng):
        table = self.make_synthetic(rng)
        result = generate_tsvl(table, dynamics_variables=["resp"])
        assert result.selection_ratio == pytest.approx(
            len(result.tsvl) / len(table.columns)
        )

    def test_missing_response_raises(self, rng):
        table = self.make_synthetic(rng)
        with pytest.raises(AnalysisError):
            generate_tsvl(table, dynamics_variables=["nope"])

    def test_no_responses_raises(self, rng):
        table = self.make_synthetic(rng)
        with pytest.raises(AnalysisError):
            generate_tsvl(table, dynamics_variables=[])
