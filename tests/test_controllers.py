"""Tests for sqrt controller, attitude/position cascades and the mixer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.attitude import AttitudeController, AttitudeTargets
from repro.control.cascade import ControllerRegistry
from repro.control.mixer import MotorMixer
from repro.control.position import PositionController, PositionSetpoint
from repro.control.sqrt_controller import SqrtController
from repro.estimation.sins import StrapdownINS
from repro.exceptions import ControlError


class TestSqrtController:
    def make(self, p=1.0, accel=2.0, out=5.0):
        return SqrtController("SQ", p=p, accel_max=accel, output_max=out)

    def test_linear_regime(self):
        c = self.make(p=2.0, accel=8.0)  # linear region = 8/4 = 2
        assert c.update(1.0, 0.0) == pytest.approx(2.0)

    def test_sqrt_regime(self):
        c = self.make(p=2.0, accel=8.0, out=100.0)
        big = c.update(10.0, 0.0)
        expected = math.sqrt(2.0 * 8.0 * (10.0 - 1.0))
        assert big == pytest.approx(expected)

    @given(st.floats(-30, 30))
    @settings(max_examples=50)
    def test_output_bounded_and_odd(self, error):
        c = self.make(out=5.0)
        out = c.update(error, 0.0)
        assert abs(out) <= 5.0
        c2 = self.make(out=5.0)
        assert c2.update(-error, 0.0) == pytest.approx(-out, abs=1e-12)

    def test_continuity_at_crossover(self):
        c = self.make(p=1.0, accel=2.0, out=100.0)
        linear_edge = c.linear_region
        below = c.update(linear_edge - 1e-6, 0.0)
        above = self.make(p=1.0, accel=2.0, out=100.0).update(linear_edge + 1e-6, 0.0)
        assert below == pytest.approx(above, abs=1e-3)

    def test_state_variables_round_trip(self):
        c = self.make()
        c.update(1.0, 0.2)
        sv = c.state_variables()
        assert sv["ERR"] == pytest.approx(0.8)
        c.set_state_variable("OUT", 9.0)
        assert c.output == 9.0

    def test_nonpositive_gain_write_clamped(self):
        c = self.make()
        c.set_state_variable("P", -5.0)
        assert c.p > 0.0  # firmware would fault; manipulation is clamped

    def test_invalid_construction(self):
        with pytest.raises(ControlError):
            SqrtController("bad", p=0.0, accel_max=1.0, output_max=1.0)


class TestAttitudeController:
    def test_rate_targets_proportional_to_error(self):
        att = AttitudeController(angle_p=4.0)
        att.update(AttitudeTargets(roll=0.1), (0.0, 0.0, 0.0), np.zeros(3), 0.0025)
        assert att.rate_targets[0] == pytest.approx(0.4)

    def test_rate_targets_clamped(self):
        att = AttitudeController(angle_p=100.0, rate_max=1.0)
        att.update(AttitudeTargets(roll=1.0), (0.0, 0.0, 0.0), np.zeros(3), 0.0025)
        assert att.rate_targets[0] == 1.0

    def test_torque_sign(self):
        att = AttitudeController()
        torque = att.update(
            AttitudeTargets(roll=0.2), (0.0, 0.0, 0.0), np.zeros(3), 0.0025
        )
        assert torque[0] > 0.0  # roll right demand
        assert torque[1] == pytest.approx(0.0, abs=1e-9)

    def test_yaw_error_wraps(self):
        att = AttitudeController()
        att.update(
            AttitudeTargets(yaw=math.pi - 0.1),
            (0.0, 0.0, -math.pi + 0.1), np.zeros(3), 0.0025,
        )
        # Shortest path is -0.2 rad, not ~2pi.
        assert att.angle_errors[2] == pytest.approx(-0.2, abs=1e-9)

    def test_state_variables_include_rate_pids(self):
        att = AttitudeController()
        sv = att.state_variables()
        assert "PIDR.INTEG" in sv
        assert "PIDP.KP" in sv
        assert "TGT_RATE_R" in sv

    def test_reset(self):
        att = AttitudeController()
        att.update(AttitudeTargets(roll=0.5), (0.0, 0.0, 0.0), np.zeros(3), 0.0025)
        att.reset()
        assert att.pid_roll.integrator == 0.0
        np.testing.assert_allclose(att.rate_targets, 0.0)


class TestPositionController:
    def make(self):
        return PositionController(hover_throttle=0.37)

    def test_forward_error_pitches_down(self):
        psc = self.make()
        targets = psc.update(
            PositionSetpoint(position=np.array([10.0, 0.0, -5.0])),
            np.array([0.0, 0.0, -5.0]), np.zeros(3), 0.0, 0.0025,
        )
        assert targets.pitch < 0.0  # nose down to accelerate north
        assert abs(targets.roll) < 1e-6

    def test_east_error_rolls_right(self):
        psc = self.make()
        targets = psc.update(
            PositionSetpoint(position=np.array([0.0, 10.0, -5.0])),
            np.array([0.0, 0.0, -5.0]), np.zeros(3), 0.0, 0.0025,
        )
        assert targets.roll > 0.0

    def test_heading_rotation(self):
        # Facing east (yaw 90°), a north error is a leftward error -> roll left.
        psc = self.make()
        targets = psc.update(
            PositionSetpoint(position=np.array([10.0, 0.0, -5.0])),
            np.array([0.0, 0.0, -5.0]), np.zeros(3), math.pi / 2, 0.0025,
        )
        assert targets.roll < 0.0

    def test_lean_angle_limited(self):
        psc = self.make()
        targets = psc.update(
            PositionSetpoint(position=np.array([1e6, 0.0, -5.0])),
            np.array([0.0, 0.0, -5.0]), np.zeros(3), 0.0, 0.0025,
        )
        assert abs(targets.pitch) <= psc.lean_angle_max + 1e-9

    def test_climb_demand_raises_throttle(self):
        psc = self.make()
        below = psc.update(
            PositionSetpoint(position=np.array([0.0, 0.0, -10.0])),
            np.array([0.0, 0.0, -5.0]), np.zeros(3), 0.0, 0.0025,
        )
        psc2 = self.make()
        hold = psc2.update(
            PositionSetpoint(position=np.array([0.0, 0.0, -5.0])),
            np.array([0.0, 0.0, -5.0]), np.zeros(3), 0.0, 0.0025,
        )
        assert below.throttle > hold.throttle

    def test_throttle_bounded(self):
        psc = self.make()
        targets = psc.update(
            PositionSetpoint(position=np.array([0.0, 0.0, -1e6])),
            np.array([0.0, 0.0, 0.0]), np.zeros(3), 0.0, 0.0025,
        )
        assert 0.0 <= targets.throttle <= 1.0

    def test_state_variables_cover_cascades(self):
        psc = self.make()
        sv = psc.state_variables()
        assert "X_POS.ERR" in sv
        assert "Y_VEL.INTEG" in sv
        assert "Z_VELTGT" in sv


class TestMixer:
    def test_pure_throttle(self):
        mixer = MotorMixer()
        np.testing.assert_allclose(mixer.mix(0.5, np.zeros(3)), 0.5)
        assert not mixer.saturated

    def test_roll_differential(self):
        mixer = MotorMixer()
        out = mixer.mix(0.5, np.array([0.2, 0.0, 0.0]))
        # left motors (2, 3) up, right motors (1, 4) down
        assert out[1] > 0.5 and out[2] > 0.5
        assert out[0] < 0.5 and out[3] < 0.5

    @given(st.floats(0, 1), st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1))
    @settings(max_examples=100)
    def test_outputs_always_in_range(self, throttle, r, p, y):
        mixer = MotorMixer()
        out = mixer.mix(throttle, np.array([r, p, y]))
        assert np.all(out >= 0.0 - 1e-12) and np.all(out <= 1.0 + 1e-12)

    def test_saturation_drops_yaw_first(self):
        mixer = MotorMixer()
        out_sat = mixer.mix(0.9, np.array([0.3, 0.0, 0.8]))
        assert mixer.saturated
        # Roll differential survives; yaw contribution is reduced.
        roll_component = float(MotorMixer.ROLL_FACTORS @ out_sat)
        assert roll_component == pytest.approx(0.3 * 1.0, abs=0.12)

    def test_invalid_limits(self):
        with pytest.raises(ControlError):
            MotorMixer(min_throttle=0.9, max_throttle=0.5)


class TestControllerRegistry:
    def make(self):
        att = AttitudeController()
        psc = PositionController(hover_throttle=0.37)
        sins = StrapdownINS()
        return ControllerRegistry(att, psc, sins)

    def test_table2_function_counts(self):
        reg = self.make()
        # PID kind: PIDR, PIDP, PIDY + 3 axis velocity PIDs = 6 functions.
        assert len(reg.functions("PID")) == 6
        assert len(reg.functions("Sqrt")) == 3
        assert len(reg.functions("SINS")) == 1

    def test_lookup(self):
        reg = self.make()
        assert reg.function("PIDR").kind == "PID"
        with pytest.raises(KeyError):
            reg.function("NOPE")

    def test_all_variables_flat(self):
        reg = self.make()
        flat = reg.all_variables()
        assert "PIDR.INTEG" in flat
        assert "SINS.KVEL" in flat
