"""Differential harness: the scenario refactor changed zero bits.

fig9 and the robustness matrix now build their vehicles through the
scenario DSL. The replicas below are the pre-DSL construction code
copied verbatim (inline Vehicle/SimConfig/line_mission wiring); every
test compares the refactored helpers against them bit-for-bit, across
the scalar, process-parallel and vectorized engines. The golden file
``tests/golden/scenario_fig9.json`` additionally pins fig9's numbers
across future sessions (regenerate with ``REPRO_REGEN_GOLDEN=1``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.tsvl import generate_tsvl
from repro.attacks.gradual import GradualRollAttack
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.experiments.fig9 import (
    _fig9_batch,
    _fig9_trial,
    _steady_max,
    run_fig9,
)
from repro.experiments.robustness_matrix import (
    _detector_flight,
    _profile_tsvl,
)
from repro.faults import FaultSchedule, FaultSpec
from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import Vehicle
from repro.profiling.collector import ProfileCollector
from repro.sim.config import SimConfig

GOLDEN = Path(__file__).parent / "golden" / "scenario_fig9.json"

#: Same shrunk parameters as the vectorized-oracle tests: long enough
#: for takeoff + steady cruise, short enough for CI.
DURATION = 6.0
STEADY_AFTER = 3.0

FIG9 = dict(
    trials=2,
    duration=DURATION,
    steady_after=STEADY_AFTER,
    base_seed=20,
    thresholds=[500_000.0, 5_000.0],
)

_RESPONSES = ("ATT.R", "ATT.P", "ATT.Y")


# --- pre-DSL replicas (copied verbatim from the pre-refactor modules) ---


def _old_steady_max(attack, seed, duration, steady_after):
    vehicle = Vehicle(SimConfig(seed=seed, wind_gust_std=0.4))
    detector = ControlInvariantsDetector(
        vehicle.config.airframe, threshold=float("inf")
    )
    detector.attach(vehicle)
    vehicle.mission = line_mission(length=500.0, altitude=10.0, legs=1)
    vehicle.takeoff(10.0)
    if attack is not None:
        attack.attach(vehicle)
    vehicle.set_mode(FlightMode.AUTO)
    vehicle.run(duration)
    times = detector.record.times_array()
    scores = detector.record.scores_array()
    if not len(times):
        return 0.0
    steady = scores[times > times[0] + steady_after]
    return float(steady.max()) if len(steady) else 0.0


def _old_profile_tsvl(seed, schedule, profile_length, physics_hz):
    def factory(mission_seed):
        return Vehicle(
            SimConfig(
                seed=seed * 1000 + mission_seed,
                wind_gust_std=0.4,
                physics_hz=physics_hz,
            ),
            fault_schedule=schedule,
        )

    collector = ProfileCollector("PID", vehicle_factory=factory)
    dataset = collector.collect(
        missions=[line_mission(length=profile_length, altitude=8.0, legs=2)],
        timeout_per_mission=150.0,
        require_complete=False,
    )
    return generate_tsvl(dataset.table, list(_RESPONSES))


def _old_detector_flight(seed, schedule, attack_rate, duration, physics_hz):
    vehicle = Vehicle(
        SimConfig(seed=seed, wind_gust_std=0.4, physics_hz=physics_hz),
        fault_schedule=schedule,
    )
    detector = ControlInvariantsDetector(vehicle.config.airframe)
    detector.attach(vehicle)
    vehicle.mission = line_mission(length=500.0, altitude=10.0, legs=1)
    vehicle.takeoff(10.0)
    if attack_rate is not None:
        GradualRollAttack(rate_deg_s=attack_rate, start_time=5.0).attach(vehicle)
    vehicle.set_mode(FlightMode.AUTO)
    vehicle.run(duration)
    return (
        1.0 if detector.alarmed else 0.0,
        float(detector.degraded_samples),
    )


# --- fig9 differential ---


class TestFig9Differential:
    @pytest.mark.parametrize("seed", [20, 21])
    @pytest.mark.parametrize("rate", [None, 5.0, 0.25])
    def test_steady_max_bit_identical_to_pre_dsl(self, seed, rate):
        attack = (
            None if rate is None
            else GradualRollAttack(rate_deg_s=rate, start_time=5.0)
        )
        old = _old_steady_max(attack, seed, DURATION, STEADY_AFTER)
        new = _steady_max(rate, seed, DURATION, STEADY_AFTER)
        assert new == old

    def test_vectorized_batch_bit_identical_to_pre_dsl(self):
        batch = _fig9_batch(
            [20, 21], DURATION, STEADY_AFTER,
            attack1_rate=5.0, attack2_rate=0.25,
        )
        for seed in (20, 21):
            assert batch[seed] == {
                "benign": _old_steady_max(
                    None, seed, DURATION, STEADY_AFTER
                ),
                "attack1": _old_steady_max(
                    GradualRollAttack(rate_deg_s=5.0, start_time=5.0),
                    seed, DURATION, STEADY_AFTER,
                ),
                "attack2": _old_steady_max(
                    GradualRollAttack(rate_deg_s=0.25, start_time=5.0),
                    seed, DURATION, STEADY_AFTER,
                ),
            }

    def test_scalar_trial_matches_batch(self):
        trial = _fig9_trial(
            20, DURATION, STEADY_AFTER, attack1_rate=5.0, attack2_rate=0.25
        )
        batch = _fig9_batch(
            [20], DURATION, STEADY_AFTER, attack1_rate=5.0, attack2_rate=0.25
        )
        assert batch[20] == trial


# --- robustness differential ---


class TestRobustnessDifferential:
    SCHEDULE = FaultSchedule((
        FaultSpec(kind="gps_glitch", start=2.0, duration=3.0, intensity=0.4),
    ))

    @pytest.mark.parametrize("schedule", [None, SCHEDULE])
    def test_profile_tsvl_bit_identical_to_pre_dsl(self, schedule):
        old = _old_profile_tsvl(
            900, schedule, profile_length=6.0, physics_hz=100.0
        )
        new = _profile_tsvl(
            900, schedule, profile_length=6.0, physics_hz=100.0
        )
        assert new.tsvl == old.tsvl

    @pytest.mark.parametrize("attack_rate", [None, 5.0])
    def test_detector_flight_bit_identical_to_pre_dsl(self, attack_rate):
        old = _old_detector_flight(
            901, self.SCHEDULE, attack_rate, duration=4.0, physics_hz=100.0
        )
        new = _detector_flight(
            901, self.SCHEDULE, attack_rate, duration=4.0, physics_hz=100.0
        )
        assert new == old


# --- engine equivalence and the golden pin ---


def _snapshot(result):
    return {
        "benign": list(result.benign),
        "attack1": list(result.attack1),
        "attack2": list(result.attack2),
        "thresholds": list(result.thresholds),
        "rates": {
            repr(t): list(result.rates[t]) for t in result.thresholds
        },
    }


class TestFig9Engines:
    @pytest.fixture(scope="class")
    def serial(self):
        return _snapshot(run_fig9(**FIG9))

    def test_workers_bit_identical(self, serial):
        assert _snapshot(run_fig9(**FIG9, workers=4)) == serial

    def test_vectorized_bit_identical(self, serial):
        assert _snapshot(run_fig9(**FIG9, engine="vectorized")) == serial

    def test_matches_golden_file(self, serial):
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(
                json.dumps(serial, indent=1, sort_keys=True) + "\n"
            )
            pytest.skip(f"regenerated {GOLDEN}")
        golden = json.loads(GOLDEN.read_text())
        assert serial == golden


class TestGoldenFileSanity:
    def test_checked_in_golden_is_well_formed(self):
        golden = json.loads(GOLDEN.read_text())
        assert set(golden) == {
            "benign", "attack1", "attack2", "thresholds", "rates",
        }
        assert len(golden["benign"]) == FIG9["trials"]
        assert sorted(float(k) for k in golden["rates"]) == sorted(
            golden["thresholds"]
        )
        # Attack 1 (fast roll creep) must separate from benign at the
        # tight threshold — the paper's Fig. 9b story.
        for values in golden["rates"].values():
            fpr, tp1, tp2 = values
            assert 0.0 <= fpr <= 1.0
            assert 0.0 <= tp1 <= 1.0
            assert 0.0 <= tp2 <= 1.0
