"""The robustness-matrix experiment: determinism, wiring, CLI flags.

The sweep must be a pure function of (seed, schedule): serial, parallel
and repeated runs produce identical matrices, including any retry and
degraded-data paths taken inside the trials.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.robustness_matrix import (
    _cell_schedule,
    _jaccard,
    run_robustness,
)
from repro.faults import FaultSchedule, FaultSpec
from repro.faults.schedule import FaultConfigError

#: Smallest sweep that still exercises sensor + detector + Algorithm 1.
TINY = dict(
    kinds=("gps_glitch",),
    intensities=(0.4,),
    trials=2,
    profile_length=6.0,
    detector_duration=4.0,
    physics_hz=100.0,
    base_seed=900,
)


def _cells(result):
    return [
        (c.kind, c.intensity, c.jaccard, c.fpr, c.tpr, c.degraded, c.failed)
        for c in result.cells
    ]


class TestJaccard:
    def test_empty_sets_agree(self):
        assert _jaccard([], []) == 1.0

    def test_partial_overlap(self):
        assert _jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)


class TestCellSchedule:
    def test_single_kind_cell(self):
        schedule = _cell_schedule("baro_drift", 0.5, None)
        assert len(schedule) == 1
        (spec,) = schedule
        assert spec.kind == "baro_drift" and spec.intensity == 0.5

    def test_base_schedule_scaled(self):
        base = FaultSchedule((
            FaultSpec(kind="gps_glitch", intensity=0.4),
            FaultSpec(kind="link_loss", intensity=0.2),
        ))
        scaled = _cell_schedule("schedule", 0.5, base)
        assert [s.intensity for s in scaled] == [0.2, 0.1]
        assert [s.kind for s in scaled] == ["gps_glitch", "link_loss"]


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_robustness(**TINY)

    def test_rerun_is_identical(self, serial):
        assert _cells(run_robustness(**TINY)) == _cells(serial)

    def test_workers_match_serial(self, serial):
        parallel = run_robustness(**TINY, workers=2)
        assert _cells(parallel) == _cells(serial)

    def test_matrix_shape_and_sanity(self, serial):
        assert len(serial.cells) == 1
        cell = serial.cell("gps_glitch", 0.4)
        assert 0.0 <= cell.jaccard <= 1.0
        assert cell.failed == 0.0
        assert serial.baseline_tsvl_size > 0
        text = serial.render()
        assert "gps_glitch" in text and "Jaccard" in text


class TestScheduleJsonMode:
    def test_kinds_collapse_to_schedule_axis(self):
        with open("examples/fault_schedule.json", encoding="utf-8") as fh:
            text = fh.read()
        result = run_robustness(
            schedule_json=text,
            intensities=(0.3,),
            trials=1,
            profile_length=6.0,
            detector_duration=4.0,
            physics_hz=100.0,
            base_seed=910,
        )
        assert [c.kind for c in result.cells] == ["schedule"]

    def test_invalid_json_fails_fast(self):
        with pytest.raises(FaultConfigError, match="invalid"):
            run_robustness(schedule_json="{not json", trials=1)
        with pytest.raises(FaultConfigError, match="unknown fault kind"):
            run_robustness(
                schedule_json=json.dumps(
                    {"version": 1, "faults": [{"kind": "gremlins"}]}
                ),
                trials=1,
            )


class TestRegistryAndCli:
    def test_registered_as_experiment(self):
        from repro.experiments.runner import experiment_entry

        assert experiment_entry("robustness") is run_robustness

    def test_parser_accepts_robustness_flags(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args([
            "table", "robustness", "--trials", "1",
            "--kinds", "gps_glitch,link_loss", "--intensities", "0.1,0.5",
            "--fault-schedule", "examples/fault_schedule.json",
            "--physics-hz", "100", "--profile-length", "6",
            "--detector-duration", "4",
        ])
        assert args.which == "robustness" and args.trials == 1

    def test_robustness_flags_rejected_for_paper_tables(self, capsys):
        from repro.__main__ import _cmd_table, build_parser

        args = build_parser().parse_args(["table", "1", "--trials", "2"])
        assert _cmd_table(args) == 2
        assert "only valid with 'table robustness'" in capsys.readouterr().err

    def test_kwargs_built_from_flags(self, tmp_path):
        from repro.__main__ import _robustness_kwargs, build_parser

        sched = tmp_path / "s.json"
        FaultSchedule.single("link_loss", intensity=0.2).to_json(sched)
        args = build_parser().parse_args([
            "table", "robustness", "--fault-schedule", str(sched),
            "--trials", "2", "--intensities", "0.1,0.5",
        ])
        kwargs = _robustness_kwargs(args)
        assert kwargs["trials"] == 2
        assert kwargs["intensities"] == (0.1, 0.5)
        assert json.loads(kwargs["schedule_json"])["faults"][0]["kind"] == "link_loss"
