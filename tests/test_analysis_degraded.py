"""Algorithm 1 on pathological inputs: prune-with-reason, never raise.

Property-based coverage of the degraded-data contract: whatever mix of
NaN runs, frozen (constant-after-k) columns and too-short series a
faulted profiling campaign produces, every stage of the pipeline —
correlation → pruning → clustering → stepwise → TSVL — must degrade
gracefully, with each dropped variable accounted for by a reason in the
pruning report or a note on the result.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import correlation_matrix, pearson
from repro.analysis.pruning import prune_state_variables
from repro.analysis.stepwise import stepwise_aic
from repro.analysis.tsvl import generate_tsvl
from repro.utils.timeseries import TraceTable

N_SAMPLES = 60


def _healthy_column(rng: np.random.Generator, phase: float) -> np.ndarray:
    t = np.linspace(0.0, 6.0, N_SAMPLES)
    return np.sin(t + phase) + 0.2 * rng.normal(size=N_SAMPLES)


def _build_table(columns: dict[str, np.ndarray]) -> TraceTable:
    table = TraceTable(list(columns))
    n = len(next(iter(columns.values())))
    for i in range(n):
        table.append_row(
            float(i) / 16.0, {name: float(v[i]) for name, v in columns.items()}
        )
    return table


#: (strategy label, corruptor) — each turns a healthy column pathological.
def _corrupt(values: np.ndarray, mode: str, pos: int, run: int) -> np.ndarray:
    out = values.copy()
    if mode == "nan_run":
        out[pos : pos + run] = np.nan
    elif mode == "constant_after_k":
        out[pos:] = out[pos]
    elif mode == "all_constant":
        out[:] = 1.7856
    return out


pathology = st.fixed_dictionaries({
    "mode": st.sampled_from(["nan_run", "constant_after_k", "all_constant"]),
    "pos": st.integers(min_value=0, max_value=N_SAMPLES - 8),
    "run": st.integers(min_value=1, max_value=N_SAMPLES),
    "seed": st.integers(min_value=0, max_value=2**16),
})


def _pathological_table(params) -> tuple[TraceTable, str]:
    """A 4-column table with one corrupted column; returns its name."""
    rng = np.random.default_rng(params["seed"])
    columns = {
        "RESP": _healthy_column(rng, 0.0),
        "A": _healthy_column(rng, 0.4),
        "B": _healthy_column(rng, 0.9),
        "BAD": _corrupt(
            _healthy_column(rng, 1.3), params["mode"], params["pos"],
            params["run"],
        ),
    }
    return _build_table(columns), "BAD"


class TestPruningAccountsForEverything:
    @given(params=pathology)
    @settings(max_examples=40, deadline=None)
    def test_pathological_column_pruned_with_reason(self, params):
        table, bad = _pathological_table(params)
        report = prune_state_variables(table)
        if params["mode"] == "nan_run":
            # NaN anywhere always disqualifies; the frozen/constant modes
            # may leave enough early variance to legitimately survive.
            assert bad in report.dropped
        assert set(report.kept) | set(report.dropped) == set(table.columns)
        assert set(report.kept) & set(report.dropped) == set()
        for name in report.dropped:
            assert report.dropped[name]  # non-empty reason string

    def test_too_short_series_pruned_with_reason(self):
        table = _build_table({"X": np.array([1.0, 2.0]),
                              "Y": np.array([3.0, 1.0])})
        report = prune_state_variables(table)
        assert report.dropped["X"].startswith("too few samples")
        assert report.kept == []


class TestCorrelationOnDegradedData:
    @given(params=pathology)
    @settings(max_examples=40, deadline=None)
    def test_matrix_never_raises_and_masks_bad_columns(self, params):
        table, bad = _pathological_table(params)
        corr = correlation_matrix(table)
        if params["mode"] in ("nan_run", "all_constant"):
            # Undefined coefficient → masked as NaN. A constant-after-k
            # column still has variance, so its coefficient is defined.
            assert math.isnan(corr.value(bad, "A"))
        assert corr.value("A", "B") == pytest.approx(
            pearson(table.column("A"), table.column("B"))
        )

    def test_pearson_nan_on_nonfinite_or_constant(self):
        x = np.array([1.0, np.nan, 3.0, 4.0])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert math.isnan(pearson(x, y))
        assert math.isnan(pearson(np.full(4, 2.0), y))


class TestStepwiseOnDegradedData:
    @given(params=pathology)
    @settings(max_examples=25, deadline=None)
    def test_unfittable_moves_are_skipped_not_fatal(self, params):
        table, bad = _pathological_table(params)
        # Feed the corrupted column straight to stepwise (bypassing the
        # pruning that would normally protect it): moves that cannot be
        # fitted must be treated as non-improving, never as exceptions.
        result = stepwise_aic(table, "RESP", ["A", "B", bad])
        assert set(result.selected) <= {"A", "B", bad}


class TestTsvlEndToEnd:
    @given(params=pathology)
    @settings(max_examples=25, deadline=None)
    def test_pipeline_never_raises_and_accounts_for_drops(self, params):
        table, bad = _pathological_table(params)
        result = generate_tsvl(table, ["RESP"])
        if params["mode"] in ("nan_run", "all_constant"):
            # Columns with undefined statistics can never be selected; a
            # column frozen only part-way is legitimately usable data.
            assert bad not in result.tsvl
            assert bad in result.pruning.dropped
        accounted = set(result.pruning.kept) | set(result.pruning.dropped)
        assert accounted == set(table.columns)

    def test_all_pathological_table_degrades_with_notes(self):
        rng = np.random.default_rng(5)
        table = _build_table({
            "RESP": np.full(N_SAMPLES, np.nan),
            "A": np.full(N_SAMPLES, 3.0),
            "B": _corrupt(_healthy_column(rng, 0.2), "nan_run", 10, 50),
        })
        result = generate_tsvl(table, ["RESP"])
        assert result.degraded and result.tsvl == []
        assert set(result.pruning.dropped) == {"RESP", "A", "B"}
        assert any("fewer than two variables" in n for n in result.notes)

    def test_near_empty_dataset_degrades_with_notes(self):
        table = TraceTable(["RESP", "A"])
        table.append_row(0.0, {"RESP": 1.0, "A": 2.0})
        result = generate_tsvl(table, ["RESP"])
        assert result.degraded and result.tsvl == []
        assert set(result.pruning.dropped) == {"RESP", "A"}
        assert result.selection_ratio == 0.0

    def test_healthy_table_not_degraded(self):
        rng = np.random.default_rng(11)
        table = _build_table({
            "RESP": _healthy_column(rng, 0.0),
            "A": _healthy_column(rng, 0.4),
            "B": _healthy_column(rng, 0.9),
        })
        result = generate_tsvl(table, ["RESP"])
        assert not result.degraded and result.notes == []
