"""Tests for the ``python -m repro`` command-line interface."""

import json
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main

SCHEMAS = Path(__file__).resolve().parent.parent / "schemas"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fly_defaults(self):
        args = build_parser().parse_args(["fly"])
        assert args.shape == "square"
        assert args.size == 25.0

    def test_assess_options(self):
        args = build_parser().parse_args(
            ["assess", "--kind", "PID", "--episodes", "3", "--with-detector"]
        )
        assert args.episodes == 3
        assert args.with_detector

    def test_fig_number(self):
        args = build_parser().parse_args(["fig", "6"])
        assert args.number == "6"

    def test_telemetry_flags(self):
        args = build_parser().parse_args(
            ["fig", "9", "--trace", "t.json", "--metrics-out", "m.json",
             "--log-level", "DEBUG", "--log-json"]
        )
        assert args.trace == "t.json"
        assert args.metrics_out == "m.json"
        assert args.log_level == "DEBUG"
        assert args.log_json
        # The same flags exist on assess and table.
        assert build_parser().parse_args(
            ["assess", "--trace", "t.json"]).trace == "t.json"
        assert build_parser().parse_args(
            ["table", "1", "--metrics-out", "m.json"]).metrics_out == "m.json"

    def test_obs_subcommands(self):
        summary = build_parser().parse_args(["obs", "summary", "a", "b"])
        assert summary.paths == ["a", "b"]
        validate = build_parser().parse_args(["obs", "validate", "a", "s"])
        assert validate.artifact == "a" and validate.schema == "s"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "342" in out

    def test_unknown_fig(self, capsys):
        assert main(["fig", "99"]) == 2

    def test_fly_small(self, capsys):
        code = main(["fly", "--shape", "line", "--size", "15", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "COMPLETE" in out


class TestTelemetryCommands:
    def test_table_emits_valid_trace_and_metrics(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.obs.schema import validate_file

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(["table", "1", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        assert validate_file(trace, SCHEMAS / "trace.schema.json") == []
        assert validate_file(metrics, SCHEMAS / "metrics.schema.json") == []
        events = json.loads(trace.read_text())["traceEvents"]
        assert "experiment" in {e["name"] for e in events}
        counters = json.loads(metrics.read_text())["counters"]
        assert any(key.startswith("cache.") for key in counters)

    def test_obs_summary_renders_both_artifacts(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        main(["table", "1", "--trace", str(trace),
              "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(["obs", "summary", str(trace), str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "%wall" in out
        assert "counter" in out

    def test_obs_validate_rejects_bad_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "not-a-list"}')
        assert main(["obs", "validate", str(bad),
                     str(SCHEMAS / "trace.schema.json")]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_obs_commands_handle_non_json_cleanly(self, tmp_path, capsys):
        """No raw tracebacks: error:/rc-2 from summary, invalid/rc-1 from
        validate."""
        rogue = tmp_path / "rogue.json"
        rogue.write_text("not json at all\n")
        assert main(["obs", "summary", str(rogue)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["obs", "validate", str(rogue),
                     str(SCHEMAS / "trace.schema.json")]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_trace_does_not_change_table_output(
        self, tmp_path, monkeypatch, capsys
    ):
        """Telemetry flags must not perturb the rendered science."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        main(["table", "1"])
        plain = capsys.readouterr().out
        main(["table", "1", "--no-cache", "--trace", str(tmp_path / "t.json")])
        traced = capsys.readouterr().out
        assert traced == plain
