"""Tests for the ``python -m repro`` command-line interface."""

import json
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main

SCHEMAS = Path(__file__).resolve().parent.parent / "schemas"


def _cli_trial(seed: int) -> dict[str, float]:
    return {"m": float(seed) * 3.0}


def _cli_flaky_trial(seed: int) -> dict[str, float]:
    if seed >= 1:
        raise ValueError(f"boom {seed}")
    return _cli_trial(seed)


def _cli_interrupting_trial(seed: int) -> dict[str, float]:
    if seed == 2:
        raise KeyboardInterrupt
    return _cli_trial(seed)


def _campaign_entry(_trial=_cli_trial, workers=0, cache=None, policy=None,
                    manifest=None, resume=False):
    """Fake campaign-style experiment entry, registered over table1 in
    tests so the resilience flags exercise a real ``run_campaign``."""
    from repro.experiments.campaign import run_campaign

    return run_campaign(
        _trial, range(4), workers=workers, cache=cache,
        experiment_name="cli-chaos", policy=policy, manifest=manifest,
        resume=resume,
    )


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fly_defaults(self):
        args = build_parser().parse_args(["fly"])
        assert args.shape == "square"
        assert args.size == 25.0

    def test_assess_options(self):
        args = build_parser().parse_args(
            ["assess", "--kind", "PID", "--episodes", "3", "--with-detector"]
        )
        assert args.episodes == 3
        assert args.with_detector

    def test_fig_number(self):
        args = build_parser().parse_args(["fig", "6"])
        assert args.number == "6"

    def test_telemetry_flags(self):
        args = build_parser().parse_args(
            ["fig", "9", "--trace", "t.json", "--metrics-out", "m.json",
             "--log-level", "DEBUG", "--log-json"]
        )
        assert args.trace == "t.json"
        assert args.metrics_out == "m.json"
        assert args.log_level == "DEBUG"
        assert args.log_json
        # The same flags exist on assess and table.
        assert build_parser().parse_args(
            ["assess", "--trace", "t.json"]).trace == "t.json"
        assert build_parser().parse_args(
            ["table", "1", "--metrics-out", "m.json"]).metrics_out == "m.json"

    def test_obs_subcommands(self):
        summary = build_parser().parse_args(["obs", "summary", "a", "b"])
        assert summary.paths == ["a", "b"]
        validate = build_parser().parse_args(["obs", "validate", "a", "s"])
        assert validate.artifact == "a" and validate.schema == "s"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "342" in out

    def test_unknown_fig(self, capsys):
        assert main(["fig", "99"]) == 2

    def test_fly_small(self, capsys):
        code = main(["fly", "--shape", "line", "--size", "15", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "COMPLETE" in out


class TestResilienceCLI:
    """Error paths of --seed-timeout/--max-retries/--failure-budget/
    --resume/--manifest (satellite of the fault-tolerance issue)."""

    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["fig", "9", "--seed-timeout", "30", "--max-retries", "3",
             "--failure-budget", "2", "--manifest", "m.jsonl", "--resume"]
        )
        assert args.seed_timeout == 30.0
        assert args.max_retries == 3
        assert args.failure_budget == 2
        assert args.manifest == "m.jsonl"
        assert args.resume
        # Same flags on table; all default to the legacy behaviour.
        table = build_parser().parse_args(["table", "1"])
        assert table.seed_timeout is None and not table.resume

    def test_seed_timeout_zero_is_a_clean_error(self, capsys):
        assert main(["table", "1", "--seed-timeout", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "timeout must be > 0" in err

    def test_resume_on_non_campaign_experiment(self, capsys):
        assert main(["table", "1", "--resume"]) == 2
        assert "does not support --resume" in capsys.readouterr().err

    def test_resume_without_manifest(self, tmp_path, monkeypatch, capsys):
        from functools import partial

        from repro.experiments import runner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setitem(runner.EXPERIMENTS, "table1",
                            partial(_campaign_entry, _cli_trial))
        assert main(["table", "1", "--resume"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "cannot resume" in err

    def test_failure_budget_exhausted_mid_campaign(
        self, tmp_path, monkeypatch, capsys
    ):
        from functools import partial

        from repro.experiments import runner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setitem(runner.EXPERIMENTS, "table1",
                            partial(_campaign_entry, _cli_flaky_trial))
        manifest = tmp_path / "m.jsonl"
        assert main(["table", "1", "--failure-budget", "0",
                     "--max-retries", "0", "--manifest", str(manifest)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "failure budget exhausted" in err
        # The seed that completed before the abort is checkpointed.
        from repro.experiments.faults import CampaignManifest

        assert CampaignManifest(manifest).load()[0].finished

    def test_keyboard_interrupt_flushes_manifest(
        self, tmp_path, monkeypatch, capsys
    ):
        from functools import partial

        from repro.experiments import runner
        from repro.experiments.faults import CampaignManifest

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setitem(runner.EXPERIMENTS, "table1",
                            partial(_campaign_entry, _cli_interrupting_trial))
        manifest = tmp_path / "m.jsonl"
        assert main(["table", "1", "--manifest", str(manifest)]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "--resume" in err
        records = CampaignManifest(manifest).load()
        assert sorted(records) == [0, 1]  # flushed before the interrupt
        assert all(r.finished for r in records.values())

    def test_manifest_schema_covered_by_obs_validate(
        self, tmp_path, monkeypatch, capsys
    ):
        from functools import partial

        from repro.experiments import runner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setitem(runner.EXPERIMENTS, "table1",
                            partial(_campaign_entry, _cli_trial))
        manifest = tmp_path / "m.jsonl"
        assert main(["table", "1", "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        assert main(["obs", "validate", str(manifest),
                     str(SCHEMAS / "manifest.schema.json")]) == 0
        assert "valid" in capsys.readouterr().out


class TestTelemetryCommands:
    def test_table_emits_valid_trace_and_metrics(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.obs.schema import validate_file

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(["table", "1", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        assert validate_file(trace, SCHEMAS / "trace.schema.json") == []
        assert validate_file(metrics, SCHEMAS / "metrics.schema.json") == []
        events = json.loads(trace.read_text())["traceEvents"]
        assert "experiment" in {e["name"] for e in events}
        counters = json.loads(metrics.read_text())["counters"]
        assert any(key.startswith("cache.") for key in counters)

    def test_obs_summary_renders_both_artifacts(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        main(["table", "1", "--trace", str(trace),
              "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(["obs", "summary", str(trace), str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "%wall" in out
        assert "counter" in out

    def test_obs_validate_rejects_bad_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "not-a-list"}')
        assert main(["obs", "validate", str(bad),
                     str(SCHEMAS / "trace.schema.json")]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_obs_commands_handle_non_json_cleanly(self, tmp_path, capsys):
        """No raw tracebacks: error:/rc-2 from summary, invalid/rc-1 from
        validate."""
        rogue = tmp_path / "rogue.json"
        rogue.write_text("not json at all\n")
        assert main(["obs", "summary", str(rogue)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["obs", "validate", str(rogue),
                     str(SCHEMAS / "trace.schema.json")]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_trace_does_not_change_table_output(
        self, tmp_path, monkeypatch, capsys
    ):
        """Telemetry flags must not perturb the rendered science."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        main(["table", "1"])
        plain = capsys.readouterr().out
        main(["table", "1", "--no-cache", "--trace", str(tmp_path / "t.json")])
        traced = capsys.readouterr().out
        assert traced == plain
