"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fly_defaults(self):
        args = build_parser().parse_args(["fly"])
        assert args.shape == "square"
        assert args.size == 25.0

    def test_assess_options(self):
        args = build_parser().parse_args(
            ["assess", "--kind", "PID", "--episodes", "3", "--with-detector"]
        )
        assert args.episodes == 3
        assert args.with_detector

    def test_fig_number(self):
        args = build_parser().parse_args(["fig", "6"])
        assert args.number == "6"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "342" in out

    def test_unknown_fig(self, capsys):
        assert main(["fig", "99"]) == 2

    def test_fly_small(self, capsys):
        code = main(["fly", "--shape", "line", "--size", "15", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "COMPLETE" in out
