"""Cyber-physical fault layer: schedules, injectors, link faults, retries.

Covers the contracts the robustness sweep depends on:

* schedules validate, round-trip and derive per-spec RNG streams;
* every injector is deterministic from (seed, schedule) and never mutates
  the (possibly held/shared) samples it receives;
* an *empty* schedule is bit-identical to no schedule at all;
* link handler exceptions cannot wedge the queue; the proxy and the
  PARAM_SET attack survive a lossy channel with bounded, counted retries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LinkError
from repro.faults import (
    ActuatorFaultInjector,
    ChannelFaultModel,
    FaultSchedule,
    FaultSpec,
    SensorFaultInjector,
)
from repro.faults.schedule import FAULT_KINDS, FaultConfigError
from repro.gcs.link import Link
from repro.gcs.messages import Heartbeat, MavResult, ParamSet, ParamValue
from repro.gcs.proxy import MavProxy
from repro.sensors.barometer import BaroSample
from repro.sensors.gps import GpsSample
from repro.sensors.imu import ImuSample
from repro.sensors.magnetometer import MagSample
from repro.sensors.suite import SensorReadings

from .conftest import make_vehicle


def readings_at(t: float = 1.0) -> SensorReadings:
    """A healthy, fully-populated sensor bundle."""
    return SensorReadings(
        imu=ImuSample(
            gyro=np.array([0.01, -0.02, 0.005]),
            accel=np.array([0.1, 0.0, -9.81]),
            time_s=t,
        ),
        gps=GpsSample(
            position=np.array([1.0, 2.0, -10.0]),
            velocity=np.array([0.5, 0.0, 0.0]),
            num_sats=10,
            hdop=0.9,
            time_s=t,
        ),
        baro=BaroSample(altitude=10.0, pressure=101200.0, temperature=15.0,
                        time_s=t),
        mag=MagSample(field=np.array([200.0, 0.0, 430.0]), time_s=t),
        time_s=t,
    )


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault kind"):
            FaultSpec(kind="engine_on_fire")

    def test_bad_windows_rejected(self):
        with pytest.raises(FaultConfigError, match="start"):
            FaultSpec(kind="gps_glitch", start=-1.0)
        with pytest.raises(FaultConfigError, match="duration"):
            FaultSpec(kind="gps_glitch", duration=0.0)
        with pytest.raises(FaultConfigError, match="intensity"):
            FaultSpec(kind="gps_glitch", intensity=-0.1)
        with pytest.raises(FaultConfigError, match="motor"):
            FaultSpec(kind="motor_lag", motor=4)

    def test_window_membership(self):
        spec = FaultSpec(kind="baro_drift", start=2.0, duration=3.0)
        assert not spec.active(1.99)
        assert spec.active(2.0)
        assert spec.active(4.99)
        assert not spec.active(5.0)
        open_ended = FaultSpec(kind="baro_drift", start=2.0)
        assert open_ended.active(1e9)

    def test_entry_roundtrip_and_unknown_keys(self):
        spec = FaultSpec(kind="motor_efficiency", start=1.5, duration=2.0,
                         intensity=0.4, motor=2)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(FaultConfigError, match="unknown fault entry keys"):
            FaultSpec.from_dict({"kind": "gps_glitch", "severity": 2})
        with pytest.raises(FaultConfigError, match="missing required key"):
            FaultSpec.from_dict({"start": 0.0})


class TestFaultSchedule:
    def test_roundtrip_via_file(self, tmp_path):
        schedule = FaultSchedule((
            FaultSpec(kind="gps_dropout", start=1.0, duration=2.0),
            FaultSpec(kind="motor_lag", intensity=0.3, motor=1),
            FaultSpec(kind="link_loss", intensity=0.5),
        ))
        path = schedule.to_json(tmp_path / "sched.json")
        loaded = FaultSchedule.from_json(path)
        assert loaded == schedule
        assert not loaded.empty and len(loaded) == 3

    def test_document_validation(self):
        with pytest.raises(FaultConfigError, match="version"):
            FaultSchedule.from_dict({"version": 2, "faults": []})
        with pytest.raises(FaultConfigError, match="'faults' array"):
            FaultSchedule.from_dict({"version": 1})
        with pytest.raises(FaultConfigError, match="not found"):
            FaultSchedule.from_json("/nonexistent/sched.json")

    def test_of_kinds_keeps_schedule_indices(self):
        schedule = FaultSchedule((
            FaultSpec(kind="link_loss"),
            FaultSpec(kind="gps_glitch"),
            FaultSpec(kind="motor_lag"),
            FaultSpec(kind="imu_noise_burst"),
        ))
        sensor_entries = schedule.of_kinds(("gps_glitch", "imu_noise_burst"))
        assert [i for i, _ in sensor_entries] == [1, 3]

    def test_rng_streams_keyed_by_seed_and_index(self):
        schedule = FaultSchedule.single("gps_glitch")
        a = schedule.rng_for(7, 0).normal(size=4)
        b = schedule.rng_for(7, 0).normal(size=4)
        c = schedule.rng_for(7, 1).normal(size=4)
        d = schedule.rng_for(8, 0).normal(size=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)

    def test_checked_in_example_matches_schema(self):
        from repro.obs.schema import validate_file

        assert validate_file(
            "examples/fault_schedule.json",
            "schemas/fault_schedule.schema.json",
        ) == []

    def test_schema_rejects_bad_document(self, tmp_path):
        from repro.obs.schema import validate_file

        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 1, "faults": [{"kind": "nope"}]}')
        assert validate_file(str(bad), "schemas/fault_schedule.schema.json")

    def test_every_kind_is_in_schema_enum(self):
        import json

        with open("schemas/fault_schedule.schema.json") as fh:
            schema = json.load(fh)
        enum = schema["properties"]["faults"]["items"]["properties"]["kind"]["enum"]
        assert sorted(enum) == sorted(FAULT_KINDS)


class TestSensorFaultInjector:
    def test_empty_and_inactive_windows_are_identity(self):
        injector = SensorFaultInjector(FaultSchedule(), seed=1)
        assert injector.empty
        r = readings_at(1.0)
        active = SensorFaultInjector(
            FaultSchedule.single("gps_glitch", start=5.0), seed=1
        )
        assert active.apply(r, 1.0) is r  # window not yet open

    def test_gps_dropout(self):
        injector = SensorFaultInjector(FaultSchedule.single("gps_dropout"))
        out = injector.apply(readings_at(), 1.0)
        assert np.isnan(out.gps.position).all()
        assert np.isnan(out.gps.velocity).all()
        assert out.gps.num_sats == 0 and out.gps.hdop > 50.0

    def test_gps_glitch_deterministic_and_nonmutating(self):
        schedule = FaultSchedule.single("gps_glitch", intensity=0.5)
        r = readings_at()
        original = r.gps.position.copy()
        a = SensorFaultInjector(schedule, seed=3).apply(r, 1.0)
        b = SensorFaultInjector(schedule, seed=3).apply(r, 1.0)
        np.testing.assert_array_equal(a.gps.position, b.gps.position)
        assert not np.array_equal(a.gps.position, original)
        np.testing.assert_array_equal(r.gps.position, original)  # untouched

    def test_imu_bias_step_constant_within_window(self):
        injector = SensorFaultInjector(
            FaultSchedule.single("imu_bias_step", intensity=1.0)
        )
        r = readings_at()
        bias1 = injector.apply(r, 1.0).imu.gyro - r.imu.gyro
        bias2 = injector.apply(r, 2.0).imu.gyro - r.imu.gyro
        np.testing.assert_array_equal(bias1, bias2)
        assert np.linalg.norm(bias1) == pytest.approx(0.05)

    def test_baro_drift_ramp(self):
        injector = SensorFaultInjector(
            FaultSchedule.single("baro_drift", intensity=1.0, start=2.0)
        )
        r = readings_at()
        assert injector.apply(r, 4.0).baro.altitude == pytest.approx(
            r.baro.altitude + 0.5 * 2.0
        )
        out = injector.apply(r, 6.0)
        assert out.baro.altitude == pytest.approx(r.baro.altitude + 0.5 * 4.0)
        assert out.baro.pressure < r.baro.pressure  # higher alt, lower P

    def test_sensor_freeze_holds_first_in_window_bundle(self):
        injector = SensorFaultInjector(
            FaultSchedule.single("sensor_freeze", start=1.0)
        )
        first = injector.apply(readings_at(1.0), 1.0)
        r2 = readings_at(2.0)
        frozen = injector.apply(r2, 2.0)
        assert frozen is first and frozen is not r2

    def test_reset_replays_identical_stream(self):
        injector = SensorFaultInjector(
            FaultSchedule.single("imu_noise_burst", intensity=0.8), seed=9
        )
        r = readings_at()
        run1 = [injector.apply(r, t).imu.gyro for t in (1.0, 2.0, 3.0)]
        injector.reset()
        run2 = [injector.apply(r, t).imu.gyro for t in (1.0, 2.0, 3.0)]
        for a, b in zip(run1, run2):
            np.testing.assert_array_equal(a, b)
        assert injector.applied["imu_noise_burst"] == 3


class TestActuatorFaultInjector:
    def test_efficiency_loss_masks_one_motor(self):
        injector = ActuatorFaultInjector(
            FaultSchedule.single("motor_efficiency", intensity=0.2)
        )
        commands = np.full(4, 0.5)
        np.testing.assert_allclose(
            injector.apply(commands, 1.0, 0.0025), np.full(4, 0.45)
        )
        masked = ActuatorFaultInjector(FaultSchedule((
            FaultSpec(kind="motor_efficiency", intensity=0.2, motor=1),
        )))
        np.testing.assert_allclose(
            masked.apply(commands, 1.0, 0.0025), [0.5, 0.45, 0.5, 0.5]
        )

    def test_lag_filter_tracks_command(self):
        injector = ActuatorFaultInjector(
            FaultSchedule.single("motor_lag", intensity=1.0)
        )
        dt = 0.0025
        out = injector.apply(np.full(4, 0.2), 1.0, dt)
        np.testing.assert_allclose(out, np.full(4, 0.2))  # seeded at entry
        step = None
        for _ in range(2000):
            step = injector.apply(np.full(4, 0.8), 1.0, dt)
        np.testing.assert_allclose(step, np.full(4, 0.8), atol=1e-3)

    def test_outside_window_is_identity(self):
        injector = ActuatorFaultInjector(
            FaultSchedule.single("motor_efficiency", start=10.0)
        )
        commands = np.full(4, 0.6)
        np.testing.assert_array_equal(
            injector.apply(commands, 1.0, 0.0025), commands
        )


class TestChannelFaultModel:
    def test_loss_and_counters(self):
        model = ChannelFaultModel(
            FaultSchedule.single("link_loss", intensity=1.0), seed=4,
            steps_per_second=100.0,
        )
        fates = [model.transmit(step) for step in range(200)]
        dropped = sum(1 for f in fates if not f)
        assert dropped == model.dropped
        assert 150 < dropped < 200  # capped at 0.95

    def test_delay_duplicate_reorder(self):
        delay = ChannelFaultModel(FaultSchedule.single("link_delay", intensity=0.5))
        assert delay.transmit(0) == [20]
        dup = ChannelFaultModel(FaultSchedule.single("link_duplicate", intensity=1.0))
        assert dup.transmit(0) == [0, 1]
        reorder = ChannelFaultModel(FaultSchedule.single("link_reorder", intensity=1.0))
        (bump,) = reorder.transmit(0)
        assert 1 <= bump <= 8
        assert dup.duplicated == 1 and reorder.reordered == 1

    def test_reset_replays_fates(self):
        model = ChannelFaultModel(
            FaultSchedule.single("link_loss", intensity=0.5), seed=6
        )
        first = [model.transmit(s) for s in range(50)]
        model.reset()
        second = [model.transmit(s) for s in range(50)]
        assert first == second

    def test_window_respects_steps_per_second(self):
        model = ChannelFaultModel(
            FaultSchedule.single("link_delay", intensity=1.0, start=1.0),
            steps_per_second=100.0,
        )
        assert model.transmit(50) == [0]  # 0.5 s: window closed
        assert model.transmit(150) == [40]  # 1.5 s: active


class TestLinkRobustness:
    def test_handler_exception_does_not_wedge_queue(self):
        link = Link()
        calls = []

        def handler(msg):
            calls.append(msg)
            if len(calls) == 1:
                raise RuntimeError("boom")
            return ParamValue(name="X", value=1.0, ok=True)

        link.register_handler(Heartbeat, handler)
        link.send(Heartbeat())
        link.send(Heartbeat())
        assert link.service() == 2
        assert link.handler_errors == 1
        assert isinstance(link.receive(), ParamValue)  # second one replied

    def test_missing_handler_still_raises(self):
        link = Link()
        link.send(Heartbeat())
        with pytest.raises(LinkError, match="no handler"):
            link.service()

    def test_faultfree_heap_preserves_fifo(self):
        link = Link(latency_steps=2)
        seen = []
        link.register_handler(ParamSet, lambda m: seen.append(m.name))
        for name in "abcde":
            link.send(ParamSet(name=name, value=0.0))
        for _ in range(3):
            link.service()
        assert seen == list("abcde")

    def test_channel_duplicate_delivers_copies(self):
        model = ChannelFaultModel(
            FaultSchedule.single("link_duplicate", intensity=1.0),
            steps_per_second=100.0,
        )
        link = Link(channel_faults=model)
        seen = []
        link.register_handler(Heartbeat, lambda m: seen.append(m))
        link.send(Heartbeat())
        link.service()
        link.service()
        assert len(seen) == 2

    def test_channel_loss_counts_dropped(self):
        model = ChannelFaultModel(
            FaultSchedule.single("link_loss", intensity=1.0), seed=2,
            steps_per_second=100.0,
        )
        link = Link(channel_faults=model)
        link.register_handler(Heartbeat, lambda m: None)
        for _ in range(50):
            link.send(Heartbeat())
            link.service()
        assert link.dropped_count == model.dropped > 0


def _acked_link(channel_faults=None, fail_first=0):
    """A link whose vehicle side acks PARAM_SET, optionally eating a few."""
    link = Link(latency_steps=1, channel_faults=channel_faults)
    state = {"drops": fail_first}

    def handler(msg):
        if state["drops"] > 0:
            state["drops"] -= 1
            return None  # vehicle heard it but the ack path is silent
        return ParamValue(name=msg.name, value=msg.value, ok=True)

    link.register_handler(ParamSet, handler)
    return link


class TestProxyRetries:
    def test_param_set_retries_until_acked(self):
        link = _acked_link(fail_first=2)
        proxy = MavProxy(link, pump=link.service, ack_timeout_steps=5, retries=3)
        reply = proxy.param_set("ATC_RAT_RLL_P", 0.1)
        assert reply.ok
        assert proxy.retry_count == 2 and proxy.timeout_count == 2

    def test_param_set_exhausts_retries(self):
        link = _acked_link(fail_first=100)
        proxy = MavProxy(link, pump=link.service, ack_timeout_steps=4, retries=2)
        with pytest.raises(LinkError, match="after 3 attempts of 4 steps"):
            proxy.param_set("ATC_RAT_RLL_P", 0.1)
        assert proxy.timeout_count == 3

    def test_stale_replies_are_drained(self):
        link = _acked_link()
        link._to_gcs.append(ParamValue(name="OLD", value=0.0, ok=True))
        proxy = MavProxy(link, pump=link.service, ack_timeout_steps=5, retries=1)
        reply = proxy.param_set("ATC_RAT_RLL_P", 0.1)
        assert reply.name == "ATC_RAT_RLL_P"
        assert proxy.stale_replies == 1

    def test_invalid_config_rejected(self):
        link = _acked_link()
        with pytest.raises(LinkError):
            MavProxy(link, pump=link.service, ack_timeout_steps=0)
        with pytest.raises(LinkError):
            MavProxy(link, pump=link.service, retries=-1)


class TestParamSetAttackViaLink:
    def _run_attack(self, schedule=None, seed=3, duration=1.5):
        from repro.attacks.injection import ParamSetAttack

        vehicle = make_vehicle(seed=seed, fast=True,
                               fault_schedule=schedule)
        vehicle.takeoff(5.0)
        writes = iter([[("ATC_RAT_RLL_P", 0.2)]])
        attack = ParamSetAttack(
            schedule=lambda t: next(writes, None),
            link=vehicle.link, ack_timeout_s=0.2, retries=3,
        )
        attack.attach(vehicle)
        vehicle.run(duration)
        return vehicle, attack

    def test_write_lands_through_link(self):
        vehicle, attack = self._run_attack()
        assert attack.accepted == 1 and attack.lost == 0
        assert vehicle.params.get("ATC_RAT_RLL_P") == pytest.approx(0.2)

    def test_lossy_channel_retry_trace_is_deterministic(self):
        schedule = FaultSchedule.single("link_loss", intensity=0.7)
        runs = [self._run_attack(schedule=schedule)[1] for _ in range(2)]
        assert runs[0].retry_count == runs[1].retry_count
        assert runs[0].accepted == runs[1].accepted
        assert runs[0].lost == runs[1].lost
        assert runs[0].accepted + runs[0].lost == 1

    def test_total_loss_exhausts_retries(self):
        schedule = FaultSchedule.single("link_loss", intensity=1.0)
        # intensity 1.0 is capped at 0.95 drop probability, so force
        # determinism with a long-enough timeout budget instead.
        vehicle, attack = self._run_attack(schedule=schedule)
        assert attack.accepted + attack.lost == 1
        assert attack.retry_count <= attack.retries


def _log_columns(vehicle) -> dict[str, np.ndarray]:
    table = vehicle.logger.to_trace_table(["ATT.R", "ATT.P", "ATT.Y"])
    return {c: table.column(c) for c in ("ATT.R", "ATT.P", "ATT.Y")}


def _short_flight(seed: int, schedule) -> dict[str, np.ndarray]:
    vehicle = make_vehicle(seed=seed, fast=False, fault_schedule=schedule)
    vehicle.takeoff(6.0)
    vehicle.run(2.0)
    return _log_columns(vehicle)


class TestVehicleIntegration:
    def test_empty_schedule_is_bit_identical_to_none(self):
        baseline = _short_flight(11, None)
        empty = _short_flight(11, FaultSchedule())
        for col in baseline:
            np.testing.assert_array_equal(baseline[col], empty[col])

    def test_fault_injection_deterministic_from_seed_and_schedule(self):
        schedule = FaultSchedule((
            FaultSpec(kind="gps_glitch", intensity=0.5, start=0.5),
            FaultSpec(kind="imu_noise_burst", intensity=0.3, start=0.5),
            FaultSpec(kind="motor_efficiency", intensity=0.1, start=1.0),
        ))
        a = _short_flight(11, schedule)
        b = _short_flight(11, schedule)
        for col in a:
            np.testing.assert_array_equal(a[col], b[col])
        faultfree = _short_flight(11, None)
        assert any(
            not np.array_equal(a[col], faultfree[col]) for col in a
        )

    def test_injectors_installed_per_family_only(self):
        v = make_vehicle(seed=1, fault_schedule=FaultSchedule.single("link_loss"))
        assert v.sensors.fault_injector is None
        assert v.sim.actuator_faults is None
        assert v.link.channel_faults is not None
        v2 = make_vehicle(seed=1, fault_schedule=FaultSchedule.single("gps_dropout"))
        assert v2.sensors.fault_injector is not None
        assert v2.link.channel_faults is None

    def test_gps_dropout_does_not_crash_estimation(self):
        schedule = FaultSchedule.single("gps_dropout", start=0.5)
        vehicle = make_vehicle(seed=5, fast=False, fault_schedule=schedule)
        vehicle.takeoff(6.0)
        vehicle.run(1.0)
        assert np.isfinite(vehicle.sim.vehicle.state.position).all()
        assert vehicle.ekf.rejected_updates > 0


class TestSensorResetDeterminism:
    def test_noise_model_reset_replays_stream(self):
        from repro.sensors.base import NoiseModel

        model = NoiseModel(std=0.1, bias_std=0.05, bias_instability=0.01,
                           seed=7)
        truth = np.zeros(3)
        first = [model.apply(truth, 0.01).copy() for _ in range(20)]
        initial_bias = model._initial_bias.copy()
        model.reset()
        np.testing.assert_array_equal(model._initial_bias, initial_bias)
        second = [model.apply(truth, 0.01).copy() for _ in range(20)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_sensor_suite_reset_replays_streams(self):
        vehicle = make_vehicle(seed=13)
        model = vehicle.sim.vehicle
        suite = vehicle.sensors
        dt = vehicle.sim.dt

        def sample_run():
            return [
                suite.sample(model, t, dt)
                for t in np.arange(0.0, 0.5, dt)
            ]

        run1 = sample_run()
        suite.reset()
        run2 = sample_run()
        for a, b in zip(run1, run2):
            np.testing.assert_array_equal(a.imu.gyro, b.imu.gyro)
            np.testing.assert_array_equal(a.imu.accel, b.imu.accel)
            np.testing.assert_array_equal(a.gps.position, b.gps.position)
            assert a.baro.altitude == b.baro.altitude
            np.testing.assert_array_equal(a.mag.field, b.mag.field)
