"""End-to-end integration tests reproducing the paper's headline claims
at reduced scale.
"""

import numpy as np
import pytest

from repro.analysis.tsvl import generate_tsvl
from repro.attacks.gradual import GradualRollAttack
from repro.attacks.naive import NaiveRollAttack
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.firmware.mission import MissionStatus, line_mission, square_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import Vehicle
from repro.sim.config import SimConfig, pixhawk4_airframe
from tests.conftest import make_vehicle


class TestBenignOperation:
    def test_full_fidelity_mission_completes(self, flown_vehicle):
        assert flown_vehicle.mission.status is MissionStatus.COMPLETE
        assert not flown_vehicle.sim.vehicle.crashed

    def test_pixhawk4_airframe_flies(self):
        v = Vehicle(
            SimConfig(seed=3, physics_hz=100.0, airframe=pixhawk4_airframe()),
            use_truth_state=True, estimation_enabled=False,
        )
        status = v.fly_mission(line_mission(length=30.0, altitude=8.0, legs=1))
        assert status is MissionStatus.COMPLETE

    def test_square_mission(self):
        v = make_vehicle(seed=4, fast=True)
        status = v.fly_mission(square_mission(side=20.0, altitude=8.0), timeout=120.0)
        assert status is MissionStatus.COMPLETE


class TestHeadlineClaim:
    """ARES' core claim: a region-confined attacker deviates the RAV
    without tripping the control-invariants monitor, while the naive
    attack is caught (Fig. 6)."""

    def _fly(self, attack, seed=3, duration=40.0):
        v = Vehicle(SimConfig(seed=seed, wind_gust_std=0.4))
        detector = ControlInvariantsDetector(v.config.airframe)
        detector.attach(v)
        v.mission = line_mission(length=300.0, altitude=10.0, legs=1)
        v.takeoff(10.0)
        if attack is not None:
            attack.attach(v)
        v.set_mode(FlightMode.AUTO)
        v.run(duration)
        deviation = v.mission.cross_track_distance(v.sim.vehicle.state.position)
        return v, detector, deviation

    @pytest.fixture(scope="class")
    def runs(self):
        benign = self._fly(None)
        ares = self._fly(GradualRollAttack(rate_deg_s=2.5, start_time=5.0))
        naive = self._fly(NaiveRollAttack(start_time=5.0), duration=20.0)
        return benign, ares, naive

    def test_benign_not_alarmed(self, runs):
        (_, detector, deviation), _, _ = runs
        assert not detector.alarmed
        assert deviation < 2.0

    def test_ares_deviates_without_alarm(self, runs):
        _, (_, detector, deviation), _ = runs
        assert deviation > 20.0  # mission failure scale
        assert not detector.alarmed

    def test_naive_detected(self, runs):
        _, _, (v, detector, _) = runs
        assert detector.alarmed
        # The alarm fires within the run, soon after the monitor's window
        # fills following the attack.
        assert detector.first_alarm_time <= v.sim.time

    def test_ares_beats_naive_on_stealth(self, runs):
        _, (_, ares_det, _), (_, naive_det, _) = runs
        assert ares_det.record.max_score < naive_det.record.max_score / 2.0


class TestStatisticalPipelineOnFlightData:
    def test_tsvl_contains_intermediate_variable(self, profile_dataset):
        result = generate_tsvl(
            profile_dataset.table, dynamics_variables=["ATT.R", "ATT.P", "ATT.Y"]
        )
        intermediates = set(profile_dataset.intermediate_columns)
        # The paper's thesis: TSVL reaches into intermediate controller
        # variables that prior monitors ignore.
        assert result.tsvl, "TSVL must not be empty"
        assert intermediates & set(result.tsvl) or any(
            v.startswith("ATT.") for v in result.tsvl
        )

    def test_constants_always_pruned(self, profile_dataset):
        result = generate_tsvl(
            profile_dataset.table, dynamics_variables=["ATT.R"]
        )
        for name, reason in result.pruning.dropped.items():
            if name.endswith((".KP", ".KI", ".KD", ".FF", ".SCALER")):
                assert reason == "constant", (name, reason)

    def test_selection_ratio_is_small(self, profile_dataset):
        # Table II reports ~9-14% selection ratios.
        result = generate_tsvl(
            profile_dataset.table, dynamics_variables=["ATT.R", "ATT.P", "ATT.Y"]
        )
        assert result.selection_ratio < 0.5


class TestMemoryIsolationThreatModel:
    def test_attacker_cannot_cross_regions(self, fast_vehicle):
        from repro.exceptions import MemoryAccessViolation

        view = fast_vehicle.compromised_view("SRAM_STABILIZER")
        # Everything in the stabilizer region is reachable...
        view.write("PIDR.INTEG", 0.1)
        view.write("PIDA.SCALER", 1.1)
        # ...and all navigation/estimation state is not.
        for name in ("SINS.KVEL", "EKF.ROLL", "PSC_X_POS.P"):
            with pytest.raises(MemoryAccessViolation):
                view.write(name, 0.0)
        assert len(fast_vehicle.mpu.violations) == 3
