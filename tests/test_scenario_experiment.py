"""``table scenarios``: determinism, engine routing, coverage, CLI.

The cube must be a pure function of (scenario list, seed): serial,
process-parallel and vectorized runs agree bit-for-bit; fleet-eligible
cells route to the vectorized engine while fault/terrain/battery cells
decline into scalar fallback (visible in per-cell statuses and the
campaign counters); and the coverage report validates against its
schema.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import ReproError
from repro.experiments.cache import ResultCache
from repro.experiments.faults import (
    STATUS_CACHED,
    STATUS_FALLBACK,
    STATUS_OK,
    STATUS_VECTORIZED,
)
from repro.experiments.scenarios import run_scenarios
from repro.faults import FaultSchedule, FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate
from repro.obs.tracing import Tracer, use_telemetry
from repro.scenario import (
    AttackSpec,
    DefenseSpec,
    MissionSpec,
    PhysicsSpec,
    Scenario,
    ScenarioError,
)

COVERAGE_SCHEMA = json.loads(
    Path("schemas/scenario_coverage.schema.json").read_text()
)

_MISSION = MissionSpec(shape="line", length=8.0, altitude=5.0, legs=1)
_PHYSICS = PhysicsSpec(physics_hz=100.0, wind_gust_std=0.3)

#: Fleet-eligible cell: attack + CI defense, no faults/terrain/battery.
PLAIN = Scenario(
    name="tiny-plain",
    mission=_MISSION,
    physics=_PHYSICS,
    attack=AttackSpec(kind="gradual_roll", rate_deg_s=5.0, start_time=2.0),
    defenses=(DefenseSpec(kind="control_invariants"),),
)

#: Scalar-only cell: a fault schedule forces per-seed fallback.
FAULTED = Scenario(
    name="tiny-faulted",
    mission=_MISSION,
    physics=_PHYSICS,
    faults=FaultSchedule((
        FaultSpec(kind="gps_glitch", start=2.0, duration=3.0, intensity=0.5),
    )),
)

TINY = dict(
    scenarios=[PLAIN, FAULTED],
    trials=2,
    detector_duration=4.0,
    profile_timeout=8.0,
    base_seed=700,
)


def _cells(result):
    """Hashable view of everything the cube computed."""
    return tuple(
        (
            c.scenario.name, c.index, tuple(c.seeds), c.crashed,
            c.tsvl_size, c.jaccard, c.fpr, c.tpr, c.degraded,
        )
        for c in result.cells
    )


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_scenarios(**TINY)

    def test_rerun_is_identical(self, serial):
        assert _cells(run_scenarios(**TINY)) == _cells(serial)

    def test_workers_match_serial(self, serial):
        parallel = run_scenarios(**TINY, workers=2)
        assert _cells(parallel) == _cells(serial)

    def test_vectorized_matches_serial(self, serial):
        vectorized = run_scenarios(**TINY, engine="vectorized")
        assert _cells(vectorized) == _cells(serial)

    def test_cube_shape_and_sanity(self, serial):
        assert [c.scenario.name for c in serial.cells] == [
            "tiny-plain", "tiny-faulted",
        ]
        plain = serial.cell("tiny-plain")
        assert plain.seeds == [700, 701]
        assert plain.statuses == {STATUS_OK: 2}
        assert plain.tsvl_size is not None and plain.tsvl_size > 0
        assert plain.jaccard is None  # no faults → no faulted twin
        assert plain.fpr is not None and 0.0 <= plain.fpr <= 1.0
        assert plain.tpr is not None and 0.0 <= plain.tpr <= 1.0
        assert plain.degraded is not None
        assert plain.crashed == 0.0
        assert plain.fallback_reasons == []
        faulted = serial.cell("tiny-faulted")
        assert faulted.seeds == [702, 703]
        assert faulted.jaccard is not None and 0.0 <= faulted.jaccard <= 1.0
        assert faulted.fpr is None and faulted.tpr is None  # no defenses
        assert faulted.fallback_reasons != []
        with pytest.raises(KeyError):
            serial.cell("nonexistent")

    def test_coverage_report_is_schema_valid(self, serial):
        coverage = serial.coverage_dict()
        assert validate(coverage, COVERAGE_SCHEMA) == []
        assert coverage["totals"] == {
            "cells": 2, "ran": 2, "crashed": 0,
            "vectorized": 0, "fallback": 0,
        }

    def test_render_mentions_every_cell(self, serial):
        text = serial.render()
        assert "tiny-plain" in text
        assert "tiny-faulted" in text
        assert "Jaccard" in text


class TestEngineRouting:
    @pytest.fixture(scope="class")
    def vectorized(self):
        registry = MetricsRegistry()
        with use_telemetry(registry, Tracer()):
            result = run_scenarios(**TINY, engine="vectorized")
        return result, registry.snapshot()["counters"]

    def test_plain_cell_routes_to_fleet(self, vectorized):
        result, _ = vectorized
        assert result.cell("tiny-plain").statuses == {STATUS_VECTORIZED: 2}

    def test_faulted_cell_falls_back_to_scalar(self, vectorized):
        result, _ = vectorized
        assert result.cell("tiny-faulted").statuses == {STATUS_FALLBACK: 2}

    def test_campaign_counters_record_the_split(self, vectorized):
        _, counters = vectorized
        exp = "{experiment=scenarios.trial}"
        assert counters[f"campaign.seeds_vectorized{exp}"] == 2.0
        assert counters[f"campaign.seeds_fallback{exp}"] == 2.0

    def test_scenario_counters_record_the_cube(self, vectorized):
        _, counters = vectorized
        assert counters["scenario.cells_total"] == 2.0
        assert counters["scenario.cells_vectorized"] == 1.0
        assert counters["scenario.cells_fallback"] == 1.0
        assert counters.get("scenario.cells_crashed", 0.0) == 0.0

    def test_coverage_totals_reflect_routing(self, vectorized):
        result, _ = vectorized
        totals = result.coverage_dict()["totals"]
        assert totals["vectorized"] == 2
        assert totals["fallback"] == 2


class TestCacheAndCrash:
    def test_cache_warm_rerun_is_all_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_scenarios(**TINY, cache=cache)
        warm = run_scenarios(**TINY, cache=cache)
        assert _cells(warm) == _cells(cold)
        for cell in warm.cells:
            assert cell.statuses == {STATUS_CACHED: 2}

    def test_cache_key_covers_seed_to_cell_mapping(self, tmp_path):
        # base_seed/trials are in the campaign params: moving the grid
        # must miss the cache, not replay the wrong cell's seeds.
        cache = ResultCache(tmp_path / "cache")
        run_scenarios(**TINY, cache=cache)
        shifted = run_scenarios(
            **{**TINY, "base_seed": 900}, cache=cache
        )
        for cell in shifted.cells:
            assert cell.statuses == {STATUS_OK: 2}

    def test_crashed_cell_is_a_result_not_a_failure(self, monkeypatch):
        import repro.experiments.scenarios as mod

        def boom(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(mod, "_profile_tsvl", boom)
        result = mod.run_scenarios(
            scenarios=[PLAIN], trials=1, detector_duration=4.0,
            profile_timeout=8.0, base_seed=700,
        )
        cell = result.cell("tiny-plain")
        assert cell.crashed == 1.0
        assert cell.tsvl_size is None
        totals = result.coverage_dict()["totals"]
        assert totals["crashed"] == 1
        assert validate(result.coverage_dict(), COVERAGE_SCHEMA) == []


class TestSources:
    def test_exactly_one_source_required(self):
        with pytest.raises(ScenarioError, match="exactly one"):
            run_scenarios()
        with pytest.raises(ScenarioError, match="exactly one"):
            run_scenarios(scenarios=[PLAIN], sample=2)

    def test_names_and_objects_mix(self):
        result = run_scenarios(
            scenarios=["fig9-cruise", PLAIN], trials=1,
            detector_duration=3.0, profile_timeout=4.0, base_seed=700,
        )
        assert [c.scenario.name for c in result.cells] == [
            "fig9-cruise", "tiny-plain",
        ]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            run_scenarios(scenarios=[PLAIN, PLAIN])

    def test_empty_list_rejected(self):
        with pytest.raises(ScenarioError, match="at least one"):
            run_scenarios(scenarios=[])

    def test_bad_trials_rejected(self):
        with pytest.raises(ScenarioError, match="trials"):
            run_scenarios(scenarios=[PLAIN], trials=0)

    def test_scenario_error_is_a_repro_error(self):
        assert issubclass(ScenarioError, ReproError)

    def test_sampled_source(self):
        result = run_scenarios(
            sample=2, sample_seed=3, space="tiny", trials=1,
            detector_duration=3.0, profile_timeout=4.0, base_seed=700,
        )
        assert [c.scenario.name for c in result.cells] == [
            "sampled-3-0", "sampled-3-1",
        ]
        rerun = run_scenarios(
            sample=2, sample_seed=3, space="tiny", trials=1,
            detector_duration=3.0, profile_timeout=4.0, base_seed=700,
        )
        assert _cells(rerun) == _cells(result)


class TestCLI:
    def _args(self, argv):
        from repro.__main__ import build_parser

        return build_parser().parse_args(argv)

    def test_scenario_flags_rejected_for_other_tables(self, capsys):
        from repro.__main__ import _cmd_table

        for which in ("1", "2", "robustness"):
            args = self._args(["table", which, "--sample", "4"])
            assert _cmd_table(args) == 2
            assert (
                "--sample: only valid with 'table scenarios'"
                in capsys.readouterr().err
            )

    def test_robustness_flags_rejected_for_scenarios(self, capsys):
        from repro.__main__ import _cmd_table

        args = self._args(
            ["table", "scenarios", "--sample", "2", "--kinds", "gps_glitch"]
        )
        assert _cmd_table(args) == 2
        assert (
            "--kinds: only valid with 'table robustness'"
            in capsys.readouterr().err
        )

    def test_shared_flags_rejected_for_paper_tables(self, capsys):
        from repro.__main__ import _cmd_table

        args = self._args(["table", "1", "--trials", "3"])
        assert _cmd_table(args) == 2
        assert "only valid with 'table robustness'" in capsys.readouterr().err

    def test_scenario_kwargs_built_from_flags(self, tmp_path):
        from repro.__main__ import _robustness_kwargs

        doc = tmp_path / "doc.json"
        doc.write_text(json.dumps(
            {"version": 1, "scenario": {"name": "a"}}
        ))
        args = self._args([
            "table", "scenarios", "--scenarios", str(doc),
            "--trials", "3", "--detector-duration", "2.5",
            "--profile-timeout", "9",
        ])
        kwargs = _robustness_kwargs(args)
        assert kwargs == {
            "scenarios_json": doc.read_text(),
            "trials": 3,
            "detector_duration": 2.5,
            "profile_timeout": 9.0,
        }
        sampled = self._args([
            "table", "scenarios", "--sample", "4", "--sample-seed", "9",
            "--space", "tiny",
        ])
        assert _robustness_kwargs(sampled) == {
            "sample": 4, "sample_seed": 9, "space": "tiny",
        }

    def test_cli_end_to_end_writes_coverage(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        coverage_path = tmp_path / "coverage.json"
        monkeypatch.chdir(tmp_path)
        code = main([
            "table", "scenarios", "--sample", "1", "--sample-seed", "5",
            "--space", "tiny", "--trials", "1", "--profile-timeout", "6",
            "--detector-duration", "3", "--no-cache",
            "--coverage-out", str(coverage_path),
        ])
        assert code == 0
        coverage = json.loads(coverage_path.read_text())
        assert validate(coverage, COVERAGE_SCHEMA) == []
        assert coverage["totals"]["cells"] == 1
        assert coverage["cells"][0]["scenario"] == "sampled-5-0"
