"""Additional firmware-level behavioural tests: fence, modes, logging edge
cases and full-loop parameter propagation."""

import numpy as np
import pytest

from repro.firmware.modes import FlightMode
from tests.conftest import make_vehicle


class TestGeofence:
    def test_fence_breach_triggers_rtl(self):
        v = make_vehicle(seed=7, fast=True)
        v.params.set("FENCE_ENABLE", 1.0)
        v.params.set("FENCE_RADIUS", 30.0)
        v.takeoff(5.0)
        v.set_guided_target(100.0, 0.0, 5.0)  # well outside the fence
        v.run(60.0, stop_when=lambda vv: vv.modes.mode is FlightMode.RTL)
        assert v.modes.mode is FlightMode.RTL
        # The vehicle turns back toward home rather than continuing out.
        v.run(30.0)
        distance = float(np.hypot(*v.sim.vehicle.state.position[:2]))
        assert distance < 60.0

    def test_fence_disabled_no_rtl(self):
        v = make_vehicle(seed=7, fast=True)
        assert v.params.get("FENCE_ENABLE") == 0.0
        v.takeoff(5.0)
        v.set_guided_target(60.0, 0.0, 5.0)
        v.run(20.0)
        assert v.modes.mode is FlightMode.GUIDED

    def test_altitude_ceiling(self):
        v = make_vehicle(seed=7, fast=True)
        v.params.set("FENCE_ENABLE", 1.0)
        v.params.set("FENCE_ALT_MAX", 12.0)
        v.takeoff(5.0)
        v.set_guided_target(0.0, 0.0, 40.0)
        v.run(40.0, stop_when=lambda vv: vv.modes.mode is FlightMode.RTL)
        assert v.modes.mode is FlightMode.RTL


class TestDeviationAttackVsFence:
    def test_fence_reacts_to_attack_deviation(self):
        """The geofence failsafe at least *responds* to the attack-driven
        deviation (RTL fires); the attack itself persists through RTL, so
        containment is not guaranteed — the defense-in-depth gap the
        paper's variable-level countermeasure addresses."""
        from repro.attacks.gradual import GradualRollAttack
        from repro.firmware.mission import line_mission

        v = make_vehicle(seed=8, fast=True)
        v.params.set("FENCE_ENABLE", 1.0)
        v.params.set("FENCE_RADIUS", 60.0)
        v.mission = line_mission(length=400.0, altitude=10.0, legs=1)
        v.takeoff(10.0)
        GradualRollAttack(rate_deg_s=4.0, start_time=2.0).attach(v)
        v.set_mode(FlightMode.AUTO)
        v.run(40.0, stop_when=lambda vv: vv.modes.mode is FlightMode.RTL)
        assert v.modes.mode is FlightMode.RTL


class TestLoggingEdgeCases:
    def test_mode_changes_logged(self):
        v = make_vehicle(seed=7, fast=True)
        v.takeoff(3.0)
        v.set_mode(FlightMode.LAND)
        modes = v.logger.field("MODE", "Mode")
        assert float(FlightMode.LAND.value) in modes

    def test_rcou_reflects_motor_commands(self):
        v = make_vehicle(seed=7, fast=True)
        v.takeoff(3.0)
        c1 = v.logger.field("RCOU", "C1")
        # PWM-style range 1000..2000 while flying.
        flying = c1[c1 > 1000.0]
        assert len(flying) > 0
        assert np.all(flying <= 2000.0)

    def test_sim_log_matches_truth_scale(self):
        v = make_vehicle(seed=7, fast=True)
        v.takeoff(5.0)
        v.run(2.0)
        alts = v.logger.field("SIM", "Alt")
        assert alts.max() == pytest.approx(5.0, abs=1.0)


class TestHomeAndModes:
    def test_arm_sets_home(self):
        v = make_vehicle(seed=7, fast=True)
        v.sim.vehicle.reset(position=np.array([3.0, 4.0, 0.0]))
        v.arm()
        np.testing.assert_allclose(v.home[:2], [3.0, 4.0])

    def test_disarm_stops_motors(self):
        v = make_vehicle(seed=7, fast=True)
        v.takeoff(4.0)
        v.disarm()
        for _ in range(20):
            v.step()
        np.testing.assert_allclose(v.last_motors, 0.0)
        # ...and the unpowered vehicle starts to fall.
        v.run(3.0)
        assert v.sim.vehicle.state.altitude < 4.0
