"""Tests for world geometry and missions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MissionError
from repro.firmware.mission import (
    Mission,
    MissionStatus,
    Waypoint,
    line_mission,
    square_mission,
)
from repro.sim.world import BoxObstacle, World, path_distance, point_segment_distance

vec3 = st.tuples(
    st.floats(-50, 50), st.floats(-50, 50), st.floats(-50, 50)
).map(np.array)


class TestPointSegmentDistance:
    def test_point_on_segment(self):
        d = point_segment_distance(
            np.array([0.5, 0.0, 0.0]), np.zeros(3), np.array([1.0, 0.0, 0.0])
        )
        assert d == pytest.approx(0.0)

    def test_perpendicular(self):
        d = point_segment_distance(
            np.array([0.5, 2.0, 0.0]), np.zeros(3), np.array([1.0, 0.0, 0.0])
        )
        assert d == pytest.approx(2.0)

    def test_beyond_endpoint_clamps(self):
        d = point_segment_distance(
            np.array([3.0, 0.0, 0.0]), np.zeros(3), np.array([1.0, 0.0, 0.0])
        )
        assert d == pytest.approx(2.0)

    def test_degenerate_segment(self):
        d = point_segment_distance(np.array([1.0, 1.0, 0.0]), np.zeros(3), np.zeros(3))
        assert d == pytest.approx(np.sqrt(2.0))

    @given(vec3, vec3, vec3)
    @settings(max_examples=50)
    def test_distance_at_most_endpoint_distance(self, p, a, b):
        d = point_segment_distance(p, a, b)
        assert d <= np.linalg.norm(p - a) + 1e-9
        assert d <= np.linalg.norm(p - b) + 1e-9
        assert d >= 0.0


class TestPathDistance:
    def test_single_point_path(self):
        d = path_distance(np.array([3.0, 4.0, 0.0]), [np.zeros(3)])
        assert d == pytest.approx(5.0)

    def test_multi_segment_takes_min(self):
        waypoints = [np.zeros(3), np.array([10.0, 0, 0]), np.array([10.0, 10.0, 0])]
        d = path_distance(np.array([10.0, 5.0, 0.0]), waypoints)
        assert d == pytest.approx(0.0)

    def test_empty_raises(self):
        with pytest.raises(MissionError):
            path_distance(np.zeros(3), [])


class TestBoxObstacle:
    def test_inverted_corners_raise(self):
        with pytest.raises(MissionError):
            BoxObstacle("bad", np.ones(3), np.zeros(3))

    def test_contains(self):
        box = BoxObstacle("b", np.zeros(3), np.ones(3))
        assert box.contains(np.array([0.5, 0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5, 0.5]))

    def test_distance_zero_inside(self):
        box = BoxObstacle("b", np.zeros(3), np.ones(3))
        assert box.distance(np.array([0.5, 0.5, 0.5])) == 0.0

    def test_distance_outside(self):
        box = BoxObstacle("b", np.zeros(3), np.ones(3))
        assert box.distance(np.array([2.0, 0.5, 0.5])) == pytest.approx(1.0)

    @given(vec3)
    @settings(max_examples=50)
    def test_distance_nonnegative(self, p):
        box = BoxObstacle("b", -np.ones(3), np.ones(3))
        assert box.distance(p) >= 0.0


class TestWorld:
    def test_collision_lookup(self):
        box = BoxObstacle("wall", np.zeros(3), np.ones(3))
        world = World(obstacles=[box])
        assert world.collided(np.array([0.5, 0.5, 0.5])) is box
        assert world.collided(np.array([5.0, 5.0, 5.0])) is None

    def test_forbidden_zone(self):
        zone = BoxObstacle("nfz", np.zeros(3), np.ones(3))
        world = World(forbidden_zones=[zone])
        assert world.in_forbidden_zone(np.array([0.5, 0.5, 0.5])) is zone
        assert world.nearest_forbidden_distance(np.array([3.0, 0.5, 0.5])) == pytest.approx(2.0)

    def test_no_zones_distance_inf(self):
        assert World().nearest_forbidden_distance(np.zeros(3)) == np.inf

    def test_on_ground(self):
        world = World(ground_altitude=0.0)
        assert world.on_ground(np.array([0.0, 0.0, 0.0]))
        assert not world.on_ground(np.array([0.0, 0.0, -5.0]))


class TestWaypoint:
    def test_position_ned(self):
        wp = Waypoint(north=1.0, east=2.0, altitude=10.0)
        np.testing.assert_allclose(wp.position, [1.0, 2.0, -10.0])


class TestMission:
    def test_empty_mission_raises(self):
        with pytest.raises(MissionError):
            Mission(waypoints=[])

    def test_bad_radius_raises(self):
        with pytest.raises(MissionError):
            Mission(waypoints=[Waypoint(0, 0, 5)], acceptance_radius=0.0)

    def test_lifecycle(self):
        m = line_mission(length=10.0, altitude=5.0, legs=1)
        assert m.status is MissionStatus.PENDING
        m.start()
        assert m.status is MissionStatus.ACTIVE
        # Reach the first waypoint (0, 0, -5).
        m.update(np.array([0.0, 0.0, -5.0]), 0.0)
        assert m.current_index == 1
        # Reach the last waypoint.
        m.update(np.array([10.0, 0.0, -5.0]), 1.0)
        assert m.status is MissionStatus.COMPLETE

    def test_hold_delays_advance(self):
        m = Mission(waypoints=[Waypoint(0, 0, 5, hold_s=2.0), Waypoint(5, 0, 5)])
        m.start()
        m.update(np.array([0.0, 0.0, -5.0]), 0.0)
        assert m.current_index == 0  # holding
        m.update(np.array([0.0, 0.0, -5.0]), 2.5)
        assert m.current_index == 1

    def test_far_position_does_not_advance(self):
        m = line_mission(length=10.0, legs=1)
        m.start()
        m.update(np.array([50.0, 50.0, 0.0]), 0.0)
        assert m.current_index == 0

    def test_cross_track_distance(self):
        m = line_mission(length=10.0, altitude=5.0, legs=1)
        d = m.cross_track_distance(np.array([5.0, 3.0, -5.0]))
        assert d == pytest.approx(3.0)

    def test_desired_yaw_points_at_waypoint(self):
        m = Mission(waypoints=[Waypoint(0, 10, 5)])
        m.start()
        yaw = m.desired_yaw(np.array([0.0, 0.0, -5.0]))
        assert yaw == pytest.approx(np.pi / 2)  # due east

    def test_reset(self):
        m = line_mission(length=10.0, legs=1)
        m.start()
        m.update(np.array([0.0, 0.0, -10.0]), 0.0)
        m.reset()
        assert m.status is MissionStatus.PENDING
        assert m.current_index == 0


class TestMissionFactories:
    def test_line_mission_geometry(self):
        m = line_mission(length=60.0, altitude=10.0, legs=2)
        assert len(m.waypoints) == 3
        assert m.waypoints[1].north == 60.0
        assert m.waypoints[2].north == 0.0

    def test_square_mission_closes(self):
        m = square_mission(side=40.0)
        first, last = m.waypoints[0], m.waypoints[-1]
        assert (first.north, first.east) == (last.north, last.east)
        assert len(m.waypoints) == 5
