"""The telemetry subsystem: metrics, spans, logs — and its core contract.

Telemetry must be strictly passive: enabling tracing or metrics cannot
change a single result value, and execution mode (serial vs process
pool) cannot change metric totals. These tests pin the instrument
semantics, both exporters against the checked-in schemas, the merge
algebra, and the determinism contract end to end through the campaign
runner.
"""

from __future__ import annotations

import json
import logging
from io import StringIO
from pathlib import Path

import pytest

from repro.exceptions import AnalysisError
from repro.experiments.campaign import run_campaign
from repro.obs import (
    JsonFormatter,
    MetricsRegistry,
    Tracer,
    configure_logging,
    get_logger,
    get_registry,
    log_context,
    use_telemetry,
)
from repro.obs.schema import validate, validate_file
from repro.obs.summary import classify_artifact, load_spans, render_summary

SCHEMAS = Path(__file__).resolve().parent.parent / "schemas"


def _load_schema(name: str) -> dict:
    return json.loads((SCHEMAS / name).read_text())


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2.0)
        registry.counter("hits", kind="a").inc()
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 3.0, "hits{kind=a}": 1.0}

    def test_instrument_identity_is_memoised(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a=1) is registry.counter("x", a=1)
        assert registry.counter("x", a=1) is not registry.counter("x", a=2)
        assert registry.histogram("h") is registry.histogram("h")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("rate").set(10.0)
        registry.gauge("rate").set(400.5)
        assert registry.snapshot()["gauges"]["rate"] == 400.5

    def test_histogram_quantiles_bracket_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.2, 0.5, 2.0, 5.0, 20.0):
            hist.observe(value)
        assert hist.count == 6
        assert hist.min == 0.05 and hist.max == 20.0
        assert hist.mean == pytest.approx(27.75 / 6)
        assert 0.05 <= hist.quantile(0.5) <= 10.0
        assert hist.quantile(1.0) == 20.0
        assert hist.quantile(0.0) >= hist.min

    def test_empty_histogram_is_safe(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0

    def test_snapshot_is_schema_valid(self):
        registry = MetricsRegistry()
        registry.counter("c", experiment="fig9").inc()
        registry.gauge("g").set(-1.5)
        registry.histogram("h").observe(0.3)
        errors = validate(registry.snapshot(), _load_schema("metrics.schema.json"))
        assert errors == []

    def test_merge_matches_single_registry(self):
        """Merging child snapshots == observing everything in one registry."""
        whole = MetricsRegistry()
        parent = MetricsRegistry()
        # Binary-exact values keep float summation associative, so the
        # snapshots must match bit for bit, not just approximately.
        for chunk in ([0.25, 0.5, 4.0], [0.125, 2.0], [8.0]):
            child = MetricsRegistry()
            for value in chunk:
                for registry in (whole, child):
                    registry.counter("n", src="sim").inc()
                    registry.histogram("lat").observe(value)
            parent.merge(child.snapshot())
        assert parent.snapshot() == whole.snapshot()

    def test_merge_mismatched_bounds_keeps_aggregates(self):
        child = MetricsRegistry()
        child.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(5.0, 10.0)).observe(7.0)
        parent.merge(child.snapshot())
        hist = parent.histogram("h", buckets=(5.0, 10.0))
        assert hist.count == 2
        assert hist.sum == pytest.approx(8.5)
        assert hist.min == 1.5 and hist.max == 7.0


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_tracer_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a", x=1)
        second = tracer.span("b")
        assert first is second  # one shared object, zero allocation
        with first as span:
            span.set("ignored", True)
        assert tracer.spans == []

    def test_enabled_tracer_records_spans_and_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("phase", stage=1) as span:
            span.set("columns", 42)
        assert len(tracer.spans) == 1
        recorded = tracer.spans[0]
        assert recorded.name == "phase"
        assert recorded.attrs == {"stage": 1, "columns": 42}
        assert recorded.duration_s >= 0.0

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert tracer.spans[0].attrs["error"] == "ValueError"

    def test_jsonl_export_schema_valid_roundtrip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("x", k="v"):
            pass
        path = tracer.export(tmp_path / "spans.jsonl")
        assert path.suffix == ".jsonl"
        assert validate_file(path, SCHEMAS / "trace_span.schema.json") == []
        adopted = Tracer(enabled=True)
        adopted.adopt([json.loads(line) for line in path.read_text().splitlines()])
        assert adopted.spans[0].name == "x"
        assert adopted.spans[0].attrs == {"k": "v"}

    def test_chrome_export_loadable_and_schema_valid(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("campaign", seeds=3):
            with tracer.span("campaign.seed", seed=0):
                pass
        path = tracer.export(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X"}  # metadata lane names + complete spans
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"campaign", "campaign.seed"}
        for event in complete:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert validate_file(path, SCHEMAS / "trace.schema.json") == []

    def test_use_telemetry_restores_globals(self):
        ambient_registry = get_registry()
        registry, tracer = MetricsRegistry(), Tracer(enabled=True)
        with use_telemetry(registry, tracer) as (active_registry, active_tracer):
            assert get_registry() is registry is active_registry
            from repro.obs.tracing import get_tracer

            assert get_tracer() is tracer is active_tracer
        assert get_registry() is ambient_registry


# --------------------------------------------------------------------- #
# Structured logging
# --------------------------------------------------------------------- #
class TestLogging:
    def test_json_formatter_carries_context_and_extras(self):
        stream = StringIO()
        handler = configure_logging("DEBUG", json_output=True, stream=stream)
        try:
            with log_context(run_id="r1", experiment="fig9", seed=3):
                get_logger("test").info("hello %s", "world", extra={"n": 2})
            record = json.loads(stream.getvalue())
            assert record["msg"] == "hello world"
            assert record["run_id"] == "r1"
            assert record["experiment"] == "fig9"
            assert record["seed"] == 3
            assert record["n"] == 2
            assert record["level"] == "INFO"
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_configure_logging_is_idempotent(self):
        stream = StringIO()
        configure_logging("INFO", stream=stream)
        handler = configure_logging("INFO", stream=stream)
        try:
            root = logging.getLogger("repro")
            obs_handlers = [
                h for h in root.handlers if getattr(h, "_repro_obs", False)
            ]
            assert len(obs_handlers) == 1
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_nested_context_merges_and_restores(self):
        with log_context(run_id="outer"):
            with log_context(seed=7) as merged:
                assert merged == {"run_id": "outer", "seed": 7}
            from repro.obs.log import current_context

            assert current_context() == {"run_id": "outer"}

    def test_formatter_renders_exceptions(self):
        formatter = JsonFormatter()
        try:
            raise KeyError("missing")
        except KeyError:
            record = logging.LogRecord(
                "repro.t", logging.ERROR, __file__, 1, "failed", (),
                exc_info=True,
            )
            import sys

            record.exc_info = sys.exc_info()
        payload = json.loads(formatter.format(record))
        assert payload["exc"] == "KeyError"


# --------------------------------------------------------------------- #
# Schema validator
# --------------------------------------------------------------------- #
class TestSchemaValidator:
    SCHEMA = {
        "type": "object",
        "required": ["schema"],
        "properties": {
            "schema": {"const": 1},
            "mode": {"enum": ["a", "b"]},
            "count": {"type": "integer", "minimum": 0},
            "items": {"type": "array", "minItems": 1,
                      "items": {"type": "number"}},
        },
        "patternProperties": {"^x_": {"type": "string"}},
        "additionalProperties": False,
    }

    def test_valid_instance(self):
        doc = {"schema": 1, "mode": "a", "count": 2, "items": [0.5],
               "x_extra": "ok"}
        assert validate(doc, self.SCHEMA) == []

    def test_each_violation_reported(self):
        doc = {"schema": 2, "mode": "c", "count": -1, "items": [],
               "x_extra": 3, "rogue": True}
        errors = "\n".join(validate(doc, self.SCHEMA))
        assert "const" in errors
        assert "enum" in errors
        assert "minimum" in errors
        assert "minItems" in errors
        assert "expected type string" in errors
        assert "unexpected property 'rogue'" in errors

    def test_type_mismatch_short_circuits(self):
        assert validate([], {"type": "object"}) == [
            "$: expected type object, got list"
        ]

    def test_bool_is_not_a_number(self):
        assert validate(True, {"type": "number"}) != []
        assert validate(True, {"type": "boolean"}) == []

    def test_validate_file_jsonl_reports_line(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"schema": 1}\n{"schema": 2}\n')
        errors = validate_file(path, self._write_schema(tmp_path))
        assert len(errors) == 1
        assert "line 2" in errors[0]

    @staticmethod
    def _write_schema(tmp_path) -> Path:
        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "type": "object", "properties": {"schema": {"const": 1}},
        }))
        return path


# --------------------------------------------------------------------- #
# Summary rendering
# --------------------------------------------------------------------- #
class TestSummary:
    @staticmethod
    def _artifacts(tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("campaign", experiment="t"):
            with tracer.span("campaign.seed", seed=1):
                pass
        trace = tracer.export(tmp_path / "trace.json")
        registry = MetricsRegistry()
        registry.counter("cache.hits", experiment="t").inc(4)
        registry.gauge("vehicle.step_rate_hz").set(400.0)
        registry.histogram("cache.decode_seconds").observe(0.002)
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(registry.snapshot()))
        return trace, metrics

    def test_classify(self, tmp_path):
        trace, metrics = self._artifacts(tmp_path)
        assert classify_artifact(trace) == "trace"
        assert classify_artifact(metrics) == "metrics"

    def test_load_spans_both_formats_agree(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a", k=1):
            pass
        chrome = tracer.export_chrome(tmp_path / "c.json")
        jsonl = tracer.export_jsonl(tmp_path / "s.jsonl")
        from_chrome, from_jsonl = load_spans(chrome), load_spans(jsonl)
        assert [s["name"] for s in from_chrome] == ["a"]
        assert from_chrome[0]["attrs"] == from_jsonl[0]["attrs"] == {"k": 1}

    def test_render_summary_mixed_artifacts(self, tmp_path):
        trace, metrics = self._artifacts(tmp_path)
        text = render_summary([trace, metrics])
        assert "campaign.seed" in text
        assert "%wall" in text
        assert "cache.hits{experiment=t}" in text
        assert "p95" in text

    def test_render_summary_rejects_garbage(self, tmp_path):
        rogue = tmp_path / "rogue.json"
        rogue.write_text('{"neither": true}')
        with pytest.raises(AnalysisError):
            render_summary([rogue])


# --------------------------------------------------------------------- #
# Determinism through the campaign runner (the core telemetry contract)
# --------------------------------------------------------------------- #

# Module-level so ProcessPoolExecutor can pickle them.

def _science_experiment(seed: int) -> dict[str, float]:
    import numpy as np

    rng = np.random.default_rng(seed)
    return {"deviation": float(rng.normal(size=16).sum())}


def _instrumented_experiment(seed: int) -> dict[str, float]:
    registry = get_registry()
    registry.counter("test.runs").inc()
    registry.counter("test.parity", even=seed % 2 == 0).inc()
    registry.histogram("test.seed_value").observe(seed * 0.01)
    return {"x": float(seed)}


def _campaign_values(result) -> dict[str, list[float]]:
    return {name: list(m.values) for name, m in result.metrics.items()}


class TestTelemetryDeterminism:
    SEEDS = list(range(20, 27))

    def test_results_bit_identical_tracing_on_vs_off(self):
        baseline = run_campaign(_science_experiment, self.SEEDS)
        with use_telemetry(MetricsRegistry(), Tracer(enabled=True)) as (_, tracer):
            traced = run_campaign(_science_experiment, self.SEEDS)
            span_names = {s.name for s in tracer.spans}
        assert _campaign_values(traced) == _campaign_values(baseline)
        assert traced.seeds == baseline.seeds
        assert {"campaign", "campaign.seed"} <= span_names

    def test_results_bit_identical_tracing_on_vs_off_parallel(self):
        baseline = run_campaign(_science_experiment, self.SEEDS, workers=4)
        with use_telemetry(MetricsRegistry(), Tracer(enabled=True)) as (_, tracer):
            traced = run_campaign(_science_experiment, self.SEEDS, workers=4)
            # Worker spans ship back and land on the parent tracer.
            seed_spans = [s for s in tracer.spans if s.name == "campaign.seed"]
        assert _campaign_values(traced) == _campaign_values(baseline)
        assert sorted(s.attrs["seed"] for s in seed_spans) == self.SEEDS

    def test_serial_and_parallel_counter_totals_agree(self):
        with use_telemetry(MetricsRegistry()) as (serial_registry, _):
            run_campaign(_instrumented_experiment, self.SEEDS)
            serial = serial_registry.snapshot()
        with use_telemetry(MetricsRegistry()) as (parallel_registry, _):
            run_campaign(_instrumented_experiment, self.SEEDS, workers=4)
            parallel = parallel_registry.snapshot()
        assert parallel["counters"] == serial["counters"]
        assert parallel["counters"]["test.runs"] == len(self.SEEDS)
        # Histogram totals agree too (bucket-wise additive merge).
        assert (parallel["histograms"]["test.seed_value"]
                == serial["histograms"]["test.seed_value"])

    def test_algorithm1_stage_spans(self):
        """Algorithm 1 emits its stage breakdown with column counts."""
        import numpy as np

        from repro.analysis.tsvl import generate_tsvl
        from repro.utils.timeseries import TraceTable

        rng = np.random.default_rng(0)
        table = TraceTable([f"V{i}" for i in range(8)] + ["ATT.R"])
        base = rng.normal(size=400)
        for t in range(400):
            row = {f"V{i}": base[t] * (i + 1) + rng.normal() * 0.1
                   for i in range(8)}
            row["ATT.R"] = base[t] + rng.normal() * 0.05
            table.append_row(t / 16.0, row)
        with use_telemetry(tracer=Tracer(enabled=True)) as (_, tracer):
            generate_tsvl(table, dynamics_variables=["ATT.R"])
            spans = {s.name: s.attrs for s in tracer.spans}
        assert {"analysis.correlation", "analysis.pruning",
                "analysis.clustering", "analysis.stepwise"} <= spans.keys()
        assert spans["analysis.correlation"]["columns"] == 9
        assert spans["analysis.correlation"]["rows"] == 400
        assert spans["analysis.stepwise"]["tsvl"] >= 1

    def test_campaign_counters_track_cache(self, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        with use_telemetry(MetricsRegistry()) as (registry, _):
            run_campaign(_science_experiment, self.SEEDS, cache=cache,
                         experiment_name="obs-det", params=None)
            run_campaign(_science_experiment, self.SEEDS, cache=cache,
                         experiment_name="obs-det", params=None)
            counters = registry.snapshot()["counters"]
        assert counters["campaign.seeds_run{experiment=obs-det}"] \
            == len(self.SEEDS)
        assert counters["campaign.seeds_cached{experiment=obs-det}"] \
            == len(self.SEEDS)
        assert counters["cache.hits{experiment=obs-det}"] == len(self.SEEDS)
        assert counters["cache.misses{experiment=obs-det}"] == len(self.SEEDS)


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #
class TestPrometheusExposition:
    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry().expose_text() == ""

    def test_counter_family(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        registry.counter("cache.hits", experiment="fig9").inc()
        text = registry.expose_text()
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 3" in text
        assert 'repro_cache_hits_total{experiment="fig9"} 1' in text
        assert text.endswith("\n")

    def test_gauge_family(self):
        registry = MetricsRegistry()
        registry.gauge("vehicle.step_rate_hz").set(400.0)
        text = registry.expose_text()
        assert "# TYPE repro_vehicle_step_rate_hz gauge" in text
        assert "repro_vehicle_step_rate_hz 400" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("step.seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        text = registry.expose_text()
        assert "# TYPE repro_step_seconds histogram" in text
        assert 'repro_step_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_step_seconds_bucket{le="1"} 3' in text
        assert 'repro_step_seconds_bucket{le="10"} 4' in text
        assert 'repro_step_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_step_seconds_sum 5.6" in text
        assert "repro_step_seconds_count 4" in text

    def test_label_values_escaped_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("odd.name-x", zeta="1", alpha='say "hi"\\').inc()
        text = registry.expose_text()
        # Name sanitized, labels sorted alphabetically, value escaped.
        assert ('repro_odd_name_x_total{alpha="say \\"hi\\"\\\\",'
                'zeta="1"} 1') in text

    def test_family_order_is_byte_stable(self):
        def build(order):
            registry = MetricsRegistry()
            for name in order:
                registry.counter(name).inc()
            return registry.expose_text()

        assert build(["b.two", "a.one"]) == build(["a.one", "b.two"])


# --------------------------------------------------------------------- #
# Summary fixes: empty traces, stable ordering, tail percentiles
# --------------------------------------------------------------------- #
class TestSummaryEdgeCases:
    def test_empty_jsonl_is_a_zero_span_trace(self, tmp_path):
        empty = tmp_path / "trace.jsonl"
        empty.write_text("")
        assert classify_artifact(empty) == "trace"
        assert "no spans recorded" in render_summary([empty])

    def test_empty_json_is_unclassifiable(self, tmp_path):
        empty = tmp_path / "trace.json"
        empty.write_text("")
        assert classify_artifact(empty) == "unknown"
        with pytest.raises(AnalysisError):
            render_summary([empty])

    def test_equal_cost_spans_render_in_name_order(self, tmp_path):
        trace = tmp_path / "spans.jsonl"
        spans = [
            {"name": name, "start_unix": 100.0, "duration_s": 1.0,
             "pid": 1, "tid": 1, "attrs": {}}
            for name in ("zeta", "alpha", "mid")
        ]
        trace.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
        text = render_summary([trace])
        assert text.index("alpha") < text.index("mid") < text.index("zeta")

    def test_metrics_table_has_tail_percentiles(self, tmp_path):
        registry = MetricsRegistry()
        hist = registry.histogram("seed.seconds")
        for value in (0.01, 0.02, 5.0):
            hist.observe(value)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(registry.snapshot()))
        text = render_summary([path])
        assert "p95" in text and "p99" in text

    def test_zero_wall_trace_reports_zero_share(self, tmp_path):
        trace = tmp_path / "spans.jsonl"
        trace.write_text(json.dumps({
            "name": "instant", "start_unix": 10.0, "duration_s": 0.0,
            "pid": 1, "tid": 1, "attrs": {},
        }) + "\n")
        text = render_summary([trace])
        assert "instant" in text and "0.0%" in text


class TestLogContextHardening:
    def test_context_restored_when_block_raises(self):
        from repro.obs.log import current_context

        with pytest.raises(RuntimeError):
            with log_context(seed=9):
                raise RuntimeError("boom")
        assert current_context() == {}

    def test_cross_context_exit_restores_by_value(self):
        """__enter__ in one contextvars Context, __exit__ in another:
        reset() raises ValueError and the fallback must restore the
        previous mapping instead of leaking the bound fields."""
        import contextvars

        from repro.obs.log import current_context

        manager = log_context(run_id="r1")
        contextvars.copy_context().run(manager.__enter__)
        assert current_context() == {}  # the set() happened elsewhere
        manager.__exit__(None, None, None)  # must not raise
        assert current_context() == {}
