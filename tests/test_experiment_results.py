"""Tests for experiment result containers and their renderers."""

import numpy as np
import pytest

from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Condition, Fig6Result
from repro.experiments.fig7 import Fig7Condition, Fig7Result
from repro.experiments.fig8 import Fig8Result
from repro.experiments.fig9 import Fig9Result
from repro.experiments.fig10 import Fig10Result, ScenarioTrace
from repro.experiments.fig11 import CrashScenarioTrace, Fig11Result
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, Table2Row


class TestTable1Result:
    def test_mismatch_detection(self):
        result = Table1Result(rows=[("ATT", 99)], total=99)
        result.mismatches["ATT"] = (99, 12)
        assert not result.matches_paper

    def test_render_contains_counts(self):
        result = run_table1()
        text = result.render()
        assert "ATT" in text and "342" in text


class TestTable2Result:
    def make(self):
        return Table2Result(
            rows=[Table2Row(kind="PID", ksvl=28, added=36, esvl=64, tsvl=6)],
            samples=3000, missions=5,
        )

    def test_ratio(self):
        assert self.make().row("PID").ratio == pytest.approx(6 / 64)

    def test_unknown_row_raises(self):
        with pytest.raises(KeyError):
            self.make().row("Nope")

    def test_render(self):
        text = self.make().render()
        assert "9.4%" in text
        assert "(28/36/64/6)" in text


class TestFig5Result:
    def test_cell_glyphs(self):
        assert Fig5Result._cell(0.1) == "."
        assert Fig5Result._cell(0.4) == "+"
        assert Fig5Result._cell(-0.4) == "-"
        assert Fig5Result._cell(0.9) == "O"
        assert Fig5Result._cell(-0.9) == "X"
        assert Fig5Result._cell(float("nan")) == " "

    def test_display_names(self):
        result = Fig5Result(names=["ATT.DesR", "PIDR.INTEG"],
                            matrix=np.eye(2), tsvl=[])
        assert result.display_names() == ["DesR", "INTEG"]


def _condition(label="x", alarmed=False, scores=(1.0, 2.0)):
    return Fig6Condition(
        label=label,
        times=np.array([0.0, 1.0]),
        roll_deg=np.array([0.0, 5.0]),
        ci_times=np.array([0.0, 1.0]),
        ci_scores=np.asarray(scores, dtype=float),
        alarmed=alarmed,
        first_alarm=0.5 if alarmed else None,
        path_deviation=3.0,
        crashed=False,
    )


class TestFig6Result:
    def test_max_ci(self):
        assert _condition(scores=(5.0, 9.0)).max_ci == 9.0

    def test_render_lists_conditions(self):
        result = Fig6Result(conditions={
            "normal": _condition("normal"),
            "ares": _condition("ares"),
            "naive": _condition("naive", alarmed=True),
        })
        text = result.render()
        assert "normal" in text and "naive" in text and "t=0.5s" in text


class TestFig7Result:
    def test_max_distance(self):
        c = Fig7Condition(
            label="x", times=np.zeros(1), roll_deg=np.zeros(1),
            dist_times=np.zeros(2), distances=np.array([0.001, 0.02]),
            alarmed=True, drift_m=1.0,
        )
        assert c.max_distance == pytest.approx(0.02)
        text = Fig7Result(conditions={"x": c}).render()
        assert "0.01" in text


class TestFig8Result:
    def test_roll_excursion_window(self):
        result = Fig8Result(
            times=np.array([0.0, 10.0, 40.0]),
            att_roll_deg=np.array([1.0, 2.0, 9.0]),
            residual_deg=np.array([0.1, 0.2, 0.3]),
            attack_start=30.0,
        )
        assert result.roll_excursion_after_attack() == 9.0
        assert result.max_residual_deg == pytest.approx(0.3)
        assert "Fig. 8" in result.render()


class TestFig9Result:
    def test_render_rates(self):
        result = Fig9Result(
            benign=[10.0, 12.0], attack1=[40.0], attack2=[11.0],
            thresholds=[20.0],
            rates={20.0: (0.0, 1.0, 0.0)},
        )
        text = result.render()
        assert "TPR" in text and "100%" in text


class TestFig10And11Traces:
    def test_scenario_trace_final_deviation(self):
        trace = ScenarioTrace(
            label="t", times=np.array([0.0, 1.0]),
            deviation=np.array([1.0, 7.0]),
            accumulated=np.array([0.0, 7.0]),
            total_reward=6.0, detected=False,
        )
        assert trace.final_deviation == 7.0
        result = Fig10Result(scenarios={"t": trace})
        assert "Fig. 10" in result.render()

    def test_crash_trace_closest(self):
        trace = CrashScenarioTrace(
            label="t", times=np.zeros(2),
            zone_distance=np.array([9.0, 2.0]),
            contact=False, crashed=False, total_reward=1.0, detected=False,
        )
        assert trace.closest_approach == 2.0
        result = Fig11Result(scenarios={"t": trace})
        assert "Fig. 11" in result.render()
