"""Tests for binary dataflash log encoding/decoding."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.firmware.log_io import decode_log, encode_log, load_log, save_log
from repro.firmware.logger import DataflashLogger


def make_logger() -> DataflashLogger:
    logger = DataflashLogger(log_rate_hz=1000.0)
    for i in range(5):
        t = i * 0.01
        logger.write("BARO", t, {"Alt": float(i), "Press": 101000.0 - i})
        logger.write("ATT", t, {"R": float(i) * 0.5, "DesR": 1.0})
    return logger


class TestRoundTrip:
    def test_encode_decode_round_trip(self):
        logger = make_logger()
        decoded = decode_log(encode_log(logger))
        assert len(decoded["BARO"]) == 5
        assert len(decoded["ATT"]) == 5
        np.testing.assert_allclose(
            [r["Alt"] for r in decoded["BARO"]], range(5)
        )
        np.testing.assert_allclose(
            [r["R"] for r in decoded["ATT"]], np.arange(5) * 0.5
        )

    def test_all_fields_preserved(self):
        logger = make_logger()
        decoded = decode_log(encode_log(logger))
        original = logger.records("ATT")[2][1]
        assert decoded["ATT"][2] == pytest.approx(original)

    def test_empty_types_omitted(self):
        logger = make_logger()
        decoded = decode_log(encode_log(logger))
        assert "GPS" not in decoded

    def test_empty_logger_encodes_empty(self):
        assert encode_log(DataflashLogger()) == b""
        assert decode_log(b"") == {}

    def test_file_round_trip(self, tmp_path):
        logger = make_logger()
        path = tmp_path / "flight.bin"
        size = save_log(logger, path)
        assert path.stat().st_size == size
        loaded = load_log(path)
        assert len(loaded["BARO"]) == 5


class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(ReproError):
            decode_log(b"\x00\x00\x01")

    def test_data_before_fmt(self):
        blob = b"\xa3\x95" + bytes([5]) + b"\x00" * 8
        with pytest.raises(ReproError):
            decode_log(blob)

    def test_truncation_of_valid_log_detected(self):
        logger = make_logger()
        blob = encode_log(logger)
        with pytest.raises(Exception):
            decode_log(blob[: len(blob) - 3])


class TestFlightLogRoundTrip:
    def test_flown_vehicle_log_round_trips(self, flown_vehicle, tmp_path):
        path = tmp_path / "mission.bin"
        save_log(flown_vehicle.logger, path)
        decoded = load_log(path)
        assert len(decoded["ATT"]) == flown_vehicle.logger.num_records("ATT")
        # KSVL fields are recoverable from the binary file alone.
        rolls_binary = np.array([r["R"] for r in decoded["ATT"]])
        np.testing.assert_allclose(
            rolls_binary, flown_vehicle.logger.field("ATT", "R")
        )
