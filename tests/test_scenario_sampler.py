"""Property suite for the scenario fuzzer.

The sampler's contract is determinism-by-construction: per-dimension RNG
streams keyed ``(seed, dimension, sample index, salt)``. These
properties pin the three guarantees the docstring promises — schema
validity of every draw, bit-identical resampling, and per-dimension
stream independence (widening one axis never shifts another's draws).
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.firmware.modes import FlightMode
from repro.obs.schema import validate
from repro.scenario import (
    DIMENSIONS,
    SAMPLE_SPACES,
    SampleSpace,
    ScenarioError,
    ScenarioSampler,
    get_space,
)

SCHEMA = json.loads(Path("schemas/scenario.schema.json").read_text())

seeds = st.integers(min_value=0, max_value=2**16)
indices = st.integers(min_value=0, max_value=64)


def _sections(scenario) -> dict:
    return scenario.to_dict()


class TestSpaces:
    def test_named_spaces(self):
        assert set(SAMPLE_SPACES) == {"default", "tiny"}
        assert get_space("tiny").physics_hz == (100.0,)
        with pytest.raises(ScenarioError, match="unknown sample space"):
            get_space("huge")

    def test_space_bounds_validated(self):
        with pytest.raises(ScenarioError, match="mission_length"):
            SampleSpace(mission_length=(10.0, 5.0))
        with pytest.raises(ScenarioError, match="attack_prob"):
            SampleSpace(attack_prob=1.5)
        with pytest.raises(ScenarioError, match="non-empty"):
            SampleSpace(airframes=())

    def test_dimension_order_is_frozen(self):
        # The index of each name keys its RNG stream; reordering would
        # silently shift every existing draw.
        assert DIMENSIONS == (
            "mission", "physics", "wind", "terrain",
            "battery", "faults", "attack", "defenses",
        )

    def test_sample_count_validated(self):
        with pytest.raises(ScenarioError, match="sample count"):
            ScenarioSampler().sample(0)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, index=indices)
    def test_every_draw_is_schema_valid(self, seed, index):
        scenario = ScenarioSampler(seed=seed).sample_one(index)
        document = {"version": 1, "scenario": scenario.to_dict()}
        assert validate(document, SCHEMA) == []

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, n=st.integers(min_value=1, max_value=6))
    def test_same_seed_is_bit_identical(self, seed, n):
        a = ScenarioSampler(seed=seed).sample(n)
        b = ScenarioSampler(seed=seed).sample(n)
        assert a == b
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, n=st.integers(min_value=1, max_value=4))
    def test_prefix_stability(self, seed, n):
        sampler = ScenarioSampler(seed=seed)
        assert sampler.sample(n + 3)[:n] == sampler.sample(n)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, index=indices)
    def test_widening_attack_axis_leaves_other_dimensions_alone(
        self, seed, index
    ):
        base = SampleSpace()
        widened = replace(base, attack_prob=1.0, attack_rate=(0.1, 20.0))
        a = _sections(ScenarioSampler(base, seed).sample_one(index))
        b = _sections(ScenarioSampler(widened, seed).sample_one(index))
        a.pop("attack")
        b.pop("attack")
        assert a == b

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, index=indices)
    def test_widening_terrain_axis_leaves_other_dimensions_alone(
        self, seed, index
    ):
        base = SampleSpace()
        widened = replace(base, obstacle_prob=1.0, max_obstacles=4)
        a = _sections(ScenarioSampler(base, seed).sample_one(index))
        b = _sections(ScenarioSampler(widened, seed).sample_one(index))
        a.pop("terrain")
        b.pop("terrain")
        assert a == b

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, index=indices)
    def test_widening_fault_axis_leaves_other_dimensions_alone(
        self, seed, index
    ):
        base = SampleSpace()
        widened = replace(
            base, max_faults=4, fault_kinds=base.fault_kinds[:2]
        )
        a = _sections(ScenarioSampler(base, seed).sample_one(index))
        b = _sections(ScenarioSampler(widened, seed).sample_one(index))
        a.pop("faults")
        b.pop("faults")
        assert a == b

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, index=indices)
    def test_sample_one_matches_sample(self, seed, index):
        sampler = ScenarioSampler(seed=seed)
        n = (index % 4) + 1
        assert sampler.sample(n)[n - 1] == sampler.sample_one(n - 1)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, index=indices)
    def test_draw_names_encode_the_stream_position(self, seed, index):
        scenario = ScenarioSampler(seed=seed).sample_one(index)
        assert scenario.name == f"sampled-{seed}-{index}"


class TestSampledFlights:
    @settings(max_examples=4, deadline=None)
    @given(index=st.integers(min_value=0, max_value=12))
    def test_tiny_space_draw_flies_without_raising(self, index):
        scenario = ScenarioSampler(get_space("tiny"), seed=7).sample_one(index)
        vehicle = scenario.build_vehicle(index)
        for detector in scenario.build_defenses(vehicle.config.airframe):
            detector.attach(vehicle)
        vehicle.mission = scenario.make_mission()
        vehicle.takeoff(scenario.mission.altitude)
        attack = scenario.attack.build()
        if attack is not None:
            attack.attach(vehicle)
        vehicle.set_mode(FlightMode.AUTO)
        vehicle.run(1.5)
