"""Attack framework: lifecycle, injection cadence, result summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AttackResult", "Attack"]


@dataclass
class AttackResult:
    """Summary of one attack run for reports and benchmarks."""

    name: str
    started_at: float
    injections: int = 0
    detected: bool = False
    detection_time: float | None = None
    crashed: bool = False
    crash_reason: str | None = None
    max_path_deviation: float = 0.0
    notes: dict[str, float] = field(default_factory=dict)


class Attack:
    """Base class for runtime attacks against a vehicle.

    An attack attaches to the vehicle's ``pre_control`` hook and becomes
    active at ``start_time``; subclasses implement :meth:`_inject`, called
    once per control cycle while active. Manipulations of protected state
    must go through the attacker's compromised memory view — the base
    class creates one on attach.
    """

    def __init__(self, name: str, start_time: float = 0.0,
                 region: str | None = None):
        self.name = name
        self.start_time = start_time
        self.region = region
        self.view = None
        self.active = False
        self.result: AttackResult | None = None
        self._vehicle = None

    @property
    def elapsed(self) -> float:
        """Seconds since the attack became active (0 before)."""
        if self._vehicle is None or not self.active:
            return 0.0
        return self._vehicle.sim.time - self.start_time

    def attach(self, vehicle) -> None:
        """Install on the vehicle; acquires the compromised memory view."""
        from repro.firmware.vehicle import STABILIZER_REGION

        self._vehicle = vehicle
        self.view = vehicle.compromised_view(self.region or STABILIZER_REGION)
        self.result = AttackResult(name=self.name, started_at=self.start_time)
        vehicle.pre_control_hooks.append(self._on_cycle)
        self._on_attach(vehicle)

    def detach(self) -> None:
        """Remove from the vehicle."""
        if self._vehicle is not None and self._on_cycle in self._vehicle.pre_control_hooks:
            self._vehicle.pre_control_hooks.remove(self._on_cycle)
        self._on_detach()
        self._vehicle = None
        self.active = False

    def _on_cycle(self, vehicle) -> None:
        if vehicle.sim.time < self.start_time:
            return
        if not self.active:
            self.active = True
            self._on_start(vehicle)
        self._inject(vehicle)

    def finalize(self, detectors=()) -> AttackResult:
        """Fill the result summary from the vehicle and detector states."""
        result = self.result
        vehicle = self._vehicle
        if result is None or vehicle is None:
            raise RuntimeError("attack was never attached")
        result.crashed = vehicle.sim.vehicle.crashed
        result.crash_reason = vehicle.sim.vehicle.crash_reason
        if self.view is not None:
            result.injections = len(self.view.write_log)
        for detector in detectors:
            if detector.alarmed:
                result.detected = True
                first = detector.first_alarm_time
                if result.detection_time is None or (
                    first is not None and first < result.detection_time
                ):
                    result.detection_time = first
        if vehicle.mission is not None:
            deviation = vehicle.mission.cross_track_distance(
                vehicle.sim.vehicle.state.position
            )
            result.max_path_deviation = max(result.max_path_deviation, deviation)
        return result

    # -- subclass API -------------------------------------------------- #
    def _inject(self, vehicle) -> None:
        """Perform this cycle's manipulation (called while active)."""
        raise NotImplementedError

    def _on_attach(self, vehicle) -> None:
        """Extra attach-time setup (default: nothing)."""

    def _on_start(self, vehicle) -> None:
        """Called once when the attack becomes active."""

    def _on_detach(self) -> None:
        """Extra detach-time teardown (default: nothing)."""


def track_max_deviation(attack: Attack, vehicle) -> None:
    """Helper: update the running max path deviation on the result."""
    if attack.result is not None and vehicle.mission is not None:
        deviation = vehicle.mission.cross_track_distance(
            vehicle.sim.vehicle.state.position
        )
        attack.result.max_path_deviation = max(
            attack.result.max_path_deviation, float(deviation)
        )
