"""Sensor-spoofing attacks (the related-work threat ARES contrasts with).

The paper positions ARES against physical sensor attacks — acoustic
gyroscope injection [23], accelerometer spoofing [47] — which corrupt the
measurement channel rather than controller state. This module provides a
gyro-bias injection so the SAVIOR-style detector's true-positive case is
exercised: spoofed rates diverge from what the actuation physically
implies and the innovation monitor fires, whereas ARES' controller-variable
manipulations sail through it.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack

__all__ = ["GyroSpoofAttack"]


class GyroSpoofAttack(Attack):
    """Inject a constant bias into the gyroscope measurements.

    Models an acoustic-resonance attack on the MEMS gyro: every IMU
    sample acquires ``bias_dps`` on the roll axis. The flight controller
    reacts to phantom rotation, the vehicle physically counter-rotates,
    and the measured rates no longer match the motor-implied dynamics.
    """

    def __init__(self, bias_dps: float = 40.0, axis: int = 0,
                 start_time: float = 0.0):
        super().__init__("gyro-spoof", start_time=start_time)
        self.bias = np.deg2rad(bias_dps)
        self.axis = axis
        self._applied = False

    def _inject(self, vehicle) -> None:
        noise = vehicle.sensors.imu.gyro_noise
        if not self._applied:
            noise._bias = noise._bias.copy()
            noise._bias[self.axis] += self.bias
            self._applied = True
        if self.result is not None:
            self.result.injections += 1

    def _on_detach(self) -> None:
        if self._applied and self._vehicle is not None:
            self._vehicle.sensors.imu.gyro_noise._bias[self.axis] -= self.bias
        self._applied = False
