"""The naive baseline attack: "suddenly changing the roll angle to 30 degrees".

The paper's comparison baseline (Sections III-A, V-C): the roll-angle
*estimate* is forced to a large constant. The controller, seeing a
spurious +30° roll, commands a hard counter-roll; the real vehicle flips
away from the spoofed value, the logged motion no longer matches the motor
commands, and every monitor fires almost immediately — fast, destructive
and loud.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.exceptions import SimulationError
from repro.utils.math3d import deg2rad

__all__ = ["NaiveRollAttack"]


class NaiveRollAttack(Attack):
    """Pin the EKF roll estimate at a fixed angle every control cycle.

    Requires a vehicle flying on its estimated state (the default); the
    naive attacker is the unconstrained baseline, so it writes the EKF
    state directly rather than through a compromised-region view.
    """

    def __init__(self, roll_deg: float = 30.0, start_time: float = 0.0):
        super().__init__("naive-roll", start_time=start_time)
        self.roll_rad = deg2rad(roll_deg)

    def _on_attach(self, vehicle) -> None:
        if vehicle.use_truth_state:
            raise SimulationError(
                "NaiveRollAttack spoofs the estimator; the vehicle must fly "
                "on estimated state (use_truth_state=False)"
            )

    def _inject(self, vehicle) -> None:
        vehicle.ekf.x[0] = self.roll_rad
        if self.result is not None:
            self.result.injections += 1
