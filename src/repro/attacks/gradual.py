"""ARES' gradual stealthy manipulations.

Three attack shapes from the paper's evaluation:

* :class:`GradualRollAttack` — inject the PIDR integrator through the
  compromised stabilizer region so the roll angle creeps at a chosen rate
  (Fig. 6: 2.5°/s to 45°; Fig. 9's Attack 1 / Attack 2 differ only in
  rate), defeating the windowed control-invariants threshold.
* :class:`ScalerDriftAttack` — slowly drift the PIDR output scaler during
  hover (Fig. 7), disturbing stabilisation while the control-output
  distance stays inside the benign band.
* :class:`OutputPerturbationAttack` — add a growing perturbation to the
  roll torque command after the PID (Fig. 8), exploiting the ±5000
  oversized output range: actuation genuinely changes, so the EKF-vs-AHRS
  residual stays near zero while the vehicle destabilises.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, track_max_deviation
from repro.utils.math3d import constrain, deg2rad

__all__ = ["GradualRollAttack", "ScalerDriftAttack", "OutputPerturbationAttack"]


class GradualRollAttack(Attack):
    """Integrator injection producing a controlled roll-angle ramp.

    Every ``injection_period`` seconds (the paper's 0.3 s agent step) the
    attack writes ``PIDR.INTEG`` through the compromised memory view. The
    written value is chosen by a slow proportional law so the achieved
    roll tracks the ramp ``rate_deg_s * t`` up to ``max_roll_deg`` — the
    same tracking behaviour the paper's RL agent learns.
    """

    def __init__(
        self,
        rate_deg_s: float = 2.5,
        max_roll_deg: float = 45.0,
        start_time: float = 5.0,
        injection_period: float = 0.3,
        injection_gain: float = 0.2,
        variable: str = "PIDR.INTEG",
        integ_limit: float = 0.45,
    ):
        super().__init__("gradual-roll", start_time=start_time)
        self.rate_rad_s = deg2rad(rate_deg_s)
        self.max_roll_rad = deg2rad(max_roll_deg)
        self.injection_period = injection_period
        self.injection_gain = injection_gain
        self.variable = variable
        #: Clamp on the written integrator value. The default uses the
        #: full IMAX authority; against a deployed output monitor the
        #: attacker tunes this down to stay inside the benign envelope
        #: (the magnitude search ARES' RL agent performs).
        self.integ_limit = integ_limit
        self._last_injection = -np.inf
        self._integ_cmd = 0.0

    def _on_start(self, vehicle) -> None:
        self._last_injection = -np.inf
        self._integ_cmd = 0.0

    def _inject(self, vehicle) -> None:
        now = vehicle.sim.time
        if now - self._last_injection < self.injection_period:
            return
        self._last_injection = now
        desired_roll = min(self.rate_rad_s * self.elapsed, self.max_roll_rad)
        _, _, euler, _ = vehicle.estimated_state()
        error = desired_roll - euler[0]
        self._integ_cmd = constrain(
            self._integ_cmd + self.injection_gain * error,
            -self.integ_limit, self.integ_limit,
        )
        self.view.write(self.variable, self._integ_cmd)
        track_max_deviation(self, vehicle)


class ScalerDriftAttack(Attack):
    """Gradually drift the PIDR output scaler away from 1.0 (Fig. 7).

    The default drifts the scaler *down* (weakening roll stabilisation so
    the vehicle wanders off its hover point): attenuation keeps the
    actual output close to the monitor's prediction of the benign
    controller — inside the 0.01 benign error band — whereas a naive
    input-space attack blows far past it.
    """

    def __init__(
        self,
        drift_per_s: float = -0.015,
        scaler_limit: float = 0.55,
        start_time: float = 12.0,
        variable: str = "PIDR.SCALER",
    ):
        super().__init__("scaler-drift", start_time=start_time)
        self.drift_per_s = drift_per_s
        self.scaler_limit = scaler_limit
        self.variable = variable

    def _inject(self, vehicle) -> None:
        scaler = 1.0 + self.drift_per_s * self.elapsed
        if self.drift_per_s < 0.0:
            scaler = max(scaler, self.scaler_limit)
        else:
            scaler = min(scaler, self.scaler_limit)
        self.view.write(self.variable, scaler)


class OutputPerturbationAttack(Attack):
    """Additive perturbation on the roll torque command (Fig. 8).

    Modifies the controller output *after* the PID sum, within the
    oversized ±5000 validation range — the range-validation bug class of
    RVFuzzer the paper cites. The perturbation grows linearly and flips
    sign at ``oscillation_period`` to defeat the vehicle's compensation,
    eventually crashing it while sensor-estimation residuals stay small.
    """

    def __init__(
        self,
        growth_per_s: float = 0.003,
        amplitude_limit: float = 0.08,
        oscillation_period: float = 1.5,
        start_time: float = 30.0,
    ):
        super().__init__("output-perturbation", start_time=start_time)
        self.growth_per_s = growth_per_s
        self.amplitude_limit = amplitude_limit
        self.oscillation_period = oscillation_period
        self._hook_installed = False

    def _on_attach(self, vehicle) -> None:
        vehicle.torque_hooks.append(self._tamper)
        self._hook_installed = True

    def _on_detach(self) -> None:
        if self._hook_installed and self._vehicle is not None:
            if self._tamper in self._vehicle.torque_hooks:
                self._vehicle.torque_hooks.remove(self._tamper)
        self._hook_installed = False

    def _inject(self, vehicle) -> None:
        # All work happens in the torque hook; count injections here.
        if self.result is not None:
            self.result.injections += 1

    def _tamper(self, vehicle, torque: np.ndarray) -> np.ndarray:
        if not self.active:
            return torque
        amplitude = min(self.growth_per_s * self.elapsed, self.amplitude_limit)
        wave = np.sin(2.0 * np.pi * self.elapsed / self.oscillation_period)
        perturbed = torque.copy()
        perturbed[0] = constrain(perturbed[0] + amplitude * wave, -1.0, 1.0)
        return perturbed
