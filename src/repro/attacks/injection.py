"""Generic injection primitives used by the RL exploit layer.

:class:`VariableManipulator` is the action actuator of the RL environments:
it applies bounded or absolute writes to one target state variable through
the compromised memory view at the agent cadence; :class:`ParamSetAttack`
drives the GCS ``PARAM_SET`` path instead (subject to range validation).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.exceptions import ParameterRangeError
from repro.gcs.messages import ParamSet, ParamValue

__all__ = ["VariableManipulator", "ParamSetAttack"]


class VariableManipulator:
    """Bounded write actuator over one target state variable.

    Parameters
    ----------
    view:
        The attacker's :class:`CompromisedRegionView`.
    variable:
        Qualified target name, e.g. ``"PIDR.INTEG"``.
    mode:
        ``"delta"`` adds the action to the current value (the paper's
        bounded "gradual changes relative to the current value");
        ``"absolute"`` writes the action directly (random manipulation).
    clip:
        Symmetric clamp on the written value (None = unclipped).
    """

    def __init__(self, view, variable: str, mode: str = "delta",
                 clip: float | None = 0.45):
        if mode not in ("delta", "absolute"):
            raise ValueError(f"unknown manipulation mode '{mode}'")
        if not view.can_write(variable):
            raise PermissionError(
                f"variable '{variable}' is not writable from region "
                f"'{view.region_name}'"
            )
        self.view = view
        self.variable = variable
        self.mode = mode
        self.clip = clip
        self.writes = 0

    def read(self) -> float:
        """Current value of the target variable."""
        return self.view.read(self.variable)

    def apply(self, action: float) -> float:
        """Apply one manipulation; returns the value actually written."""
        if self.mode == "delta":
            value = self.read() + float(action)
        else:
            value = float(action)
        if self.clip is not None:
            value = float(np.clip(value, -self.clip, self.clip))
        self.view.write(self.variable, value)
        self.writes += 1
        return value


class ParamSetAttack(Attack):
    """Periodic malicious PARAM_SET commands over the GCS link.

    Exercises the paper's second attack surface: "the attacker ... can
    concoct and issue malicious GCS commands to update the control
    parameters in the victim RAV". Writes are range-validated by the
    firmware, so the schedule must stay inside declared ranges to succeed;
    rejected writes are counted.

    With ``link=None`` (default) writes hit the parameter store directly.
    Passing the vehicle's GCS :class:`repro.gcs.link.Link` sends real
    ``PARAM_SET`` messages instead — subject to the channel's loss/delay —
    with a bounded non-blocking retry + ack-timeout state machine (one
    write in flight at a time; this hook runs *inside* ``vehicle.step``,
    so it cannot pump the vehicle synchronously). The attack then owns the
    GCS receive side while active. Writes that exhaust every retry are
    counted in ``lost``; the whole retry trace is deterministic from the
    link seed and fault schedule.
    """

    def __init__(
        self,
        schedule,  # callable (elapsed) -> list[(param_name, value)] | None
        period: float = 0.3,
        start_time: float = 0.0,
        link=None,
        ack_timeout_s: float = 0.5,
        retries: int = 3,
    ):
        super().__init__("param-set", start_time=start_time)
        self.schedule = schedule
        self.period = period
        self.link = link
        self.ack_timeout_s = ack_timeout_s
        self.retries = retries
        self.rejected = 0
        self.accepted = 0
        #: Writes abandoned after every retry timed out (via-link only).
        self.lost = 0
        #: Resends issued on ack timeout (via-link only).
        self.retry_count = 0
        self._last = -np.inf
        self._pending: list[ParamSet] = []
        self._inflight: tuple[ParamSet, float, int] | None = None

    def _poll_link(self, now: float) -> None:
        """Advance the via-link state machine one control cycle."""
        while True:
            reply = self.link.receive()
            if reply is None:
                break
            if isinstance(reply, ParamValue) and self._inflight is not None:
                if reply.ok:
                    self.accepted += 1
                else:
                    self.rejected += 1
                if self.result is not None:
                    self.result.injections += 1
                self._inflight = None
        if self._inflight is not None:
            message, sent_at, attempt = self._inflight
            if now - sent_at >= self.ack_timeout_s:
                if attempt < self.retries:
                    self.retry_count += 1
                    self.link.send(message)
                    self._inflight = (message, now, attempt + 1)
                else:
                    self.lost += 1
                    self._inflight = None
        if self._inflight is None and self._pending:
            message = self._pending.pop(0)
            self.link.send(message)
            self._inflight = (message, now, 0)

    def _inject(self, vehicle) -> None:
        now = vehicle.sim.time
        if self.link is not None:
            self._poll_link(now)
        if now - self._last < self.period:
            return
        self._last = now
        updates = self.schedule(self.elapsed)
        if not updates:
            return
        for name, value in updates:
            if self.link is not None:
                self._pending.append(ParamSet(name=name, value=float(value)))
                continue
            try:
                vehicle.params.set(name, value)
                self.accepted += 1
            except ParameterRangeError:
                self.rejected += 1
            if self.result is not None:
                self.result.injections += 1
