"""Attack implementations: naive baseline, gradual stealthy, RL-driven."""

from repro.attacks.base import Attack, AttackResult, track_max_deviation
from repro.attacks.gradual import (
    GradualRollAttack,
    OutputPerturbationAttack,
    ScalerDriftAttack,
)
from repro.attacks.injection import ParamSetAttack, VariableManipulator
from repro.attacks.naive import NaiveRollAttack
from repro.attacks.sensor_spoof import GyroSpoofAttack

__all__ = [
    "Attack",
    "AttackResult",
    "GradualRollAttack",
    "GyroSpoofAttack",
    "NaiveRollAttack",
    "OutputPerturbationAttack",
    "ParamSetAttack",
    "ScalerDriftAttack",
    "VariableManipulator",
    "track_max_deviation",
]
