"""Experiment Fig. 9: robustness of CI detection to threshold tuning.

Two additional attacks differing only in roll-creep rate (the paper's
Attack 1 ≈ 2× the Fig. 6 rate, Attack 2 ≈ 1/10 of it) are launched over
multiple trials, alongside benign runs. Fig. 9a: the distribution of the
maximum cumulative invariant error per mission (measured in the steady
cruise phase). Fig. 9b: FPR/TPR when the alarm threshold is swept — a
lower threshold buys true positives on Attack 1 at the cost of an
unacceptable false-positive rate, and Attack 2 stays inside the benign
distribution at every setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial

import numpy as np

from repro.experiments.campaign import run_campaign
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.firmware.modes import FlightMode
from repro.scenario.library import get_scenario
from repro.scenario.spec import AttackSpec, Scenario

__all__ = ["Fig9Result", "run_fig9"]


@dataclass
class Fig9Result:
    """Per-condition max-error samples and the threshold sweep."""

    benign: list[float] = field(default_factory=list)
    attack1: list[float] = field(default_factory=list)
    attack2: list[float] = field(default_factory=list)
    thresholds: list[float] = field(default_factory=list)
    #: threshold -> (fpr, tpr_attack1, tpr_attack2)
    rates: dict[float, tuple[float, float, float]] = field(default_factory=dict)

    def render(self) -> str:
        """Paper-style summary of both subfigures."""
        from repro.utils.ascii_plot import bar_chart

        lines = [
            "Fig. 9a — max cumulative invariant error per mission (steady phase)",
            f"  benign : {self._fmt(self.benign)}",
            f"  attack1: {self._fmt(self.attack1)}",
            f"  attack2: {self._fmt(self.attack2)}",
        ]
        medians = {
            "benign": float(np.median(self.benign)) if self.benign else 0.0,
            "attack1": float(np.median(self.attack1)) if self.attack1 else 0.0,
            "attack2": float(np.median(self.attack2)) if self.attack2 else 0.0,
        }
        lines.append(bar_chart(medians, title="  median max cumulative error"))
        lines.append("Fig. 9b — threshold sweep")
        lines.append("  threshold     FPR    TPR(atk1)  TPR(atk2)")
        for t in self.thresholds:
            fpr, tp1, tp2 = self.rates[t]
            lines.append(
                f"  {t:9,.0f}  {fpr * 100:5.0f}%  {tp1 * 100:8.0f}%  {tp2 * 100:8.0f}%"
            )
        return "\n".join(lines)

    @staticmethod
    def _fmt(values: list[float]) -> str:
        arr = np.asarray(values)
        if not len(arr):
            return "-"
        return (
            f"min {arr.min():,.0f}  median {np.median(arr):,.0f}  "
            f"max {arr.max():,.0f}"
        )


def _fig9_scenario(rate_deg_s: float | None) -> Scenario:
    """The named scenario of one fig9 condition.

    ``fig9-cruise`` is the benign cell; an attack rate swaps in the roll
    creep (``fig9-attack1``/``fig9-attack2`` are the library's pinned
    rates, but the experiment sweeps the rate as a parameter). fig9
    builds its own threshold-∞ detector instead of the scenario's stock
    defense: the alarm threshold is the swept variable of Fig. 9b, not
    scenario data.
    """
    base = get_scenario("fig9-cruise")
    if rate_deg_s is None:
        return base
    return replace(base, attack=AttackSpec(
        kind="gradual_roll", rate_deg_s=rate_deg_s, start_time=5.0,
    ))


def _steady_max(
    rate_deg_s: float | None, seed: int, duration: float, steady_after: float
) -> float:
    scenario = _fig9_scenario(rate_deg_s)
    vehicle = scenario.build_vehicle(seed)
    detector = ControlInvariantsDetector(
        vehicle.config.airframe, threshold=float("inf")
    )
    detector.attach(vehicle)
    vehicle.mission = scenario.make_mission()
    vehicle.takeoff(scenario.mission.altitude)
    attack = scenario.attack.build()
    if attack is not None:
        attack.attach(vehicle)
    vehicle.set_mode(FlightMode.AUTO)
    vehicle.run(duration)
    times = detector.record.times_array()
    scores = detector.record.scores_array()
    if not len(times):
        return 0.0
    steady = scores[times > times[0] + steady_after]
    return float(steady.max()) if len(steady) else 0.0


def _fig9_trial(
    seed: int,
    duration: float,
    steady_after: float,
    attack1_rate: float,
    attack2_rate: float,
) -> dict[str, float]:
    """One campaign trial: all three conditions on one seed."""
    return {
        "benign": _steady_max(None, seed, duration, steady_after),
        "attack1": _steady_max(attack1_rate, seed, duration, steady_after),
        "attack2": _steady_max(attack2_rate, seed, duration, steady_after),
    }


def _steady_max_fleet(
    rate_deg_s: float | None,
    seeds: list[int],
    duration: float,
    steady_after: float,
) -> list[float]:
    """One :func:`_steady_max` condition for a whole seed batch.

    Same construction order as the scalar trial — detector attached
    before the mission/takeoff, attack after — so lane i is bit-identical
    to a scalar run with seed i (pinned by the oracle tests).
    """
    scenario = _fig9_scenario(rate_deg_s)
    fleet = scenario.build_fleet(list(seeds))
    detectors = []
    for lane in fleet.lanes:
        detector = ControlInvariantsDetector(
            lane.config.airframe, threshold=float("inf")
        )
        detector.attach(lane)
        detectors.append(detector)
    fleet.set_mission(scenario.make_mission)
    fleet.takeoff(scenario.mission.altitude)
    if rate_deg_s is not None:
        for lane in fleet.lanes:
            scenario.attack.build().attach(lane)
    fleet.set_mode(FlightMode.AUTO)
    fleet.run(duration)
    maxima = []
    for detector in detectors:
        times = detector.record.times_array()
        scores = detector.record.scores_array()
        if not len(times):
            maxima.append(0.0)
            continue
        steady = scores[times > times[0] + steady_after]
        maxima.append(float(steady.max()) if len(steady) else 0.0)
    return maxima


def _fig9_batch(
    seeds: list[int],
    duration: float,
    steady_after: float,
    attack1_rate: float,
    attack2_rate: float,
) -> dict[int, dict[str, float]]:
    """All three fig9 conditions for a batch of seeds (three fleets)."""
    out: dict[int, dict[str, float]] = {seed: {} for seed in seeds}
    for condition, rate in (
        ("benign", None), ("attack1", attack1_rate), ("attack2", attack2_rate),
    ):
        values = _steady_max_fleet(rate, list(seeds), duration, steady_after)
        for seed, value in zip(seeds, values):
            out[seed][condition] = value
    return out


def run_fig9(
    trials: int = 10,
    duration: float = 45.0,
    steady_after: float = 25.0,
    attack1_rate: float = 5.0,
    attack2_rate: float = 0.25,
    thresholds: list[float] | None = None,
    base_seed: int = 20,
    workers: int = 0,
    cache=None,
    policy=None,
    manifest=None,
    resume: bool = False,
    engine: str = "scalar",
    batch_size: int | str = 16,
    events=None,
    progress: bool = False,
    blackbox_dir=None,
) -> Fig9Result:
    """Run the three conditions over ``trials`` seeds and sweep thresholds.

    The per-seed trials go through :func:`run_campaign`, so they can fan
    out over ``workers`` processes, reuse cached seeds, retry transient
    worker failures under ``policy``, checkpoint to ``manifest`` and
    ``resume`` an interrupted sweep without recomputing finished seeds.
    ``engine="vectorized"`` computes missing seeds in batched
    :class:`~repro.sim.vectorized.VectorizedFleet` runs — bit-identical
    values and unchanged cache fingerprints, just fewer wall-clock
    seconds per seed. Combined with ``workers > 1`` whole
    ``batch_size``-seed chunks shard across the process pool
    (``batch_size="auto"`` derives the width from the seed and worker
    counts).
    """
    params = {
        "duration": duration, "steady_after": steady_after,
        "attack1_rate": attack1_rate, "attack2_rate": attack2_rate,
    }
    campaign = run_campaign(
        partial(_fig9_trial, **params),
        seeds=range(base_seed, base_seed + trials),
        raise_on_failure=True,
        workers=workers,
        cache=cache,
        experiment_name="fig9.trial",
        params=params,
        policy=policy,
        manifest=manifest,
        resume=resume,
        engine=engine,
        batch=partial(_fig9_batch, **params) if engine == "vectorized" else None,
        batch_size=batch_size,
        events=events,
        progress=progress,
        blackbox_dir=blackbox_dir,
    )
    result = Fig9Result(
        benign=list(campaign.metric("benign").values),
        attack1=list(campaign.metric("attack1").values),
        attack2=list(campaign.metric("attack2").values),
    )
    benign = np.asarray(result.benign)
    if thresholds is None:
        # Sweep around the benign distribution, as an operator tuning for
        # "precision and sensitivity" would.
        thresholds = [
            float(np.quantile(benign, 0.95) * 1.5),
            float(np.quantile(benign, 0.95)),
            float(np.median(benign)),
        ]
    result.thresholds = thresholds
    for threshold in thresholds:
        fpr = float(np.mean(benign > threshold))
        tp1 = float(np.mean(np.asarray(result.attack1) > threshold))
        tp2 = float(np.mean(np.asarray(result.attack2) > threshold))
        result.rates[threshold] = (fpr, tp1, tp2)
    return result
