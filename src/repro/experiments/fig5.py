"""Experiment Fig. 5: correlation heat map + clustering for roll control.

Reproduces the paper's 24-variable roll-control ESVL heat map: the
pairwise correlation matrix ordered by hierarchical clustering, and the
TSVL selected for the roll-angle response (paper: INTEG, DesR, IR, tv).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.clustering import dendrogram_order
from repro.analysis.tsvl import TsvlConfig, generate_tsvl
from repro.firmware.mission import Mission
from repro.profiling.collector import ProfileCollector
from repro.profiling.ksvl import ROLL_DISPLAY_NAMES, ROLL_ESVL_COLUMNS

__all__ = ["Fig5Result", "run_fig5"]

#: The paper's selected roll-control TSVL for comparison.
PAPER_ROLL_TSVL = ("INTEG", "DesR", "IR", "tv")


@dataclass
class Fig5Result:
    """Heat-map matrix, leaf ordering and the roll TSVL."""

    names: list[str] = field(default_factory=list)  # dendrogram order
    matrix: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    tsvl: list[str] = field(default_factory=list)
    esvl_size: int = 0
    samples: int = 0

    def display_names(self) -> list[str]:
        """Paper-style axis labels in heat-map order."""
        return [ROLL_DISPLAY_NAMES.get(n, n) for n in self.names]

    def render(self) -> str:
        """Compact text heat map (sign and |r| decile per cell)."""
        labels = self.display_names()
        lines = [
            "Fig. 5 — roll-control ESVL correlation heat map "
            f"({len(self.names)} variables, {self.samples} samples)",
            "  TSVL for roll: "
            + ", ".join(ROLL_DISPLAY_NAMES.get(n, n) for n in self.tsvl)
            + f"   (paper: {', '.join(PAPER_ROLL_TSVL)})",
        ]
        for i, label in enumerate(labels):
            cells = "".join(
                self._cell(self.matrix[i, j]) for j in range(len(labels))
            )
            lines.append(f"  {label:>6s} {cells}")
        return "\n".join(lines)

    @staticmethod
    def _cell(r: float) -> str:
        if not np.isfinite(r):
            return " "
        magnitude = abs(r)
        if magnitude < 0.25:
            return "."
        if magnitude < 0.5:
            return "+" if r > 0 else "-"
        if magnitude < 0.75:
            return "o" if r > 0 else "x"
        return "O" if r > 0 else "X"


def run_fig5(missions: list[Mission] | None = None) -> Fig5Result:
    """Collect the roll ESVL and produce the clustered heat map + TSVL."""
    ksvl = [c for c in ROLL_ESVL_COLUMNS if not c.startswith("PIDR.")]
    intermediates = [c for c in ROLL_ESVL_COLUMNS if c.startswith("PIDR.")]
    collector = ProfileCollector(
        "PID", ksvl_columns=ksvl, intermediate_columns=intermediates
    )
    dataset = collector.collect(missions=missions)

    tsvl = generate_tsvl(
        dataset.table, dynamics_variables=["ATT.R"], config=TsvlConfig()
    )
    order = dendrogram_order(tsvl.clustering)
    # Variables pruned before clustering go to the end of the axis.
    ordered = order + [c for c in dataset.table.columns if c not in order]
    idx = [tsvl.correlation.names.index(n) for n in ordered]
    matrix = tsvl.correlation.matrix[np.ix_(idx, idx)]
    return Fig5Result(
        names=ordered,
        matrix=matrix,
        tsvl=list(tsvl.tsvl),
        esvl_size=len(dataset.table.columns),
        samples=dataset.num_samples,
    )
