"""Experiment Fig. 8: evading sensor-estimation (SAVIOR-style) detection.

The attack adds a growing perturbation to the roll PID's output — directly
feeding modified actuation to the motors within the oversized ±5000
output range. The vehicle's roll enters unstable, aggressive stabilisation
(Fig. 8a) and eventually the vehicle destabilises; but because the motion
is genuinely produced by the actuators, the residual between the backup
AHRS attitude (ATT source) and the EKF estimate stays near zero and the
EKF-residual detector never alarms (Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.gradual import OutputPerturbationAttack
from repro.defenses.ekf_monitor import EKFResidualDetector
from repro.firmware.vehicle import Vehicle
from repro.sim.config import SimConfig

__all__ = ["Fig8Result", "run_fig8"]


@dataclass
class Fig8Result:
    """PID output terms plus the estimator residual series."""

    times: np.ndarray = field(default_factory=lambda: np.zeros(0))
    pid_p: np.ndarray = field(default_factory=lambda: np.zeros(0))
    pid_i: np.ndarray = field(default_factory=lambda: np.zeros(0))
    pid_d: np.ndarray = field(default_factory=lambda: np.zeros(0))
    att_roll_deg: np.ndarray = field(default_factory=lambda: np.zeros(0))
    ekf_roll_deg: np.ndarray = field(default_factory=lambda: np.zeros(0))
    residual_deg: np.ndarray = field(default_factory=lambda: np.zeros(0))
    attack_start: float = 30.0
    alarmed: bool = False
    destabilised: bool = False

    @property
    def max_residual_deg(self) -> float:
        """Largest AHRS-vs-EKF roll residual."""
        return float(np.abs(self.residual_deg).max()) if len(self.residual_deg) else 0.0

    def roll_excursion_after_attack(self) -> float:
        """Peak |roll| after the attack starts (the Fig. 8a instability)."""
        mask = self.times >= self.attack_start
        if not mask.any():
            return 0.0
        return float(np.abs(self.att_roll_deg[mask]).max())

    def render(self) -> str:
        """Outcome summary."""
        return "\n".join([
            "Fig. 8 — sensor-estimation (EKF residual) detection",
            f"  attack start: t={self.attack_start:.0f}s",
            f"  post-attack |roll| peak: {self.roll_excursion_after_attack():.1f}°"
            f"   (destabilised: {self.destabilised})",
            f"  max AHRS-vs-EKF residual: {self.max_residual_deg:.2f}°"
            f"   alarm: {self.alarmed}",
        ])


def run_fig8(
    duration: float = 60.0,
    attack_start: float = 30.0,
    seed: int = 9,
    growth_per_s: float = 0.02,
) -> Fig8Result:
    """Run the output-perturbation attack under the EKF-residual monitor."""
    vehicle = Vehicle(SimConfig(seed=seed, wind_gust_std=0.2))
    detector = EKFResidualDetector()
    detector.attach(vehicle)
    attack = OutputPerturbationAttack(
        growth_per_s=growth_per_s, start_time=attack_start
    )
    vehicle.takeoff(5.0)
    attack.attach(vehicle)

    times: list[float] = []
    p_terms: list[float] = []
    i_terms: list[float] = []
    d_terms: list[float] = []
    att_rolls: list[float] = []
    ekf_rolls: list[float] = []
    residuals: list[float] = []

    def sample(v):
        if v.logger.num_records("ATT") > len(times):
            times.append(v.sim.time)
            out = v.attitude_ctrl.pid_roll.last_output
            p_terms.append(out.p)
            i_terms.append(out.i)
            d_terms.append(out.d)
            att_rolls.append(float(np.rad2deg(v.ahrs.euler[0])))
            ekf_rolls.append(float(np.rad2deg(v.ekf.roll)))
            residuals.append(att_rolls[-1] - ekf_rolls[-1])

    vehicle.post_step_hooks.append(sample)
    vehicle.run(duration)

    result = Fig8Result(
        times=np.asarray(times),
        pid_p=np.asarray(p_terms),
        pid_i=np.asarray(i_terms),
        pid_d=np.asarray(d_terms),
        att_roll_deg=np.asarray(att_rolls),
        ekf_roll_deg=np.asarray(ekf_rolls),
        residual_deg=np.asarray(residuals),
        attack_start=attack_start,
        alarmed=detector.alarmed,
    )
    # "destabilised" compares against the settled flight just before the
    # attack (the takeoff transient would otherwise mask the effect).
    pre_mask = (result.times >= attack_start - 10.0) & (result.times < attack_start)
    pre = float(np.abs(result.att_roll_deg[pre_mask]).max()) if pre_mask.any() else 0.0
    result.destabilised = (
        result.roll_excursion_after_attack() > max(2.0 * pre, 4.0)
        or vehicle.sim.vehicle.crashed
    )
    return result
