"""Experiment Fig. 3: the ESVL correlation-dependency graph for roll control.

Produces the node/edge structure of the paper's Fig. 3: KSVL attitude and
IMU variables plus the traced PID intermediates (v1..v7 ≙ KP, KI, KD, DT,
INTEG, INPUT, DERIV), with green (positive) / red (negative) weighted
correlation edges, and the constants (KP, KI, KD) excluded from the
analysis as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.correlation import correlation_matrix
from repro.analysis.pruning import prune_state_variables
from repro.firmware.mission import Mission
from repro.profiling.collector import ProfileCollector
from repro.profiling.ksvl import ROLL_DISPLAY_NAMES

__all__ = ["Fig3Result", "run_fig3"]

#: The Fig. 3 ESVL: the KSVL attitude/IMU block plus all PIDR traced
#: intermediates (including the constants that pruning must reject).
FIG3_COLUMNS = (
    ["ATT.DesR", "ATT.R", "ATT.IR", "ATT.IRErr", "ATT.tv",
     "ATT.DesP", "ATT.P", "ATT.DesY", "ATT.Y"]
    + [f"IMU.{f}" for f in ("GyrX", "GyrY", "GyrZ", "AccX", "AccY", "AccZ")]
    + [f"PIDR.{v}" for v in ("KP", "KI", "KD", "DT", "INTEG", "INPUT", "DERIV")]
)


@dataclass
class Fig3Result:
    """Graph structure of the correlation-dependency figure."""

    nodes: list[str] = field(default_factory=list)
    pruned_constants: list[str] = field(default_factory=list)
    edges: list[tuple[str, str, float]] = field(default_factory=list)
    samples: int = 0

    def display(self, name: str) -> str:
        """Paper-style label for a column."""
        return ROLL_DISPLAY_NAMES.get(name, name.split(".", 1)[-1])

    def render(self, top: int = 15) -> str:
        """Edge list, strongest first, with +/- polarity."""
        lines = [
            "Fig. 3 — ESVL correlation dependency graph (roll control)",
            f"  nodes: {len(self.nodes)}   "
            f"pruned constants: {[self.display(n) for n in self.pruned_constants]}",
        ]
        for a, b, r in self.edges[:top]:
            polarity = "+" if r >= 0 else "-"
            lines.append(
                f"  {self.display(a):6s} --{polarity}{abs(r):.2f}-- {self.display(b)}"
            )
        return "\n".join(lines)


def run_fig3(
    missions: list[Mission] | None = None,
    edge_threshold: float = 0.3,
) -> Fig3Result:
    """Collect the Fig. 3 dataset and build the dependency graph."""
    ksvl = [c for c in FIG3_COLUMNS if not c.startswith("PIDR.")]
    intermediates = [c for c in FIG3_COLUMNS if c.startswith("PIDR.")]
    collector = ProfileCollector(
        "PID", ksvl_columns=ksvl, intermediate_columns=intermediates
    )
    dataset = collector.collect(missions=missions)

    pruning = prune_state_variables(dataset.table)
    constants = [
        name for name, reason in pruning.dropped.items() if reason == "constant"
    ]
    analysed = dataset.table.select(pruning.kept)
    corr = correlation_matrix(analysed)
    result = Fig3Result(
        nodes=pruning.kept,
        pruned_constants=constants,
        edges=corr.significant_pairs(edge_threshold),
        samples=dataset.num_samples,
    )
    return result
