"""Experiment Fig. 10: RL-based uncontrolled failure (path deviation).

The agent manipulates ``PIDR.INTEG`` between waypoints A and B under the
Eq. 4 reward. The figure's content: the deviation distance from the next
waypoint and the accumulated deviation over the episode, across exploit
scenarios — here the trained policy, a random policy and the untouched
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rl.ddpg import DdpgAgent, DdpgConfig
from repro.rl.env import EnvConfig
from repro.rl.envs.deviation import PathDeviationEnv
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.rl.training import TrainingResult, train_ddpg, train_reinforce

__all__ = ["ScenarioTrace", "Fig10Result", "run_fig10"]


@dataclass
class ScenarioTrace:
    """Deviation series for one exploit scenario."""

    label: str
    times: np.ndarray
    deviation: np.ndarray
    accumulated: np.ndarray
    total_reward: float
    detected: bool

    @property
    def final_deviation(self) -> float:
        """Deviation from the path at episode end."""
        return float(self.deviation[-1]) if len(self.deviation) else 0.0


@dataclass
class Fig10Result:
    """Training history plus evaluation traces per scenario."""

    training: TrainingResult | None = None
    scenarios: dict[str, ScenarioTrace] = field(default_factory=dict)

    def render(self) -> str:
        """Outcome summary with the deviation chart."""
        from repro.utils.ascii_plot import line_chart, sparkline

        lines = ["Fig. 10 — RL uncontrolled failure (path deviation)"]
        if self.training is not None:
            r = self.training.returns
            lines.append(
                f"  training: {len(r)} episodes, first-5 mean "
                f"{r[:5].mean():.2f} → last-5 mean {r[-5:].mean():.2f}"
            )
            lines.append(f"  returns: {sparkline(r)}")
        lines.append("  scenario   final dev   accum dev   detected")
        for label, s in self.scenarios.items():
            lines.append(
                f"  {label:9s}  {s.final_deviation:8.1f} m "
                f"{s.accumulated[-1] if len(s.accumulated) else 0.0:10.1f} m·s  "
                f"{s.detected}"
            )
        series = {
            label: (s.times, s.deviation)
            for label, s in self.scenarios.items() if len(s.times)
        }
        if series:
            lines.append("\n  deviation from path (m) vs time (s)")
            lines.append(line_chart(series, width=60, height=10))
        return "\n".join(lines)


def _rollout(env, policy, label: str) -> ScenarioTrace:
    obs = env.reset()
    times = [env.vehicle.sim.time]
    deviations = [obs[3]]
    accumulated = [0.0]
    total = 0.0
    detected = False
    done = False
    while not done:
        action = policy(obs)
        obs, reward, done, info = env.step(action)
        total += reward
        times.append(info["time"])
        deviations.append(obs[3])
        accumulated.append(accumulated[-1] + obs[3] * env.config.agent_dt)
        detected = detected or info["detected"]
    return ScenarioTrace(
        label=label,
        times=np.asarray(times),
        deviation=np.asarray(deviations),
        accumulated=np.asarray(accumulated),
        total_reward=total,
        detected=detected,
    )


def run_fig10(
    train_episodes: int = 30,
    eval_steps: int = 60,
    use_detector: bool = False,
    seed: int = 1,
    agent_kind: str = "reinforce",
) -> Fig10Result:
    """Train the deviation agent and evaluate the exploit scenarios.

    Paper scale is 5 000 episodes × 300 steps with a DDPG-class policy
    gradient; the defaults here are laptop-scale REINFORCE and the
    arguments accept the full values (``agent_kind="ddpg"`` uses DDPG).
    """
    config = EnvConfig(
        max_episode_steps=eval_steps, physics_hz=100.0, seed=seed,
        use_detector=use_detector,
    )
    env = PathDeviationEnv(config)
    result = Fig10Result()
    if agent_kind == "ddpg":
        agent = DdpgAgent(
            env.observation_space.dim, config.action_limit,
            DdpgConfig(seed=seed),
        )
        result.training = train_ddpg(env, agent, episodes=train_episodes)
    else:
        agent = ReinforceAgent(
            env.observation_space.dim, config.action_limit,
            ReinforceConfig(seed=seed),
        )
        result.training = train_reinforce(env, agent, episodes=train_episodes)

    result.scenarios["trained"] = _rollout(
        env, lambda obs: agent.act(obs, deterministic=True), "trained"
    )
    rng = np.random.default_rng(seed)
    result.scenarios["random"] = _rollout(
        env,
        lambda obs: rng.uniform(-config.action_limit, config.action_limit, 1),
        "random",
    )
    result.scenarios["baseline"] = _rollout(
        env, lambda obs: np.zeros(1), "baseline"
    )
    return result
