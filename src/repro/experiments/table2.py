"""Experiment Table II: KSVL → ESVL → TSVL counts per controller function.

One benign profiling campaign (shared flights) collects the union of all
three experiments' columns; Algorithm 1 then runs per controller-function
kind. Paper's numbers: PID 28/36/64/6 (9.4 %), Sqrt 9/12/21/3 (14.3 %),
SINS 14/19/33/3 (9.1 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tsvl import TsvlConfig, generate_tsvl
from repro.firmware.mission import Mission
from repro.profiling.collector import ProfileCollector, default_profile_missions
from repro.profiling.ksvl import intermediates_for_controller, ksvl_for_controller

__all__ = ["Table2Row", "Table2Result", "run_table2", "PAPER_TABLE2"]

#: Paper values: kind -> (ksvl, added, esvl, tsvl).
PAPER_TABLE2 = {
    "PID": (28, 36, 64, 6),
    "Sqrt": (9, 12, 21, 3),
    "SINS": (14, 19, 33, 3),
}

#: Response (vehicle dynamics) variables per experiment. The Sqrt
#: experiment's responses are the achieved velocities: raw positions are
#: near-integrated series that the IID pruning rejects (correctly), while
#: velocity is the quantity the square-root position controller shapes.
_RESPONSES = {
    "PID": ["ATT.R", "ATT.P", "ATT.Y"],
    "Sqrt": ["NTUN.VelX", "NTUN.VelY"],
    "SINS": ["GPS.Spd", "GPS.VZ"],
}


@dataclass
class Table2Row:
    """One controller-function row of Table II."""

    kind: str
    ksvl: int
    added: int
    esvl: int
    tsvl: int
    tsvl_names: list[str] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        """TSVL / ESVL selection ratio."""
        return self.tsvl / self.esvl if self.esvl else 0.0


@dataclass
class Table2Result:
    """All rows plus campaign metadata."""

    rows: list[Table2Row] = field(default_factory=list)
    samples: int = 0
    missions: int = 0

    def row(self, kind: str) -> Table2Row:
        """Row for one controller kind."""
        for r in self.rows:
            if r.kind == kind:
                return r
        raise KeyError(kind)

    def render(self) -> str:
        """Paper-style table text with the paper's values alongside."""
        lines = [
            "Table II — data-driven search of target state variables",
            f"  ({self.missions} benign missions, {self.samples} samples @16 Hz)",
            "  kind   #KSVL  #Added  #ESVL  #TSVL  ratio   (paper)",
        ]
        for r in self.rows:
            paper = PAPER_TABLE2.get(r.kind)
            paper_str = (
                f"{paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}" if paper else "-"
            )
            lines.append(
                f"  {r.kind:5s}  {r.ksvl:5d}  {r.added:6d}  {r.esvl:5d}  "
                f"{r.tsvl:5d}  {r.ratio * 100.0:5.1f}%  ({paper_str})"
            )
        return "\n".join(lines)


def run_table2(
    missions: list[Mission] | None = None,
    max_per_response: int = 2,
) -> Table2Result:
    """Run the Table II campaign (default: the 5-mission paper campaign)."""
    missions = missions if missions is not None else default_profile_missions()
    kinds = ("PID", "Sqrt", "SINS")
    ksvl_union: list[str] = []
    inter_union: list[str] = []
    for kind in kinds:
        for col in ksvl_for_controller(kind):
            if col not in ksvl_union:
                ksvl_union.append(col)
        for col in intermediates_for_controller(kind):
            if col not in inter_union:
                inter_union.append(col)
    collector = ProfileCollector(
        "PID", ksvl_columns=ksvl_union, intermediate_columns=inter_union
    )
    dataset = collector.collect(missions=missions)

    result = Table2Result(
        samples=dataset.num_samples, missions=dataset.missions_flown
    )
    for kind in kinds:
        ksvl = ksvl_for_controller(kind)
        added = intermediates_for_controller(kind)
        esvl_columns = ksvl + added
        table = dataset.table.select(esvl_columns)
        tsvl = generate_tsvl(
            table,
            dynamics_variables=[r for r in _RESPONSES[kind] if r in table],
            config=TsvlConfig(max_per_response=max_per_response),
        )
        result.rows.append(
            Table2Row(
                kind=kind, ksvl=len(ksvl), added=len(added),
                esvl=len(esvl_columns), tsvl=len(tsvl.tsvl),
                tsvl_names=list(tsvl.tsvl),
            )
        )
    return result
