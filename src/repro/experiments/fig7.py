"""Experiment Fig. 7: evading the ML-based controller-output monitor.

An IRIS+ hovers at 5 ft while the monitor of Ding et al. watches the roll
rate PID's output distance (threshold 0.01). At t = 12 s the ARES attack
gradually drifts the PID output scaler; the roll destabilises and the
vehicle drifts, but the output distance stays inside the benign band. The
naive attack (roll estimate forced to 30°) drives the PID inputs far
outside the training envelope and the distance blows past the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.gradual import ScalerDriftAttack
from repro.attacks.naive import NaiveRollAttack
from repro.defenses.ml_monitor import MLOutputMonitor
from repro.firmware.vehicle import Vehicle
from repro.sim.config import SimConfig

__all__ = ["Fig7Condition", "Fig7Result", "run_fig7"]

_HOVER_ALT_M = 1.524  # 5 feet


@dataclass
class Fig7Condition:
    """Roll-angle and output-distance series for one condition."""

    label: str
    times: np.ndarray
    roll_deg: np.ndarray
    dist_times: np.ndarray
    distances: np.ndarray
    alarmed: bool
    drift_m: float

    @property
    def max_distance(self) -> float:
        """Largest control-output distance observed."""
        return float(self.distances.max()) if len(self.distances) else 0.0


@dataclass
class Fig7Result:
    """All Fig. 7 conditions plus the monitor threshold."""

    conditions: dict[str, Fig7Condition] = field(default_factory=dict)
    threshold: float = 0.01

    def render(self) -> str:
        """Outcome summary."""
        lines = [
            f"Fig. 7 — ML output monitor (threshold {self.threshold})",
            "  condition  max |roll|   max out-dist   alarm   drift",
        ]
        for label, c in self.conditions.items():
            lines.append(
                f"  {label:9s}  {np.abs(c.roll_deg).max():8.1f}°  "
                f"{c.max_distance:12.5f}   {str(c.alarmed):5s}  {c.drift_m:5.1f} m"
            )
        return "\n".join(lines)


def _hover(monitor: MLOutputMonitor, attack, seed: int, duration: float) -> Fig7Condition:
    vehicle = Vehicle(SimConfig(seed=seed, wind_gust_std=0.2))
    monitor.reset()
    monitor.attach(vehicle)
    vehicle.takeoff(_HOVER_ALT_M)
    start = vehicle.sim.vehicle.state.position.copy()
    if attack is not None:
        attack.attach(vehicle)

    times: list[float] = []
    rolls: list[float] = []

    def sample(v):
        if v.logger.num_records("ATT") > len(times):
            times.append(v.sim.time)
            rolls.append(float(np.rad2deg(v.estimated_state()[2][0])))

    vehicle.post_step_hooks.append(sample)
    vehicle.run(duration)
    monitor.detach()
    drift = float(
        np.linalg.norm(vehicle.sim.vehicle.state.position[:2] - start[:2])
    )
    return Fig7Condition(
        label=attack.name if attack is not None else "normal",
        times=np.asarray(times),
        roll_deg=np.asarray(rolls),
        dist_times=monitor.record.times_array(),
        distances=monitor.record.scores_array(),
        alarmed=monitor.alarmed,
        drift_m=drift,
    )


def run_fig7(
    duration: float = 30.0,
    seed: int = 5,
    attack_start: float = 12.0,
    train_duration: float = 20.0,
) -> Fig7Result:
    """Train the monitor on a benign hover, then run the conditions."""
    monitor = MLOutputMonitor()
    monitor.train_on_benign(
        lambda: Vehicle(SimConfig(seed=seed + 100, wind_gust_std=0.2)),
        duration=train_duration,
    )
    result = Fig7Result(threshold=monitor.threshold)
    result.conditions["normal"] = _hover(monitor, None, seed, duration)
    result.conditions["ares"] = _hover(
        monitor, ScalerDriftAttack(start_time=attack_start), seed, duration
    )
    result.conditions["naive"] = _hover(
        monitor, NaiveRollAttack(start_time=attack_start), seed, duration
    )
    return result
