"""One front door for every paper experiment: named, cached, parallel.

The fig/table modules each expose a pure ``run_*`` entry point; this
module registers them under their paper names and routes invocations
through the result cache (and, for campaign-style experiments, the
process-pool workers), so benches and the CLI share one code path:

    run_experiment("fig9", trials=4, workers=4)

Whole-experiment results are cached under the experiment's name; the
``workers``/``cache`` execution knobs are deliberately excluded from the
cache fingerprint because they change how a result is computed, never
what it is.
"""

from __future__ import annotations

import functools
import inspect
from collections.abc import Callable
from typing import Any

from repro.exceptions import AnalysisError
from repro.experiments.cache import ResultCache, cached_call, default_cache
from repro.obs.log import get_logger, log_context
from repro.obs.tracing import span as obs_span

__all__ = ["EXPERIMENTS", "experiment_entry", "run_experiment"]

_log = get_logger(__name__)


def _registry() -> dict[str, Callable]:
    # Imported lazily so ``import repro.experiments.runner`` stays cheap
    # and free of the heavier RL/simulation module graph.
    from repro.experiments.fig3 import run_fig3
    from repro.experiments.fig5 import run_fig5
    from repro.experiments.fig6 import run_fig6
    from repro.experiments.fig7 import run_fig7
    from repro.experiments.fig8 import run_fig8
    from repro.experiments.fig9 import run_fig9
    from repro.experiments.fig10 import run_fig10
    from repro.experiments.fig11 import run_fig11
    from repro.experiments.robustness_matrix import run_robustness
    from repro.experiments.scenarios import run_scenarios
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import run_table2

    return {
        "table1": run_table1,
        "table2": run_table2,
        "robustness": run_robustness,
        "scenarios": run_scenarios,
        "fig3": run_fig3,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "fig10": run_fig10,
        "fig11": run_fig11,
    }


#: Experiment name -> entry point (resolved on first use).
EXPERIMENTS: dict[str, Callable] = {}


def experiment_entry(name: str) -> Callable:
    """The registered entry point for ``name``."""
    if not EXPERIMENTS:
        EXPERIMENTS.update(_registry())
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise AnalysisError(
            f"unknown experiment '{name}' (choose from {known})"
        ) from None


def run_experiment(
    name: str,
    *,
    cache: ResultCache | None = None,
    workers: int = 0,
    policy: Any = None,
    manifest: Any = None,
    resume: bool = False,
    engine: str = "scalar",
    batch_size: int | str = 16,
    events: Any = None,
    progress: bool = False,
    blackbox_dir: Any = None,
    **kwargs: Any,
):
    """Run one named experiment through the cache/worker layer.

    ``workers`` — and the resilience knobs ``policy`` (a
    :class:`~repro.experiments.faults.FaultPolicy`), ``manifest``
    (checkpoint path) and ``resume`` — are forwarded to entry points that
    accept them (the campaign-style experiments); per-seed caching inside
    such experiments reuses the same ``cache`` instance, so even a
    partial prior run contributes its finished seeds.

    ``engine="vectorized"`` requests the batched
    :class:`~repro.sim.vectorized.VectorizedFleet` path for entry points
    that support it (currently fig9). Experiments without a vectorized
    path log a warning and run scalar — never an error, and always the
    identical result, because the engine only changes how values are
    computed. Like ``workers``, the engine is excluded from cache
    fingerprints.

    ``batch_size`` (an int, or ``"auto"`` to derive the width from the
    seed and worker counts) sets the vectorized chunk width; combined
    with ``workers > 1`` whole chunks shard across the process pool.
    Like ``workers`` and ``engine`` it never enters a cache fingerprint.
    """
    entry = experiment_entry(name)
    if cache is None:
        cache = default_cache()
    signature = inspect.signature(entry)
    call_kwargs = dict(kwargs)
    if "workers" in signature.parameters:
        call_kwargs["workers"] = workers
    if "engine" in signature.parameters:
        call_kwargs["engine"] = engine
    elif engine != "scalar":
        _log.warning(
            "experiment '%s' has no vectorized path; running scalar "
            "(results are identical either way)", name,
        )
    if "batch_size" in signature.parameters:
        call_kwargs["batch_size"] = batch_size
    elif batch_size != 16:
        _log.warning(
            "experiment '%s' takes no --batch-size; ignoring it "
            "(results are identical either way)", name,
        )
    for knob, value in (("policy", policy), ("manifest", manifest),
                        ("resume", resume), ("events", events),
                        ("progress", progress),
                        ("blackbox_dir", blackbox_dir)):
        if knob in signature.parameters:
            call_kwargs[knob] = value
        elif value:
            raise AnalysisError(
                f"experiment '{name}' does not support --{knob.replace('_', '-')}"
                " (campaign-style experiments only)"
            )
    if "cache" in signature.parameters:
        # ``cache`` cannot ride through cached_call's **kwargs (it would
        # bind to cached_call's own ``cache`` parameter), so bind it onto
        # the entry point instead; callable_name unwraps the partial, so
        # the fingerprint still keys on the bare entry point.
        entry = functools.partial(entry, cache=cache)
    # The execution knobs (workers/cache) are excluded from the
    # fingerprint, so only the science parameters key the result. The
    # telemetry flags never even reach this layer (the CLI keeps them),
    # so they cannot perturb a fingerprint either.
    _log.info("experiment start: %s", name)
    with log_context(experiment=name), obs_span(
        "experiment", experiment=name, workers=int(workers)
    ) as experiment_span:
        result = cached_call(entry, experiment=name, cache=cache, **call_kwargs)
        experiment_span.set("cache_hits", cache.stats.hits)
        experiment_span.set("cache_misses", cache.stats.misses)
    _log.info(
        "experiment done: %s (cache: %d hits, %d misses, %d stores)",
        name, cache.stats.hits, cache.stats.misses, cache.stats.stores,
    )
    return result
