"""Experiment Fig. 6: evading the control-invariants detector.

Three conditions on the same path-following mission with the CI monitor
(400 Hz, window 1024, threshold 400 000) attached:

* **Normal** — benign flight; cumulative error fluctuates in the safe band.
* **ARES** — gradual ``PIDR.INTEG`` manipulation creeping the roll angle
  (paper: 2.5°/s toward 45°); large path deviation, no alarm.
* **Naive** — the roll estimate forced to 30°; alarm almost immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.gradual import GradualRollAttack
from repro.attacks.naive import NaiveRollAttack
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import Vehicle
from repro.sim.config import SimConfig

__all__ = ["Fig6Condition", "Fig6Result", "run_fig6"]


@dataclass
class Fig6Condition:
    """Time series and outcome for one condition."""

    label: str
    times: np.ndarray
    roll_deg: np.ndarray
    ci_times: np.ndarray
    ci_scores: np.ndarray
    alarmed: bool
    first_alarm: float | None
    path_deviation: float
    crashed: bool

    @property
    def max_ci(self) -> float:
        """Maximum cumulative error over the run."""
        return float(self.ci_scores.max()) if len(self.ci_scores) else 0.0


@dataclass
class Fig6Result:
    """All three conditions of Fig. 6."""

    conditions: dict[str, Fig6Condition] = field(default_factory=dict)
    threshold: float = 400_000.0

    def render(self) -> str:
        """Paper-style outcome summary with the two sub-figure charts."""
        from repro.utils.ascii_plot import line_chart

        lines = [
            "Fig. 6 — control-invariants detection "
            f"(threshold {self.threshold:,.0f})",
            "  condition  max roll   max cum err   alarm    path dev",
        ]
        for label in ("normal", "ares", "naive"):
            c = self.conditions.get(label)
            if c is None:
                continue
            alarm = f"t={c.first_alarm:.1f}s" if c.alarmed else "none"
            lines.append(
                f"  {label:9s}  {c.roll_deg.max():7.1f}°  "
                f"{c.max_ci:12,.0f}   {alarm:8s} {c.path_deviation:8.1f} m"
            )
        roll_series = {
            label: (c.times, c.roll_deg)
            for label, c in self.conditions.items() if len(c.times)
        }
        if roll_series:
            lines.append("\n  (a) roll angle (deg) vs time (s)")
            lines.append(line_chart(roll_series, width=60, height=10))
        error_series = {
            label: (c.ci_times, c.ci_scores)
            for label, c in self.conditions.items() if len(c.ci_times)
        }
        if error_series:
            lines.append("\n  (b) cumulative error vs time (s)")
            lines.append(line_chart(error_series, width=60, height=10))
        return "\n".join(lines)


def _fly(attack, seed: int, duration: float, attack_start: float) -> Fig6Condition:
    vehicle = Vehicle(SimConfig(seed=seed, wind_gust_std=0.4))
    detector = ControlInvariantsDetector(vehicle.config.airframe)
    detector.attach(vehicle)
    vehicle.mission = line_mission(length=400.0, altitude=10.0, legs=1)
    vehicle.takeoff(10.0)
    if attack is not None:
        attack.attach(vehicle)
    vehicle.set_mode(FlightMode.AUTO)

    times: list[float] = []
    rolls: list[float] = []
    deviation = 0.0

    def sample(v):
        nonlocal deviation
        if v.logger.num_records("ATT") > len(times):
            times.append(v.sim.time)
            rolls.append(float(np.rad2deg(v.estimated_state()[2][0])))
            deviation = max(
                deviation,
                float(v.mission.cross_track_distance(v.sim.vehicle.state.position)),
            )

    vehicle.post_step_hooks.append(sample)
    vehicle.run(duration)
    label = attack.name if attack is not None else "normal"
    return Fig6Condition(
        label=label,
        times=np.asarray(times),
        roll_deg=np.asarray(rolls),
        ci_times=detector.record.times_array(),
        ci_scores=detector.record.scores_array(),
        alarmed=detector.alarmed,
        first_alarm=detector.first_alarm_time,
        path_deviation=deviation,
        crashed=vehicle.sim.vehicle.crashed,
    )


def run_fig6(
    duration: float = 60.0,
    seed: int = 3,
    ares_rate_deg_s: float = 2.5,
    attack_start: float = 5.0,
) -> Fig6Result:
    """Run the three Fig. 6 conditions."""
    result = Fig6Result()
    result.conditions["normal"] = _fly(None, seed, duration, attack_start)
    result.conditions["ares"] = _fly(
        GradualRollAttack(rate_deg_s=ares_rate_deg_s, start_time=attack_start),
        seed, duration, attack_start,
    )
    result.conditions["naive"] = _fly(
        NaiveRollAttack(start_time=attack_start), seed,
        min(duration, 30.0), attack_start,
    )
    return result
