"""Fault-tolerant campaign execution: policies, chaos injection, manifests.

Long multi-seed campaigns are exactly where infrastructure fails: a hung
worker, a process killed by the OOM killer, a result payload garbled in
transit, a cache file truncated by a crash mid-write. Without a recovery
layer one such event throws away every completed seed of a sweep. This
module provides the three pieces the campaign runner composes:

* :class:`FaultPolicy` — per-seed wall-clock timeout, retry count with
  exponential backoff (jitter is derived deterministically from the seed
  and the attempt number, so reruns schedule identically), and a
  campaign-level failure budget;
* :class:`FaultInjector` — a pluggable chaos hook that deterministically
  crashes, hangs or corrupts execution at named injection points
  (``worker_start``, ``mid_seed``, ``serialize``, ``cache_decode``).
  Once-per-seed semantics survive process boundaries via marker files
  under ``state_dir`` (the injector is pickled into pool workers, so
  every process agrees on what has already fired);
* :class:`CampaignManifest` — an append-only JSONL checkpoint of
  seed → status (+ metrics and cache key), flushed as each seed
  completes, so an interrupted campaign resumes with zero recomputation
  of finished seeds (see ``schemas/manifest.schema.json``).

The core invariant, pinned by ``tests/test_campaign_faults.py``: a
retried seed is bit-identical to a clean run — the recovery machinery may
change *when* a seed computes, never *what* it computes.

Environment hooks (used by the CI ``chaos-smoke`` job): ``REPRO_FAULTS``
holds ``point:action:seed,seed[:times]`` clauses joined by ``;`` and
``REPRO_FAULT_STATE`` names the marker directory.
"""

from __future__ import annotations

import json
import os
import random
import time
from collections.abc import Iterable, Mapping
from concurrent.futures import BrokenExecutor, CancelledError
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.exceptions import AnalysisError, ReproError

__all__ = [
    "ACTIONS",
    "FINISHED_STATUSES",
    "INJECTION_POINTS",
    "MANIFEST_SCHEMA_VERSION",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_RESUMED",
    "STATUS_RETRIED",
    "STATUS_TIMEOUT",
    "STATUS_VECTORIZED",
    "STATUS_FALLBACK",
    "STATUS_BATCH_SIZE",
    "CampaignManifest",
    "CorruptResult",
    "FaultInjector",
    "FaultPolicy",
    "FaultSpec",
    "InjectedFault",
    "ManifestRecord",
    "SeedTimeout",
]

#: Bump when the manifest record layout changes (checked by the schema).
MANIFEST_SCHEMA_VERSION = 1

#: Terminal per-seed statuses reported in :class:`CampaignResult.statuses`
#: and manifest records.
STATUS_OK = "ok"
STATUS_RETRIED = "retried"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CACHED = "cached"
STATUS_RESUMED = "resumed"
#: Metrics came out of a vectorized in-process batch (same values as a
#: scalar run — the oracle tests pin bit-equality).
STATUS_VECTORIZED = "vectorized"
#: The vectorized engine could not handle this seed (unsupported feature
#: or a batch error); it was computed by the scalar path instead.
STATUS_FALLBACK = "fallback"
#: Manifest-only meta record (pseudo-seed -1) documenting the chunk
#: width the vectorized engine used — the audit trail for
#: ``batch_size="auto"``. Never a finished status, so resume skips it.
STATUS_BATCH_SIZE = "batch_size"

#: Statuses that mean "this seed's metrics are final" — a resume run
#: adopts these from the manifest instead of recomputing.
FINISHED_STATUSES = frozenset(
    {STATUS_OK, STATUS_RETRIED, STATUS_VECTORIZED, STATUS_FALLBACK}
)

INJECTION_POINTS = ("worker_start", "mid_seed", "serialize", "cache_decode")
ACTIONS = ("crash", "hang", "corrupt")


class InjectedFault(ReproError):
    """A chaos-injected failure (always classified as transient)."""


class SeedTimeout(ReproError):
    """One seed exceeded the policy's per-seed wall-clock timeout."""


class CorruptResult(ReproError):
    """A worker shipped a result payload that fails validation."""


@dataclass(frozen=True)
class FaultPolicy:
    """How the campaign supervisor reacts to per-seed failures.

    Failures are classified by :meth:`is_transient`: infrastructure-shaped
    ones (a dead or hung worker, a corrupt payload, a dropped connection)
    are retried up to ``max_retries`` times with exponential backoff;
    anything the experiment itself raises is deterministic — retrying
    would reproduce it — so it is recorded and the seed skipped.
    """

    #: Per-seed wall-clock timeout in seconds (``None`` = no limit). A
    #: hung worker is killed, the pool respawned and the seed retried.
    seed_timeout: float | None = None
    #: Transient-failure retries per seed (0 = fail on first error).
    max_retries: int = 2
    #: First backoff delay; doubles (``backoff_factor``) per attempt up
    #: to ``backoff_max_s``.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    #: Fraction of the backoff added as deterministic seed-derived jitter.
    jitter: float = 0.5
    #: Terminal per-seed failures tolerated before the whole campaign
    #: aborts with :class:`~repro.exceptions.AnalysisError`
    #: (``None`` = unlimited; completed seeds stay checkpointed).
    failure_budget: int | None = None

    def __post_init__(self) -> None:
        if self.seed_timeout is not None and not self.seed_timeout > 0:
            raise AnalysisError(
                f"seed timeout must be > 0 seconds (got {self.seed_timeout})"
            )
        if self.max_retries < 0:
            raise AnalysisError(
                f"max retries must be >= 0 (got {self.max_retries})"
            )
        if self.failure_budget is not None and self.failure_budget < 0:
            raise AnalysisError(
                f"failure budget must be >= 0 (got {self.failure_budget})"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise AnalysisError("backoff must be non-negative and non-shrinking")
        if not 0.0 <= self.jitter <= 1.0:
            raise AnalysisError(f"jitter must be in [0, 1] (got {self.jitter})")

    def backoff_seconds(self, seed: int, attempt: int) -> float:
        """Delay before retry ``attempt + 1`` of ``seed``.

        Deterministic: the jitter comes from a PRNG keyed on
        ``(seed, attempt)``, so identical reruns schedule identically and
        no global RNG state is consumed.
        """
        base = min(
            self.backoff_base_s * self.backoff_factor ** max(attempt - 1, 0),
            self.backoff_max_s,
        )
        fraction = random.Random(f"{seed}:{attempt}").random()
        return base * (1.0 + self.jitter * fraction)

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth retrying (infrastructure, not science)."""
        return isinstance(exc, (
            InjectedFault, SeedTimeout, CorruptResult,
            BrokenExecutor, CancelledError, ConnectionError, TimeoutError,
        ))


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: ``action`` at an injection point for ``seeds``."""

    action: str
    seeds: frozenset[int]
    #: Firings per (point, seed); 0 = every time (a deterministic fault).
    times: int = 1
    #: Sleep length for ``hang`` (must exceed the policy timeout to bite).
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise AnalysisError(
                f"unknown fault action '{self.action}' (choose from {ACTIONS})"
            )
        if self.times < 0:
            raise AnalysisError(f"fault times must be >= 0 (got {self.times})")


class FaultInjector:
    """Deterministic chaos hook for campaign execution.

    The campaign runner (and its pool workers — the injector is pickled
    into them) calls :meth:`fire` at each named injection point. Actions:

    * ``crash`` — ``os._exit(13)`` inside a pool worker (``hard=True``),
      indistinguishable from a segfaulted worker; raises
      :class:`InjectedFault` in-process otherwise;
    * ``hang`` — sleep ``hang_s`` seconds, tripping the policy timeout;
    * ``corrupt`` — truncate the file at ``path`` when one is given (the
      ``cache_decode`` point), otherwise return ``"corrupt"`` so the
      caller garbles its outbound payload.
    """

    def __init__(self, plan: Mapping[str, Iterable[FaultSpec]],
                 state_dir: str | Path):
        for point in plan:
            if point not in INJECTION_POINTS:
                raise AnalysisError(
                    f"unknown injection point '{point}' "
                    f"(choose from {INJECTION_POINTS})"
                )
        self.plan = {point: tuple(specs) for point, specs in plan.items()}
        self.state_dir = Path(state_dir)

    def fire(self, point: str, seed: int, hard: bool = False,
             path: str | Path | None = None) -> str | None:
        """Trigger any planned fault for ``(point, seed)``.

        Returns the action fired (``None`` when nothing was planned or
        the firing budget for this point/seed is spent).
        """
        for spec in self.plan.get(point, ()):
            if seed not in spec.seeds:
                continue
            if not self._arm(point, seed, spec.times):
                continue
            if spec.action == "hang":
                time.sleep(spec.hang_s)
                return "hang"
            if spec.action == "crash":
                if hard:
                    os._exit(13)
                raise InjectedFault(
                    f"injected crash at {point} for seed {seed}"
                )
            if path is not None:
                target = Path(path)
                if target.exists():
                    raw = target.read_bytes()
                    target.write_bytes(raw[: max(1, len(raw) // 2)])
            return "corrupt"
        return None

    def _arm(self, point: str, seed: int, times: int) -> bool:
        """Claim one firing slot via an exclusive marker-file create."""
        if times <= 0:
            return True
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for shot in range(1, times + 1):
            marker = self.state_dir / f"{point}.{seed}.{shot}"
            try:
                handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None
                 ) -> FaultInjector | None:
        """Build an injector from ``REPRO_FAULTS`` / ``REPRO_FAULT_STATE``.

        ``REPRO_FAULTS`` holds ``point:action:seed,seed[:times]`` clauses
        joined by ``;`` (e.g. ``worker_start:crash:22`` crashes the worker
        running seed 22, once). Returns ``None`` when unset.
        """
        env = os.environ if environ is None else environ
        spec_text = env.get("REPRO_FAULTS", "")
        if not spec_text.strip():
            return None
        state_dir = env.get("REPRO_FAULT_STATE", "")
        if not state_dir:
            raise AnalysisError(
                "REPRO_FAULTS is set but REPRO_FAULT_STATE (the marker "
                "directory for once-per-seed faults) is not"
            )
        plan: dict[str, list[FaultSpec]] = {}
        for clause in spec_text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) not in (3, 4):
                raise AnalysisError(
                    f"bad REPRO_FAULTS clause {clause!r} "
                    "(want point:action:seed,seed[:times])"
                )
            try:
                seeds = frozenset(
                    int(s) for s in parts[2].split(",") if s.strip()
                )
                times = int(parts[3]) if len(parts) == 4 else 1
            except ValueError as exc:
                raise AnalysisError(
                    f"bad REPRO_FAULTS clause {clause!r}: {exc}"
                ) from None
            spec = FaultSpec(action=parts[1], seeds=seeds, times=times)
            if parts[0] not in INJECTION_POINTS:
                raise AnalysisError(
                    f"unknown injection point '{parts[0]}' "
                    f"(choose from {INJECTION_POINTS})"
                )
            plan.setdefault(parts[0], []).append(spec)
        return cls(plan, state_dir)


# --------------------------------------------------------------------------
# Campaign manifest (checkpoint/resume)
# --------------------------------------------------------------------------

@dataclass
class ManifestRecord:
    """One per-seed checkpoint line (see ``schemas/manifest.schema.json``)."""

    experiment: str
    seed: int
    status: str
    attempts: int = 1
    elapsed_s: float = 0.0
    fingerprint: str | None = None
    metrics: dict[str, float] | None = None
    error: str | None = None
    created_at: float = 0.0

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "experiment": self.experiment,
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
            "fingerprint": self.fingerprint,
            "metrics": self.metrics,
            "error": self.error,
            "created_at": self.created_at,
        }

    @classmethod
    def from_json(cls, raw: Mapping[str, Any]) -> ManifestRecord:
        metrics = raw.get("metrics")
        if metrics is not None:
            metrics = {str(k): float(v) for k, v in metrics.items()}
        return cls(
            experiment=str(raw["experiment"]),
            seed=int(raw["seed"]),
            status=str(raw["status"]),
            attempts=int(raw.get("attempts", 1)),
            elapsed_s=float(raw.get("elapsed_s", 0.0)),
            fingerprint=raw.get("fingerprint"),
            metrics=metrics,
            error=raw.get("error"),
            created_at=float(raw.get("created_at", 0.0)),
        )

    @property
    def finished(self) -> bool:
        """Whether this seed's metrics are final (safe to adopt on resume)."""
        return self.status in FINISHED_STATUSES and self.metrics is not None


class CampaignManifest:
    """Append-only JSONL checkpoint of per-seed campaign progress.

    Each completed seed (ok, retried, failed or timed out) appends one
    flushed line, so an interrupt — including ``KeyboardInterrupt`` —
    loses at most the seeds still in flight. ``--resume`` re-reads the
    file and adopts every finished seed's metrics without recomputing.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict[int, ManifestRecord]:
        """All records keyed by seed; later lines win.

        Corrupt or truncated lines (a crash mid-write) are skipped — the
        affected seed simply recomputes.
        """
        records: dict[int, ManifestRecord] = {}
        if not self.path.exists():
            return records
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(raw, dict) or \
                    raw.get("schema") != MANIFEST_SCHEMA_VERSION:
                continue
            try:
                record = ManifestRecord.from_json(raw)
            except (KeyError, TypeError, ValueError):
                continue
            records[record.seed] = record
        return records

    def append(self, record: ManifestRecord) -> None:
        """Write one record and flush it to disk immediately."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        self._handle.flush()

    def truncate(self) -> None:
        """Start a fresh checkpoint (non-resume runs discard stale state)."""
        self.close()
        self.path.unlink(missing_ok=True)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
