"""Content-addressed on-disk cache for experiment results.

Every table/figure regeneration and every campaign seed is a pure function
of its parameters, so re-running a bench should only compute what is
missing. The cache keys each result by experiment name + a SHA-256
fingerprint of the call parameters (plus the package version, so a release
bump invalidates stale artefacts) and stores it as JSON under
``.repro_cache/<experiment>/<fingerprint>.json``.

Two layers live here:

* a **fingerprint** (:func:`fingerprint_params`) — a stable hash over an
  arbitrary parameter structure (dataclasses, missions, numpy arrays,
  enums, callables by qualified name);
* a **codec** (:func:`encode_result` / :func:`decode_result`) — a JSON
  representation that round-trips the experiment result dataclasses,
  including nested dataclasses, tuples, enums, non-string dict keys and
  numpy arrays. Decoding only reconstructs dataclasses from ``repro.*``
  modules, so a tampered cache file cannot instantiate arbitrary types.

Environment overrides: ``REPRO_CACHE_DIR`` relocates the cache root and
``REPRO_NO_CACHE`` (any non-empty value) disables caching entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import re
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import AnalysisError
from repro.obs.metrics import get_registry

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "cached_call",
    "callable_name",
    "decode_result",
    "default_cache",
    "encode_result",
    "fingerprint_params",
]

#: Bump to invalidate every cached artefact after a format change.
CACHE_SCHEMA_VERSION = 1

_MARKERS = ("__tuple__", "__ndarray__", "__dataclass__", "__enum__", "__kv__")


def callable_name(fn: Callable) -> str:
    """Stable ``module.qualname`` identity of a callable (partials unwrapped)."""
    inner = fn
    while hasattr(inner, "func"):  # functools.partial chains
        inner = inner.func
    module = getattr(inner, "__module__", "?")
    qualname = getattr(inner, "__qualname__", repr(inner))
    return f"{module}.{qualname}"


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

def _canonical(obj: Any) -> Any:
    """A JSON-able canonical form of ``obj`` for hashing (not decoding)."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", repr(obj)]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return _canonical(obj.item())
    if isinstance(obj, np.ndarray):
        return ["nd", str(obj.dtype), list(obj.shape),
                hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()]
    if isinstance(obj, Enum):
        return ["enum", callable_name(type(obj)), obj.name]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return ["dc", callable_name(type(obj)), fields]
    if isinstance(obj, (list, tuple)):
        return ["tuple" if isinstance(obj, tuple) else "list",
                [_canonical(v) for v in obj]]
    if isinstance(obj, (set, frozenset)):
        items = sorted(json.dumps(_canonical(v), sort_keys=True) for v in obj)
        return ["set", items]
    if isinstance(obj, Mapping):
        items = sorted(
            (json.dumps(_canonical(k), sort_keys=True), _canonical(v))
            for k, v in obj.items()
        )
        return ["map", items]
    if callable(obj):
        return ["fn", callable_name(obj)]
    return ["repr", repr(obj)]


def fingerprint_params(params: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``params``."""
    payload = json.dumps(_canonical(params), sort_keys=True, allow_nan=False)
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Result codec
# ---------------------------------------------------------------------------

def encode_result(obj: Any) -> Any:
    """Encode a result object into JSON-able structures (see module doc)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, Enum):
        return {"__enum__": callable_name(type(obj)), "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: encode_result(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.init
        }
        return {"__dataclass__": callable_name(type(obj)), "fields": fields}
    if isinstance(obj, tuple):
        return {"__tuple__": [encode_result(v) for v in obj]}
    if isinstance(obj, list):
        return [encode_result(v) for v in obj]
    if isinstance(obj, Mapping):
        if all(isinstance(k, str) for k in obj) and not (
            set(obj) & set(_MARKERS)
        ):
            return {k: encode_result(v) for k, v in obj.items()}
        return {"__kv__": [[encode_result(k), encode_result(v)]
                           for k, v in obj.items()]}
    raise AnalysisError(
        f"cannot cache result of type {type(obj).__name__}: {obj!r:.80}"
    )


def _resolve_symbol(qualified: str) -> Any:
    """Import ``module.Qualname``, restricted to the ``repro`` package."""
    module_name, _, attr = qualified.rpartition(".")
    if not (module_name == "repro" or module_name.startswith("repro.")):
        raise AnalysisError(
            f"refusing to decode cached object of non-repro type {qualified!r}"
        )
    obj: Any = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj


def decode_result(obj: Any) -> Any:
    """Inverse of :func:`encode_result`."""
    if isinstance(obj, list):
        return [decode_result(v) for v in obj]
    if not isinstance(obj, dict):
        return obj
    if "__ndarray__" in obj:
        return np.asarray(obj["__ndarray__"], dtype=np.dtype(obj["dtype"]))
    if "__tuple__" in obj:
        return tuple(decode_result(v) for v in obj["__tuple__"])
    if "__enum__" in obj:
        return _resolve_symbol(obj["__enum__"])[obj["name"]]
    if "__dataclass__" in obj:
        cls = _resolve_symbol(obj["__dataclass__"])
        if not (dataclasses.is_dataclass(cls) and isinstance(cls, type)):
            raise AnalysisError(f"{obj['__dataclass__']!r} is not a dataclass")
        fields = {k: decode_result(v) for k, v in obj["fields"].items()}
        return cls(**fields)
    if "__kv__" in obj:
        return {decode_result(k): decode_result(v) for k, v in obj["__kv__"]}
    return {k: decode_result(v) for k, v in obj.items()}


# ---------------------------------------------------------------------------
# The on-disk cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Corrupt/truncated records deleted from disk (each also a miss).
    evictions: int = 0


@dataclass
class CacheEntry:
    """One decoded cache record."""

    experiment: str
    fingerprint: str
    result: Any
    elapsed_s: float = 0.0
    created_at: float = 0.0


_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")

#: Marker embedded in in-flight temp-file names (swept when stale).
_TMP_MARKER = ".tmp."

#: A temp file this much older than now belongs to a crashed writer —
#: generous enough that no live writer is still flushing it.
_STALE_TMP_MAX_AGE_S = 3600.0


def _tmp_path_for(path: Path) -> Path:
    """A collision-proof in-flight name next to ``path``.

    The pid alone is not enough: two threads of one process, or a pid
    recycled after a crash, would collide and torn-write each other. Six
    random bytes per call make every writer's temp file its own.
    """
    token = f"{os.getpid():x}-{os.urandom(6).hex()}"
    return path.with_name(f"{path.name}{_TMP_MARKER}{token}")


def _sweep_stale_tmp(directory: Path,
                     max_age_s: float = _STALE_TMP_MAX_AGE_S) -> int:
    """Remove temp files abandoned by crashed writers; returns the count.

    Live writers are safe: anything younger than ``max_age_s`` is left
    alone, and a concurrent sweep losing the unlink race is ignored.
    """
    removed = 0
    now = time.time()
    for tmp in directory.glob(f"*{_TMP_MARKER}*"):
        try:
            if now - tmp.stat().st_mtime >= max_age_s:
                tmp.unlink()
                removed += 1
        except OSError:
            continue
    return removed


class ResultCache:
    """Content-addressed JSON store under ``cache_dir`` (default
    ``.repro_cache/``); see the module docstring for the layout."""

    def __init__(self, cache_dir: str | Path | None = None,
                 enabled: bool = True):
        root = cache_dir or os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
        self.root = Path(root)
        if enabled and self.root.exists() and not self.root.is_dir():
            # Fail before any experiment runs, not at store time after
            # minutes of compute.
            raise AnalysisError(
                f"cache dir '{self.root}' exists and is not a directory"
            )
        self.enabled = enabled
        self.stats = CacheStats()

    def path_for(self, experiment: str, fingerprint: str) -> Path:
        """Where the record for (experiment, fingerprint) lives."""
        safe = _SAFE_NAME.sub("_", experiment) or "experiment"
        return self.root / safe / f"{fingerprint}.json"

    def get(self, experiment: str, fingerprint: str) -> CacheEntry | None:
        """The decoded entry, or ``None`` on miss/disabled/corrupt file.

        A record that exists but cannot be decoded — truncated write,
        bit-rot, tampering — is *evicted* (deleted, ``cache.evictions``
        counter bumped) so the slot recomputes cleanly instead of failing
        the same way on every future run. A file that simply is not there
        stays an ordinary miss.
        """
        if not self.enabled:
            return None
        decode_start = time.perf_counter()
        path = self.path_for(experiment, fingerprint)
        try:
            raw = json.loads(path.read_text())
        except FileNotFoundError:
            self._miss(experiment)
            return None
        except (OSError, json.JSONDecodeError):
            self._evict(experiment, path)
            return None
        if not isinstance(raw, dict):
            # Valid JSON but not a cache record (e.g. a bare number from a
            # torn write): corrupt, not merely stale.
            self._evict(experiment, path)
            return None
        if raw.get("schema") != CACHE_SCHEMA_VERSION:
            self._miss(experiment)
            return None
        try:
            result = decode_result(raw["result"])
        except (AnalysisError, KeyError, TypeError, AttributeError):
            self._evict(experiment, path)
            return None
        self.stats.hits += 1
        registry = get_registry()
        registry.counter("cache.hits", experiment=experiment).inc()
        registry.histogram("cache.decode_seconds").observe(
            time.perf_counter() - decode_start
        )
        return CacheEntry(
            experiment=experiment, fingerprint=fingerprint, result=result,
            elapsed_s=float(raw.get("elapsed_s", 0.0)),
            created_at=float(raw.get("created_at", 0.0)),
        )

    def _miss(self, experiment: str) -> None:
        self.stats.misses += 1
        get_registry().counter("cache.misses", experiment=experiment).inc()

    def _evict(self, experiment: str, path: Path) -> None:
        """Delete a corrupt record and account it as an eviction + miss."""
        path.unlink(missing_ok=True)
        self.stats.evictions += 1
        get_registry().counter("cache.evictions", experiment=experiment).inc()
        self._miss(experiment)

    def put(self, experiment: str, fingerprint: str, result: Any,
            elapsed_s: float = 0.0) -> Path | None:
        """Store one result atomically; returns the file path (or ``None``).

        Safe under concurrent writers (a sharded campaign's worker pool
        all landing the same experiment directory): each writer flushes
        to its own randomly-named temp file and publishes it with an
        atomic ``os.replace`` — readers only ever see a complete record,
        last writer wins. A writer that dies mid-flush leaves a temp
        file behind; those are swept here once they are stale.
        """
        if not self.enabled:
            return None
        path = self.path_for(experiment, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": CACHE_SCHEMA_VERSION,
            "experiment": experiment,
            "fingerprint": fingerprint,
            "elapsed_s": float(elapsed_s),
            "created_at": time.time(),
            "result": encode_result(result),
        }
        tmp = _tmp_path_for(path)
        try:
            tmp.write_text(json.dumps(record, allow_nan=True))
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        _sweep_stale_tmp(path.parent)
        self.stats.stores += 1
        get_registry().counter("cache.stores", experiment=experiment).inc()
        return path

    def clear(self, experiment: str | None = None) -> int:
        """Delete all records (or one experiment's); returns files removed."""
        removed = 0
        roots = [self.root / _SAFE_NAME.sub("_", experiment)] if experiment \
            else [self.root]
        for root in roots:
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*.json")):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


def default_cache(cache_dir: str | Path | None = None,
                  enabled: bool | None = None) -> ResultCache:
    """A cache honouring ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``."""
    if enabled is None:
        enabled = not os.environ.get("REPRO_NO_CACHE")
    return ResultCache(cache_dir=cache_dir, enabled=enabled)


def cached_call(
    fn: Callable,
    *args: Any,
    experiment: str | None = None,
    cache: ResultCache | None = None,
    extra_key: Any = None,
    exclude: tuple[str, ...] = (
        "workers", "cache", "policy", "manifest", "resume", "engine",
        "batch", "batch_size", "events", "progress", "blackbox_dir",
    ),
    **kwargs: Any,
):
    """Call ``fn(*args, **kwargs)`` through the result cache.

    The fingerprint covers the callable identity, the package version, the
    positional/keyword arguments and ``extra_key``; ``experiment`` names
    the cache bucket (defaults to the callable's qualified name). Keyword
    arguments named in ``exclude`` are forwarded to ``fn`` but left out of
    the fingerprint — by default the execution/resilience knobs
    (``workers``, ``cache``, ``policy``, ``manifest``, ``resume``,
    ``engine``, ``batch``, ``batch_size``) that change how a result is
    computed, never what it is, plus the strictly passive observability
    knobs (``events``, ``progress``, ``blackbox_dir``).
    """
    from repro import __version__

    if cache is None:
        cache = default_cache()
    name = experiment or callable_name(fn)
    fingerprint = fingerprint_params({
        "fn": callable_name(fn),
        "version": __version__,
        "args": list(args),
        "kwargs": {k: v for k, v in kwargs.items() if k not in exclude},
        "extra": extra_key,
    })
    entry = cache.get(name, fingerprint)
    if entry is not None:
        return entry.result
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    cache.put(name, fingerprint, result, elapsed_s=elapsed)
    return result
