"""``table scenarios``: the scenario × attack × defense cube campaign.

Extends the robustness matrix from fault × intensity to whole
:class:`~repro.scenario.Scenario` cells: each cell flies the scenario's
profiling mission through Algorithm 1 (TSVL stability vs the fault-free
twin) and, when the scenario carries defenses, one benign plus one
attacked monitored flight (fault-conditional FPR/TPR and degraded-cycle
counts). Cells come from the named library, a checked-in scenario
document, or the seed-deterministic :class:`ScenarioSampler`.

Campaign seeds enumerate ``scenario index × trial``; one seed computes
exactly one cell-trial, so the full engine stack applies — worker
fan-out, content-addressed caching, manifest/resume, and
``engine="vectorized"`` batches whose fleet-eligible scenarios run as
:class:`~repro.sim.vectorized.VectorizedFleet` lanes while
fault/terrain/battery cells decline into per-seed scalar fallback
(visible in ``CampaignResult.statuses`` and the
``campaign.seeds_vectorized``/``_fallback`` counters).

The :meth:`ScenariosResult.coverage_dict` report — validated against
``schemas/scenario_coverage.schema.json`` — records which cells ran,
which fell back (and why), which crashed, and the per-cell scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial

import numpy as np

from repro.experiments.campaign import run_campaign
from repro.faults import FaultSchedule
from repro.firmware.modes import FlightMode
from repro.scenario.library import get_scenario
from repro.scenario.sampler import ScenarioSampler, get_space
from repro.scenario.spec import Scenario, ScenarioError, parse_scenarios

__all__ = ["ScenarioCell", "ScenariosResult", "run_scenarios"]

#: Responses for the Algorithm 1 run — same axes as the robustness matrix.
_RESPONSES = ("ATT.R", "ATT.P", "ATT.Y")


def _jaccard(a: list[str], b: list[str]) -> float:
    """Jaccard index of two variable lists; two empty sets agree fully."""
    sa, sb = set(a), set(b)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def _profile_tsvl(scenario: Scenario, seed: int, profile_timeout: float):
    """Fly the scenario's mission and run Algorithm 1 over the profile."""
    from repro.analysis.tsvl import generate_tsvl
    from repro.profiling.collector import ProfileCollector

    def factory(mission_seed: int):
        return scenario.build_vehicle(seed * 1000 + mission_seed)

    collector = ProfileCollector("PID", vehicle_factory=factory)
    dataset = collector.collect(
        missions=[scenario.make_mission()],
        timeout_per_mission=profile_timeout,
        require_complete=False,
    )
    return generate_tsvl(dataset.table, list(_RESPONSES))


def _detector_flight(
    scenario: Scenario, seed: int, attacked: bool, duration: float
) -> tuple[float, float]:
    """One monitored flight; returns (alarm flag, degraded-cycle count)."""
    vehicle = scenario.build_vehicle(seed)
    detectors = scenario.build_defenses(vehicle.config.airframe)
    for detector in detectors:
        detector.attach(vehicle)
    vehicle.mission = scenario.make_mission()
    vehicle.takeoff(scenario.mission.altitude)
    if attacked:
        scenario.attack.build().attach(vehicle)
    vehicle.set_mode(FlightMode.AUTO)
    vehicle.run(duration)
    return (
        1.0 if any(d.alarmed for d in detectors) else 0.0,
        float(sum(d.degraded_samples for d in detectors)),
    )


def _cell_metrics(
    scenario: Scenario,
    idx: int,
    seed: int,
    detector_duration: float,
    profile_timeout: float,
) -> dict[str, float]:
    """All metrics of one cell-trial (no exception handling)."""
    pristine = (
        scenario if scenario.faults.empty
        else replace(scenario, faults=FaultSchedule())
    )
    baseline = _profile_tsvl(pristine, seed, profile_timeout)
    metrics = {f"s{idx}.tsvl_size": float(len(baseline.tsvl))}
    if not scenario.faults.empty:
        faulted = _profile_tsvl(scenario, seed, profile_timeout)
        metrics[f"s{idx}.jaccard"] = _jaccard(baseline.tsvl, faulted.tsvl)
    if scenario.defenses:
        fpr, degraded_b = _detector_flight(
            scenario, seed, False, detector_duration
        )
        metrics[f"s{idx}.fpr"] = fpr
        degraded = degraded_b
        if not scenario.attack.is_none:
            tpr, degraded_a = _detector_flight(
                scenario, seed, True, detector_duration
            )
            metrics[f"s{idx}.tpr"] = tpr
            degraded += degraded_a
        metrics[f"s{idx}.degraded"] = degraded
    metrics[f"s{idx}.crashed"] = 0.0
    return metrics


def _scenario_trial(
    seed: int,
    scenario_dicts: tuple[dict, ...],
    base_seed: int,
    trials: int,
    detector_duration: float,
    profile_timeout: float,
) -> dict[str, float]:
    """One campaign trial: the cell ``(seed - base_seed) // trials``."""
    idx = (seed - base_seed) // trials
    scenario = Scenario.from_dict(scenario_dicts[idx])
    try:
        return _cell_metrics(
            scenario, idx, seed, detector_duration, profile_timeout
        )
    except Exception:  # noqa: BLE001 — a crashed cell is a result
        return {f"s{idx}.crashed": 1.0}


def _detector_fleet(
    scenario: Scenario,
    seeds: list[int],
    attacked: bool,
    duration: float,
) -> list[tuple[float, float]]:
    """:func:`_detector_flight` for a whole seed batch, one fleet run.

    Same construction order as the scalar flight — detectors attached
    before the mission/takeoff, attack after — so lane i is bit-identical
    to a scalar run with seed i.
    """
    fleet = scenario.build_fleet(seeds)
    ensembles = []
    for lane in fleet.lanes:
        detectors = scenario.build_defenses(lane.config.airframe)
        for detector in detectors:
            detector.attach(lane)
        ensembles.append(detectors)
    fleet.set_mission(scenario.make_mission)
    fleet.takeoff(scenario.mission.altitude)
    if attacked:
        for lane in fleet.lanes:
            scenario.attack.build().attach(lane)
    fleet.set_mode(FlightMode.AUTO)
    fleet.run(duration)
    return [
        (
            1.0 if any(d.alarmed for d in detectors) else 0.0,
            float(sum(d.degraded_samples for d in detectors)),
        )
        for detectors in ensembles
    ]


def _scenarios_batch(
    seeds: list[int],
    scenario_dicts: tuple[dict, ...],
    base_seed: int,
    trials: int,
    detector_duration: float,
    profile_timeout: float,
) -> dict[int, dict[str, float]]:
    """Batch engine: fleet-run eligible scenarios, decline the rest.

    Seeds are grouped per scenario (trials of one scenario share a
    config); groups whose scenario cannot vectorize — fault schedules,
    terrain, custom battery, non-CI defenses — are left out of the
    returned mapping, which routes them to per-seed scalar fallback.
    The Algorithm 1 profiling half stays scalar inside the batch (it is
    the identical code path, so the bits match the scalar engine).
    """
    groups: dict[int, list[int]] = {}
    for seed in seeds:
        groups.setdefault((seed - base_seed) // trials, []).append(seed)
    out: dict[int, dict[str, float]] = {}
    for idx, group in sorted(groups.items()):
        scenario = Scenario.from_dict(scenario_dicts[idx])
        if not scenario.vectorizable:
            continue
        try:
            cell: dict[int, dict[str, float]] = {}
            for seed in sorted(group):
                pristine = scenario  # vectorizable ⇒ no fault schedule
                baseline = _profile_tsvl(pristine, seed, profile_timeout)
                cell[seed] = {f"s{idx}.tsvl_size": float(len(baseline.tsvl))}
            if scenario.defenses:
                benign = _detector_fleet(
                    scenario, sorted(group), False, detector_duration
                )
                attacked = (
                    None if scenario.attack.is_none
                    else _detector_fleet(
                        scenario, sorted(group), True, detector_duration
                    )
                )
                for lane, seed in enumerate(sorted(group)):
                    fpr, degraded = benign[lane]
                    cell[seed][f"s{idx}.fpr"] = fpr
                    if attacked is not None:
                        tpr, degraded_a = attacked[lane]
                        cell[seed][f"s{idx}.tpr"] = tpr
                        degraded += degraded_a
                    cell[seed][f"s{idx}.degraded"] = degraded
            for seed in sorted(group):
                cell[seed][f"s{idx}.crashed"] = 0.0
            out.update(cell)
        except Exception:  # noqa: BLE001 — decline; scalar path decides
            continue
    return out


@dataclass
class ScenarioCell:
    """Coverage and aggregated scores of one scenario cell."""

    scenario: Scenario
    index: int
    seeds: list[int] = field(default_factory=list)
    #: status → count over this cell's seeds (ok/cached/vectorized/...)
    statuses: dict[str, int] = field(default_factory=dict)
    fallback_reasons: list[str] = field(default_factory=list)
    crashed: float = 0.0
    tsvl_size: float | None = None
    jaccard: float | None = None
    fpr: float | None = None
    tpr: float | None = None
    degraded: float | None = None

    def to_dict(self) -> dict:
        """One ``cells`` entry of the coverage report."""
        return {
            "scenario": self.scenario.name,
            "index": self.index,
            "seeds": list(self.seeds),
            "statuses": dict(self.statuses),
            "fallback_reasons": list(self.fallback_reasons),
            "attack": self.scenario.attack.kind,
            "defenses": [d.kind for d in self.scenario.defenses],
            "crashed": self.crashed,
            "tsvl_size": self.tsvl_size,
            "jaccard": self.jaccard,
            "fpr": self.fpr,
            "tpr": self.tpr,
            "degraded": self.degraded,
        }


@dataclass
class ScenariosResult:
    """The cube plus campaign metadata and the coverage report."""

    cells: list[ScenarioCell] = field(default_factory=list)
    trials: int = 0
    base_seed: int = 0
    engine: str = "scalar"

    def cell(self, name: str) -> ScenarioCell:
        """The cell of the scenario called ``name``."""
        for c in self.cells:
            if c.scenario.name == name:
                return c
        raise KeyError(name)

    def coverage_dict(self) -> dict:
        """Coverage report (``schemas/scenario_coverage.schema.json``).

        Engine-dependent fields (statuses, vectorized/fallback totals)
        describe the campaign that actually computed each seed — a
        cache-warm rerun reports ``cached`` statuses, not the engine of
        the original run.
        """
        vectorized = sum(
            c.statuses.get("vectorized", 0) for c in self.cells
        )
        fallback = sum(c.statuses.get("fallback", 0) for c in self.cells)
        crashed = sum(1 for c in self.cells if c.crashed > 0.0)
        ran = sum(1 for c in self.cells if c.statuses)
        return {
            "version": 1,
            "experiment": "scenarios",
            "engine": self.engine,
            "trials": self.trials,
            "base_seed": self.base_seed,
            "totals": {
                "cells": len(self.cells),
                "ran": ran,
                "crashed": crashed,
                "vectorized": vectorized,
                "fallback": fallback,
            },
            "cells": [c.to_dict() for c in self.cells],
        }

    def render(self) -> str:
        """Cube table: one row per scenario cell."""
        lines = [
            "Scenario × attack × defense cube",
            f"  ({self.trials} trials/cell, engine {self.engine}; Jaccard "
            "vs fault-free TSVL; FPR/TPR = defense-ensemble alarm rates)",
            "  scenario             attack        defs  status       "
            "crash  tsvl  jaccard    FPR    TPR",
        ]
        for c in self.cells:
            status = ",".join(
                f"{name}:{count}" for name, count in sorted(c.statuses.items())
            ) or "-"
            lines.append(
                f"  {c.scenario.name:20.20s} {c.scenario.attack.kind:12s} "
                f"{len(c.scenario.defenses):5d}  {status:12.12s} "
                f"{c.crashed * 100:4.0f}%  {self._fmt(c.tsvl_size, '4.0f')}  "
                f"{self._fmt(c.jaccard, '7.2f')}  "
                f"{self._pct(c.fpr)}  {self._pct(c.tpr)}"
            )
        return "\n".join(lines)

    @staticmethod
    def _fmt(value: float | None, spec: str) -> str:
        width = int(spec.split(".")[0])
        if value is None:
            return "-".rjust(width)
        return format(value, spec)

    @staticmethod
    def _pct(value: float | None) -> str:
        if value is None:
            return "    -"
        return f"{value * 100:4.0f}%"


def _mean(campaign, name: str) -> float | None:
    summary = campaign.metrics.get(name)
    if summary is None or not summary.values:
        return None
    return float(np.mean(summary.values))


def _resolve_scenarios(
    scenarios, scenarios_json: str | None, sample: int | None,
    sample_seed: int, space: str,
) -> list[Scenario]:
    """The cell list from exactly one of the three scenario sources."""
    sources = sum(
        x is not None for x in (scenarios, scenarios_json, sample)
    )
    if sources != 1:
        raise ScenarioError(
            "provide exactly one scenario source: scenarios=, "
            "scenarios_json= or sample="
        )
    if sample is not None:
        return ScenarioSampler(get_space(space), seed=sample_seed).sample(sample)
    if scenarios_json is not None:
        return parse_scenarios(scenarios_json)
    resolved = [
        get_scenario(s) if isinstance(s, str) else s for s in scenarios
    ]
    if not resolved:
        raise ScenarioError("scenarios= must name at least one scenario")
    names = [s.name for s in resolved]
    if len(names) != len(set(names)):
        raise ScenarioError("scenarios= lists duplicate scenario names")
    return resolved


def run_scenarios(
    scenarios=None,
    scenarios_json: str | None = None,
    sample: int | None = None,
    sample_seed: int = 0,
    space: str = "default",
    trials: int = 1,
    detector_duration: float = 25.0,
    profile_timeout: float = 150.0,
    base_seed: int = 500,
    workers: int = 0,
    cache=None,
    policy=None,
    manifest=None,
    resume: bool = False,
    engine: str = "scalar",
    batch_size: int | str = 16,
    events=None,
    progress: bool = False,
    blackbox_dir=None,
) -> ScenariosResult:
    """Sweep the scenario cube over ``trials`` seeds per cell.

    Parameters
    ----------
    scenarios:
        Library names and/or :class:`Scenario` objects forming the cube.
    scenarios_json:
        JSON text of a scenario document (``schemas/scenario.schema.json``);
        the CLI reads ``--scenarios FILE`` into this.
    sample:
        Draw this many scenarios from the ``space`` sample space with
        :class:`ScenarioSampler` seeded by ``sample_seed`` instead of
        naming them. Exactly one of the three sources must be given.
    profile_timeout:
        Sim-time budget of each Algorithm 1 profiling flight (the CI
        smoke job combines the ``tiny`` space with a small budget).
    """
    cells = _resolve_scenarios(
        scenarios, scenarios_json, sample, sample_seed, space
    )
    scenario_dicts = tuple(s.to_dict() for s in cells)
    if trials < 1:
        raise ScenarioError(f"trials must be >= 1, got {trials}")
    params = {
        "scenarios": list(scenario_dicts),
        "base_seed": base_seed,
        "trials": trials,
        "detector_duration": detector_duration,
        "profile_timeout": profile_timeout,
    }
    trial_kwargs = dict(
        scenario_dicts=scenario_dicts,
        base_seed=base_seed,
        trials=trials,
        detector_duration=detector_duration,
        profile_timeout=profile_timeout,
    )
    campaign = run_campaign(
        partial(_scenario_trial, **trial_kwargs),
        seeds=range(base_seed, base_seed + len(cells) * trials),
        raise_on_failure=True,
        workers=workers,
        cache=cache,
        experiment_name="scenarios.trial",
        params=params,
        policy=policy,
        manifest=manifest,
        resume=resume,
        engine=engine,
        batch=(
            partial(_scenarios_batch, **trial_kwargs)
            if engine == "vectorized" else None
        ),
        batch_size=batch_size,
        events=events,
        progress=progress,
        blackbox_dir=blackbox_dir,
    )
    result = ScenariosResult(
        trials=trials, base_seed=base_seed, engine=engine
    )
    for idx, scenario in enumerate(cells):
        seeds = [base_seed + idx * trials + t for t in range(trials)]
        statuses: dict[str, int] = {}
        for seed in seeds:
            status = campaign.statuses.get(seed)
            if status is not None:
                statuses[status] = statuses.get(status, 0) + 1
        crashed = _mean(campaign, f"s{idx}.crashed")
        result.cells.append(ScenarioCell(
            scenario=scenario,
            index=idx,
            seeds=seeds,
            statuses=statuses,
            fallback_reasons=scenario.fallback_reasons(),
            crashed=0.0 if crashed is None else crashed,
            tsvl_size=_mean(campaign, f"s{idx}.tsvl_size"),
            jaccard=_mean(campaign, f"s{idx}.jaccard"),
            fpr=_mean(campaign, f"s{idx}.fpr"),
            tpr=_mean(campaign, f"s{idx}.tpr"),
            degraded=_mean(campaign, f"s{idx}.degraded"),
        ))
    from repro.obs import get_registry

    registry = get_registry()
    registry.counter("scenario.cells_total").inc(len(result.cells))
    registry.counter("scenario.cells_crashed").inc(
        sum(1 for c in result.cells if c.crashed > 0.0)
    )
    registry.counter("scenario.cells_vectorized").inc(
        sum(1 for c in result.cells if c.statuses.get("vectorized"))
    )
    registry.counter("scenario.cells_fallback").inc(
        sum(1 for c in result.cells if c.statuses.get("fallback"))
    )
    return result
