"""Experiment Fig. 11: RL-based controlled failure (crash into a zone).

The agent steers the RAV toward a forbidden navigation zone beside the
mission path under the Eq. 5 reward (positive for approach, terminal bonus
on contact). The figure's content: the distance to the zone over the
episode for the exploit scenarios, and whether contact (the controlled
crash) was achieved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rl.env import EnvConfig
from repro.rl.envs.crash import ControlledCrashEnv
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.rl.training import TrainingResult, train_reinforce

__all__ = ["CrashScenarioTrace", "Fig11Result", "run_fig11"]


@dataclass
class CrashScenarioTrace:
    """Zone-distance series for one scenario."""

    label: str
    times: np.ndarray
    zone_distance: np.ndarray
    contact: bool
    crashed: bool
    total_reward: float
    detected: bool

    @property
    def closest_approach(self) -> float:
        """Minimum distance to the forbidden zone."""
        return float(self.zone_distance.min()) if len(self.zone_distance) else np.inf


@dataclass
class Fig11Result:
    """Training history plus evaluation traces per scenario."""

    training: TrainingResult | None = None
    scenarios: dict[str, CrashScenarioTrace] = field(default_factory=dict)

    def render(self) -> str:
        """Outcome summary."""
        lines = ["Fig. 11 — RL controlled failure (forbidden-zone crash)"]
        if self.training is not None:
            r = self.training.returns
            lines.append(
                f"  training: {len(r)} episodes, best return {r.max():.1f}"
            )
        lines.append("  scenario   closest    contact  crashed  detected")
        for label, s in self.scenarios.items():
            lines.append(
                f"  {label:9s}  {s.closest_approach:7.1f} m  {str(s.contact):7s} "
                f"{str(s.crashed):7s}  {s.detected}"
            )
        return "\n".join(lines)


def _rollout(env, policy, label: str) -> CrashScenarioTrace:
    obs = env.reset()
    times = [env.vehicle.sim.time]
    distances = [obs[3]]
    total = 0.0
    detected = False
    done = False
    info: dict = {}
    while not done:
        action = policy(obs)
        obs, reward, done, info = env.step(action)
        total += reward
        times.append(info["time"])
        distances.append(obs[3])
        detected = detected or info["detected"]
    contact = bool(distances[-1] <= env.epsilon) or info.get("crashed", False)
    return CrashScenarioTrace(
        label=label,
        times=np.asarray(times),
        zone_distance=np.asarray(distances),
        contact=contact,
        crashed=info.get("crashed", False),
        total_reward=total,
        detected=detected,
    )


def run_fig11(
    train_episodes: int = 30,
    eval_steps: int = 80,
    use_detector: bool = False,
    zone_offset_east: float = 14.0,
    seed: int = 2,
) -> Fig11Result:
    """Train the crash agent and evaluate the exploit scenarios."""
    config = EnvConfig(
        max_episode_steps=eval_steps, physics_hz=100.0, seed=seed,
        use_detector=use_detector,
    )
    env = ControlledCrashEnv(config, zone_offset_east=zone_offset_east)
    agent = ReinforceAgent(
        env.observation_space.dim, config.action_limit,
        ReinforceConfig(seed=seed),
    )
    result = Fig11Result()
    result.training = train_reinforce(env, agent, episodes=train_episodes)

    result.scenarios["trained"] = _rollout(
        env, lambda obs: agent.act(obs, deterministic=True), "trained"
    )
    rng = np.random.default_rng(seed)
    result.scenarios["random"] = _rollout(
        env,
        lambda obs: rng.uniform(-config.action_limit, config.action_limit, 1),
        "random",
    )
    result.scenarios["baseline"] = _rollout(
        env, lambda obs: np.zeros(1), "baseline"
    )
    return result
