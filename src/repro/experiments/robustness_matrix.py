"""Robustness matrix: fault type × intensity sweep of the ARES pipeline.

For every cell of the matrix a :class:`~repro.faults.FaultSchedule` is
injected into the testbed and the two halves of the pipeline are scored
against their fault-free behaviour on the same seed:

* **TSVL stability** — Algorithm 1 runs over a profiling mission flown
  under the fault; the Jaccard index between the faulted and fault-free
  TSVL measures how much the identified attack surface drifts.
* **Detector shift** — the control-invariants detector (paper Fig. 6
  configuration) monitors one benign and one attacked flight under the
  fault; the per-cell alarm rates are the fault-conditional FPR and TPR.
  ``degraded`` counts the detector cycles held/skipped on unusable input.

Cells whose mission cannot even be flown (a severe fault crashing
takeoff) are recorded in the ``failed`` metric rather than aborting the
sweep. Instead of single-kind schedules, a checked-in schedule JSON can
be swept by scaling every spec's intensity per cell (the CI smoke job
does this with ``examples/fault_schedule.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from functools import partial

import numpy as np

from repro.analysis.tsvl import TsvlResult, generate_tsvl
from repro.experiments.campaign import run_campaign
from repro.faults import FaultSchedule, FaultSpec
from repro.faults.schedule import FaultConfigError
from repro.firmware.modes import FlightMode
from repro.profiling.collector import ProfileCollector
from repro.scenario.library import get_scenario
from repro.scenario.spec import AttackSpec, Scenario

__all__ = ["RobustnessCell", "RobustnessResult", "run_robustness"]

#: Default fault kinds swept (one per family plus the GPS pair); the full
#: taxonomy is in :mod:`repro.faults.schedule`.
DEFAULT_KINDS = (
    "gps_dropout",
    "gps_glitch",
    "imu_noise_burst",
    "baro_drift",
    "motor_efficiency",
    "link_loss",
)

#: Responses for the PID experiment's Algorithm 1 run (Table II).
_RESPONSES = ("ATT.R", "ATT.P", "ATT.Y")


def _parse_schedule(text: str) -> FaultSchedule:
    """Validate and parse FaultSchedule JSON *text* (not a file path)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultConfigError(
            f"fault schedule JSON is invalid: {exc}"
        ) from None
    return FaultSchedule.from_dict(data)


def _jaccard(a: list[str], b: list[str]) -> float:
    """Jaccard index of two variable lists; two empty sets agree fully."""
    sa, sb = set(a), set(b)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def _cell_schedule(
    kind: str, intensity: float, base: FaultSchedule | None
) -> FaultSchedule:
    """The schedule for one matrix cell.

    Without a base schedule: one spec of ``kind`` at ``intensity``,
    active from t=4 s (past takeoff, so mild cells still reach cruise).
    With one: every spec's intensity is scaled by ``intensity`` and the
    ``kind`` axis collapses to the single pseudo-kind ``"schedule"``.
    """
    if base is not None:
        return FaultSchedule(tuple(
            FaultSpec(
                kind=spec.kind, start=spec.start, duration=spec.duration,
                intensity=spec.intensity * intensity, motor=spec.motor,
            )
            for spec in base
        ))
    return FaultSchedule.single(kind, intensity=intensity, start=4.0)


def _profile_scenario(
    schedule: FaultSchedule | None, profile_length: float, physics_hz: float
) -> Scenario:
    """The ``robustness-profile`` scenario at this cell's parameters."""
    base = get_scenario("robustness-profile")
    return replace(
        base,
        mission=replace(base.mission, length=profile_length),
        physics=replace(base.physics, physics_hz=physics_hz),
        faults=FaultSchedule() if schedule is None else schedule,
    )


def _monitor_scenario(
    schedule: FaultSchedule | None, attack_rate: float | None,
    physics_hz: float,
) -> Scenario:
    """The ``robustness-monitor`` scenario at this cell's parameters."""
    base = get_scenario("robustness-monitor")
    return replace(
        base,
        physics=replace(base.physics, physics_hz=physics_hz),
        faults=FaultSchedule() if schedule is None else schedule,
        attack=(
            AttackSpec(kind="none") if attack_rate is None
            else AttackSpec(
                kind="gradual_roll", rate_deg_s=attack_rate, start_time=5.0,
            )
        ),
    )


def _profile_tsvl(
    seed: int,
    schedule: FaultSchedule | None,
    profile_length: float,
    physics_hz: float,
) -> TsvlResult:
    """Fly one profiling mission (possibly faulted) and run Algorithm 1."""
    scenario = _profile_scenario(schedule, profile_length, physics_hz)

    def factory(mission_seed: int):
        return scenario.build_vehicle(seed * 1000 + mission_seed)

    collector = ProfileCollector("PID", vehicle_factory=factory)
    dataset = collector.collect(
        missions=[scenario.make_mission()],
        timeout_per_mission=150.0,
        require_complete=False,
    )
    return generate_tsvl(dataset.table, list(_RESPONSES))


def _detector_flight(
    seed: int,
    schedule: FaultSchedule | None,
    attack_rate: float | None,
    duration: float,
    physics_hz: float,
) -> tuple[float, float]:
    """One monitored flight; returns (alarm flag, degraded-cycle count)."""
    scenario = _monitor_scenario(schedule, attack_rate, physics_hz)
    vehicle = scenario.build_vehicle(seed)
    detectors = scenario.build_defenses(vehicle.config.airframe)
    for detector in detectors:
        detector.attach(vehicle)
    vehicle.mission = scenario.make_mission()
    vehicle.takeoff(scenario.mission.altitude)
    attack = scenario.attack.build()
    if attack is not None:
        attack.attach(vehicle)
    vehicle.set_mode(FlightMode.AUTO)
    vehicle.run(duration)
    return (
        1.0 if any(d.alarmed for d in detectors) else 0.0,
        float(sum(d.degraded_samples for d in detectors)),
    )


def _robustness_trial(
    seed: int,
    kinds: tuple[str, ...],
    intensities: tuple[float, ...],
    schedule_json: str | None,
    profile_length: float,
    detector_duration: float,
    attack_rate: float,
    physics_hz: float,
) -> dict[str, float]:
    """One campaign trial: the full matrix on one seed.

    The fault-free baseline (TSVL and detector behaviour) is computed
    once per seed; each cell then reports ``jaccard.<cell>``,
    ``fpr.<cell>``, ``tpr.<cell>``, ``degraded.<cell>`` and
    ``failed.<cell>`` (1.0 when the cell's missions could not be flown,
    in which case the other metrics are omitted for this seed).
    """
    base = (
        _parse_schedule(schedule_json) if schedule_json is not None else None
    )
    baseline = _profile_tsvl(seed, None, profile_length, physics_hz)
    metrics: dict[str, float] = {
        "baseline.tsvl_size": float(len(baseline.tsvl)),
    }
    for kind in kinds:
        for intensity in intensities:
            cell = f"{kind}@{intensity:g}"
            schedule = _cell_schedule(kind, intensity, base)
            try:
                faulted = _profile_tsvl(
                    seed, schedule, profile_length, physics_hz
                )
                fpr, degraded_b = _detector_flight(
                    seed, schedule, None, detector_duration, physics_hz
                )
                tpr, degraded_a = _detector_flight(
                    seed, schedule, attack_rate, detector_duration, physics_hz
                )
            except Exception:  # noqa: BLE001 — a crashed cell is a result
                metrics[f"failed.{cell}"] = 1.0
                continue
            metrics[f"jaccard.{cell}"] = _jaccard(baseline.tsvl, faulted.tsvl)
            metrics[f"fpr.{cell}"] = fpr
            metrics[f"tpr.{cell}"] = tpr
            metrics[f"degraded.{cell}"] = degraded_b + degraded_a
            metrics[f"failed.{cell}"] = 0.0
    return metrics


@dataclass
class RobustnessCell:
    """Aggregated scores of one (kind, intensity) cell."""

    kind: str
    intensity: float
    jaccard: float
    fpr: float
    tpr: float
    degraded: float
    failed: float


@dataclass
class RobustnessResult:
    """The full matrix plus campaign metadata."""

    cells: list[RobustnessCell] = field(default_factory=list)
    trials: int = 0
    baseline_tsvl_size: float = 0.0

    def cell(self, kind: str, intensity: float) -> RobustnessCell:
        """One cell of the matrix."""
        for c in self.cells:
            if c.kind == kind and c.intensity == intensity:
                return c
        raise KeyError((kind, intensity))

    def render(self) -> str:
        """Matrix table: one row per (fault kind, intensity) cell."""
        lines = [
            "Robustness matrix — fault type × intensity",
            f"  ({self.trials} trials/cell; baseline TSVL size "
            f"{self.baseline_tsvl_size:.1f}; Jaccard vs fault-free TSVL; "
            "FPR/TPR = CI-detector alarm rate benign/attacked)",
            "  fault kind        intens  jaccard    FPR    TPR  degraded  failed",
        ]
        for c in self.cells:
            lines.append(
                f"  {c.kind:16s} {c.intensity:6.2f}  {c.jaccard:7.2f} "
                f"{c.fpr * 100:5.0f}% {c.tpr * 100:5.0f}%  {c.degraded:8.0f} "
                f"{c.failed * 100:5.0f}%"
            )
        return "\n".join(lines)


def _mean(campaign, name: str, default: float = float("nan")) -> float:
    summary = campaign.metrics.get(name)
    if summary is None or not summary.values:
        return default
    return float(np.mean(summary.values))


def run_robustness(
    kinds: tuple[str, ...] | list[str] | None = None,
    intensities: tuple[float, ...] | list[float] = (0.25, 1.0),
    trials: int = 3,
    schedule_json: str | None = None,
    profile_length: float = 45.0,
    detector_duration: float = 25.0,
    attack_rate: float = 5.0,
    physics_hz: float = 400.0,
    base_seed: int = 400,
    workers: int = 0,
    cache=None,
    policy=None,
    manifest=None,
    resume: bool = False,
    events=None,
    progress: bool = False,
    blackbox_dir=None,
) -> RobustnessResult:
    """Sweep the fault matrix over ``trials`` seeds per cell.

    Parameters
    ----------
    kinds:
        Fault kinds forming the matrix rows (default: one representative
        per family, :data:`DEFAULT_KINDS`). Ignored when
        ``schedule_json`` is given.
    intensities:
        Intensity multipliers forming the matrix columns.
    schedule_json:
        JSON text of a checked-in :class:`FaultSchedule`; when given,
        each cell scales every spec's intensity instead of injecting a
        single-kind fault (the ``kind`` axis becomes ``"schedule"``).
    physics_hz:
        Simulation rate; the CI smoke job drops it to 100 Hz.
    """
    kinds = tuple(kinds) if kinds is not None else DEFAULT_KINDS
    if schedule_json is not None:
        _parse_schedule(schedule_json)  # fail fast on bad input
        kinds = ("schedule",)
    intensities = tuple(float(v) for v in intensities)
    params = {
        "kinds": kinds,
        "intensities": intensities,
        "schedule_json": schedule_json,
        "profile_length": profile_length,
        "detector_duration": detector_duration,
        "attack_rate": attack_rate,
        "physics_hz": physics_hz,
    }
    campaign = run_campaign(
        partial(_robustness_trial, **params),
        seeds=range(base_seed, base_seed + trials),
        raise_on_failure=True,
        workers=workers,
        cache=cache,
        experiment_name="robustness.trial",
        params=params,
        policy=policy,
        manifest=manifest,
        resume=resume,
        events=events,
        progress=progress,
        blackbox_dir=blackbox_dir,
    )
    result = RobustnessResult(
        trials=trials,
        baseline_tsvl_size=_mean(campaign, "baseline.tsvl_size", 0.0),
    )
    for kind in kinds:
        for intensity in intensities:
            cell = f"{kind}@{intensity:g}"
            result.cells.append(RobustnessCell(
                kind=kind,
                intensity=intensity,
                jaccard=_mean(campaign, f"jaccard.{cell}"),
                fpr=_mean(campaign, f"fpr.{cell}"),
                tpr=_mean(campaign, f"tpr.{cell}"),
                degraded=_mean(campaign, f"degraded.{cell}"),
                failed=_mean(campaign, f"failed.{cell}", 0.0),
            ))
    return result
