"""Experiment Table I: the KSVL inventory of the dataflash logger.

Regenerates the paper's Table I — the 40 dataflash message types and
their available-log-variable counts (342 total) — from this firmware's
actual log schema, and cross-checks it against the paper's reported
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.firmware.log_defs import LOG_MESSAGE_DEFS, TABLE1_ALV_COUNTS

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """Rows of Table I plus agreement with the paper."""

    rows: list[tuple[str, int]] = field(default_factory=list)
    total: int = 0
    paper_total: int = 342
    mismatches: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def matches_paper(self) -> bool:
        """True when every per-message count equals the paper's."""
        return not self.mismatches and self.total == self.paper_total

    def render(self) -> str:
        """Paper-style table text."""
        lines = ["Table I — KSVL (dataflash available log variables)"]
        row_chunks = [self.rows[i : i + 6] for i in range(0, len(self.rows), 6)]
        for chunk in row_chunks:
            lines.append(
                "  " + "  ".join(f"{name:5s}{count:3d}" for name, count in chunk)
            )
        lines.append(f"  total ALV: {self.total} (paper: {self.paper_total})")
        return "\n".join(lines)


def run_table1() -> Table1Result:
    """Build Table I from the live log schema."""
    rows = sorted(
        (name, definition.num_fields)
        for name, definition in LOG_MESSAGE_DEFS.items()
    )
    result = Table1Result(rows=rows, total=sum(c for _, c in rows))
    for name, count in rows:
        expected = TABLE1_ALV_COUNTS.get(name)
        if expected is None or expected != count:
            result.mismatches[name] = (count, expected or -1)
    return result
