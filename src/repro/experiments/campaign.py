"""Multi-seed experiment campaigns with aggregate statistics.

The paper reports several experiments over repeated trials ("10 trials on
various missions"); this module runs any per-seed experiment callable
across a seed range and aggregates named scalar metrics, so benches and
users can report mean/median/min/max instead of single-run numbers.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AnalysisError

__all__ = ["MetricSummary", "CampaignResult", "run_campaign"]


@dataclass
class MetricSummary:
    """Aggregate statistics of one scalar metric over the campaign."""

    name: str
    values: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def median(self) -> float:
        return float(np.median(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))


@dataclass
class CampaignResult:
    """All per-seed metric values plus aggregates."""

    metrics: dict[str, MetricSummary] = field(default_factory=dict)
    seeds: list[int] = field(default_factory=list)
    failures: dict[int, str] = field(default_factory=dict)

    def metric(self, name: str) -> MetricSummary:
        """One metric's summary."""
        try:
            return self.metrics[name]
        except KeyError:
            raise AnalysisError(f"unknown campaign metric '{name}'") from None

    def render(self) -> str:
        """Aggregate table."""
        lines = [
            f"Campaign over {len(self.seeds)} seeds"
            + (f" ({len(self.failures)} failed)" if self.failures else ""),
            "  metric                    mean      median      min       max",
        ]
        for summary in self.metrics.values():
            lines.append(
                f"  {summary.name:22s} {summary.mean:9.3g} {summary.median:10.3g} "
                f"{summary.min:9.3g} {summary.max:9.3g}"
            )
        return "\n".join(lines)


def run_campaign(
    experiment: Callable[[int], Mapping[str, float]],
    seeds,
    raise_on_failure: bool = False,
) -> CampaignResult:
    """Run ``experiment(seed) -> {metric: value}`` across ``seeds``.

    Per-seed exceptions are recorded (or re-raised with
    ``raise_on_failure``); metrics are aggregated over successful runs.
    """
    seeds = list(seeds)
    if not seeds:
        raise AnalysisError("campaign needs at least one seed")
    result = CampaignResult(seeds=seeds)
    for seed in seeds:
        try:
            metrics = experiment(seed)
        except Exception as exc:  # noqa: BLE001 - campaign isolation
            if raise_on_failure:
                raise
            result.failures[seed] = str(exc)
            continue
        for name, value in metrics.items():
            result.metrics.setdefault(name, MetricSummary(name=name))
            result.metrics[name].values.append(float(value))
    if not result.metrics:
        raise AnalysisError(
            f"every campaign run failed: {result.failures}"
        )
    return result
