"""Multi-seed experiment campaigns with aggregate statistics.

The paper reports several experiments over repeated trials ("10 trials on
various missions"); this module runs any per-seed experiment callable
across a seed range and aggregates named scalar metrics, so benches and
users can report mean/median/min/max instead of single-run numbers.

Execution modes (all produce bit-identical :class:`CampaignResult` metric
values and seed ordering):

* **serial** — ``workers=0`` (or 1): the classic in-process loop;
* **parallel** — ``workers=N`` fans the missing seeds out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` and collects results
  back in seed order before aggregating;
* **cached** — with a :class:`~repro.experiments.cache.ResultCache`,
  per-seed metric dicts are looked up by experiment name + seed + params
  fingerprint first, and only the missing seeds are computed (then
  stored), so a warm re-run executes zero experiment callables.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import AnalysisError
from repro.experiments.cache import (
    ResultCache,
    callable_name,
    fingerprint_params,
)
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, get_tracer, use_telemetry

__all__ = ["MetricSummary", "CampaignResult", "run_campaign"]

_log = get_logger(__name__)


@dataclass
class MetricSummary:
    """Aggregate statistics of one scalar metric over the campaign."""

    name: str
    values: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def median(self) -> float:
        return float(np.median(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))


@dataclass
class CampaignResult:
    """All per-seed metric values plus aggregates and timing."""

    metrics: dict[str, MetricSummary] = field(default_factory=dict)
    seeds: list[int] = field(default_factory=list)
    failures: dict[int, str] = field(default_factory=dict)
    #: Per-seed wall-clock compute time (cached seeds report the stored
    #: time of their original computation).
    timings: dict[int, float] = field(default_factory=dict)
    #: Seeds whose metrics came out of the result cache this run.
    cached_seeds: list[int] = field(default_factory=list)
    #: Wall-clock duration of the whole ``run_campaign`` call.
    total_seconds: float = 0.0

    @property
    def compute_seconds(self) -> float:
        """Summed per-seed compute time (the serial-equivalent cost)."""
        return float(sum(self.timings.values()))

    @property
    def seeds_per_second(self) -> float:
        """Campaign throughput over this run's wall clock."""
        if self.total_seconds <= 0.0:
            return 0.0
        return len(self.seeds) / self.total_seconds

    def metric(self, name: str) -> MetricSummary:
        """One metric's summary."""
        try:
            return self.metrics[name]
        except KeyError:
            raise AnalysisError(f"unknown campaign metric '{name}'") from None

    def render(self) -> str:
        """Aggregate table."""
        lines = [
            f"Campaign over {len(self.seeds)} seeds"
            + (f" ({len(self.failures)} failed)" if self.failures else "")
            + (f" ({len(self.cached_seeds)} cached)" if self.cached_seeds
               else ""),
            "  metric                    mean      median      min       max",
        ]
        for summary in self.metrics.values():
            lines.append(
                f"  {summary.name:22s} {summary.mean:9.3g} {summary.median:10.3g} "
                f"{summary.min:9.3g} {summary.max:9.3g}"
            )
        if self.total_seconds > 0.0:
            lines.append(
                f"  wall {self.total_seconds:.2f}s  compute "
                f"{self.compute_seconds:.2f}s  "
                f"{self.seeds_per_second:.2f} seeds/s"
            )
        return "\n".join(lines)


def _execute_seed(
    experiment: Callable[[int], Mapping[str, float]], seed: int
) -> tuple[int, bool, Any, float]:
    """Run one seed; returns (seed, ok, metrics-or-error, elapsed_s).

    Module-level so :class:`ProcessPoolExecutor` can pickle it; exceptions
    are captured as strings so one bad seed cannot kill the pool.
    """
    start = time.perf_counter()
    try:
        metrics = {
            str(name): float(value)
            for name, value in experiment(seed).items()
        }
    except Exception as exc:  # noqa: BLE001 - campaign isolation
        return seed, False, exc, time.perf_counter() - start
    return seed, True, metrics, time.perf_counter() - start


def _execute_seed_in_worker(
    experiment: Callable[[int], Mapping[str, float]],
    seed: int,
    collect_spans: bool,
) -> tuple[int, bool, Any, float, dict[str, Any]]:
    """Pool-side wrapper: run one seed under fresh, isolated telemetry.

    Each seed gets its own registry (and, when the parent is tracing, its
    own span tracer), so snapshots never double-count across the seeds a
    reused pool worker executes. The telemetry rides back with the result
    tuple and the parent merges it in seed order — never into the result
    values themselves, so execution mode cannot perturb the science.
    """
    registry = MetricsRegistry()
    tracer = Tracer(enabled=collect_spans)
    with use_telemetry(registry, tracer):
        with tracer.span("campaign.seed", seed=seed):
            outcome = _execute_seed(experiment, seed)
    telemetry = {"metrics": registry.snapshot(), "spans": tracer.to_dicts()}
    return (*outcome, telemetry)


def run_campaign(
    experiment: Callable[[int], Mapping[str, float]],
    seeds,
    raise_on_failure: bool = False,
    workers: int = 0,
    cache: ResultCache | None = None,
    experiment_name: str | None = None,
    params: Any = None,
) -> CampaignResult:
    """Run ``experiment(seed) -> {metric: value}`` across ``seeds``.

    Per-seed exceptions are recorded (or re-raised with
    ``raise_on_failure``); metrics are aggregated over successful runs in
    seed order regardless of execution mode.

    Parameters
    ----------
    workers:
        ``0``/``1`` runs serially in-process; ``N > 1`` computes missing
        seeds on a process pool (the experiment callable must be
        picklable, i.e. a module-level function or a partial of one).
    cache:
        Optional result cache; per-seed metric dicts are keyed by
        ``experiment_name`` + seed + a fingerprint of ``params``.
    experiment_name:
        Cache bucket name (default: the callable's qualified name).
    params:
        Anything that changes the experiment's behaviour besides the
        seed — it is fingerprinted into the cache key.
    """
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise AnalysisError("campaign needs at least one seed")
    name = experiment_name or callable_name(experiment)
    with get_tracer().span(
        "campaign", experiment=name, seeds=len(seeds), workers=int(workers)
    ) as campaign_span:
        return _run_campaign_traced(
            experiment, seeds, raise_on_failure, workers, cache, name,
            params, campaign_span,
        )


def _run_campaign_traced(
    experiment, seeds, raise_on_failure, workers, cache, name, params,
    campaign_span,
) -> CampaignResult:
    wall_start = time.perf_counter()
    tracer = get_tracer()
    registry = get_registry()
    result = CampaignResult(seeds=seeds)

    outcomes: dict[int, tuple[bool, Any]] = {}
    fingerprints: dict[int, str] = {}
    missing: list[int] = []
    for seed in seeds:
        if cache is not None:
            fingerprints[seed] = fingerprint_params(
                {"experiment": name, "seed": seed, "params": params}
            )
            entry = cache.get(name, fingerprints[seed])
            if entry is not None and isinstance(entry.result, dict):
                outcomes[seed] = (True, entry.result)
                result.timings[seed] = entry.elapsed_s
                result.cached_seeds.append(seed)
                continue
        missing.append(seed)
    _log.debug(
        "campaign start: %s (%d seeds, %d cached, workers=%d)",
        name, len(seeds), len(result.cached_seeds), int(workers),
    )

    if workers and workers > 1 and len(missing) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _execute_seed_in_worker, experiment, seed, tracer.enabled
                )
                for seed in missing
            ]
            shipped = [future.result() for future in futures]
        # Merge worker telemetry in seed order (deterministic totals),
        # then strip it — telemetry never enters the result values.
        computed = []
        for seed, ok, payload, elapsed, telemetry in shipped:
            registry.merge(telemetry["metrics"])
            tracer.adopt(telemetry["spans"])
            computed.append((seed, ok, payload, elapsed))
        if raise_on_failure:
            for _, ok, payload, _ in computed:  # first failure in seed order
                if not ok:
                    raise payload
    else:
        computed = []
        for seed in missing:
            with tracer.span("campaign.seed", seed=seed):
                outcome = _execute_seed(experiment, seed)
            if raise_on_failure and not outcome[1]:
                raise outcome[2]
            computed.append(outcome)

    for seed, ok, payload, elapsed in computed:
        outcomes[seed] = (ok, payload)
        result.timings[seed] = elapsed
        if ok and cache is not None:
            cache.put(name, fingerprints[seed], payload, elapsed_s=elapsed)

    # Aggregate strictly in seed order so serial, parallel and cache-warm
    # runs produce identical metric value sequences.
    for seed in seeds:
        ok, payload = outcomes[seed]
        if not ok:
            result.failures[seed] = str(payload)
            continue
        for metric_name, value in payload.items():
            result.metrics.setdefault(metric_name, MetricSummary(name=metric_name))
            result.metrics[metric_name].values.append(float(value))
    if not result.metrics:
        raise AnalysisError(
            f"every campaign run failed: {result.failures}"
        )
    result.total_seconds = time.perf_counter() - wall_start
    registry.counter("campaign.seeds_run", experiment=name).inc(len(computed))
    registry.counter(
        "campaign.seeds_cached", experiment=name
    ).inc(len(result.cached_seeds))
    registry.counter(
        "campaign.seeds_failed", experiment=name
    ).inc(len(result.failures))
    campaign_span.set("cached", len(result.cached_seeds))
    campaign_span.set("failed", len(result.failures))
    _log.info(
        "campaign done: %s %.2fs wall, %.2fs compute, %d/%d cached",
        name, result.total_seconds, result.compute_seconds,
        len(result.cached_seeds), len(seeds),
    )
    return result
