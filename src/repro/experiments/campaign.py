"""Multi-seed experiment campaigns with aggregate statistics.

The paper reports several experiments over repeated trials ("10 trials on
various missions"); this module runs any per-seed experiment callable
across a seed range and aggregates named scalar metrics, so benches and
users can report mean/median/min/max instead of single-run numbers.

Execution modes (all produce bit-identical :class:`CampaignResult` metric
values and seed ordering):

* **serial** — ``workers=0`` (or 1): the classic in-process loop;
* **parallel** — ``workers=N`` fans the missing seeds out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` and collects results
  back in seed order before aggregating;
* **vectorized** — ``engine="vectorized"`` with a ``batch`` callable
  computes chunks of seeds at once (a
  :class:`~repro.sim.vectorized.VectorizedFleet` under the hood for the
  experiments that provide one), with per-seed scalar fallback for
  anything the batch declines; statuses record which engine ran each
  seed (``"vectorized"`` / ``"fallback"``);
* **vectorized × parallel** — ``engine="vectorized"`` *and*
  ``workers=M`` shards whole same-parameter chunks across the process
  pool: each worker runs one :class:`VectorizedFleet`-sized batch, a
  crashed worker requeues its entire chunk (bounded by the retry
  policy, then scalar fallback), and results merge in seed order — so
  sharded, serial-vectorized and scalar runs are byte-identical.
  ``batch_size="auto"`` picks the chunk width from the seed count and
  worker count (recorded in the manifest, never in cache
  fingerprints);
* **cached** — with a :class:`~repro.experiments.cache.ResultCache`,
  per-seed metric dicts are looked up by experiment name + seed + params
  fingerprint first, and only the missing seeds are computed (then
  stored), so a warm re-run executes zero experiment callables.

Fault tolerance (:mod:`repro.experiments.faults`): the parent process
supervises every pool future itself — per-seed wall-clock deadlines, a
kill-and-respawn path for hung or crashed workers, transient-vs-
deterministic failure classification with bounded retries and
deterministic backoff, a campaign failure budget, and an append-only
JSONL manifest (checkpoint) enabling ``resume`` with zero recomputation
of finished seeds. Because every experiment is a pure function of its
seed, a retried seed is bit-identical to a clean run; the chaos suite in
``tests/test_campaign_faults.py`` pins this.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Mapping
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import AnalysisError
from repro.experiments.cache import (
    ResultCache,
    callable_name,
    fingerprint_params,
)
from repro.experiments.faults import (
    STATUS_BATCH_SIZE,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_FALLBACK,
    STATUS_OK,
    STATUS_RESUMED,
    STATUS_RETRIED,
    STATUS_TIMEOUT,
    STATUS_VECTORIZED,
    CampaignManifest,
    CorruptResult,
    FaultInjector,
    FaultPolicy,
    ManifestRecord,
    SeedTimeout,
)
from repro.obs.blackbox import (
    blackbox_session,
    promote_spools,
    spool_dir_for,
    write_stub_artifact,
)
from repro.obs.events import EventBus, queue_event
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, get_tracer, use_telemetry

__all__ = ["MetricSummary", "CampaignResult", "run_campaign"]

_log = get_logger(__name__)

#: Supervisor poll interval: how often deadlines are checked and backed-off
#: retries become eligible for resubmission.
_SUPERVISOR_TICK_S = 0.05

#: ``batch_size="auto"`` bounds: a fleet narrower than this wastes the
#: batched kernels on numpy dispatch overhead; one wider than this stops
#: amortizing further while hurting shard balance and retry granularity.
_AUTO_MIN_BATCH = 4
_AUTO_MAX_BATCH = 64


@dataclass
class MetricSummary:
    """Aggregate statistics of one scalar metric over the campaign."""

    name: str
    values: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def median(self) -> float:
        return float(np.median(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))


@dataclass
class CampaignResult:
    """All per-seed metric values plus aggregates, statuses and timing."""

    metrics: dict[str, MetricSummary] = field(default_factory=dict)
    seeds: list[int] = field(default_factory=list)
    failures: dict[int, str] = field(default_factory=dict)
    #: Per-seed wall-clock compute time (cached seeds report the stored
    #: time of their original computation).
    timings: dict[int, float] = field(default_factory=dict)
    #: Seeds whose metrics came out of the result cache this run.
    cached_seeds: list[int] = field(default_factory=list)
    #: Seeds adopted from the campaign manifest this run (``resume``).
    resumed_seeds: list[int] = field(default_factory=list)
    #: Per-seed terminal status: ok / retried / failed / timeout /
    #: cached / resumed.
    statuses: dict[int, str] = field(default_factory=dict)
    #: Attempts consumed per computed seed (1 = first try succeeded).
    attempts: dict[int, int] = field(default_factory=dict)
    #: Wall-clock duration of the whole ``run_campaign`` call.
    total_seconds: float = 0.0
    #: Chunk width the vectorized engine actually used this run
    #: (``None`` unless the vectorized engine ran; resolves
    #: ``batch_size="auto"`` to the concrete width).
    batch_size_used: int | None = None

    @property
    def compute_seconds(self) -> float:
        """Summed per-seed compute time (the serial-equivalent cost)."""
        return float(sum(self.timings.values()))

    @property
    def seeds_per_second(self) -> float:
        """Campaign throughput over this run's wall clock."""
        if self.total_seconds <= 0.0:
            return 0.0
        return len(self.seeds) / self.total_seconds

    @property
    def retried_seeds(self) -> list[int]:
        """Seeds that needed at least one transient-failure retry."""
        return [s for s, status in sorted(self.statuses.items())
                if status == STATUS_RETRIED]

    @property
    def vectorized_seeds(self) -> list[int]:
        """Seeds whose metrics came from a vectorized batch this run."""
        return [s for s, status in sorted(self.statuses.items())
                if status == STATUS_VECTORIZED]

    @property
    def fallback_seeds(self) -> list[int]:
        """Seeds the vectorized engine declined (computed scalar)."""
        return [s for s, status in sorted(self.statuses.items())
                if status == STATUS_FALLBACK]

    def metric(self, name: str) -> MetricSummary:
        """One metric's summary."""
        try:
            return self.metrics[name]
        except KeyError:
            raise AnalysisError(f"unknown campaign metric '{name}'") from None

    def render(self) -> str:
        """Aggregate table."""
        lines = [
            f"Campaign over {len(self.seeds)} seeds"
            + (f" ({len(self.failures)} failed)" if self.failures else "")
            + (f" ({len(self.cached_seeds)} cached)" if self.cached_seeds
               else "")
            + (f" ({len(self.resumed_seeds)} resumed)" if self.resumed_seeds
               else "")
            + (f" ({len(self.vectorized_seeds)} vectorized)"
               if self.vectorized_seeds else ""),
            "  metric                    mean      median      min       max",
        ]
        for summary in self.metrics.values():
            lines.append(
                f"  {summary.name:22s} {summary.mean:9.3g} {summary.median:10.3g} "
                f"{summary.min:9.3g} {summary.max:9.3g}"
            )
        if self.total_seconds > 0.0:
            lines.append(
                f"  wall {self.total_seconds:.2f}s  compute "
                f"{self.compute_seconds:.2f}s  "
                f"{self.seeds_per_second:.2f} seeds/s"
            )
        return "\n".join(lines)


@dataclass
class _SeedOutcome:
    """One seed's terminal state after retries, as the supervisor saw it."""

    seed: int
    ok: bool
    payload: Any  # metrics dict on success, exception object on failure
    elapsed: float
    attempts: int = 1
    status: str = STATUS_OK
    timeouts: int = 0


class _FailureBudget:
    """Counts terminal per-seed failures against the policy budget."""

    def __init__(self, budget: int | None):
        self.budget = budget
        self.failed = 0

    def record(self) -> None:
        self.failed += 1

    @property
    def exceeded(self) -> bool:
        return self.budget is not None and self.failed > self.budget


def _payload_error(payload: Any) -> CorruptResult | None:
    """Detect a corrupt/garbled metrics payload shipped back by a worker."""
    if not isinstance(payload, dict):
        return CorruptResult(
            f"metrics payload is {type(payload).__name__}, not a dict"
        )
    for key, value in payload.items():
        if not isinstance(key, str) or not isinstance(value, float):
            return CorruptResult(
                f"corrupt metric entry {key!r} -> {type(value).__name__}"
            )
    return None


def _execute_seed(
    experiment: Callable[[int], Mapping[str, float]], seed: int,
    injector: FaultInjector | None = None, hard: bool = False,
    blackbox: dict[str, Any] | None = None, attempt: int = 1,
) -> tuple[int, bool, Any, float]:
    """Run one seed; returns (seed, ok, metrics-or-error, elapsed_s).

    Module-level so :class:`ProcessPoolExecutor` can pickle it; exceptions
    are captured as objects so one bad seed cannot kill the pool. The
    chaos injection points ``worker_start``/``mid_seed``/``serialize``
    fire here (``hard`` selects process-killing crashes, used inside pool
    workers). With a ``blackbox`` spec the experiment call itself runs
    inside a :func:`blackbox_session`, so every vehicle it constructs
    records flight state into a crash-surviving spool — the ``mid_seed``
    chaos point fires *after* the session exits, so even a hard
    ``os._exit`` crash leaves the final spool on disk.
    """
    start = time.perf_counter()
    try:
        if injector is not None:
            injector.fire("worker_start", seed, hard=hard)
        if blackbox is not None:
            with blackbox_session(blackbox["dir"],
                                  experiment=blackbox["experiment"],
                                  seed=seed, attempt=attempt):
                raw = experiment(seed)
        else:
            raw = experiment(seed)
        if injector is not None:
            injector.fire("mid_seed", seed, hard=hard)
        metrics: dict[str, Any] = {
            str(name): float(value) for name, value in raw.items()
        }
        if injector is not None and \
                injector.fire("serialize", seed, hard=hard) == "corrupt":
            # Simulated bit-rot in the shipped payload; the parent-side
            # validation must catch this and classify it as transient.
            metrics["__corrupt__"] = "\x00garbage"
    except Exception as exc:  # noqa: BLE001 - campaign isolation
        return seed, False, exc, time.perf_counter() - start
    return seed, True, metrics, time.perf_counter() - start


def _execute_seed_in_worker(
    experiment: Callable[[int], Mapping[str, float]],
    seed: int,
    collect_spans: bool,
    injector: FaultInjector | None = None,
    attempt: int = 1,
    blackbox: dict[str, Any] | None = None,
    event_queue=None,
    experiment_name: str = "",
) -> tuple[int, bool, Any, float, dict[str, Any]]:
    """Pool-side wrapper: run one seed under fresh, isolated telemetry.

    Each seed gets its own registry (and, when the parent is tracing, its
    own span tracer), so snapshots never double-count across the seeds a
    reused pool worker executes. The telemetry rides back with the result
    tuple and the parent merges it in seed order — never into the result
    values themselves, so execution mode cannot perturb the science.
    Progress events go out best-effort on ``event_queue`` and are drained
    by the parent's bus each supervisor tick.
    """
    queue_event(event_queue, "seed_started", experiment_name,
                seed=seed, attempt=attempt)
    registry = MetricsRegistry()
    tracer = Tracer(enabled=collect_spans)
    with use_telemetry(registry, tracer):
        with tracer.span("campaign.seed", seed=seed, attempt=attempt):
            outcome = _execute_seed(experiment, seed, injector, hard=True,
                                    blackbox=blackbox, attempt=attempt)
    telemetry = {"metrics": registry.snapshot(), "spans": tracer.to_dicts()}
    return (*outcome, telemetry)


def run_campaign(
    experiment: Callable[[int], Mapping[str, float]],
    seeds,
    raise_on_failure: bool = False,
    workers: int = 0,
    cache: ResultCache | None = None,
    experiment_name: str | None = None,
    params: Any = None,
    policy: FaultPolicy | None = None,
    injector: FaultInjector | None = None,
    manifest: CampaignManifest | str | Path | None = None,
    resume: bool = False,
    engine: str = "scalar",
    batch: Callable[[list[int]], Mapping[int, Mapping[str, float]]] | None = None,
    batch_size: int | str = 16,
    events: EventBus | str | Path | None = None,
    progress: bool = False,
    blackbox_dir: str | Path | None = None,
) -> CampaignResult:
    """Run ``experiment(seed) -> {metric: value}`` across ``seeds``.

    Per-seed exceptions are recorded (or re-raised with
    ``raise_on_failure``); metrics are aggregated over successful runs in
    seed order regardless of execution mode.

    Parameters
    ----------
    workers:
        ``0``/``1`` runs serially in-process; ``N > 1`` computes missing
        seeds on a process pool (the experiment callable must be
        picklable, i.e. a module-level function or a partial of one).
        A policy with ``seed_timeout`` forces pool execution (a pool
        worker can be killed; the parent cannot interrupt itself).
    cache:
        Optional result cache; per-seed metric dicts are keyed by
        ``experiment_name`` + seed + a fingerprint of ``params``.
    experiment_name:
        Cache bucket name (default: the callable's qualified name).
    params:
        Anything that changes the experiment's behaviour besides the
        seed — it is fingerprinted into the cache key.
    policy:
        :class:`~repro.experiments.faults.FaultPolicy` controlling
        timeouts, retries, backoff and the failure budget. ``None`` keeps
        the legacy behaviour (no timeout, no retries, no budget).
    injector:
        Chaos hook for the fault-injection test harness; defaults to
        :meth:`FaultInjector.from_env` (``REPRO_FAULTS``).
    manifest:
        JSONL checkpoint path (or :class:`CampaignManifest`); each
        completed seed appends one flushed record, enabling ``resume``.
    resume:
        Adopt finished seeds from ``manifest`` instead of recomputing
        them. Requires an existing manifest file.
    engine:
        ``"scalar"`` (default) computes every missing seed through the
        ``experiment`` callable. ``"vectorized"`` first offers missing
        seeds to ``batch`` in chunks of ``batch_size`` and only the
        leftovers go through the scalar path. The engine never changes a
        result value or a cache fingerprint — it only changes how the
        value is computed — so vectorized and scalar runs hit each
        other's cache entries.
    batch:
        ``batch(seeds) -> {seed: {metric: value}}`` computing many seeds
        at once (e.g. a :class:`~repro.sim.vectorized.VectorizedFleet`
        wrapper). It may return a subset: seeds missing from the mapping
        — and every seed of a chunk whose ``batch`` call raises — fall
        back to the scalar path and finish with status ``"fallback"``;
        batch-computed seeds report status ``"vectorized"``. With
        ``workers > 1`` whole chunks ship to pool workers (``batch``
        must then be picklable); a crashed worker requeues its entire
        chunk under the retry policy before falling back to scalar.
    batch_size:
        Seeds per vectorized chunk (default 16), or ``"auto"`` to derive
        the width from the missing-seed count and worker count. The
        resolved width is recorded in the manifest (a ``"batch_size"``
        meta record) and in :attr:`CampaignResult.batch_size_used`, and
        is *never* part of a cache fingerprint — any width produces the
        same bits.
    events:
        Streaming sink for structured progress events: a JSONL log path
        (see ``schemas/events.schema.json``), or an
        :class:`~repro.obs.events.EventBus` the caller manages. Strictly
        observational — results, statuses and cache entries are
        byte-identical with streaming on or off.
    progress:
        Render an in-place live progress line (with an ETA from the
        per-seed duration histogram) on stderr. Implies an event bus
        even without an ``events`` log path. Passive, like ``events``.
    blackbox_dir:
        Enable the blackbox flight recorder
        (:mod:`repro.obs.blackbox`): every vehicle a seed constructs
        records its recent state into a crash-surviving spool under
        ``blackbox_dir/spool/``, and the spool of any seed attempt that
        ends in crash/timeout/failed/corrupt is promoted into a
        content-addressed ``bb_<hash>.json`` artifact in
        ``blackbox_dir``. Recording is passive: on vs. off is
        byte-identical.
    """
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise AnalysisError("campaign needs at least one seed")
    if engine not in ("scalar", "vectorized"):
        raise AnalysisError(
            f"unknown campaign engine '{engine}' "
            "(choose 'scalar' or 'vectorized')"
        )
    if isinstance(batch_size, str):
        if batch_size != "auto":
            raise AnalysisError(
                f"batch_size must be a positive int or 'auto' "
                f"(got {batch_size!r})"
            )
    elif batch_size < 1:
        raise AnalysisError(f"batch_size must be >= 1 (got {batch_size})")
    name = experiment_name or callable_name(experiment)
    policy = policy if policy is not None else FaultPolicy(max_retries=0)
    if injector is None:
        injector = FaultInjector.from_env()
    if isinstance(manifest, (str, Path)):
        manifest = CampaignManifest(manifest)
    if resume and (manifest is None or not manifest.exists()):
        where = f" at '{manifest.path}'" if manifest is not None else ""
        raise AnalysisError(
            f"cannot resume campaign '{name}': no manifest{where} "
            "(run without resume first, or pass the manifest path of the "
            "interrupted run)"
        )
    bus: EventBus | None = None
    own_bus = False
    if isinstance(events, EventBus):
        bus = events
    elif events is not None or progress:
        bus = EventBus(
            name, len(seeds), log_path=events, progress=progress,
            workers=int(workers),
        )
        own_bus = True
    blackbox_root = Path(blackbox_dir) if blackbox_dir is not None else None
    with get_tracer().span(
        "campaign", experiment=name, seeds=len(seeds), workers=int(workers)
    ) as campaign_span:
        try:
            return _run_campaign_traced(
                experiment, seeds, raise_on_failure, workers, cache, name,
                params, policy, injector, manifest, resume, campaign_span,
                engine, batch, batch_size, bus, blackbox_root,
            )
        finally:
            # Flush/close the checkpoint no matter how we exit —
            # including KeyboardInterrupt and a blown failure budget.
            if manifest is not None:
                manifest.close()
            if bus is not None:
                # Terminate any `obs tail --follow` even on an aborted
                # campaign; close only a bus this call created.
                bus.finish()
                if own_bus:
                    bus.close()


def _run_campaign_traced(
    experiment, seeds, raise_on_failure, workers, cache, name, params,
    policy, injector, manifest, resume, campaign_span,
    engine="scalar", batch=None, batch_size=16, bus=None,
    blackbox_root=None,
) -> CampaignResult:
    wall_start = time.perf_counter()
    tracer = get_tracer()
    registry = get_registry()
    result = CampaignResult(seeds=seeds)
    if bus is not None:
        bus.emit(
            "campaign_started",
            seeds=len(seeds), workers=int(workers), engine=engine,
        )
    # Picklable worker-side spool spec; the parent keeps the root for
    # promotion. None keeps the recorder entirely out of the hot path.
    blackbox = (
        {"dir": str(spool_dir_for(blackbox_root)), "experiment": name}
        if blackbox_root is not None else None
    )

    outcomes: dict[int, tuple[bool, Any]] = {}
    fingerprints: dict[int, str] = {}
    previous = manifest.load() if (manifest is not None and resume) else {}
    if manifest is not None and not resume:
        manifest.truncate()

    missing: list[int] = []
    for seed in seeds:
        record = previous.get(seed)
        if record is not None and record.finished:
            outcomes[seed] = (True, dict(record.metrics))
            result.timings[seed] = record.elapsed_s
            result.resumed_seeds.append(seed)
            result.statuses[seed] = STATUS_RESUMED
            result.attempts[seed] = record.attempts
            if bus is not None:
                bus.emit("seed_resumed", seed=seed, attempt=record.attempts,
                         status=STATUS_RESUMED, elapsed_s=record.elapsed_s)
            continue
        if cache is not None:
            fingerprints[seed] = fingerprint_params(
                {"experiment": name, "seed": seed, "params": params}
            )
            if injector is not None:
                injector.fire("cache_decode", seed,
                              path=cache.path_for(name, fingerprints[seed]))
            entry = cache.get(name, fingerprints[seed])
            if entry is not None and isinstance(entry.result, dict):
                outcomes[seed] = (True, entry.result)
                result.timings[seed] = entry.elapsed_s
                result.cached_seeds.append(seed)
                result.statuses[seed] = STATUS_CACHED
                if bus is not None:
                    bus.emit("seed_cached", seed=seed, attempt=1,
                             status=STATUS_CACHED, elapsed_s=entry.elapsed_s)
                continue
        missing.append(seed)
    _log.debug(
        "campaign start: %s (%d seeds, %d cached, %d resumed, workers=%d)",
        name, len(seeds), len(result.cached_seeds),
        len(result.resumed_seeds), int(workers),
    )

    budget = _FailureBudget(policy.failure_budget)
    vectorized_outcomes: list[_SeedOutcome] = []
    fallback_seeds: set[int] = set()

    def on_done(outcome: _SeedOutcome) -> None:
        """Record one terminal seed: result, cache, checkpoint, budget."""
        if outcome.ok and outcome.status == STATUS_OK \
                and outcome.seed in fallback_seeds:
            # Scalar fallback of a seed the vectorized batch declined:
            # same metrics, distinct status so the fallback is auditable.
            outcome.status = STATUS_FALLBACK
        outcomes[outcome.seed] = (outcome.ok, outcome.payload)
        result.timings[outcome.seed] = outcome.elapsed
        result.statuses[outcome.seed] = outcome.status
        result.attempts[outcome.seed] = outcome.attempts
        if outcome.ok and cache is not None:
            cache.put(name, fingerprints[outcome.seed], outcome.payload,
                      elapsed_s=outcome.elapsed)
        if manifest is not None:
            manifest.append(ManifestRecord(
                experiment=name, seed=outcome.seed, status=outcome.status,
                attempts=outcome.attempts, elapsed_s=outcome.elapsed,
                fingerprint=fingerprints.get(outcome.seed),
                metrics=outcome.payload if outcome.ok else None,
                error=None if outcome.ok else str(outcome.payload),
                created_at=time.time(),
            ))
        if not outcome.ok:
            budget.record()
        if blackbox_root is not None:
            _settle_seed_blackbox(blackbox_root, name, outcome, bus)
        if bus is not None:
            kind = (
                "seed_timeout" if outcome.status == STATUS_TIMEOUT
                else "seed_failed" if not outcome.ok
                else "seed_finished"
            )
            bus.emit(kind, seed=outcome.seed, attempt=outcome.attempts,
                     status=outcome.status, elapsed_s=outcome.elapsed)

    if engine == "vectorized" and batch is not None and missing:
        width = _resolve_batch_size(batch_size, len(missing), workers)
        result.batch_size_used = width
        if manifest is not None:
            # Execution metadata, not science: the meta record documents
            # the width an auto-tuned run picked. Its pseudo-seed (-1)
            # is outside every campaign seed range and its status is not
            # a finished one, so resume never adopts it.
            manifest.append(ManifestRecord(
                experiment=name, seed=-1, status=STATUS_BATCH_SIZE,
                attempts=1, elapsed_s=0.0,
                metrics={"batch_size": float(width)},
                created_at=time.time(),
            ))
        if workers and int(workers) > 1 and len(missing) > width:
            missing = _run_vectorized_sharded(
                batch, missing, width, int(workers), policy, injector,
                tracer, registry, on_done, vectorized_outcomes,
                fallback_seeds, name, bus=bus, blackbox=blackbox,
                blackbox_root=blackbox_root,
            )
        else:
            missing = _run_vectorized(
                batch, missing, width, tracer, on_done,
                vectorized_outcomes, fallback_seeds, name, bus=bus,
                blackbox=blackbox, blackbox_root=blackbox_root,
            )

    use_pool = bool(
        (workers and workers > 1 and len(missing) > 1)
        or (policy.seed_timeout is not None and missing)
    )
    if use_pool:
        executed = _supervise_pool(
            experiment, missing, max(int(workers), 1), policy, injector,
            tracer, registry, on_done, budget, bus=bus, blackbox=blackbox,
            name=name,
        )
    else:
        executed = _run_serial(
            experiment, missing, policy, injector, tracer, on_done, budget,
            raise_on_failure, bus=bus, blackbox=blackbox,
        )
    executed = vectorized_outcomes + executed

    if budget.exceeded:
        checkpoint = f"; completed seeds are checkpointed in '{manifest.path}'" \
            if manifest is not None else ""
        raise AnalysisError(
            f"campaign '{name}' failure budget exhausted: {budget.failed} "
            f"seeds failed terminally (budget {policy.failure_budget})"
            f"{checkpoint}"
        )
    if raise_on_failure:
        for seed in seeds:  # first failure in seed order
            recorded = outcomes.get(seed)
            if recorded is not None and not recorded[0]:
                raise recorded[1]

    # Aggregate strictly in seed order so serial, parallel and cache-warm
    # runs produce identical metric value sequences.
    for seed in seeds:
        ok, payload = outcomes[seed]
        if not ok:
            result.failures[seed] = str(payload)
            continue
        for metric_name, value in payload.items():
            result.metrics.setdefault(metric_name, MetricSummary(name=metric_name))
            result.metrics[metric_name].values.append(float(value))
    if not result.metrics:
        raise AnalysisError(
            f"every campaign run failed: {result.failures}"
        )
    result.total_seconds = time.perf_counter() - wall_start
    retries = sum(max(0, o.attempts - 1) for o in executed)
    timeouts = sum(o.timeouts for o in executed)
    registry.counter("campaign.seeds_run", experiment=name).inc(len(executed))
    registry.counter(
        "campaign.seeds_cached", experiment=name
    ).inc(len(result.cached_seeds))
    registry.counter(
        "campaign.seeds_resumed", experiment=name
    ).inc(len(result.resumed_seeds))
    registry.counter(
        "campaign.seeds_failed", experiment=name
    ).inc(len(result.failures))
    if vectorized_outcomes:
        registry.counter(
            "campaign.seeds_vectorized", experiment=name
        ).inc(len(vectorized_outcomes))
    if fallback_seeds:
        registry.counter(
            "campaign.seeds_fallback", experiment=name
        ).inc(len(fallback_seeds))
    if retries:
        registry.counter("campaign.retries", experiment=name).inc(retries)
    if timeouts:
        registry.counter(
            "campaign.seed_timeouts", experiment=name
        ).inc(timeouts)
    campaign_span.set("cached", len(result.cached_seeds))
    campaign_span.set("resumed", len(result.resumed_seeds))
    campaign_span.set("failed", len(result.failures))
    campaign_span.set("retried", len(result.retried_seeds))
    campaign_span.set("vectorized", len(result.vectorized_seeds))
    campaign_span.set("fallback", len(result.fallback_seeds))
    campaign_span.set("timeouts", timeouts)
    _log.info(
        "campaign done: %s %.2fs wall, %.2fs compute, %d/%d cached, "
        "%d resumed, %d retries",
        name, result.total_seconds, result.compute_seconds,
        len(result.cached_seeds), len(seeds), len(result.resumed_seeds),
        retries,
    )
    return result


def _terminal_outcome(seed: int, exc: BaseException, elapsed: float,
                      attempts: int, timeouts: int) -> _SeedOutcome:
    status = STATUS_TIMEOUT if isinstance(exc, SeedTimeout) else STATUS_FAILED
    return _SeedOutcome(seed, False, exc, elapsed, attempts, status, timeouts)


def _blackbox_reason(outcome: _SeedOutcome) -> str | None:
    """Map a terminal seed outcome onto a blackbox artifact reason."""
    if outcome.ok:
        return None
    if outcome.status == STATUS_TIMEOUT:
        return "timeout"
    error = outcome.payload
    if isinstance(error, CorruptResult):
        return "corrupt"
    if isinstance(error, (BrokenExecutor, CancelledError, OSError)):
        return "crash"
    return "failed"


def _settle_seed_blackbox(root, name, outcome: _SeedOutcome, bus) -> None:
    """Promote (or delete) a finished seed's blackbox spools.

    Runs in ``on_done``, strictly after the result/cache/manifest writes,
    so a recorder failure can never un-record a seed. A terminal non-ok
    seed with no surviving spool (a worker killed before the vehicle ever
    stepped) still yields a stub artifact — "every crashed seed has a
    blackbox" is part of the contract.
    """
    reason = _blackbox_reason(outcome)
    try:
        promoted = promote_spools(
            root, f"seed{outcome.seed}", reason,
            final_attempt=outcome.attempts,
        )
        if reason is not None and not promoted:
            promoted = [write_stub_artifact(
                root, name, outcome.seed, outcome.attempts, reason,
            )]
    except OSError as exc:
        _log.warning("blackbox promotion failed for seed %d: %s",
                     outcome.seed, exc)
        return
    if bus is not None:
        for path in promoted:
            bus.emit("blackbox_dumped", seed=outcome.seed,
                     attempt=outcome.attempts, status=outcome.status,
                     path=str(path))


def _run_serial(experiment, seeds, policy, injector, tracer, on_done, budget,
                raise_on_failure, bus=None, blackbox=None
                ) -> list[_SeedOutcome]:
    """In-process execution with retry/backoff (no timeout enforcement —
    the parent cannot kill itself; a policy timeout routes to the pool)."""
    executed: list[_SeedOutcome] = []
    for seed in seeds:
        if budget.exceeded:
            break
        attempt = 0
        timeouts = 0
        while True:
            attempt += 1
            if bus is not None:
                bus.emit("seed_started", seed=seed, attempt=attempt)
                bus.heartbeat(in_flight=1)
            with tracer.span("campaign.seed", seed=seed, attempt=attempt):
                _, ok, payload, elapsed = _execute_seed(
                    experiment, seed, injector, blackbox=blackbox,
                    attempt=attempt,
                )
            if ok:
                error = _payload_error(payload)
                if error is None:
                    outcome = _SeedOutcome(
                        seed, True, payload, elapsed, attempt,
                        STATUS_RETRIED if attempt > 1 else STATUS_OK,
                        timeouts,
                    )
                    break
                payload = error
            if policy.is_transient(payload) and attempt <= policy.max_retries:
                if bus is not None:
                    bus.emit("seed_retried", seed=seed, attempt=attempt,
                             elapsed_s=elapsed,
                             error=type(payload).__name__)
                time.sleep(policy.backoff_seconds(seed, attempt))
                continue
            outcome = _terminal_outcome(seed, payload, elapsed, attempt,
                                        timeouts)
            break
        on_done(outcome)
        executed.append(outcome)
        if raise_on_failure and not outcome.ok:
            raise outcome.payload
    return executed


def _resolve_batch_size(batch_size, n_missing: int, workers) -> int:
    """Concrete chunk width for this run (resolves ``"auto"``).

    The auto heuristic aims for one chunk per worker — the fewest
    batched fleets that still keep every worker busy — clamped to
    [``_AUTO_MIN_BATCH``, ``_AUTO_MAX_BATCH``]: narrower fleets pay more
    numpy dispatch overhead per seed, wider ones stop amortizing while
    coarsening the crash-requeue granularity. Pure function of
    ``(n_missing, workers)``, so a resumed run re-derives the same
    width.
    """
    if batch_size != "auto":
        return int(batch_size)
    shards = max(int(workers), 1)
    width = -(-n_missing // shards)  # ceil: one chunk per worker
    return max(_AUTO_MIN_BATCH, min(width, _AUTO_MAX_BATCH))


def _run_vectorized(batch, missing, batch_size, tracer, on_done,
                    vectorized_outcomes, fallback_seeds, name, bus=None,
                    blackbox=None, blackbox_root=None) -> list[int]:
    """Offer missing seeds to the vectorized ``batch`` in chunks.

    Returns the seeds still missing afterwards (declined by the batch or
    part of a chunk whose ``batch`` call raised); those are recorded in
    ``fallback_seeds`` and computed by the scalar path, which reports
    them with status ``"fallback"``. With a blackbox spec each chunk runs
    inside one session labelled ``chunk<first-seed>`` covering every
    fleet lane; a failed chunk's spool is promoted with reason
    ``"failed"``, a clean one is discarded (the per-seed scalar fallback
    re-records anything that still matters).
    """
    leftovers: list[int] = []
    for start in range(0, len(missing), batch_size):
        chunk = missing[start:start + batch_size]
        label = f"chunk{chunk[0]}"
        if bus is not None:
            bus.emit("chunk_dispatched", seed=chunk[0], attempt=1,
                     seeds=len(chunk))
        begin = time.perf_counter()
        try:
            with tracer.span("campaign.vectorized_batch", experiment=name,
                             seeds=len(chunk)):
                if blackbox is not None:
                    with blackbox_session(blackbox["dir"],
                                          experiment=blackbox["experiment"],
                                          seed=chunk[0], attempt=1,
                                          label=label):
                        produced = batch(list(chunk))
                else:
                    produced = batch(list(chunk))
        except Exception as exc:  # noqa: BLE001 - fall back, never abort
            _log.warning(
                "vectorized batch failed for %s (%s: %s); "
                "%d seeds fall back to the scalar engine",
                name, type(exc).__name__, exc, len(chunk),
            )
            if blackbox_root is not None:
                for path in promote_spools(blackbox_root, label, "failed"):
                    if bus is not None:
                        bus.emit("blackbox_dumped", seed=chunk[0],
                                 path=str(path))
            if bus is not None:
                bus.emit("chunk_finished", seed=chunk[0], attempt=1,
                         status=STATUS_FAILED, seeds=len(chunk),
                         error=type(exc).__name__)
            fallback_seeds.update(chunk)
            leftovers.extend(chunk)
            continue
        elapsed = time.perf_counter() - begin
        if blackbox_root is not None:
            promote_spools(blackbox_root, label, None, final_attempt=1)
        if bus is not None:
            bus.emit("chunk_finished", seed=chunk[0], attempt=1,
                     status=STATUS_VECTORIZED, elapsed_s=elapsed,
                     seeds=len(chunk))
            bus.heartbeat(in_flight=0)
        handled = [seed for seed in chunk if seed in produced]
        per_seed = elapsed / max(len(handled), 1)
        for seed in chunk:
            if seed not in handled:
                fallback_seeds.add(seed)
                leftovers.append(seed)
                continue
            payload = {
                str(k): float(v) for k, v in produced[seed].items()
            }
            outcome = _SeedOutcome(
                seed, True, payload, per_seed, 1, STATUS_VECTORIZED
            )
            vectorized_outcomes.append(outcome)
            on_done(outcome)
    return leftovers


def _execute_batch_in_worker(
    batch: Callable[[list[int]], Mapping[int, Mapping[str, float]]],
    chunk: list[int],
    collect_spans: bool,
    injector: FaultInjector | None = None,
    attempt: int = 1,
    blackbox: dict[str, Any] | None = None,
    event_queue=None,
    experiment_name: str = "",
) -> tuple[list[int], bool, Any, float, dict[str, Any]]:
    """Pool-side wrapper: run one vectorized chunk under fresh telemetry.

    The sharded twin of :func:`_execute_seed_in_worker` — one fleet-wide
    batch per call instead of one seed. The ``worker_start`` chaos point
    fires for every seed of the chunk, so an injected crash takes the
    whole chunk down exactly like a real segfault mid-fleet would. With a
    blackbox spec the whole fleet records into one ``chunk<first-seed>``
    session — every lane becomes a vehicle entry in the same spool.
    """
    queue_event(event_queue, "seed_started", experiment_name,
                seed=chunk[0], attempt=attempt, seeds=len(chunk))
    registry = MetricsRegistry()
    tracer = Tracer(enabled=collect_spans)
    start = time.perf_counter()
    with use_telemetry(registry, tracer):
        with tracer.span("campaign.vectorized_batch", seeds=len(chunk),
                         attempt=attempt):
            try:
                if injector is not None:
                    for seed in chunk:
                        injector.fire("worker_start", seed, hard=True)
                if blackbox is not None:
                    with blackbox_session(blackbox["dir"],
                                          experiment=blackbox["experiment"],
                                          seed=chunk[0], attempt=attempt,
                                          label=f"chunk{chunk[0]}"):
                        produced = batch(list(chunk))
                else:
                    produced = batch(list(chunk))
                payload: Any = {
                    int(s): {str(k): float(v) for k, v in metrics.items()}
                    for s, metrics in produced.items()
                }
                ok = True
            except Exception as exc:  # noqa: BLE001 - campaign isolation
                ok, payload = False, exc
    elapsed = time.perf_counter() - start
    telemetry = {"metrics": registry.snapshot(), "spans": tracer.to_dicts()}
    return chunk, ok, payload, elapsed, telemetry


@dataclass
class _ChunkFlight:
    """One in-flight vectorized chunk: its seeds, attempt and deadline."""

    index: int
    chunk: list[int]
    attempt: int
    deadline: float | None


def _run_vectorized_sharded(batch, missing, batch_size, workers, policy,
                            injector, tracer, registry, on_done,
                            vectorized_outcomes, fallback_seeds, name,
                            bus=None, blackbox=None, blackbox_root=None
                            ) -> list[int]:
    """Shard vectorized chunks over a :class:`ProcessPoolExecutor`.

    Composition of the vectorized and parallel engines: whole
    ``batch_size``-seed chunks ship to pool workers, so M workers each
    integrate one fleet concurrently. Failure handling is per *chunk* —
    a worker process dying (or a chunk blowing its deadline,
    ``seed_timeout × len(chunk)``) is transient and requeues the entire
    chunk with deterministic backoff, bounded by ``policy.max_retries``;
    an exhausted chunk, an in-batch exception and any seed the batch
    declines all fall back to the scalar path (status ``"fallback"``),
    exactly like the serial vectorized engine. Worker telemetry merges
    in (chunk, attempt) order after the loop, so completion order can
    never perturb merged counter totals.

    Returns the seeds still missing afterwards, in campaign seed order.
    """
    chunks = [missing[i:i + batch_size]
              for i in range(0, len(missing), batch_size)]
    pending: list[tuple[int, int]] = [(ci, 1) for ci in range(len(chunks))]
    not_before: dict[tuple[int, int], float] = {}
    fallback: set[int] = set()
    telemetry_parts: dict[tuple[int, int], dict[str, Any]] = {}
    in_flight: dict[Future, _ChunkFlight] = {}
    pool = ProcessPoolExecutor(max_workers=workers)
    broken = False
    chunk_timeout = (policy.seed_timeout * batch_size
                     if policy.seed_timeout is not None else None)
    # Raw mp.Queue objects cannot pickle into pool workers; a Manager
    # proxy can. Created lazily — no bus, no extra manager process.
    manager = multiprocessing.Manager() if bus is not None else None
    event_queue = manager.Queue() if manager is not None else None

    def dump_chunk_blackbox(flight: _ChunkFlight, reason) -> None:
        """Promote (or discard) one chunk attempt's spool."""
        if blackbox_root is None:
            return
        promoted = promote_spools(
            blackbox_root, f"chunk{flight.chunk[0]}", reason,
            final_attempt=flight.attempt,
        )
        if bus is not None:
            for path in promoted:
                bus.emit("blackbox_dumped", seed=flight.chunk[0],
                         attempt=flight.attempt, path=str(path))

    def fall_back(chunk: list[int]) -> None:
        fallback.update(chunk)

    def settle(flight: _ChunkFlight, exc: BaseException) -> None:
        """Requeue a transient chunk casualty with backoff, or fall back."""
        if policy.is_transient(exc) and flight.attempt <= policy.max_retries:
            if bus is not None:
                bus.emit("seed_retried", seed=flight.chunk[0],
                         attempt=flight.attempt, seeds=len(flight.chunk),
                         error=type(exc).__name__)
            not_before[(flight.index, flight.attempt + 1)] = (
                time.monotonic()
                + policy.backoff_seconds(flight.chunk[0], flight.attempt)
            )
            pending.append((flight.index, flight.attempt + 1))
            return
        _log.warning(
            "vectorized chunk of %s exhausted its retries (%s: %s); "
            "%d seeds fall back to the scalar engine",
            name, type(exc).__name__, exc, len(flight.chunk),
        )
        dump_chunk_blackbox(
            flight, "timeout" if isinstance(exc, SeedTimeout) else "crash"
        )
        if bus is not None:
            bus.emit("chunk_finished", seed=flight.chunk[0],
                     attempt=flight.attempt,
                     status=STATUS_TIMEOUT if isinstance(exc, SeedTimeout)
                     else STATUS_FAILED,
                     seeds=len(flight.chunk), error=type(exc).__name__)
        fall_back(flight.chunk)

    try:
        while pending or in_flight:
            now = time.monotonic()
            if broken and not in_flight:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=workers)
                broken = False
            if not broken:
                ready = [item for item in pending
                         if not_before.get(item, 0.0) <= now]
                for item in ready:
                    if len(in_flight) >= workers:
                        break
                    pending.remove(item)
                    index, attempt = item
                    try:
                        future = pool.submit(
                            _execute_batch_in_worker, batch, chunks[index],
                            tracer.enabled, injector, attempt,
                            blackbox, event_queue, name,
                        )
                    except BrokenExecutor:
                        broken = True
                        pending.append(item)
                        break
                    if bus is not None:
                        bus.emit("chunk_dispatched", seed=chunks[index][0],
                                 attempt=attempt, seeds=len(chunks[index]))
                    deadline = (now + chunk_timeout
                                if chunk_timeout is not None else None)
                    in_flight[future] = _ChunkFlight(
                        index, chunks[index], attempt, deadline
                    )
            if bus is not None:
                bus.drain(event_queue)
                bus.heartbeat(in_flight=len(in_flight))
            if not in_flight:
                time.sleep(_SUPERVISOR_TICK_S)
                continue
            done, _ = wait(set(in_flight), timeout=_SUPERVISOR_TICK_S,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in done:
                flight = in_flight.pop(future)
                try:
                    chunk, ok, payload, elapsed, telemetry = future.result()
                except (BrokenExecutor, CancelledError, OSError) as exc:
                    # The worker died mid-fleet: pool-wide breakage, the
                    # whole chunk is one transient casualty.
                    broken = True
                    settle(flight, exc)
                    continue
                telemetry_parts[(flight.index, flight.attempt)] = telemetry
                if not ok:
                    # The batch itself raised: deterministic, like the
                    # serial engine — the chunk falls back, no retry.
                    _log.warning(
                        "vectorized batch failed for %s (%s: %s); "
                        "%d seeds fall back to the scalar engine",
                        name, type(payload).__name__, payload, len(chunk),
                    )
                    dump_chunk_blackbox(flight, "failed")
                    if bus is not None:
                        bus.emit("chunk_finished", seed=chunk[0],
                                 attempt=flight.attempt,
                                 status=STATUS_FAILED, elapsed_s=elapsed,
                                 seeds=len(chunk),
                                 error=type(payload).__name__)
                    fall_back(chunk)
                    continue
                dump_chunk_blackbox(flight, None)
                if bus is not None:
                    bus.emit("chunk_finished", seed=chunk[0],
                             attempt=flight.attempt,
                             status=STATUS_VECTORIZED, elapsed_s=elapsed,
                             seeds=len(chunk))
                handled = [seed for seed in chunk if seed in payload]
                per_seed = elapsed / max(len(handled), 1)
                for seed in chunk:
                    if seed not in payload:
                        fallback.add(seed)
                        continue
                    outcome = _SeedOutcome(
                        seed, True, payload[seed], per_seed,
                        flight.attempt, STATUS_VECTORIZED,
                    )
                    vectorized_outcomes.append(outcome)
                    on_done(outcome)
            hung = [f for f, flight in in_flight.items()
                    if flight.deadline is not None and now > flight.deadline]
            if hung:
                _kill_pool(pool)
                broken = True
                for future in hung:
                    flight = in_flight.pop(future)
                    settle(flight, SeedTimeout(
                        f"vectorized chunk {flight.chunk} exceeded its "
                        f"{chunk_timeout}s wall-clock deadline "
                        f"(attempt {flight.attempt})"
                    ))
    finally:
        if broken:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
        if bus is not None:
            bus.drain(event_queue)
        if manager is not None:
            manager.shutdown()
        for key in sorted(telemetry_parts):
            registry.merge(telemetry_parts[key]["metrics"])
            tracer.adopt(telemetry_parts[key]["spans"])
    fallback_seeds.update(fallback)
    return [seed for seed in missing if seed in fallback]


@dataclass
class _Flight:
    """One in-flight pool future: which seed/attempt, and its deadline."""

    seed: int
    attempt: int
    deadline: float | None
    timeouts: int


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate every worker and abandon the pool (hung-seed recovery)."""
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _supervise_pool(experiment, seeds, workers, policy, injector, tracer,
                    registry, on_done, budget, bus=None, blackbox=None,
                    name="") -> list[_SeedOutcome]:
    """Fan seeds over a :class:`ProcessPoolExecutor` under the policy.

    The parent owns all failure handling: a worker process dying breaks
    the whole pool (every in-flight future raises ``BrokenProcessPool``),
    and a worker that never returns trips its per-seed deadline, at which
    point the pool is killed outright. Both are classified transient, the
    affected seeds requeued with deterministic backoff, and the pool
    respawned once its broken futures have drained. Failures the
    experiment itself raises are deterministic: recorded, never retried.

    Worker telemetry is merged strictly in (seed, attempt) order after
    the loop, so completion order can never perturb merged counter
    totals (serial ≡ parallel, pinned by tests/test_obs.py).
    """
    pending: list[tuple[int, int, int]] = [(seed, 1, 0) for seed in seeds]
    not_before: dict[tuple[int, int], float] = {}
    executed: list[_SeedOutcome] = []
    telemetry_parts: dict[tuple[int, int], dict[str, Any]] = {}
    in_flight: dict[Future, _Flight] = {}
    pool = ProcessPoolExecutor(max_workers=workers)
    broken = False
    # Raw mp.Queue objects cannot pickle into pool workers; a Manager
    # proxy can. Created lazily — no bus, no extra manager process.
    manager = multiprocessing.Manager() if bus is not None else None
    event_queue = manager.Queue() if manager is not None else None

    def settle(flight: _Flight, exc: BaseException, elapsed: float) -> None:
        """Requeue a transient failure with backoff, or finish the seed."""
        timeouts = flight.timeouts + int(isinstance(exc, SeedTimeout))
        if policy.is_transient(exc) and flight.attempt <= policy.max_retries:
            if bus is not None:
                bus.emit("seed_retried", seed=flight.seed,
                         attempt=flight.attempt, elapsed_s=elapsed,
                         error=type(exc).__name__)
            not_before[(flight.seed, flight.attempt + 1)] = (
                time.monotonic()
                + policy.backoff_seconds(flight.seed, flight.attempt)
            )
            pending.append((flight.seed, flight.attempt + 1, timeouts))
            return
        outcome = _terminal_outcome(flight.seed, exc, elapsed,
                                    flight.attempt, timeouts)
        executed.append(outcome)
        on_done(outcome)

    try:
        while pending or in_flight:
            if budget.exceeded:
                break
            now = time.monotonic()
            if broken and not in_flight:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=workers)
                broken = False
            if not broken:
                ready = [item for item in pending
                         if not_before.get(item[:2], 0.0) <= now]
                for item in ready:
                    if len(in_flight) >= workers:
                        break
                    pending.remove(item)
                    seed, attempt, timeouts = item
                    try:
                        future = pool.submit(
                            _execute_seed_in_worker, experiment, seed,
                            tracer.enabled, injector, attempt,
                            blackbox, event_queue, name,
                        )
                    except BrokenExecutor:
                        broken = True
                        pending.append(item)
                        break
                    deadline = (now + policy.seed_timeout
                                if policy.seed_timeout is not None else None)
                    in_flight[future] = _Flight(seed, attempt, deadline,
                                                timeouts)
            if bus is not None:
                bus.drain(event_queue)
                bus.heartbeat(in_flight=len(in_flight))
            if not in_flight:
                # Everything is backing off or the pool just broke.
                time.sleep(_SUPERVISOR_TICK_S)
                continue
            done, _ = wait(set(in_flight), timeout=_SUPERVISOR_TICK_S,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in done:
                flight = in_flight.pop(future)
                try:
                    seed, ok, payload, elapsed, telemetry = future.result()
                except (BrokenExecutor, CancelledError, OSError) as exc:
                    # The worker process died (or was killed with the
                    # pool): pool-wide breakage, everyone in flight is a
                    # transient casualty.
                    broken = True
                    settle(flight, exc, 0.0)
                    continue
                telemetry_parts[(flight.seed, flight.attempt)] = telemetry
                if ok:
                    error = _payload_error(payload)
                    if error is None:
                        outcome = _SeedOutcome(
                            seed, True, payload, elapsed, flight.attempt,
                            STATUS_RETRIED if flight.attempt > 1
                            else STATUS_OK,
                            flight.timeouts,
                        )
                        executed.append(outcome)
                        on_done(outcome)
                        continue
                    payload = error
                settle(flight, payload, elapsed)
            # Deadline sweep: a hung worker never returns on its own.
            hung = [f for f, flight in in_flight.items()
                    if flight.deadline is not None and now > flight.deadline]
            if hung:
                _kill_pool(pool)
                broken = True
                for future in hung:
                    flight = in_flight.pop(future)
                    settle(flight, SeedTimeout(
                        f"seed {flight.seed} exceeded the "
                        f"{policy.seed_timeout}s wall-clock timeout "
                        f"(attempt {flight.attempt})"
                    ), float(policy.seed_timeout))
                # Remaining in-flight futures surface BrokenExecutor or
                # CancelledError on the next tick and are settled there.
    finally:
        if broken or budget.exceeded:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
        if bus is not None:
            bus.drain(event_queue)
        if manager is not None:
            manager.shutdown()
        # Merge worker telemetry in (seed, attempt) order — deterministic
        # totals — then discard it: telemetry never enters result values.
        for key in sorted(telemetry_parts):
            registry.merge(telemetry_parts[key]["metrics"])
            tracer.adopt(telemetry_parts[key]["spans"])
    return executed
