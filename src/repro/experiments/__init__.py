"""Paper experiment reproductions (one module per table/figure)."""

from repro.experiments.cache import (
    ResultCache,
    cached_call,
    default_cache,
    fingerprint_params,
)
from repro.experiments.campaign import (
    CampaignResult,
    MetricSummary,
    run_campaign,
)
from repro.experiments.faults import (
    CampaignManifest,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    ManifestRecord,
)
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Condition, Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Condition, Fig7Result, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import Fig10Result, ScenarioTrace, run_fig10
from repro.experiments.fig11 import CrashScenarioTrace, Fig11Result, run_fig11
from repro.experiments.runner import EXPERIMENTS, experiment_entry, run_experiment
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import PAPER_TABLE2, Table2Result, Table2Row, run_table2

__all__ = [
    "CampaignManifest",
    "CampaignResult",
    "CrashScenarioTrace",
    "EXPERIMENTS",
    "FaultInjector",
    "FaultPolicy",
    "FaultSpec",
    "ManifestRecord",
    "MetricSummary",
    "ResultCache",
    "cached_call",
    "default_cache",
    "experiment_entry",
    "fingerprint_params",
    "run_campaign",
    "run_experiment",
    "Fig3Result",
    "Fig5Result",
    "Fig6Condition",
    "Fig6Result",
    "Fig7Condition",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Fig11Result",
    "PAPER_TABLE2",
    "ScenarioTrace",
    "Table1Result",
    "Table2Result",
    "Table2Row",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_table1",
    "run_table2",
]
