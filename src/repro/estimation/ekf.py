"""Extended Kalman filter for attitude, velocity and position.

Stands in for ArduPilot's NavEKF2/NavEKF3: a 12-state EKF whose outputs
populate the EKF1/NKF1 dataflash messages (Roll, Pitch, Yaw, VN, VE, VD,
PN, PE, PD, GX, GY, GZ) used throughout the paper's figures — in
particular the ``EKF1.Roll`` vs ``ATT.R`` residual that the SAVIOR-style
detector of Fig. 8 monitors.

State vector (units SI, angles rad)::

    x = [phi, theta, psi, vn, ve, vd, pn, pe, pd, bgx, bgy, bgz]

where ``bg*`` are gyro biases. Prediction uses Euler-angle kinematics with
bias-corrected gyro rates and gravity-compensated accelerometer specific
force; measurement updates come from the accelerometer gravity direction
(roll/pitch), magnetometer heading (yaw), GPS (velocity + horizontal
position) and barometer (down position).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ControlError
from repro.obs.metrics import get_registry
from repro.utils.math3d import dcm_from_euler, wrap_pi

__all__ = ["EkfConfig", "AttitudePositionEKF"]


class EkfConfig:
    """Noise configuration for :class:`AttitudePositionEKF`."""

    def __init__(
        self,
        gyro_noise: float = 0.01,
        accel_noise: float = 0.35,
        gyro_bias_noise: float = 1e-5,
        accel_att_noise: float = 0.05,
        mag_yaw_noise: float = 0.05,
        gps_vel_noise: float = 0.15,
        gps_pos_noise: float = 1.5,
        baro_noise: float = 0.2,
        gravity: float = 9.80665,
    ):
        if min(
            gyro_noise,
            accel_noise,
            gyro_bias_noise,
            accel_att_noise,
            mag_yaw_noise,
            gps_vel_noise,
            gps_pos_noise,
            baro_noise,
        ) <= 0.0:
            raise ControlError("EKF noise parameters must be positive")
        self.gyro_noise = gyro_noise
        self.accel_noise = accel_noise
        self.gyro_bias_noise = gyro_bias_noise
        self.accel_att_noise = accel_att_noise
        self.mag_yaw_noise = mag_yaw_noise
        self.gps_vel_noise = gps_vel_noise
        self.gps_pos_noise = gps_pos_noise
        self.baro_noise = baro_noise
        self.gravity = gravity


# State indices.
_PHI, _THETA, _PSI = 0, 1, 2
_VN, _VE, _VD = 3, 4, 5
_PN, _PE, _PD = 6, 7, 8
_BGX, _BGY, _BGZ = 9, 10, 11
_NSTATES = 12


class AttitudePositionEKF:
    """12-state EKF over attitude, velocity, position and gyro bias.

    Degraded-data contract: any measurement containing a non-finite value
    (a dropped-out GPS reporting NaN, a frozen/poisoned channel) is
    *rejected* — the update is skipped, the state coasts on prediction,
    and ``rejected_updates`` (plus the ``ekf.rejected_updates`` metric)
    counts the rejection. A non-finite IMU sample likewise holds the
    prediction instead of propagating NaN through the whole state.
    """

    def __init__(self, config: EkfConfig | None = None):
        self.config = config or EkfConfig()
        self.x = np.zeros(_NSTATES)
        self.P = np.diag(
            [0.05] * 3 + [0.5] * 3 + [2.0] * 3 + [1e-4] * 3
        )
        #: Measurement updates / predictions skipped due to non-finite input.
        self.rejected_updates = 0
        self._metric_rejected = get_registry().counter("ekf.rejected_updates")

    def _reject_nonfinite(self, *arrays) -> bool:
        """True (and count) when any input contains a non-finite value."""
        for arr in arrays:
            if not np.all(np.isfinite(arr)):
                self.rejected_updates += 1
                self._metric_rejected.inc()
                return True
        return False

    # ------------------------------------------------------------------ #
    # Accessors matching the EKF1 dataflash message fields.
    # ------------------------------------------------------------------ #
    @property
    def roll(self) -> float:
        """EKF1.Roll (rad)."""
        return float(self.x[_PHI])

    @property
    def pitch(self) -> float:
        """EKF1.Pitch (rad)."""
        return float(self.x[_THETA])

    @property
    def yaw(self) -> float:
        """EKF1.Yaw (rad)."""
        return float(self.x[_PSI])

    @property
    def velocity(self) -> np.ndarray:
        """EKF1.VN/VE/VD (m/s, NED)."""
        return self.x[_VN : _VD + 1].copy()

    @property
    def position(self) -> np.ndarray:
        """EKF1.PN/PE/PD (m, NED)."""
        return self.x[_PN : _PD + 1].copy()

    @property
    def gyro_bias(self) -> np.ndarray:
        """EKF1.GX/GY/GZ (rad/s)."""
        return self.x[_BGX : _BGZ + 1].copy()

    def reset(
        self,
        euler: tuple[float, float, float] = (0.0, 0.0, 0.0),
        velocity: np.ndarray | None = None,
        position: np.ndarray | None = None,
    ) -> None:
        """Re-initialise the state and covariance."""
        self.x = np.zeros(_NSTATES)
        self.x[_PHI : _PSI + 1] = euler
        if velocity is not None:
            self.x[_VN : _VD + 1] = velocity
        if position is not None:
            self.x[_PN : _PD + 1] = position
        self.P = np.diag([0.05] * 3 + [0.5] * 3 + [2.0] * 3 + [1e-4] * 3)

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, gyro: np.ndarray, accel: np.ndarray, dt: float) -> None:
        """Propagate with one IMU sample (gyro rad/s, accel specific force).

        A non-finite sample holds the state (no propagation).
        """
        if self._reject_nonfinite(gyro, accel):
            return
        phi, theta, psi = self.x[_PHI], self.x[_THETA], self.x[_PSI]
        omega = gyro - self.x[_BGX : _BGZ + 1]

        # Euler kinematics: [phi., theta., psi.] = E(phi,theta) * omega.
        sphi, cphi = math.sin(phi), math.cos(phi)
        ctheta = math.cos(theta)
        ttheta = math.tan(theta)
        if abs(ctheta) < 1e-3:  # gimbal-lock guard
            ctheta = math.copysign(1e-3, ctheta if ctheta != 0.0 else 1.0)
            ttheta = math.sin(theta) / ctheta
        euler_rates = np.array(
            [
                omega[0] + sphi * ttheta * omega[1] + cphi * ttheta * omega[2],
                cphi * omega[1] - sphi * omega[2],
                (sphi / ctheta) * omega[1] + (cphi / ctheta) * omega[2],
            ]
        )
        self.x[_PHI : _PSI + 1] += euler_rates * dt
        self.x[_PHI] = wrap_pi(self.x[_PHI])
        self.x[_PSI] = wrap_pi(self.x[_PSI])

        # Velocity/position mechanisation.
        dcm = dcm_from_euler(self.x[_PHI], self.x[_THETA], self.x[_PSI])
        accel_ned = dcm @ accel + np.array([0.0, 0.0, self.config.gravity])
        self.x[_VN : _VD + 1] += accel_ned * dt
        self.x[_PN : _PD + 1] += self.x[_VN : _VD + 1] * dt

        # Linearised transition: identity + sparse couplings. Exact small-dt
        # Jacobians for the attitude block are unnecessary at 400 Hz; the
        # dominant terms are attitude->velocity (thrust direction) and
        # velocity->position.
        F = np.eye(_NSTATES)
        F[_PN, _VN] = dt
        F[_PE, _VE] = dt
        F[_PD, _VD] = dt
        F[_PHI, _BGX] = -dt
        F[_THETA, _BGY] = -dt
        F[_PSI, _BGZ] = -dt
        # Attitude error tilts the specific-force vector:
        # delta(a_ned) = -skew(f_ned) * delta(theta_world).
        f_ned = dcm @ accel
        F[_VN, _THETA] = f_ned[2] * dt
        F[_VN, _PSI] = -f_ned[1] * dt
        F[_VE, _PHI] = -f_ned[2] * dt
        F[_VE, _PSI] = f_ned[0] * dt
        F[_VD, _PHI] = f_ned[1] * dt
        F[_VD, _THETA] = -f_ned[0] * dt

        q_att = (self.config.gyro_noise * dt) ** 2
        q_vel = (self.config.accel_noise * dt) ** 2
        q_bias = (self.config.gyro_bias_noise * dt) ** 2
        Q = np.diag([q_att] * 3 + [q_vel] * 3 + [0.0] * 3 + [q_bias] * 3)
        self.P = F @ self.P @ F.T + Q

    # ------------------------------------------------------------------ #
    # Measurement updates
    # ------------------------------------------------------------------ #
    def _update(self, z: np.ndarray, h: np.ndarray, H: np.ndarray, R: np.ndarray) -> None:
        innovation = z - h
        S = H @ self.P @ H.T + R
        K = self.P @ H.T @ np.linalg.inv(S)
        self.x = self.x + K @ innovation
        identity = np.eye(_NSTATES)
        self.P = (identity - K @ H) @ self.P

    def update_accel_attitude(self, accel: np.ndarray) -> None:
        """Roll/pitch correction from the gravity direction.

        Skipped automatically when the specific-force magnitude is far from
        1 g (hard maneuvering makes the gravity direction unobservable).
        """
        if self._reject_nonfinite(accel):
            return
        norm = float(np.linalg.norm(accel))
        if not 0.7 * self.config.gravity < norm < 1.3 * self.config.gravity:
            return
        accel_roll = math.atan2(-accel[1], -accel[2])
        accel_pitch = math.atan2(accel[0], math.hypot(accel[1], accel[2]))
        z = np.array(
            [
                self.x[_PHI] + wrap_pi(accel_roll - self.x[_PHI]),
                self.x[_THETA] + wrap_pi(accel_pitch - self.x[_THETA]),
            ]
        )
        h = self.x[[_PHI, _THETA]]
        H = np.zeros((2, _NSTATES))
        H[0, _PHI] = 1.0
        H[1, _THETA] = 1.0
        R = np.eye(2) * self.config.accel_att_noise**2
        self._update(z, h, H, R)

    def update_mag_yaw(self, mag_field_body: np.ndarray) -> None:
        """Yaw correction from a tilt-compensated compass heading."""
        if self._reject_nonfinite(mag_field_body):
            return
        phi, theta = self.x[_PHI], self.x[_THETA]
        sphi, cphi = math.sin(phi), math.cos(phi)
        stheta, ctheta = math.sin(theta), math.cos(theta)
        mx, my, mz = mag_field_body
        # Tilt-compensated horizontal field components.
        bx = mx * ctheta + my * sphi * stheta + mz * cphi * stheta
        by = my * cphi - mz * sphi
        mag_yaw = math.atan2(-by, bx)
        z = np.array([self.x[_PSI] + wrap_pi(mag_yaw - self.x[_PSI])])
        h = np.array([self.x[_PSI]])
        H = np.zeros((1, _NSTATES))
        H[0, _PSI] = 1.0
        R = np.array([[self.config.mag_yaw_noise**2]])
        self._update(z, h, H, R)

    def update_gps(self, position: np.ndarray, velocity: np.ndarray) -> None:
        """Velocity + horizontal position correction from a GPS fix."""
        if self._reject_nonfinite(position, velocity):
            return
        z = np.array([velocity[0], velocity[1], velocity[2], position[0], position[1]])
        H = np.zeros((5, _NSTATES))
        H[0, _VN] = H[1, _VE] = H[2, _VD] = 1.0
        H[3, _PN] = H[4, _PE] = 1.0
        h = H @ self.x
        R = np.diag(
            [self.config.gps_vel_noise**2] * 3 + [self.config.gps_pos_noise**2] * 2
        )
        self._update(z, h, H, R)

    def update_baro(self, altitude: float) -> None:
        """Down-position correction from barometric altitude."""
        if self._reject_nonfinite(np.asarray([altitude])):
            return
        z = np.array([-altitude])
        H = np.zeros((1, _NSTATES))
        H[0, _PD] = 1.0
        h = H @ self.x
        R = np.array([[self.config.baro_noise**2]])
        self._update(z, h, H, R)
