"""Strapdown inertial navigation system (SINS).

One of the three "essential controller software" functions the paper's
Table II profiles. Mechanisation: integrate gyro for attitude, rotate and
gravity-compensate accel for velocity, integrate velocity for position,
then blend slow absolute references (GPS, baro) with complementary
correction gains.

The intermediate correction variables (velocity/position errors and the
blend gains) are what ARES traces into the ESVL for this controller.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ControlError
from repro.utils.math3d import quat_integrate, quat_rotate, quat_to_euler

__all__ = ["StrapdownINS"]


class StrapdownINS:
    """Strapdown mechanisation with complementary GPS/baro corrections."""

    def __init__(
        self,
        gravity: float = 9.80665,
        velocity_gain: float = 0.2,
        position_gain: float = 0.1,
        baro_gain: float = 0.3,
    ):
        for name, gain in (
            ("velocity_gain", velocity_gain),
            ("position_gain", position_gain),
            ("baro_gain", baro_gain),
        ):
            if not 0.0 <= gain <= 1.0:
                raise ControlError(f"{name} must lie in [0, 1], got {gain}")
        self.gravity = gravity
        self.velocity_gain = velocity_gain
        self.position_gain = position_gain
        self.baro_gain = baro_gain
        self._quat = np.array([1.0, 0.0, 0.0, 0.0])
        self._velocity = np.zeros(3)
        self._position = np.zeros(3)
        #: Intermediate mechanisation and correction terms, refreshed each
        #: cycle; the 19 traced state variables for the SINS row of
        #: the paper's Table II.
        self.intermediates: dict[str, float] = {
            "VERR_N": 0.0,
            "VERR_E": 0.0,
            "VERR_D": 0.0,
            "PERR_N": 0.0,
            "PERR_E": 0.0,
            "PERR_D": 0.0,
            "KVEL": velocity_gain,
            "KPOS": position_gain,
            "KBARO": baro_gain,
            "ACC_N": 0.0,
            "ACC_E": 0.0,
            "ACC_D": 0.0,
            "DV_N": 0.0,
            "DV_E": 0.0,
            "DV_D": 0.0,
            "DP_N": 0.0,
            "DP_E": 0.0,
            "DP_D": 0.0,
            "GRAV": gravity,
        }

    @property
    def quaternion(self) -> np.ndarray:
        """Attitude estimate (body→world)."""
        return self._quat

    @property
    def euler(self) -> tuple[float, float, float]:
        """(roll, pitch, yaw) estimate, radians."""
        return quat_to_euler(self._quat)

    @property
    def velocity(self) -> np.ndarray:
        """NED velocity estimate (m/s)."""
        return self._velocity

    @property
    def position(self) -> np.ndarray:
        """NED position estimate (m)."""
        return self._position

    def reset(
        self,
        quaternion: np.ndarray | None = None,
        velocity: np.ndarray | None = None,
        position: np.ndarray | None = None,
    ) -> None:
        """Re-initialise the navigation state."""
        self._quat = (
            quaternion.copy() if quaternion is not None else np.array([1.0, 0.0, 0.0, 0.0])
        )
        self._velocity = velocity.copy() if velocity is not None else np.zeros(3)
        self._position = position.copy() if position is not None else np.zeros(3)
        for key in ("VERR_N", "VERR_E", "VERR_D", "PERR_N", "PERR_E", "PERR_D"):
            self.intermediates[key] = 0.0

    def predict(self, gyro: np.ndarray, accel: np.ndarray, dt: float) -> None:
        """Dead-reckon one IMU step.

        ``accel`` is specific force; adding gravity recovers inertial
        acceleration in NED.
        """
        self._quat = quat_integrate(self._quat, gyro, dt)
        accel_world = quat_rotate(self._quat, accel) + np.array(
            [0.0, 0.0, self.gravity]
        )
        dv = accel_world * dt
        self._velocity = self._velocity + dv
        dp = self._velocity * dt
        self._position = self._position + dp
        inter = self.intermediates
        inter["ACC_N"], inter["ACC_E"], inter["ACC_D"] = (
            float(accel_world[0]), float(accel_world[1]), float(accel_world[2]),
        )
        inter["DV_N"], inter["DV_E"], inter["DV_D"] = (
            float(dv[0]), float(dv[1]), float(dv[2]),
        )
        inter["DP_N"], inter["DP_E"], inter["DP_D"] = (
            float(dp[0]), float(dp[1]), float(dp[2]),
        )

    def correct_gps(self, gps_position: np.ndarray, gps_velocity: np.ndarray) -> None:
        """Blend a GPS fix into velocity and horizontal position."""
        verr = gps_velocity - self._velocity
        perr = gps_position - self._position
        self.intermediates["VERR_N"] = float(verr[0])
        self.intermediates["VERR_E"] = float(verr[1])
        self.intermediates["VERR_D"] = float(verr[2])
        self.intermediates["PERR_N"] = float(perr[0])
        self.intermediates["PERR_E"] = float(perr[1])
        self._velocity = self._velocity + self.velocity_gain * verr
        self._position = self._position + self.position_gain * np.array(
            [perr[0], perr[1], 0.0]
        )

    def correct_baro(self, baro_altitude: float) -> None:
        """Blend barometric altitude into the down channel."""
        perr_d = -baro_altitude - self._position[2]
        self.intermediates["PERR_D"] = float(perr_d)
        self._position[2] += self.baro_gain * perr_d
