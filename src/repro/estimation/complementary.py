"""Complementary attitude filter.

Fuses gyro integration (good short-term) with accelerometer gravity
direction and magnetometer heading (good long-term). This is the light
attitude source the SINS uses before EKF convergence.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ControlError
from repro.utils.math3d import (
    quat_from_euler,
    quat_integrate,
    quat_to_euler,
    wrap_pi,
)

__all__ = ["ComplementaryFilter"]


class ComplementaryFilter:
    """Quaternion complementary filter with accel/mag corrections."""

    def __init__(self, accel_gain: float = 0.002, mag_gain: float = 0.01):
        if not 0.0 <= accel_gain <= 1.0 or not 0.0 <= mag_gain <= 1.0:
            raise ControlError("complementary gains must lie in [0, 1]")
        self.accel_gain = accel_gain
        self.mag_gain = mag_gain
        self._quat = quat_from_euler(0.0, 0.0, 0.0)

    @property
    def quaternion(self) -> np.ndarray:
        """Current attitude estimate (body→world)."""
        return self._quat

    @property
    def euler(self) -> tuple[float, float, float]:
        """(roll, pitch, yaw) estimate in radians."""
        return quat_to_euler(self._quat)

    def reset(self, roll: float = 0.0, pitch: float = 0.0, yaw: float = 0.0) -> None:
        """Re-initialise the attitude estimate."""
        self._quat = quat_from_euler(roll, pitch, yaw)

    def update(
        self,
        gyro: np.ndarray,
        accel: np.ndarray,
        dt: float,
        mag_yaw: float | None = None,
    ) -> tuple[float, float, float]:
        """Advance one step; returns the fused (roll, pitch, yaw).

        ``accel`` is the specific-force measurement (reads -g at rest);
        ``mag_yaw`` is an optional absolute heading (rad).
        """
        self._quat = quat_integrate(self._quat, gyro, dt)
        roll, pitch, yaw = quat_to_euler(self._quat)

        accel_norm = float(np.linalg.norm(accel))
        gyro_norm = float(np.linalg.norm(gyro))
        # Only trust the accelerometer near 1 g and at low rotation rates —
        # during hard maneuvers the gravity direction is unobservable and
        # centripetal terms corrupt the tilt reference.
        if 0.5 * 9.80665 < accel_norm < 1.5 * 9.80665 and gyro_norm < 1.0:
            # Static specific force is -g in body: ax=-g*(-sin(theta))...
            accel_roll = math.atan2(-accel[1], -accel[2])
            accel_pitch = math.atan2(accel[0], math.hypot(accel[1], accel[2]))
            roll += self.accel_gain * wrap_pi(accel_roll - roll)
            pitch += self.accel_gain * wrap_pi(accel_pitch - pitch)
        if mag_yaw is not None:
            yaw += self.mag_gain * wrap_pi(mag_yaw - yaw)
        self._quat = quat_from_euler(roll, pitch, yaw)
        return roll, pitch, yaw
