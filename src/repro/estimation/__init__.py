"""State estimation: complementary filter, strapdown INS and EKF."""

from repro.estimation.complementary import ComplementaryFilter
from repro.estimation.ekf import AttitudePositionEKF, EkfConfig
from repro.estimation.sins import StrapdownINS

__all__ = [
    "AttitudePositionEKF",
    "ComplementaryFilter",
    "EkfConfig",
    "StrapdownINS",
]
