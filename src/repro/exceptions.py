"""Exception hierarchy for the ARES reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The physics simulation entered an invalid configuration or state."""


class SensorError(ReproError):
    """A sensor model was configured or sampled incorrectly."""


class ControlError(ReproError):
    """A controller was misconfigured or driven outside its contract."""


class ParameterError(ReproError):
    """A firmware parameter operation failed (unknown name, bad range...)."""


class ParameterRangeError(ParameterError):
    """A parameter write was rejected by range validation.

    Mirrors ArduPilot's behaviour of refusing obviously illegitimate
    values, which the paper notes as one restriction on data-manipulation
    attacks (Section VI, "Limitations of ARES").
    """


class MissionError(ReproError):
    """Mission definition or execution failed."""


class MemoryAccessViolation(ReproError):
    """The MPU rejected a memory access outside the permitted region.

    Raised when an attacker (or any code) touches an address whose region
    permissions do not allow the requested access, matching the abnormal
    signal an ARM Cortex-M MPU generates on a violation (Section II-B).
    """

    def __init__(self, address: int, access: str, region: str | None = None):
        self.address = address
        self.access = access
        self.region = region
        where = f" in region '{region}'" if region else ""
        super().__init__(
            f"MPU violation: {access} access to address {address:#x}{where} denied"
        )


class LinkError(ReproError):
    """The GCS link dropped, timed out or rejected a message."""


class AnalysisError(ReproError):
    """The statistical identification pipeline received unusable data."""


class RLError(ReproError):
    """Reinforcement-learning component misuse (bad spaces, NaN loss...)."""


class DetectionAlarm(ReproError):
    """Raised by strict-mode detectors when an anomaly alarm fires.

    Detectors normally report alarms through their result objects; strict
    mode converts the first alarm into this exception so integration tests
    can assert an attack is caught at a precise instant.
    """

    def __init__(self, detector: str, time_s: float, score: float, threshold: float):
        self.detector = detector
        self.time_s = time_s
        self.score = score
        self.threshold = threshold
        super().__init__(
            f"{detector} alarm at t={time_s:.3f}s: score {score:.4g} "
            f"exceeds threshold {threshold:.4g}"
        )
