"""Vectorized multi-vehicle simulation engine.

:class:`VectorizedFleet` steps N vehicles with the same physical and
controller parameters (only the seed differs) as batched numpy ``(N, …)``
arrays. The scalar :class:`repro.firmware.vehicle.Vehicle` remains the
oracle: lane ``i`` of a fleet is **bit-identical** to a scalar run with
seed ``i``, which ``tests/test_vectorized_oracle.py`` pins step by step.

Bit-exactness strategy
----------------------
The scalar stack mixes ``math.*`` scalar calls with numpy array code, and
the two families do not always round identically (``math.tan``,
``math.atan2`` and ``np.linalg.norm`` differ from any naive elementwise
rewrite). The fleet therefore batches only the operations that were
*measured* to be bit-equal to the scalar path:

* elementwise ``+ - * /``, ``np.sin/cos/sqrt/exp/copysign``, ``%``-based
  angle wrapping and ``np.clip`` (equal to ``constrain``);
* batched matmul ``(N, k, k) @ (N, k, k)`` and batched matvec via
  ``(M @ v[:, :, None])[:, :, 0]``, which numpy computes with the same
  kernels it uses per-slice;
* explicit column formulas for 3-vector cross products (equal to
  ``np.cross``).

Everything else stays *per lane* and reuses the scalar objects verbatim:
sensor suites (one seed-keyed ``Generator`` set per lane, so lane i's
noise stream is identical to the scalar run regardless of N), SINS and
complementary-filter dead reckoning, EKF measurement updates (the real
:class:`AttitudePositionEKF` methods run on each lane's state), missions,
mode managers, batteries, ``math.atan2``/``math.tan`` call sites and every
``np.linalg.norm``. Detectors and attacks attach unmodified to per-lane
vehicle adapters.

Not vectorized (campaigns fall back to the scalar engine for these):
dataflash logging, GCS link traffic, actuator fault schedules, worlds with
obstacles, and target/torque hooks.
"""

from __future__ import annotations

import math
from dataclasses import replace
from time import perf_counter

import numpy as np

from repro.estimation.complementary import ComplementaryFilter
from repro.estimation.ekf import AttitudePositionEKF
from repro.estimation.sins import StrapdownINS
from repro.exceptions import ControlError, MissionError, SimulationError
from repro.control.attitude import AttitudeController, AttitudeTargets
from repro.control.mixer import MotorMixer
from repro.control.position import PositionController
from repro.firmware.mission import Mission, MissionStatus
from repro.firmware.modes import FlightMode, ModeManager
from repro.firmware.parameters import ParameterStore
from repro.firmware.param_defs import arducopter_parameter_defs
from repro.firmware.vehicle import (
    EKF_UPDATE_PERIODS,
    STABILIZER_REGION,
    TAKEOFF_ALT_TOLERANCE,
    TAKEOFF_SUCCESS_TOLERANCE,
    TAKEOFF_VEL_TOLERANCE,
)
from repro.obs.blackbox import active_blackbox
from repro.obs.profile import BATCHED, MIXED, SCALAR, active_profile
from repro.sensors.barometer import _P0, _SCALE_HEIGHT, BaroSample
from repro.sensors.gps import GpsSample
from repro.sensors.imu import ImuSample
from repro.sensors.magnetometer import MagSample
from repro.sensors.suite import SensorReadings, SensorSuite
from repro.sim.battery import Battery
from repro.sim.config import SimConfig
from repro.sim.motor import MOTOR_LAYOUT, MOTOR_SPIN
from repro.sim.rigidbody import RigidBody6DoF
from repro.utils.math3d import quat_from_euler, quat_to_euler, wrap_pi
from repro.utils.rng import make_rng
from repro.utils.filters import alpha_from_cutoff

__all__ = ["VectorizedFleet"]


# Fixed EKF measurement matrices (AttitudePositionEKF builds the same
# selection matrices per call; they never vary between lanes or steps).
_EKF_NSTATES = 12
_H_ACCEL = np.zeros((2, _EKF_NSTATES))
_H_ACCEL[0, 0] = 1.0  # phi
_H_ACCEL[1, 1] = 1.0  # theta
_H_MAG = np.zeros((1, _EKF_NSTATES))
_H_MAG[0, 2] = 1.0  # psi
_H_GPS = np.zeros((5, _EKF_NSTATES))
_H_GPS[0, 3] = _H_GPS[1, 4] = _H_GPS[2, 5] = 1.0  # vn, ve, vd
_H_GPS[3, 6] = _H_GPS[4, 7] = 1.0  # pn, pe
_H_BARO = np.zeros((1, _EKF_NSTATES))
_H_BARO[0, 8] = 1.0  # pd


# --------------------------------------------------------------------- #
# Batched primitives (each proven bit-equal to its scalar counterpart)
# --------------------------------------------------------------------- #
def _wrap_cols(a: np.ndarray) -> np.ndarray:
    """Batched wrap_pi; ``%`` rounds identically to the scalar path."""
    return (a + np.pi) % (2.0 * np.pi) - np.pi


def _cross_cols(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise 3-vector cross product, columnwise (== np.cross)."""
    out = np.empty_like(a)
    out[:, 0] = a[:, 1] * b[:, 2] - a[:, 2] * b[:, 1]
    out[:, 1] = a[:, 2] * b[:, 0] - a[:, 0] * b[:, 2]
    out[:, 2] = a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]
    return out


def _quat_rotate_cols(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Row-wise body→world rotation (== math3d.quat_rotate per row)."""
    w = q[:, 0:1]
    u = q[:, 1:4]
    return v + 2.0 * _cross_cols(u, _cross_cols(u, v) + w * v)


def _quat_inverse_rotate_cols(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Row-wise world→body rotation (== math3d.quat_inverse_rotate)."""
    conj = np.concatenate((q[:, 0:1], -q[:, 1:4]), axis=1)
    return _quat_rotate_cols(conj, v)


def _matvec(m: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Batched matrix·vector, same kernel as the per-slice ``m @ v``."""
    return (m @ v[:, :, None])[:, :, 0]


def _row_norm(v: np.ndarray) -> np.ndarray:
    """Row-wise ``math.sqrt(row.dot(row))``, bit-equal per row.

    Stacked matmul ``(n,1,k) @ (n,k,1)`` dispatches to the same BLAS dot
    kernel per slice as ``row.dot(row)`` (verified bitwise across
    magnitudes 1e-300..1e300); elementwise sums like ``(v*v).sum(1)`` or
    einsum do NOT match — the dot kernel uses FMA/multi-accumulator
    summation that plain ufunc chains cannot reproduce.
    """
    return np.sqrt((v[:, None, :] @ v[:, :, None])[:, 0, 0])


def _quat_integrate_fast(q: np.ndarray, omega: np.ndarray, dt: float) -> np.ndarray:
    """Per-lane ``math3d.quat_integrate`` minus the wrapper overhead.

    Performs the identical operation sequence — ``np.linalg.norm`` is
    ``sqrt(dot(x, x))`` internally, reproduced here as
    ``math.sqrt(x.dot(x))`` (same dot kernel, ``math.sqrt == np.sqrt``
    bitwise) — so results match the scalar path bit for bit.
    """
    nrm = math.sqrt(omega.dot(omega))
    angle = nrm * dt
    if angle < 1e-12:
        dw, dx, dy, dz = 1.0, 0.0, 0.0, 0.0
    else:
        half = angle / 2.0
        sh = math.sin(half)
        dw = math.cos(half)
        dx = sh * (omega[0] / nrm)
        dy = sh * (omega[1] / nrm)
        dz = sh * (omega[2] / nrm)
    w1, x1, y1, z1 = q
    out = np.array(
        [
            w1 * dw - x1 * dx - y1 * dy - z1 * dz,
            w1 * dx + x1 * dw + y1 * dz - z1 * dy,
            w1 * dy - x1 * dz + y1 * dw + z1 * dx,
            w1 * dz + x1 * dy - y1 * dx + z1 * dw,
        ]
    )
    norm = math.sqrt(out.dot(out))
    if norm < 1e-12:
        raise ValueError("cannot normalise near-zero quaternion")
    return out / norm


def _quat_integrate_cols(q: np.ndarray, omega: np.ndarray, dt: float) -> np.ndarray:
    """Row-wise :func:`_quat_integrate_fast`, bit-equal per row.

    The per-row norms batch via :func:`_row_norm` (stacked-matmul dot,
    bit-equal to ``math.sqrt(row.dot(row))``); everything else —
    sin/cos, the axis scaling, the Hamilton product and the final
    normalising divide — is elementwise, where the batched ufunc applies
    the identical operation per element as the scalar path.
    """
    n = q.shape[0]
    nrm = _row_norm(omega)
    angle = nrm * dt
    half = angle / 2.0
    sh = np.sin(half)
    dw = np.cos(half)
    with np.errstate(invalid="ignore", divide="ignore"):
        dq = sh[:, None] * (omega / nrm[:, None])
    small = angle < 1e-12
    if small.any():
        dw[small] = 1.0
        dq[small] = 0.0
    w1, x1, y1, z1 = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    dx, dy, dz = dq[:, 0], dq[:, 1], dq[:, 2]
    out = np.empty((n, 4))
    out[:, 0] = w1 * dw - x1 * dx - y1 * dy - z1 * dz
    out[:, 1] = w1 * dx + x1 * dw + y1 * dz - z1 * dy
    out[:, 2] = w1 * dy - x1 * dz + y1 * dw + z1 * dx
    out[:, 3] = w1 * dz + x1 * dy - y1 * dx + z1 * dw
    norms = _row_norm(out)
    if np.any(norms < 1e-12):
        raise ValueError("cannot normalise near-zero quaternion")
    return out / norms[:, None]


def _quat_from_euler_cols(
    roll: np.ndarray, pitch: np.ndarray, yaw: np.ndarray
) -> np.ndarray:
    """Row-wise ``math3d.quat_from_euler``, bit-equal per row."""
    cr, sr = np.cos(roll / 2.0), np.sin(roll / 2.0)
    cp, sp = np.cos(pitch / 2.0), np.sin(pitch / 2.0)
    cy, sy = np.cos(yaw / 2.0), np.sin(yaw / 2.0)
    out = np.empty((roll.shape[0], 4))
    out[:, 0] = cy * cp * cr + sy * sp * sr
    out[:, 1] = cy * cp * sr - sy * sp * cr
    out[:, 2] = cy * sp * cr + sy * cp * sr
    out[:, 3] = sy * cp * cr - cy * sp * sr
    return out


def _dcm_from_euler_cols(
    roll: np.ndarray, pitch: np.ndarray, yaw: np.ndarray
) -> np.ndarray:
    """Row-wise ``dcm_from_euler`` (quat_from_euler → quat_to_dcm)."""
    cr, sr = np.cos(roll / 2.0), np.sin(roll / 2.0)
    cp, sp = np.cos(pitch / 2.0), np.sin(pitch / 2.0)
    cy, sy = np.cos(yaw / 2.0), np.sin(yaw / 2.0)
    w = cy * cp * cr + sy * sp * sr
    x = cy * cp * sr - sy * sp * cr
    y = cy * sp * cr + sy * cp * sr
    z = sy * cp * cr - cy * sp * sr
    dcm = np.empty((roll.shape[0], 3, 3))
    dcm[:, 0, 0] = 1.0 - 2.0 * (y * y + z * z)
    dcm[:, 0, 1] = 2.0 * (x * y - w * z)
    dcm[:, 0, 2] = 2.0 * (x * z + w * y)
    dcm[:, 1, 0] = 2.0 * (x * y + w * z)
    dcm[:, 1, 1] = 1.0 - 2.0 * (x * x + z * z)
    dcm[:, 1, 2] = 2.0 * (y * z - w * x)
    dcm[:, 2, 0] = 2.0 * (x * z - w * y)
    dcm[:, 2, 1] = 2.0 * (y * z + w * x)
    dcm[:, 2, 2] = 1.0 - 2.0 * (x * x + y * y)
    return dcm


# --------------------------------------------------------------------- #
# Controller banks: N scalar controllers as column state
# --------------------------------------------------------------------- #
class _PidBank:
    """N :class:`PIDController` instances with batched update.

    Gains are per lane because the attacker's memory view can overwrite
    KP/KI/KD/FF on individual lanes.
    """

    def __init__(self, n: int, gains, output_limit: float):
        self.n = n
        self.kp = np.full(n, gains.kp)
        self.ki = np.full(n, gains.ki)
        self.kd = np.full(n, gains.kd)
        self.kff = np.full(n, gains.kff)
        self.imax = float(gains.imax)
        self.filt_hz = float(gains.filt_hz)
        self.output_limit = float(output_limit)
        self.integrator = np.zeros(n)
        self.input_error = np.zeros(n)
        self.derivative = np.zeros(n)
        self.scaler = np.ones(n)
        self.last_dt = np.zeros(n)
        self._last_error = np.zeros(n)
        self._has_last = np.zeros(n, dtype=bool)

    def update(
        self, idx: np.ndarray, target: np.ndarray, measurement: np.ndarray, dt: float
    ) -> np.ndarray:
        """One PID cycle for the lanes in ``idx``; mirrors PIDController.

        When ``idx`` covers every lane (``flatnonzero`` order, so a full
        ``idx`` is exactly ``arange(n)``) the fancy-index gathers are
        skipped for direct views and the scatters become slice copies —
        the same elements in the same order, minus the index churn.
        """
        if idx.size == self.kp.shape[0]:
            error = target - measurement
            self.input_error[:] = error
            self.last_dt[:] = dt
            p_term = self.kp * error
            integ = (self.integrator + self.ki * error * dt).clip(
                -self.imax, self.imax
            )
            self.integrator[:] = integ
            raw_derivative = np.where(
                self._has_last, (error - self._last_error) / dt, 0.0
            )
            self._last_error[:] = error
            self._has_last[:] = True
            alpha = alpha_from_cutoff(self.filt_hz, dt)
            deriv = self.derivative + alpha * (raw_derivative - self.derivative)
            self.derivative[:] = deriv
            d_term = self.kd * deriv
            ff_term = self.kff * target
            total = (p_term + integ + d_term + ff_term) * self.scaler
            return total.clip(-self.output_limit, self.output_limit)

        error = target - measurement
        self.input_error[idx] = error
        self.last_dt[idx] = dt

        p_term = self.kp[idx] * error

        integ = (self.integrator[idx] + self.ki[idx] * error * dt).clip(
            -self.imax, self.imax
        )
        self.integrator[idx] = integ

        raw_derivative = np.where(
            self._has_last[idx], (error - self._last_error[idx]) / dt, 0.0
        )
        self._last_error[idx] = error
        self._has_last[idx] = True
        alpha = alpha_from_cutoff(self.filt_hz, dt)
        deriv = self.derivative[idx]
        deriv = deriv + alpha * (raw_derivative - deriv)
        self.derivative[idx] = deriv
        d_term = self.kd[idx] * deriv

        ff_term = self.kff[idx] * target

        total = (p_term + integ + d_term + ff_term) * self.scaler[idx]
        return total.clip(-self.output_limit, self.output_limit)

    _ARRAYS = {
        "KP": "kp", "KI": "ki", "KD": "kd", "FF": "kff", "DT": "last_dt",
        "INTEG": "integrator", "INPUT": "input_error", "DERIV": "derivative",
        "SCALER": "scaler",
    }

    def set_state_variable(self, lane: int, name: str, value: float) -> None:
        """Per-lane equivalent of PIDController.set_state_variable."""
        attr = self._ARRAYS.get(name)
        if attr is None:
            raise ControlError(f"unknown state variable '{name}'")
        getattr(self, attr)[lane] = float(value)

    def get_state_variable(self, lane: int, name: str) -> float:
        attr = self._ARRAYS.get(name)
        if attr is None:
            raise ControlError(f"unknown state variable '{name}'")
        return float(getattr(self, attr)[lane])


class _SqrtBank:
    """N :class:`SqrtController` instances with batched update."""

    def __init__(self, n: int, proto):
        self.p = float(proto.p)
        self.accel_max = float(proto.accel_max)
        self.output_max = float(proto.output_max)
        self.linear_region = proto.linear_region
        self.error = np.zeros(n)
        self.output = np.zeros(n)

    def update(
        self, idx: np.ndarray, target: np.ndarray, measurement: np.ndarray
    ) -> np.ndarray:
        error = target - measurement
        if idx.size == self.error.shape[0]:
            self.error[:] = error
        else:
            self.error[idx] = error
        linear = self.linear_region
        abs_error = np.abs(error)
        with np.errstate(invalid="ignore"):
            sqrt_out = np.copysign(
                np.sqrt(2.0 * self.accel_max * (abs_error - linear / 2.0)), error
            )
        out = np.where(abs_error <= linear, self.p * error, sqrt_out)
        out = out.clip(-self.output_max, self.output_max)
        if idx.size == self.output.shape[0]:
            self.output[:] = out
        else:
            self.output[idx] = out
        return out


# --------------------------------------------------------------------- #
# Per-lane adapters: the Vehicle interface detectors/attacks expect
# --------------------------------------------------------------------- #
class _LaneState:
    """RigidBodyState view over one lane's batched plant state."""

    __slots__ = ("_f", "_i")

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i

    @property
    def position(self) -> np.ndarray:
        return self._f._pos[self._i]

    @property
    def velocity(self) -> np.ndarray:
        return self._f._vel[self._i]

    @property
    def quaternion(self) -> np.ndarray:
        return self._f._quat[self._i]

    @property
    def omega_body(self) -> np.ndarray:
        return self._f._omega[self._i]

    @property
    def euler(self) -> tuple[float, float, float]:
        return quat_to_euler(self._f._quat[self._i])

    @property
    def altitude(self) -> float:
        return -float(self._f._pos[self._i, 2])


class _LaneMotors:
    """MotorArray view over one lane (sensors read ``.thrusts``)."""

    __slots__ = ("_f", "_i")

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i

    @property
    def thrusts(self) -> np.ndarray:
        return self._f._thrusts[self._i]

    @property
    def commands(self) -> np.ndarray:
        return self._f._motor_cmd[self._i]


class _LanePlant:
    """QuadrotorModel view over one lane (what sensors sample)."""

    __slots__ = ("_f", "_i", "state", "motors")

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i
        self.state = _LaneState(fleet, i)
        self.motors = _LaneMotors(fleet, i)

    @property
    def airframe(self):
        return self._f.config.airframe

    @property
    def specific_force_body(self) -> np.ndarray:
        return self._f._sfb[self._i]

    @property
    def landed(self) -> bool:
        return bool(self._f._landed[self._i])

    @property
    def crashed(self) -> bool:
        return bool(self._f._crashed[self._i])

    @property
    def crash_reason(self) -> str | None:
        return self._f._crash_reason[self._i]

    @property
    def battery(self) -> Battery:
        return self._f._batteries[self._i]


class _LaneBattery(Battery):
    """Battery whose mutable state lives in the fleet's arrays.

    The hot loop steps all packs with batched array maths; the view
    keeps the full :class:`Battery` interface (voltage, depleted,
    reset, …) for detectors and per-lane adapters by backing the two
    mutable attributes with the fleet arrays via properties.
    """

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i
        super().__init__()

    @property
    def _consumed_mah(self) -> float:
        return float(self._f._batt_consumed[self._i])

    @_consumed_mah.setter
    def _consumed_mah(self, value: float) -> None:
        self._f._batt_consumed[self._i] = value

    @property
    def _current_a(self) -> float:
        return float(self._f._batt_current[self._i])

    @_current_a.setter
    def _current_a(self, value: float) -> None:
        self._f._batt_current[self._i] = value


class _LaneSim:
    """Simulator view over one lane (per-lane clock)."""

    __slots__ = ("_f", "_i", "vehicle")

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i
        self.vehicle = _LanePlant(fleet, i)

    @property
    def time(self) -> float:
        return self._f._time[self._i]

    @property
    def dt(self) -> float:
        return self._f.dt

    @property
    def step_count(self) -> int:
        return int(self._f._step_count[self._i])


class _LaneRegionView:
    """Compromised-region view routing writes into the batched PID banks.

    Mirrors :class:`repro.memory.attacker.CompromisedRegionView` for the
    stabilizer region: the write log records ``(name, value)`` tuples in
    injection order, exactly like the scalar view.
    """

    def __init__(self, fleet: "VectorizedFleet", lane: int, region: str):
        if region != STABILIZER_REGION:
            raise SimulationError(
                f"vectorized engine only models the {STABILIZER_REGION} region"
            )
        self._fleet = fleet
        self._lane = lane
        self.region_name = region
        self._writes: list[tuple[str, float]] = []

    def _bank(self, pid_name: str) -> _PidBank:
        bank = self._fleet._pid_banks.get(pid_name)
        if bank is None:
            raise SimulationError(
                f"variable owner '{pid_name}' is not vectorized"
            )
        return bank

    def write(self, name: str, value: float) -> None:
        pid_name, _, var = name.partition(".")
        self._bank(pid_name).set_state_variable(self._lane, var, value)
        self._writes.append((name, float(value)))

    def read(self, name: str) -> float:
        pid_name, _, var = name.partition(".")
        return self._bank(pid_name).get_state_variable(self._lane, var)

    @property
    def write_log(self) -> list[tuple[str, float]]:
        return list(self._writes)


class _LaneVehicle:
    """Vehicle-shaped adapter for one lane.

    Exposes the subset of the :class:`Vehicle` surface that detectors,
    attacks, ``stop_when`` predicates and the differential-oracle tests
    consume: ``sim``, ``armed``, ``estimated_state()``, ``last_motors``,
    ``mission``, ``modes``, the hook lists and ``compromised_view``.
    """

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._fleet = fleet
        self.index = i
        self.config = fleet.lane_configs[i]
        self.sim = _LaneSim(fleet, i)
        self.pre_control_hooks: list = []
        self.post_step_hooks: list = []
        self.target_hooks: list = []
        self.torque_hooks: list = []

    @property
    def armed(self) -> bool:
        return bool(self._fleet._armed[self.index])

    @property
    def mission(self) -> Mission | None:
        return self._fleet.missions[self.index]

    @mission.setter
    def mission(self, mission: Mission | None) -> None:
        self._fleet.missions[self.index] = mission

    @property
    def modes(self) -> ModeManager:
        return self._fleet._modes[self.index]

    @property
    def params(self) -> ParameterStore:
        return self._fleet.params

    @property
    def home(self) -> np.ndarray:
        return self._fleet._home[self.index]

    @property
    def last_motors(self) -> np.ndarray:
        return self._fleet._motor_cmd[self.index]

    @property
    def last_targets(self) -> AttitudeTargets:
        return self._fleet._last_targets[self.index]

    @property
    def manual_targets(self) -> AttitudeTargets:
        return self._fleet._manual_targets[self.index]

    @manual_targets.setter
    def manual_targets(self, targets: AttitudeTargets) -> None:
        self._fleet._manual_targets[self.index] = targets

    @property
    def guided_target(self) -> np.ndarray | None:
        return self._fleet._guided_target[self.index]

    @property
    def last_readings(self):
        return self._fleet._last_readings[self.index]

    @property
    def ekf(self) -> AttitudePositionEKF:
        return self._fleet._ekfs[self.index]

    @property
    def sensors(self) -> SensorSuite:
        return self._fleet._sensors[self.index]

    def estimated_state(self):
        """(position, velocity, euler, gyro), exactly as Vehicle returns."""
        fleet = self._fleet
        i = self.index
        readings = fleet._last_readings[i]
        gyro = readings.imu.gyro if readings is not None else np.zeros(3)
        ekf = fleet._ekfs[i]
        return (
            ekf.position, ekf.velocity, (ekf.roll, ekf.pitch, ekf.yaw), gyro,
        )

    def compromised_view(self, region: str = STABILIZER_REGION) -> _LaneRegionView:
        return _LaneRegionView(self._fleet, self.index, region)


# --------------------------------------------------------------------- #
# The fleet
# --------------------------------------------------------------------- #
class VectorizedFleet:
    """N same-parameter vehicles stepped as batched arrays.

    Parameters
    ----------
    config:
        Shared :class:`SimConfig`; the per-lane config is ``config`` with
        the lane's seed substituted. All physical and controller
        parameters are common across lanes — batching different airframes
        is not supported (campaigns batch same-parameter seed groups).
    seeds:
        One RNG seed per lane. Lane ``i`` reproduces the scalar
        ``Vehicle(SimConfig(seed=seeds[i], ...))`` bit for bit.
    """

    def __init__(self, config: SimConfig | None = None, seeds=(0,)):
        base = config or SimConfig()
        self.seeds = [int(s) for s in seeds]
        n = len(self.seeds)
        if n < 1:
            raise SimulationError("fleet needs at least one seed")
        self.n = n
        self.config = base
        self.dt = base.dt
        self.lane_configs = [replace(base, seed=s) for s in self.seeds]
        airframe = base.airframe

        # --- plant state ------------------------------------------------
        self._pos = np.zeros((n, 3))
        self._vel = np.zeros((n, 3))
        self._quat = np.tile(np.array([1.0, 0.0, 0.0, 0.0]), (n, 1))
        self._omega = np.zeros((n, 3))
        self._thrusts = np.zeros((n, 4))
        self._motor_cmd = np.zeros((n, 4))
        self._gust = np.zeros((n, 3))
        self._sfb = np.zeros((n, 3))
        self._landed = np.ones(n, dtype=bool)
        self._crashed = np.zeros(n, dtype=bool)
        self._crash_reason: list[str | None] = [None] * n
        self._time = [0.0] * n  # per-lane clock, accumulated like Simulator
        self._step_count = np.zeros(n, dtype=np.int64)
        self._env_rngs = [make_rng(s) for s in self.seeds]
        # Battery state as fleet arrays (stepped batched in
        # _battery_step_lanes); constants mirror the default pack.
        proto_batt = Battery()
        self._batt_capacity = proto_batt.capacity_mah
        self._batt_base_a = proto_batt.base_current_a
        self._batt_span_a = proto_batt.max_current_a - proto_batt.base_current_a
        self._batt_cells = proto_batt.cells
        self._batt_empty_v = proto_batt.empty_cell_voltage
        self._batt_vspan = (
            proto_batt.full_cell_voltage - proto_batt.empty_cell_voltage
        )
        self._batt_consumed = np.zeros(n)
        self._batt_current = np.full(n, proto_batt.base_current_a)
        self._batteries = [_LaneBattery(self, i) for i in range(n)]

        # Plant constants, computed exactly as the scalar stack does.
        body = RigidBody6DoF(airframe.mass, airframe.inertia)
        self._inertia_b = np.tile(np.asarray(body.inertia), (n, 1, 1))
        self._inertia_inv_b = np.tile(body._inertia_inv, (n, 1, 1))
        self._mass = airframe.mass
        self._weight = airframe.mass * base.gravity
        self._max_thrust = airframe.motor_max_thrust
        self._motor_tc = airframe.motor_time_constant
        self._torque_coeff = airframe.motor_torque_coeff
        self._positions = MOTOR_LAYOUT * airframe.arm_length
        self._spin = MOTOR_SPIN
        self._drag_coeff = airframe.linear_drag_coeff
        self._ang_drag = airframe.angular_drag_coeff
        self._ground = base.ground_altitude
        self._gravity_world = np.array([0.0, 0.0, base.gravity])
        self._neg_gravity_world = -np.array([0.0, 0.0, base.gravity])
        self._gravity_force = self._gravity_world * airframe.mass
        self._wind_mean = np.asarray(base.wind_mean)
        self._gust_std = base.wind_gust_std
        self._gust_tau = base.wind_gust_tau

        # --- estimation -------------------------------------------------
        self._sensors = [SensorSuite(seed=s) for s in self.seeds]
        self._ekfs = [AttitudePositionEKF() for _ in range(n)]
        self._sins = [StrapdownINS(gravity=base.gravity) for _ in range(n)]
        self._sins_gravity = np.array([0.0, 0.0, base.gravity])
        self._ahrs = [ComplementaryFilter() for _ in range(n)]
        self._ekf_timers = [
            {"gps": -np.inf, "baro": -np.inf, "mag": -np.inf, "accel": -np.inf}
            for _ in range(n)
        ]
        self._last_readings = [None] * n
        ekf_cfg = self._ekfs[0].config
        self._ekf_gravity_vec = np.array([0.0, 0.0, ekf_cfg.gravity])
        self._ekf_q_att = (ekf_cfg.gyro_noise * self.dt) ** 2
        self._ekf_q_vel = (ekf_cfg.accel_noise * self.dt) ** 2
        self._ekf_q_bias = (ekf_cfg.gyro_bias_noise * self.dt) ** 2
        self._ekf_Q = np.diag(
            [self._ekf_q_att] * 3 + [self._ekf_q_vel] * 3
            + [0.0] * 3 + [self._ekf_q_bias] * 3
        )
        # Read-only tiled-constant caches, keyed by batch width (hot-loop
        # allocation churn shows up at N>=16): (id(H), m) -> (Hb, Hbt),
        # m -> stacked identity, m -> predict-Jacobian template.
        self._ekf_tile_cache: dict = {}
        self._eye_tile_cache: dict = {}
        self._ekf_f_template_cache: dict = {}

        # --- control ----------------------------------------------------
        atc = AttitudeController()
        self._angle_p = atc.angle_p
        self._rate_max = atc.rate_max
        pc = PositionController(hover_throttle=airframe.hover_throttle)
        self._hover_throttle = pc.hover_throttle
        self._ctrl_gravity = pc.gravity
        self._lean_max = pc.lean_angle_max
        self._accel_xy_max = pc.axis_x.accel_max
        self._accel_z_max = pc.axis_z.accel_max
        self._sqrt_x = _SqrtBank(n, pc.axis_x.pos_ctrl)
        self._sqrt_y = _SqrtBank(n, pc.axis_y.pos_ctrl)
        self._sqrt_z = _SqrtBank(n, pc.axis_z.pos_ctrl)
        self._pid_vel_x = _PidBank(n, pc.axis_x.vel_ctrl.gains, pc.axis_x.vel_ctrl.output_limit)
        self._pid_vel_y = _PidBank(n, pc.axis_y.vel_ctrl.gains, pc.axis_y.vel_ctrl.output_limit)
        self._pid_vel_z = _PidBank(n, pc.axis_z.vel_ctrl.gains, pc.axis_z.vel_ctrl.output_limit)
        self._pid_roll = _PidBank(n, atc.pid_roll.gains, atc.pid_roll.output_limit)
        self._pid_pitch = _PidBank(n, atc.pid_pitch.gains, atc.pid_pitch.output_limit)
        self._pid_yaw = _PidBank(n, atc.pid_yaw.gains, atc.pid_yaw.output_limit)
        #: Stabilizer-region variable owners the attacker's view can touch
        #: (PIDA is the vertical acceleration PID, as in Vehicle's map).
        self._pid_banks = {
            "PIDR": self._pid_roll, "PIDP": self._pid_pitch,
            "PIDY": self._pid_yaw, "PIDA": self._pid_vel_z,
        }
        self._mixer = MotorMixer(0.0, 1.0)
        self._torque = np.zeros((n, 3))

        # --- firmware ---------------------------------------------------
        self.params = ParameterStore()
        self.params.declare_all(arducopter_parameter_defs())
        self._modes = [ModeManager(FlightMode.STABILIZE) for _ in range(n)]
        self.missions: list[Mission | None] = [None] * n
        self._armed = np.zeros(n, dtype=bool)
        self._home = np.zeros((n, 3))
        self._guided_target: list[np.ndarray | None] = [None] * n
        self._yaw_target = [0.0] * n
        self._yaw_slew_rate = math.radians(60.0)
        self._last_targets = [AttitudeTargets() for _ in range(n)]
        self._manual_targets = [AttitudeTargets() for _ in range(n)]
        self.lanes = [_LaneVehicle(self, i) for i in range(n)]

        # Blackbox flight recorder: each lane records as its own vehicle;
        # checked once at construction so a disabled recorder is free.
        blackbox = active_blackbox()
        if blackbox is not None:
            for lane in self.lanes:
                blackbox.attach(lane)

        # Gust constants (python-float path identical to Environment.step).
        if self._gust_std > 0.0:
            decay = np.exp(-self.dt / self._gust_tau)
            self._gust_decay = decay
            self._gust_noise_scale = self._gust_std * np.sqrt(1.0 - decay**2)

    # ------------------------------------------------------------------ #
    # Flight state machine (mirrors Vehicle)
    # ------------------------------------------------------------------ #
    def lane(self, i: int) -> _LaneVehicle:
        """The vehicle-shaped adapter for lane ``i``."""
        return self.lanes[i]

    def arm(self) -> None:
        """Arm every lane; each lane's current position becomes home."""
        for i in range(self.n):
            self._armed[i] = True
            self._home[i] = self._pos[i].copy()

    def disarm(self) -> None:
        self._armed[:] = False

    def set_mission(self, factory) -> None:
        """Give every lane its own mission instance from ``factory()``."""
        for i in range(self.n):
            self.missions[i] = factory()

    def set_mode(self, mode: FlightMode) -> None:
        """Change flight mode on every lane."""
        for i in range(self.n):
            self._lane_set_mode(i, mode)

    def _lane_set_mode(self, i: int, mode: FlightMode) -> None:
        if mode is FlightMode.AUTO and self.missions[i] is None:
            raise MissionError("cannot enter AUTO without a mission")
        self._modes[i].set_mode(mode, self._time[i])
        if mode is FlightMode.AUTO and self.missions[i] is not None:
            if self.missions[i].status is MissionStatus.PENDING:
                self.missions[i].start()

    def set_guided_target(self, north: float, east: float, altitude: float) -> None:
        for i in range(self.n):
            self._guided_target[i] = np.array([north, east, -altitude])

    def takeoff(self, altitude: float, timeout: float = 30.0) -> list[bool]:
        """Arm and climb every lane to ``altitude``; per-lane success."""
        for i in range(self.n):
            if self._modes[i].mode is not FlightMode.GUIDED:
                self._lane_set_mode(i, FlightMode.GUIDED)
        self.arm()
        for i in range(self.n):
            start = self._pos[i]
            self._guided_target[i] = np.array(
                [float(start[0]), float(start[1]), -altitude]
            )
        self.run(
            timeout,
            stop_when=lambda v: abs(v.sim.vehicle.state.altitude - altitude)
            < TAKEOFF_ALT_TOLERANCE
            and float(np.linalg.norm(v.sim.vehicle.state.velocity))
            < TAKEOFF_VEL_TOLERANCE,
        )
        return [
            abs(-float(self._pos[i, 2]) - altitude) < TAKEOFF_SUCCESS_TOLERANCE
            for i in range(self.n)
        ]

    def run(self, duration: float, stop_when=None) -> None:
        """Run all lanes for ``duration`` seconds (per-lane early-out).

        Reproduces ``Vehicle.run`` per lane: each loop iteration checks
        the crash flag, then ``stop_when(lane)``, then steps. A lane that
        crashes or satisfies ``stop_when`` freezes — its clock and RNG
        streams stop exactly where the scalar run's would.
        """
        for lane in self.lanes:
            if lane.target_hooks or lane.torque_hooks:
                raise SimulationError(
                    "target/torque hooks are not vectorized; use the scalar engine"
                )
        steps = int(round(duration / self.dt))
        stopped = np.zeros(self.n, dtype=bool)
        for _ in range(steps):
            active: list[int] = []
            for i in range(self.n):
                if stopped[i]:
                    continue
                if self._crashed[i]:
                    stopped[i] = True
                    continue
                if stop_when is not None and stop_when(self.lanes[i]):
                    stopped[i] = True
                    continue
                active.append(i)
            if not active:
                break
            self.step_lanes(np.asarray(active, dtype=np.intp))

    # ------------------------------------------------------------------ #
    # One control cycle for a set of lanes
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Step every non-crashed lane once."""
        idx = np.flatnonzero(~self._crashed)
        if idx.size:
            self.step_lanes(idx)

    def step_lanes(self, idx: np.ndarray) -> None:
        """One full control cycle (sensors → estimate → control → physics)
        for the lanes in ``idx``, mirroring ``Vehicle.step``.

        With a :func:`repro.obs.profile.hot_loop_profile` installed the
        profiled twin runs instead — identical operations, plus stage
        timers — so the default path pays only this ``None`` check.
        """
        profile = active_profile()
        if profile is not None:
            self._step_lanes_profiled(idx, profile)
            return
        dt = self.dt
        self._estimation(idx)
        self._check_failsafes_lanes(idx)
        for i in idx:
            lane = self.lanes[i]
            for hook in lane.pre_control_hooks:
                hook(lane)

        armed_idx = idx[self._armed[idx]]
        disarmed_idx = idx[~self._armed[idx]]
        if disarmed_idx.size:
            self._motor_cmd[disarmed_idx] = 0.0
        if armed_idx.size:
            self._control(armed_idx, dt)

        self._plant_step(idx)
        for i in idx:
            self._time[i] += dt
        self._step_count[idx] += 1

        for i in idx:
            lane = self.lanes[i]
            for hook in lane.post_step_hooks:
                hook(lane)

    def _step_lanes_profiled(self, idx: np.ndarray, profile) -> None:
        """:meth:`step_lanes` with per-stage wall-clock attribution.

        Runs the identical operation sequence; only ``perf_counter``
        reads are added, so profiled results stay bit-identical.
        """
        dt = self.dt
        t0 = perf_counter()
        self._estimation(idx, profile)
        t1 = perf_counter()
        self._check_failsafes_lanes(idx)
        for i in idx:
            lane = self.lanes[i]
            for hook in lane.pre_control_hooks:
                hook(lane)
        t2 = perf_counter()
        profile.add("mission", t2 - t1, SCALAR)

        armed_idx = idx[self._armed[idx]]
        disarmed_idx = idx[~self._armed[idx]]
        if disarmed_idx.size:
            self._motor_cmd[disarmed_idx] = 0.0
        if armed_idx.size:
            self._control(armed_idx, dt)
        t3 = perf_counter()
        profile.add("control", t3 - t2, MIXED)

        self._plant_step(idx)
        t4 = perf_counter()
        profile.add("physics", t4 - t3, BATCHED)

        for i in idx:
            self._time[i] += dt
        self._step_count[idx] += 1
        for i in idx:
            lane = self.lanes[i]
            for hook in lane.post_step_hooks:
                hook(lane)
        profile.add("mission", perf_counter() - t4, SCALAR)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def _estimation(self, idx: np.ndarray, profile=None) -> None:
        dt = self.dt
        times = [self._time[int(i)] for i in idx]
        if profile is not None:
            t0 = perf_counter()
        readings_rows, gyro, accel = self._sample_sensors(idx, times)
        for k, i in enumerate(idx):
            self._last_readings[int(i)] = readings_rows[k]
        if profile is not None:
            t1 = perf_counter()
            profile.add("sensors", t1 - t0, MIXED)

        finite = np.isfinite(gyro).all(axis=1) & np.isfinite(accel).all(axis=1)
        self._ekf_predict(idx[finite], gyro[finite], accel[finite])
        for k in np.flatnonzero(~finite):
            ekf = self._ekfs[idx[k]]
            ekf.rejected_updates += 1
            ekf._metric_rejected.inc()

        self._sins_predict(idx[finite], gyro[finite], accel[finite])

        fin_rows = np.flatnonzero(finite)
        if fin_rows.size:
            ahrs_list = [self._ahrs[int(idx[k])] for k in fin_rows]
            ahrs_q = _quat_integrate_cols(
                np.array([ahrs._quat for ahrs in ahrs_list]),
                gyro[finite],
                dt,
            )
            # gyro/accel rows are bitwise the ImuSample values (the
            # samples are built from these very arrays in
            # _sample_sensors), so reuse them instead of re-gathering.
            self._ahrs_update_cols(ahrs_list, ahrs_q, gyro[finite], accel[finite])

        # EKF measurement updates, grouped per type across lanes. Lanes
        # are independent, so running all due accel updates, then mag,
        # then gps, then baro preserves each lane's scalar update order
        # (accel → mag → gps → baro) while batching the linear algebra.
        periods = EKF_UPDATE_PERIODS
        p_accel = periods["accel"]
        p_mag = periods["mag"]
        p_gps = periods["gps"]
        p_baro = periods["baro"]
        accel_due: list[int] = []
        mag_due: list[int] = []
        gps_due: list[int] = []
        baro_due: list[int] = []
        for k, i in enumerate(idx):
            timers = self._ekf_timers[int(i)]
            t = times[k]
            if t - timers["accel"] >= p_accel:
                accel_due.append(k)
                timers["accel"] = t
            if t - timers["mag"] >= p_mag:
                mag_due.append(k)
                timers["mag"] = t
            if t - timers["gps"] >= p_gps:
                gps_due.append(k)
                timers["gps"] = t
            if t - timers["baro"] >= p_baro:
                baro_due.append(k)
                timers["baro"] = t
        if accel_due:
            self._ekf_update_accel(idx, readings_rows, accel_due)
        if mag_due:
            self._ekf_update_mag(idx, readings_rows, mag_due)
        if gps_due:
            self._ekf_update_gps(idx, readings_rows, gps_due)
        if baro_due:
            self._ekf_update_baro(idx, readings_rows, baro_due)
        if profile is not None:
            profile.add("estimation", perf_counter() - t1, BATCHED)

    # ------------------------------------------------------------------ #
    # Batched sensor sampling
    # ------------------------------------------------------------------ #
    def _sample_sensors(self, idx: np.ndarray, times: list):
        """Sample every lane's suite; returns (readings, gyro, accel).

        Pristine suites take the batched path: the RNG draws stay per
        lane (stream fidelity — each lane's ``Generator`` consumes draws
        in exactly the scalar order and count), while the post-draw
        arithmetic is batched elementwise, which is bit-equal per row.
        Lanes with a fault injector attached keep the scalar
        ``SensorSuite.sample`` verbatim.
        """
        dt = self.dt
        m = idx.size
        readings_out: list = [None] * m
        gyro_out = np.empty((m, 3))
        accel_out = np.empty((m, 3))
        batch_rows: list[int] = []
        for k in range(m):
            i = int(idx[k])
            suite = self._sensors[i]
            if suite.fault_injector is not None:
                readings = suite.sample(self.lanes[i].sim.vehicle, times[k], dt)
                readings_out[k] = readings
                gyro_out[k] = readings.imu.gyro
                accel_out[k] = readings.imu.accel
            else:
                batch_rows.append(k)
        if not batch_rows:
            return readings_out, gyro_out, accel_out
        rows = np.asarray(batch_rows, dtype=np.intp)
        bidx = idx[rows]
        suites = [self._sensors[int(i)] for i in bidx]
        nb = rows.size

        # GPS truth pipeline: one gathered copy of the fleet state; the
        # per-lane history rows are views into it (the gather is fresh
        # per step and never mutated, so a view is exactly the per-lane
        # copy Gps.record_truth would have made).
        hist_pos = self._pos[bidx]
        hist_vel = self._vel[bidx]
        for j in range(nb):
            suites[j].gps._history.append(
                (times[batch_rows[j]], hist_pos[j], hist_vel[j])
            )

        # --- IMU: per-lane draws, batched (truth + bias) + noise -------
        gyro_noise = np.empty((nb, 3))
        gyro_bias = np.empty((nb, 3))
        accel_noise = np.empty((nb, 3))
        accel_bias = np.empty((nb, 3))
        for j, suite in enumerate(suites):
            imu = suite.imu
            gyro_noise[j] = imu.gyro_noise.draw(dt)
            gyro_bias[j] = imu.gyro_noise.bias
            accel_noise[j] = imu.accel_noise.draw(dt)
            accel_bias[j] = imu.accel_noise.bias
        gyro = (self._omega[bidx] + gyro_bias) + gyro_noise
        accel = (self._sfb[bidx] + accel_bias) + accel_noise
        th = self._thrusts[bidx]
        total = th[:, 0] + th[:, 1] + th[:, 2] + th[:, 3]
        fraction = total / (4.0 * self._max_thrust)
        for j, suite in enumerate(suites):
            imu = suite.imu
            vibration_std = float(imu.vibration_gain * fraction[j])
            # The guard stays per lane: the vibration draw is conditional,
            # and skipping it must match the scalar RNG stream exactly.
            if vibration_std > 0.0:
                accel[j] = accel[j] + imu._vibration_rng.normal(
                    0.0, vibration_std, size=3
                )

        # --- GPS: per-lane latency walk + draws, batched noise math ----
        gps_due = [j for j, s in enumerate(suites) if s.gps.due(times[batch_rows[j]])]
        if gps_due:
            nd = len(gps_due)
            g_pos = np.zeros((nd, 3))
            g_vel = np.zeros((nd, 3))
            g_pos_noise = np.empty((nd, 3))
            g_pos_bias = np.empty((nd, 3))
            g_vel_noise = np.empty((nd, 3))
            g_vel_bias = np.empty((nd, 3))
            axis_std = np.empty((nd, 3))
            for a, j in enumerate(gps_due):
                gps = suites[j].gps
                target_time = times[batch_rows[j]] - gps.latency_s
                for t_hist, pos, vel in reversed(gps._history):
                    if t_hist <= target_time:
                        g_pos[a] = pos
                        g_vel[a] = vel
                        break
                g_pos_noise[a] = gps._pos_noise.draw(1.0)
                g_pos_bias[a] = gps._pos_noise.bias
                g_vel_noise[a] = gps._vel_noise.draw(1.0)
                g_vel_bias[a] = gps._vel_noise.bias
                axis_std[a] = gps._axis_std
            pos_term = (np.zeros(3) + g_pos_bias) + g_pos_noise
            noisy_pos = g_pos + pos_term * axis_std
            noisy_vel = (g_vel + g_vel_bias) + g_vel_noise
            for a, j in enumerate(gps_due):
                gps = suites[j].gps
                t = times[batch_rows[j]]
                gps.hold(
                    GpsSample(
                        position=noisy_pos[a],
                        velocity=noisy_vel[a],
                        num_sats=gps.num_sats,
                        hdop=gps.hdop,
                        time_s=t,
                    ),
                    t,
                )

        # --- Barometer: per-lane drift draw, batched exp pressure ------
        baro_due = [
            j for j, s in enumerate(suites) if s.baro.due(times[batch_rows[j]])
        ]
        if baro_due:
            nd = len(baro_due)
            b_truth = np.empty((nd, 1))
            b_noise = np.empty((nd, 1))
            b_bias = np.empty((nd, 1))
            for a, j in enumerate(baro_due):
                baro = suites[j].baro
                b_noise[a] = baro._noise.draw(1.0 / baro.rate_hz)
                b_bias[a] = baro._noise.bias
                b_truth[a, 0] = -float(self._pos[int(bidx[j]), 2])
            noisy_alt = (b_truth + b_bias) + b_noise
            pressure = _P0 * np.exp(-np.maximum(noisy_alt, -100.0) / _SCALE_HEIGHT)
            for a, j in enumerate(baro_due):
                baro = suites[j].baro
                t = times[batch_rows[j]]
                baro.hold(
                    BaroSample(
                        altitude=float(noisy_alt[a, 0]),
                        pressure=float(pressure[a, 0]),
                        temperature=baro.temperature_c,
                        time_s=t,
                    ),
                    t,
                )

        # --- Magnetometer: batched world→body rotate, per-lane draws ---
        mag_due = [j for j, s in enumerate(suites) if s.mag.due(times[batch_rows[j]])]
        if mag_due:
            nd = len(mag_due)
            field_world = np.empty((nd, 3))
            hard_iron = np.empty((nd, 3))
            m_noise = np.empty((nd, 3))
            m_bias = np.empty((nd, 3))
            for a, j in enumerate(mag_due):
                mag = suites[j].mag
                m_noise[a] = mag._noise.draw(1.0 / mag.rate_hz)
                m_bias[a] = mag._noise.bias
                field_world[a] = mag.field_world
                hard_iron[a] = mag.hard_iron
            quats = self._quat[bidx[np.asarray(mag_due, dtype=np.intp)]]
            field_body = _quat_inverse_rotate_cols(quats, field_world)
            noisy_field = ((field_body + hard_iron) + m_bias) + m_noise
            for a, j in enumerate(mag_due):
                mag = suites[j].mag
                t = times[batch_rows[j]]
                mag.hold(MagSample(field=noisy_field[a], time_s=t), t)

        # Samples hold views into the step-local gyro/accel arrays —
        # nothing mutates them after this point, so views equal copies.
        if nb == m:
            gyro_out = gyro
            accel_out = accel
        for j in range(nb):
            k = batch_rows[j]
            t = times[k]
            suite = suites[j]
            if nb != m:
                gyro_out[k] = gyro[j]
                accel_out[k] = accel[j]
            readings_out[k] = SensorReadings(
                imu=ImuSample(gyro=gyro[j], accel=accel[j], time_s=t),
                gps=suite.gps._held_value,
                baro=suite.baro._held_value,
                mag=suite.mag._held_value,
                time_s=t,
            )
        return readings_out, gyro_out, accel_out

    # ------------------------------------------------------------------ #
    # Batched EKF measurement updates
    # ------------------------------------------------------------------ #
    def _ekf_update_cols(
        self,
        lanes: list,
        z: np.ndarray,
        h: np.ndarray,
        H: np.ndarray,
        R: np.ndarray,
    ) -> None:
        """Batched ``AttitudePositionEKF._update`` across ``lanes``.

        Stacked ``(m, k, k)`` matmul and ``np.linalg.inv`` run the same
        LAPACK/dgemm kernel per slice as the scalar update, preserving
        the scalar's exact evaluation order:
        ``S = (H @ P) @ Hᵀ + R``, ``K = (P @ Hᵀ) @ S⁻¹``,
        ``x += K @ innovation``, ``P = (I - K @ H) @ P``.
        """
        mm = len(lanes)
        x = np.array([self._ekfs[i].x for i in lanes])
        P = np.array([self._ekfs[i].P for i in lanes])
        # Tiled constants are read-only; cache them per (matrix, width).
        key = (id(H), mm)
        cached = self._ekf_tile_cache.get(key)
        if cached is None:
            cached = (
                np.tile(H, (mm, 1, 1)),
                np.tile(np.ascontiguousarray(H.T), (mm, 1, 1)),
            )
            self._ekf_tile_cache[key] = cached
        Hb, Hbt = cached
        innovation = z - h
        S = Hb @ P @ Hbt + R
        K = P @ Hbt @ np.linalg.inv(S)
        x = x + _matvec(K, innovation)
        identity = self._eye_tile_cache.get(mm)
        if identity is None:
            identity = np.tile(np.eye(_EKF_NSTATES), (mm, 1, 1))
            self._eye_tile_cache[mm] = identity
        P_new = (identity - K @ Hb) @ P
        for j, i in enumerate(lanes):
            ekf = self._ekfs[i]
            ekf.x = x[j]
            ekf.P = P_new[j]

    def _ekf_update_accel(self, idx, readings_rows, due) -> None:
        """Grouped ``update_accel_attitude`` (per-lane gating, batched maths)."""
        nd = len(due)
        lanes: list[int] = []
        z = np.empty((nd, 2))
        h = np.empty((nd, 2))
        r_diag = np.empty(nd)
        count = 0
        for k in due:
            i = int(idx[k])
            ekf = self._ekfs[i]
            a = readings_rows[k].imu.accel
            if ekf._reject_nonfinite(a):
                continue
            # == np.linalg.norm(a) bitwise (norm is sqrt(dot) internally).
            norm = math.sqrt(a.dot(a))
            gravity = ekf.config.gravity
            if not 0.7 * gravity < norm < 1.3 * gravity:
                continue
            phi = ekf.x[0]
            theta = ekf.x[1]
            accel_roll = math.atan2(-a[1], -a[2])
            accel_pitch = math.atan2(a[0], math.hypot(a[1], a[2]))
            z[count, 0] = phi + wrap_pi(accel_roll - phi)
            z[count, 1] = theta + wrap_pi(accel_pitch - theta)
            h[count, 0] = phi
            h[count, 1] = theta
            r_diag[count] = ekf.config.accel_att_noise**2
            lanes.append(i)
            count += 1
        if not count:
            return
        R = np.zeros((count, 2, 2))
        R[:, 0, 0] = r_diag[:count]
        R[:, 1, 1] = r_diag[:count]
        self._ekf_update_cols(lanes, z[:count], h[:count], _H_ACCEL, R)

    def _ekf_update_mag(self, idx, readings_rows, due) -> None:
        """Grouped ``update_mag_yaw`` (per-lane trig, batched maths)."""
        nd = len(due)
        lanes: list[int] = []
        z = np.empty((nd, 1))
        h = np.empty((nd, 1))
        r_diag = np.empty(nd)
        count = 0
        for k in due:
            i = int(idx[k])
            ekf = self._ekfs[i]
            field = readings_rows[k].mag.field
            if ekf._reject_nonfinite(field):
                continue
            phi = ekf.x[0]
            theta = ekf.x[1]
            sphi, cphi = math.sin(phi), math.cos(phi)
            stheta, ctheta = math.sin(theta), math.cos(theta)
            mx, my, mz = field
            bx = mx * ctheta + my * sphi * stheta + mz * cphi * stheta
            by = my * cphi - mz * sphi
            mag_yaw = math.atan2(-by, bx)
            psi = ekf.x[2]
            z[count, 0] = psi + wrap_pi(mag_yaw - psi)
            h[count, 0] = psi
            r_diag[count] = ekf.config.mag_yaw_noise**2
            lanes.append(i)
            count += 1
        if not count:
            return
        R = r_diag[:count].reshape(count, 1, 1)
        self._ekf_update_cols(lanes, z[:count], h[:count], _H_MAG, R)

    def _ekf_update_gps(self, idx, readings_rows, due) -> None:
        """Grouped ``update_gps`` plus per-lane SINS GPS corrections."""
        nd = len(due)
        lanes: list[int] = []
        z = np.empty((nd, 5))
        h = np.empty((nd, 5))
        r_vel = np.empty(nd)
        r_pos = np.empty(nd)
        count = 0
        for k in due:
            i = int(idx[k])
            ekf = self._ekfs[i]
            gps = readings_rows[k].gps
            position = gps.position
            velocity = gps.velocity
            if not ekf._reject_nonfinite(position, velocity):
                z[count, 0] = velocity[0]
                z[count, 1] = velocity[1]
                z[count, 2] = velocity[2]
                z[count, 3] = position[0]
                z[count, 4] = position[1]
                h[count] = _H_GPS @ ekf.x
                r_vel[count] = ekf.config.gps_vel_noise**2
                r_pos[count] = ekf.config.gps_pos_noise**2
                lanes.append(i)
                count += 1
            if bool(
                np.isfinite(position).all() and np.isfinite(velocity).all()
            ):
                self._sins[i].correct_gps(position, velocity)
        if not count:
            return
        R = np.zeros((count, 5, 5))
        for d in range(3):
            R[:, d, d] = r_vel[:count]
        R[:, 3, 3] = r_pos[:count]
        R[:, 4, 4] = r_pos[:count]
        self._ekf_update_cols(lanes, z[:count], h[:count], _H_GPS, R)

    def _ekf_update_baro(self, idx, readings_rows, due) -> None:
        """Grouped ``update_baro`` plus per-lane SINS baro corrections."""
        nd = len(due)
        lanes: list[int] = []
        z = np.empty((nd, 1))
        h = np.empty((nd, 1))
        r_diag = np.empty(nd)
        count = 0
        for k in due:
            i = int(idx[k])
            ekf = self._ekfs[i]
            altitude = readings_rows[k].baro.altitude
            if not ekf._reject_nonfinite(np.asarray([altitude])):
                z[count, 0] = -altitude
                h[count] = _H_BARO @ ekf.x
                r_diag[count] = ekf.config.baro_noise**2
                lanes.append(i)
                count += 1
            if math.isfinite(altitude):
                self._sins[i].correct_baro(altitude)
        if not count:
            return
        R = r_diag[:count].reshape(count, 1, 1)
        self._ekf_update_cols(lanes, z[:count], h[:count], _H_BARO, R)

    @staticmethod
    def _ahrs_update_cols(
        ahrs_list: list, q: np.ndarray, gyro: np.ndarray, accel: np.ndarray
    ) -> None:
        """Row-wise ComplementaryFilter.update (no mag) across lanes.

        ``q`` holds the gyro-integrated quaternions (batched upstream via
        ``_quat_integrate_cols``); the accel/gyro norms batch through
        :func:`_row_norm` and the final ``quat_from_euler`` through
        :func:`_quat_from_euler_cols`, both bit-equal per row. The
        atan2-based Euler extraction and accel correction stay per lane
        (``math.atan2``/``math.asin`` have no proven batched twin).
        """
        m = q.shape[0]
        accel_norm = _row_norm(accel)
        gyro_norm = _row_norm(gyro)
        roll = np.empty(m)
        pitch = np.empty(m)
        yaw = np.empty(m)
        for k in range(m):
            r, p, y = quat_to_euler(q[k])
            if 0.5 * 9.80665 < accel_norm[k] < 1.5 * 9.80665 and gyro_norm[k] < 1.0:
                a = accel[k]
                accel_roll = math.atan2(-a[1], -a[2])
                accel_pitch = math.atan2(a[0], math.hypot(a[1], a[2]))
                gain = ahrs_list[k].accel_gain
                r += gain * wrap_pi(accel_roll - r)
                p += gain * wrap_pi(accel_pitch - p)
            roll[k] = r
            pitch[k] = p
            yaw[k] = y
        quats = _quat_from_euler_cols(roll, pitch, yaw)
        for k, ahrs in enumerate(ahrs_list):
            ahrs._quat = quats[k]

    def _sins_predict(
        self, idx: np.ndarray, gyro: np.ndarray, accel: np.ndarray
    ) -> None:
        """Batched StrapdownINS.predict over the lanes in ``idx``.

        The attitude integration keeps the scalar ``quat_integrate`` call
        per lane (its norms do not batch bit-exactly); the rotate /
        gravity-compensate / integrate mechanisation is batched.
        """
        m = idx.size
        if not m:
            return
        dt = self.dt
        sinses = [self._sins[int(i)] for i in idx]
        quats = _quat_integrate_cols(
            np.array([sins._quat for sins in sinses]), gyro, dt
        )
        for k, sins in enumerate(sinses):
            sins._quat = quats[k]
        accel_world = _quat_rotate_cols(quats, accel) + self._sins_gravity
        dv = accel_world * dt
        vel = np.array([sins._velocity for sins in sinses]) + dv
        dp = vel * dt
        pos = np.array([sins._position for sins in sinses]) + dp
        # One C-level conversion per array beats 9 scalar float() calls
        # per lane (same values — tolist yields the identical doubles).
        acc_rows = accel_world.tolist()
        dv_rows = dv.tolist()
        dp_rows = dp.tolist()
        for k, sins in enumerate(sinses):
            sins._velocity = vel[k]
            sins._position = pos[k]
            inter = sins.intermediates
            acc = acc_rows[k]
            inter["ACC_N"] = acc[0]
            inter["ACC_E"] = acc[1]
            inter["ACC_D"] = acc[2]
            dvk = dv_rows[k]
            inter["DV_N"] = dvk[0]
            inter["DV_E"] = dvk[1]
            inter["DV_D"] = dvk[2]
            dpk = dp_rows[k]
            inter["DP_N"] = dpk[0]
            inter["DP_E"] = dpk[1]
            inter["DP_D"] = dpk[2]

    def _ekf_predict(
        self, idx: np.ndarray, gyro: np.ndarray, accel: np.ndarray
    ) -> None:
        """Batched AttitudePositionEKF.predict over the lanes in ``idx``."""
        m = idx.size
        if not m:
            return
        dt = self.dt
        x = np.array([self._ekfs[i].x for i in idx])
        p = np.array([self._ekfs[i].P for i in idx])

        omega = gyro - x[:, 9:12]
        phi = x[:, 0]
        theta = x[:, 1]
        sphi = np.sin(phi)
        cphi = np.cos(phi)
        ctheta = np.cos(theta)
        # math.tan rounds differently from np.tan: keep the scalar call,
        # with the scalar gimbal-lock guard, per lane.
        ttheta = np.empty(m)
        for k in range(m):
            th = theta[k]
            ct = ctheta[k]
            if abs(ct) < 1e-3:
                ct = math.copysign(1e-3, ct if ct != 0.0 else 1.0)
                ctheta[k] = ct
                ttheta[k] = math.sin(th) / ct
            else:
                ttheta[k] = math.tan(th)

        er0 = omega[:, 0] + sphi * ttheta * omega[:, 1] + cphi * ttheta * omega[:, 2]
        er1 = cphi * omega[:, 1] - sphi * omega[:, 2]
        er2 = (sphi / ctheta) * omega[:, 1] + (cphi / ctheta) * omega[:, 2]
        x[:, 0] = x[:, 0] + er0 * dt
        x[:, 1] = x[:, 1] + er1 * dt
        x[:, 2] = x[:, 2] + er2 * dt
        x[:, 0] = _wrap_cols(x[:, 0])
        x[:, 2] = _wrap_cols(x[:, 2])

        dcm = _dcm_from_euler_cols(x[:, 0], x[:, 1], x[:, 2])
        f_ned = _matvec(dcm, accel)
        accel_ned = f_ned + self._ekf_gravity_vec
        x[:, 3:6] = x[:, 3:6] + accel_ned * dt
        x[:, 6:9] = x[:, 6:9] + x[:, 3:6] * dt

        # The Jacobian template (identity + constant dt entries) only
        # depends on (m, dt); dt is fixed per fleet, so cache per m and
        # memcpy — only the six f_ned-dependent entries change per step.
        template = self._ekf_f_template_cache.get(m)
        if template is None:
            template = np.tile(np.eye(12), (m, 1, 1))
            template[:, 6, 3] = dt
            template[:, 7, 4] = dt
            template[:, 8, 5] = dt
            template[:, 0, 9] = -dt
            template[:, 1, 10] = -dt
            template[:, 2, 11] = -dt
            self._ekf_f_template_cache[m] = template
        f = template.copy()
        f[:, 3, 1] = f_ned[:, 2] * dt
        f[:, 3, 2] = -f_ned[:, 1] * dt
        f[:, 4, 0] = -f_ned[:, 2] * dt
        f[:, 4, 2] = f_ned[:, 0] * dt
        f[:, 5, 0] = f_ned[:, 1] * dt
        f[:, 5, 1] = -f_ned[:, 0] * dt

        fp = f @ p
        ft = np.ascontiguousarray(f.transpose(0, 2, 1))
        p_new = fp @ ft + self._ekf_Q

        for k, i in enumerate(idx):
            ekf = self._ekfs[i]
            ekf.x = x[k]
            ekf.P = p_new[k]

    # ------------------------------------------------------------------ #
    # Failsafes (mirrors Vehicle._check_failsafes)
    # ------------------------------------------------------------------ #
    def _check_failsafes(self, i: int) -> None:
        self._check_failsafes_lanes(np.asarray([i]))

    def _check_failsafes_lanes(self, idx: np.ndarray) -> None:
        """Per-lane failsafe sweep with the shared param reads hoisted.

        The fleet's lanes share one :class:`ParameterStore`, nothing in
        the sweep mutates it, and ``params.get`` is a pure read — so
        reading each threshold once per sweep is behaviourally identical
        to the scalar per-lane reads, minus the dictionary churn.
        """
        params = self.params
        batt_crt = params.get("BATT_CRT_VOLT")
        batt_low = params.get("BATT_LOW_VOLT")
        batt_low_act = params.get("BATT_FS_LOW_ACT")
        fence_enable = params.get("FENCE_ENABLE")
        if fence_enable >= 1.0:
            fence_radius = params.get("FENCE_RADIUS")
            fence_alt_max = params.get("FENCE_ALT_MAX")
            fence_action = params.get("FENCE_ACTION")
        # Batched Battery.voltage / .depleted (same expression order as
        # the scalar properties, so bit-equal per lane).
        rem = (
            1.0 - self._batt_consumed[idx] / self._batt_capacity
        ).clip(0.0, 1.0)
        volts = (self._batt_empty_v + rem * self._batt_vspan) * self._batt_cells
        depleted = rem <= 0.0
        for k, i in enumerate(idx):
            i = int(i)
            if not self._armed[i] or self._modes[i].mode is FlightMode.LAND:
                continue
            if volts[k] <= batt_crt or depleted[k]:
                self._lane_set_mode(i, FlightMode.LAND)
                continue
            if volts[k] <= batt_low:
                if batt_low_act >= 2.0 and self._modes[i].mode is not FlightMode.RTL:
                    self._lane_set_mode(i, FlightMode.RTL)
                    continue
            if fence_enable >= 1.0 and self._modes[i].mode is not FlightMode.RTL:
                position = self._pos[i]
                horizontal = float(np.hypot(
                    position[0] - self._home[i][0], position[1] - self._home[i][1]
                ))
                breach = (
                    horizontal > fence_radius
                    or -float(position[2]) > fence_alt_max
                )
                if breach and fence_action >= 1.0:
                    self._lane_set_mode(i, FlightMode.RTL)

    # ------------------------------------------------------------------ #
    # Control (navigation → position → attitude → mixer)
    # ------------------------------------------------------------------ #
    def _control(self, idx: np.ndarray, dt: float) -> None:
        m = idx.size
        # Estimated state, exactly as Vehicle.step reads it (one gather
        # of x per lane; the slices below are views into the copy).
        x_est = np.array([self._ekfs[i].x for i in idx])
        pos_est = x_est[:, 6:9]
        vel_est = x_est[:, 3:6]
        roll_est = x_est[:, 0]
        pitch_est = x_est[:, 1]
        yaw_est = x_est[:, 2]
        gyro_rows = []
        for i in idx:
            readings = self._last_readings[i]
            gyro_rows.append(
                readings.imu.gyro if readings is not None else np.zeros(3)
            )
        gyro = np.array(gyro_rows)

        # Navigation (per-lane mode logic) → position setpoints.
        nav_rows: list[int] = []  # positions within idx that run the cascade
        sp_pos = np.zeros((m, 3))
        sp_yaw = np.zeros(m)
        for k, i in enumerate(idx):
            i = int(i)
            mode = self._modes[i].mode
            if mode is FlightMode.STABILIZE:
                continue  # manual targets; no position cascade
            if mode is FlightMode.GUIDED:
                target = (
                    self._guided_target[i]
                    if self._guided_target[i] is not None
                    else self._home[i]
                )
                yaw_sp = self._last_targets[i].yaw
            elif mode is FlightMode.AUTO:
                mission = self.missions[i]
                if mission is None:
                    raise MissionError("AUTO mode with no mission")
                position = self._ekfs[i].position
                wp = mission.update(position, self._time[i])
                desired_yaw = mission.desired_yaw(position)
                max_step = self._yaw_slew_rate * dt
                err = wrap_pi(desired_yaw - self._yaw_target[i])
                self._yaw_target[i] = wrap_pi(
                    self._yaw_target[i] + float(np.clip(err, -max_step, max_step))
                )
                target = wp.position
                yaw_sp = self._yaw_target[i]
            elif mode is FlightMode.RTL:
                rtl_alt = self.params.get("RTL_ALT")
                target = np.array(
                    [self._home[i][0], self._home[i][1], -rtl_alt]
                )
                yaw_sp = self._last_targets[i].yaw
            else:  # LAND
                land_speed = self.params.get("LAND_SPEED")
                position = self._ekfs[i].position
                target_down = position[2] + land_speed * 1.0
                target = np.array([position[0], position[1], target_down])
                yaw_sp = self._last_targets[i].yaw
            nav_rows.append(k)
            sp_pos[k] = target
            sp_yaw[k] = yaw_sp

        t_roll = np.zeros(m)
        t_pitch = np.zeros(m)
        t_yaw = np.zeros(m)
        t_thr = np.zeros(m)
        if nav_rows:
            rows = np.asarray(nav_rows, dtype=np.intp)
            nav_idx = idx[rows]
            accel_n = self._axis_update(
                self._sqrt_x, self._pid_vel_x, self._accel_xy_max, nav_idx,
                sp_pos[rows, 0], pos_est[rows, 0], vel_est[rows, 0], dt,
            )
            accel_e = self._axis_update(
                self._sqrt_y, self._pid_vel_y, self._accel_xy_max, nav_idx,
                sp_pos[rows, 1], pos_est[rows, 1], vel_est[rows, 1], dt,
            )
            accel_d = self._axis_update(
                self._sqrt_z, self._pid_vel_z, self._accel_z_max, nav_idx,
                sp_pos[rows, 2], pos_est[rows, 2], vel_est[rows, 2], dt,
            )
            yaw_rows = yaw_est[rows]
            cos_yaw = np.cos(yaw_rows)
            sin_yaw = np.sin(yaw_rows)
            accel_fwd = accel_n * cos_yaw + accel_e * sin_yaw
            accel_rgt = -accel_n * sin_yaw + accel_e * cos_yaw
            # math.atan2 rounds differently from np.arctan2: per lane.
            grav = self._ctrl_gravity
            lean = self._lean_max
            roll_t = np.empty(rows.size)
            pitch_t = np.empty(rows.size)
            for k in range(rows.size):
                pitch = -math.atan2(float(accel_fwd[k]), grav)
                pitch_t[k] = -lean if pitch < -lean else lean if pitch > lean else pitch
                roll = math.atan2(float(accel_rgt[k]), grav)
                roll_t[k] = -lean if roll < -lean else lean if roll > lean else roll
            tilt = np.cos(roll_t) * np.cos(pitch_t)
            tilt = np.maximum(tilt, 0.5)
            climb_accel = -accel_d
            throttle = self._hover_throttle * (1.0 + climb_accel / grav) / tilt
            throttle = throttle.clip(0.0, 1.0)
            t_roll[rows] = roll_t
            t_pitch[rows] = pitch_t
            t_yaw[rows] = sp_yaw[rows]
            t_thr[rows] = throttle

        nav_set = set(nav_rows)
        for k, i in enumerate(idx):
            i = int(i)
            if k in nav_set:
                targets = AttitudeTargets(
                    roll=float(t_roll[k]), pitch=float(t_pitch[k]),
                    yaw=float(t_yaw[k]), throttle=float(t_thr[k]),
                )
            else:
                targets = self._manual_targets[i]
                t_roll[k] = targets.roll
                t_pitch[k] = targets.pitch
                t_yaw[k] = targets.yaw
                t_thr[k] = targets.throttle
            self._last_targets[i] = targets

        # Attitude controller (AttitudeController.update, batched).
        err_r = _wrap_cols(t_roll - roll_est)
        err_p = _wrap_cols(t_pitch - pitch_est)
        err_y = _wrap_cols(t_yaw - yaw_est)
        rt_r = (self._angle_p * err_r).clip(-self._rate_max, self._rate_max)
        rt_p = (self._angle_p * err_p).clip(-self._rate_max, self._rate_max)
        rt_y = (self._angle_p * err_y).clip(-self._rate_max, self._rate_max)
        tq_r = self._pid_roll.update(idx, rt_r, gyro[:, 0], dt).clip(-1.0, 1.0)
        tq_p = self._pid_pitch.update(idx, rt_p, gyro[:, 1], dt).clip(-1.0, 1.0)
        tq_y = self._pid_yaw.update(idx, rt_y, gyro[:, 2], dt).clip(-1.0, 1.0)
        self._torque[idx, 0] = tq_r
        self._torque[idx, 1] = tq_p
        self._torque[idx, 2] = tq_y

        self._motor_cmd[idx] = self._mix_cols(t_thr, tq_r, tq_p, tq_y)

    def _mix_cols(
        self, thr: np.ndarray, tq_r: np.ndarray, tq_p: np.ndarray, tq_y: np.ndarray
    ) -> np.ndarray:
        """Batched MotorMixer.mix (all ops elementwise / exact comparisons).

        The saturation branches are evaluated with masks; ``np.where``
        selects exactly the branch the scalar mixer would take, and the
        divisions inside a discarded branch (0/0 etc.) are masked out.
        """
        mixer = self._mixer
        min_t = mixer.min_throttle
        max_t = mixer.max_throttle
        roll_f = mixer.ROLL_FACTORS
        pitch_f = mixer.PITCH_FACTORS
        yaw_f = mixer.YAW_FACTORS
        thr = thr.clip(0.0, 1.0)
        headroom = np.minimum(thr - min_t, max_t - thr)
        mix = (
            roll_f * tq_r[:, None]
            + pitch_f * tq_p[:, None]
            + yaw_f * tq_y[:, None]
        )
        peak = np.max(np.abs(mix), axis=1)
        sat = (peak > headroom) & (peak > 0.0)
        if np.any(sat):
            rp_mix = roll_f * tq_r[sat, None] + pitch_f * tq_p[sat, None]
            rp_peak = np.max(np.abs(rp_mix), axis=1)
            hr = headroom[sat]
            rp_over = (rp_peak > hr) & (rp_peak > 0.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                rp_scaled = rp_mix * (hr / rp_peak)[:, None]
                yaw_hr = hr - rp_peak
                yaw_mix = yaw_f * tq_y[sat, None]
                yaw_peak = np.max(np.abs(yaw_mix), axis=1)
                yaw_over = (yaw_peak > yaw_hr) & (yaw_peak > 0.0)
                yaw_mix = np.where(
                    yaw_over[:, None],
                    yaw_mix * (yaw_hr / yaw_peak)[:, None],
                    yaw_mix,
                )
            mix[sat] = np.where(rp_over[:, None], rp_scaled, rp_mix + yaw_mix)
        return (thr[:, None] + mix).clip(min_t, max_t)

    def _axis_update(
        self, sqrt_bank, vel_bank, accel_max, idx, pos_target, pos, vel, dt
    ) -> np.ndarray:
        """AxisCascade.update, batched."""
        vel_target = sqrt_bank.update(idx, pos_target, pos)
        raw_accel = vel_bank.update(idx, vel_target, vel, dt)
        return raw_accel.clip(-accel_max, accel_max)

    # ------------------------------------------------------------------ #
    # Plant (mirrors QuadrotorModel.step + Simulator.step)
    # ------------------------------------------------------------------ #
    def _plant_step(self, idx: np.ndarray) -> None:
        dt = self.dt
        cmds = self._motor_cmd[idx].clip(0.0, 1.0)
        self._motor_cmd[idx] = cmds

        if self._gust_std > 0.0:
            noise = np.array(
                [self._env_rngs[int(i)].standard_normal(3) for i in idx]
            )
            self._gust[idx] = (
                self._gust_decay * self._gust[idx] + self._gust_noise_scale * noise
            )

        thrusts = self._thrusts[idx]
        target = cmds * self._max_thrust
        alpha = dt / (dt + self._motor_tc)
        thrusts = thrusts + alpha * (target - thrusts)
        self._thrusts[idx] = thrusts
        # Length-4 reductions done as sequential adds (== 1-D np.sum).
        total = thrusts[:, 0] + thrusts[:, 1] + thrusts[:, 2] + thrusts[:, 3]
        tx = -self._positions[:, 1] * thrusts
        tau_x = tx[:, 0] + tx[:, 1] + tx[:, 2] + tx[:, 3]
        ty = self._positions[:, 0] * thrusts
        tau_y = ty[:, 0] + ty[:, 1] + ty[:, 2] + ty[:, 3]
        tz = self._spin * thrusts * self._torque_coeff
        tau_z = tz[:, 0] + tz[:, 1] + tz[:, 2] + tz[:, 3]

        vel = self._vel[idx]
        quat = self._quat[idx]
        omega = self._omega[idx]
        wind = self._wind_mean + self._gust[idx]
        airspeed = vel - wind
        drag_world = -self._drag_coeff * airspeed
        force_body = np.zeros((idx.size, 3))
        force_body[:, 2] = -total
        thrust_world = _quat_rotate_cols(quat, force_body)
        force_world = thrust_world + drag_world + self._gravity_force
        torque_body = np.stack([tau_x, tau_y, tau_z], axis=1)
        torque_body = torque_body - self._ang_drag * omega

        altitude = -self._pos[idx, 2]
        rest = (
            (altitude <= self._ground + 1e-6)
            & (vel[:, 2] >= 0.0)
            & (total <= self._weight)
        )
        rest_lanes = idx[rest]
        if rest_lanes.size:
            self._landed[rest_lanes] = True
            self._pos[rest_lanes, 2] = -self._ground
            self._vel[rest_lanes] = 0.0
            self._omega[rest_lanes] = 0.0
            self._sfb[rest_lanes] = _quat_inverse_rotate_cols(
                self._quat[rest_lanes],
                np.tile(self._neg_gravity_world, (rest_lanes.size, 1)),
            )
            self._battery_step_lanes(rest_lanes, dt)

        dyn = ~rest
        dyn_lanes = idx[dyn]
        if not dyn_lanes.size:
            return
        total_d = total[dyn]
        unlatch = self._landed[dyn_lanes] & (total_d > self._weight)
        self._landed[dyn_lanes[unlatch]] = False

        omega_d = omega[dyn]
        i_omega = _matvec(self._inertia_b[: dyn_lanes.size], omega_d)
        gyroscopic = _cross_cols(omega_d, i_omega)
        omega_dot = _matvec(
            self._inertia_inv_b[: dyn_lanes.size], torque_body[dyn] - gyroscopic
        )
        omega_new = omega_d + omega_dot * dt
        self._quat[dyn_lanes] = _quat_integrate_cols(
            self._quat[dyn_lanes], omega_new, dt
        )
        self._omega[dyn_lanes] = omega_new
        accel = force_world[dyn] / self._mass
        vel_new = vel[dyn] + accel * dt
        self._vel[dyn_lanes] = vel_new
        self._pos[dyn_lanes] = self._pos[dyn_lanes] + vel_new * dt

        nongrav_world = thrust_world[dyn] + drag_world[dyn]
        self._sfb[dyn_lanes] = _quat_inverse_rotate_cols(
            self._quat[dyn_lanes], nongrav_world / self._mass
        )

        impact = np.flatnonzero(
            -self._pos[dyn_lanes, 2] < self._ground - 0.01
        )
        for k in impact:
            i = int(dyn_lanes[k])
            impact_speed = float(self._vel[i, 2])
            self._pos[i, 2] = -self._ground
            if impact_speed > 2.0 and not self._landed[i]:
                self._crashed[i] = True
                self._crash_reason[i] = f"ground impact at {impact_speed:.1f} m/s"
            self._vel[i] = 0.0
            self._omega[i] = 0.0
            self._landed[i] = True

        self._battery_step_lanes(dyn_lanes, dt)
        rem = (
            1.0 - self._batt_consumed[dyn_lanes] / self._batt_capacity
        ).clip(0.0, 1.0)
        dead = dyn_lanes[(rem <= 0.0) & ~self._landed[dyn_lanes]]
        if dead.size:
            self._motor_cmd[dead] = 0.0

    def _battery_step_lanes(self, lanes: np.ndarray, dt: float) -> None:
        """Batched ``Battery.step`` over ``lanes``.

        The throttle mean, clamp and coulomb integration batch
        elementwise (bit-equal per row); the ``**2`` stays per lane —
        libm ``pow(x, 2)`` is occasionally 1 ulp off ``x * x``, so no
        ufunc reproduces the scalar squaring.
        """
        cmds = self._motor_cmd[lanes]
        thr = (
            (cmds[:, 0] + cmds[:, 1] + cmds[:, 2] + cmds[:, 3]) / 4.0
        ).clip(0.0, 1.0)
        base = self._batt_base_a
        span = self._batt_span_a
        cur = np.array([base + span * t**2 for t in thr.tolist()])
        self._batt_current[lanes] = cur
        self._batt_consumed[lanes] = self._batt_consumed[lanes] + cur * dt / 3.6
