"""Vectorized multi-vehicle simulation engine.

:class:`VectorizedFleet` steps N vehicles with the same physical and
controller parameters (only the seed differs) as batched numpy ``(N, …)``
arrays. The scalar :class:`repro.firmware.vehicle.Vehicle` remains the
oracle: lane ``i`` of a fleet is **bit-identical** to a scalar run with
seed ``i``, which ``tests/test_vectorized_oracle.py`` pins step by step.

Bit-exactness strategy
----------------------
The scalar stack mixes ``math.*`` scalar calls with numpy array code, and
the two families do not always round identically (``math.tan``,
``math.atan2`` and ``np.linalg.norm`` differ from any naive elementwise
rewrite). The fleet therefore batches only the operations that were
*measured* to be bit-equal to the scalar path:

* elementwise ``+ - * /``, ``np.sin/cos/sqrt/exp/copysign``, ``%``-based
  angle wrapping and ``np.clip`` (equal to ``constrain``);
* batched matmul ``(N, k, k) @ (N, k, k)`` and batched matvec via
  ``(M @ v[:, :, None])[:, :, 0]``, which numpy computes with the same
  kernels it uses per-slice;
* explicit column formulas for 3-vector cross products (equal to
  ``np.cross``).

Everything else stays *per lane* and reuses the scalar objects verbatim:
sensor suites (one seed-keyed ``Generator`` set per lane, so lane i's
noise stream is identical to the scalar run regardless of N), SINS and
complementary-filter dead reckoning, EKF measurement updates (the real
:class:`AttitudePositionEKF` methods run on each lane's state), missions,
mode managers, batteries, ``math.atan2``/``math.tan`` call sites and every
``np.linalg.norm``. Detectors and attacks attach unmodified to per-lane
vehicle adapters.

Not vectorized (campaigns fall back to the scalar engine for these):
dataflash logging, GCS link traffic, actuator fault schedules, worlds with
obstacles, and target/torque hooks.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.estimation.complementary import ComplementaryFilter
from repro.estimation.ekf import AttitudePositionEKF
from repro.estimation.sins import StrapdownINS
from repro.exceptions import ControlError, MissionError, SimulationError
from repro.control.attitude import AttitudeController, AttitudeTargets
from repro.control.mixer import MotorMixer
from repro.control.position import PositionController
from repro.firmware.mission import Mission, MissionStatus
from repro.firmware.modes import FlightMode, ModeManager
from repro.firmware.parameters import ParameterStore
from repro.firmware.param_defs import arducopter_parameter_defs
from repro.firmware.vehicle import (
    EKF_UPDATE_PERIODS,
    STABILIZER_REGION,
    TAKEOFF_ALT_TOLERANCE,
    TAKEOFF_SUCCESS_TOLERANCE,
    TAKEOFF_VEL_TOLERANCE,
)
from repro.sensors.suite import SensorSuite
from repro.sim.battery import Battery
from repro.sim.config import SimConfig
from repro.sim.motor import MOTOR_LAYOUT, MOTOR_SPIN
from repro.sim.rigidbody import RigidBody6DoF
from repro.utils.math3d import quat_from_euler, quat_to_euler, wrap_pi
from repro.utils.rng import make_rng
from repro.utils.filters import alpha_from_cutoff

__all__ = ["VectorizedFleet"]


# --------------------------------------------------------------------- #
# Batched primitives (each proven bit-equal to its scalar counterpart)
# --------------------------------------------------------------------- #
def _wrap_cols(a: np.ndarray) -> np.ndarray:
    """Batched wrap_pi; ``%`` rounds identically to the scalar path."""
    return (a + np.pi) % (2.0 * np.pi) - np.pi


def _cross_cols(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise 3-vector cross product, columnwise (== np.cross)."""
    out = np.empty_like(a)
    out[:, 0] = a[:, 1] * b[:, 2] - a[:, 2] * b[:, 1]
    out[:, 1] = a[:, 2] * b[:, 0] - a[:, 0] * b[:, 2]
    out[:, 2] = a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]
    return out


def _quat_rotate_cols(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Row-wise body→world rotation (== math3d.quat_rotate per row)."""
    w = q[:, 0:1]
    u = q[:, 1:4]
    return v + 2.0 * _cross_cols(u, _cross_cols(u, v) + w * v)


def _quat_inverse_rotate_cols(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Row-wise world→body rotation (== math3d.quat_inverse_rotate)."""
    conj = np.concatenate((q[:, 0:1], -q[:, 1:4]), axis=1)
    return _quat_rotate_cols(conj, v)


def _matvec(m: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Batched matrix·vector, same kernel as the per-slice ``m @ v``."""
    return (m @ v[:, :, None])[:, :, 0]


def _quat_integrate_fast(q: np.ndarray, omega: np.ndarray, dt: float) -> np.ndarray:
    """Per-lane ``math3d.quat_integrate`` minus the wrapper overhead.

    Performs the identical operation sequence — ``np.linalg.norm`` is
    ``sqrt(dot(x, x))`` internally, reproduced here as
    ``math.sqrt(x.dot(x))`` (same dot kernel, ``math.sqrt == np.sqrt``
    bitwise) — so results match the scalar path bit for bit.
    """
    nrm = math.sqrt(omega.dot(omega))
    angle = nrm * dt
    if angle < 1e-12:
        dw, dx, dy, dz = 1.0, 0.0, 0.0, 0.0
    else:
        half = angle / 2.0
        sh = math.sin(half)
        dw = math.cos(half)
        dx = sh * (omega[0] / nrm)
        dy = sh * (omega[1] / nrm)
        dz = sh * (omega[2] / nrm)
    w1, x1, y1, z1 = q
    out = np.array(
        [
            w1 * dw - x1 * dx - y1 * dy - z1 * dz,
            w1 * dx + x1 * dw + y1 * dz - z1 * dy,
            w1 * dy - x1 * dz + y1 * dw + z1 * dx,
            w1 * dz + x1 * dy - y1 * dx + z1 * dw,
        ]
    )
    norm = math.sqrt(out.dot(out))
    if norm < 1e-12:
        raise ValueError("cannot normalise near-zero quaternion")
    return out / norm


def _quat_integrate_cols(q: np.ndarray, omega: np.ndarray, dt: float) -> np.ndarray:
    """Row-wise :func:`_quat_integrate_fast`, bit-equal per row.

    The per-row norms stay as ``math.sqrt(row.dot(row))`` scalar calls
    (the dot kernel does not batch bit-exactly); everything else —
    sin/cos, the axis scaling, the Hamilton product and the final
    normalising divide — is elementwise, where the batched ufunc applies
    the identical operation per element as the scalar path.
    """
    n = q.shape[0]
    nrm = np.empty(n)
    for k in range(n):
        row = omega[k]
        nrm[k] = math.sqrt(row.dot(row))
    angle = nrm * dt
    half = angle / 2.0
    sh = np.sin(half)
    dw = np.cos(half)
    with np.errstate(invalid="ignore", divide="ignore"):
        dq = sh[:, None] * (omega / nrm[:, None])
    small = angle < 1e-12
    if small.any():
        dw[small] = 1.0
        dq[small] = 0.0
    w1, x1, y1, z1 = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    dx, dy, dz = dq[:, 0], dq[:, 1], dq[:, 2]
    out = np.empty((n, 4))
    out[:, 0] = w1 * dw - x1 * dx - y1 * dy - z1 * dz
    out[:, 1] = w1 * dx + x1 * dw + y1 * dz - z1 * dy
    out[:, 2] = w1 * dy - x1 * dz + y1 * dw + z1 * dx
    out[:, 3] = w1 * dz + x1 * dy - y1 * dx + z1 * dw
    norms = np.empty(n)
    for k in range(n):
        row = out[k]
        norms[k] = math.sqrt(row.dot(row))
    if np.any(norms < 1e-12):
        raise ValueError("cannot normalise near-zero quaternion")
    return out / norms[:, None]


def _dcm_from_euler_cols(
    roll: np.ndarray, pitch: np.ndarray, yaw: np.ndarray
) -> np.ndarray:
    """Row-wise ``dcm_from_euler`` (quat_from_euler → quat_to_dcm)."""
    cr, sr = np.cos(roll / 2.0), np.sin(roll / 2.0)
    cp, sp = np.cos(pitch / 2.0), np.sin(pitch / 2.0)
    cy, sy = np.cos(yaw / 2.0), np.sin(yaw / 2.0)
    w = cy * cp * cr + sy * sp * sr
    x = cy * cp * sr - sy * sp * cr
    y = cy * sp * cr + sy * cp * sr
    z = sy * cp * cr - cy * sp * sr
    dcm = np.empty((roll.shape[0], 3, 3))
    dcm[:, 0, 0] = 1.0 - 2.0 * (y * y + z * z)
    dcm[:, 0, 1] = 2.0 * (x * y - w * z)
    dcm[:, 0, 2] = 2.0 * (x * z + w * y)
    dcm[:, 1, 0] = 2.0 * (x * y + w * z)
    dcm[:, 1, 1] = 1.0 - 2.0 * (x * x + z * z)
    dcm[:, 1, 2] = 2.0 * (y * z - w * x)
    dcm[:, 2, 0] = 2.0 * (x * z - w * y)
    dcm[:, 2, 1] = 2.0 * (y * z + w * x)
    dcm[:, 2, 2] = 1.0 - 2.0 * (x * x + y * y)
    return dcm


# --------------------------------------------------------------------- #
# Controller banks: N scalar controllers as column state
# --------------------------------------------------------------------- #
class _PidBank:
    """N :class:`PIDController` instances with batched update.

    Gains are per lane because the attacker's memory view can overwrite
    KP/KI/KD/FF on individual lanes.
    """

    def __init__(self, n: int, gains, output_limit: float):
        self.n = n
        self.kp = np.full(n, gains.kp)
        self.ki = np.full(n, gains.ki)
        self.kd = np.full(n, gains.kd)
        self.kff = np.full(n, gains.kff)
        self.imax = float(gains.imax)
        self.filt_hz = float(gains.filt_hz)
        self.output_limit = float(output_limit)
        self.integrator = np.zeros(n)
        self.input_error = np.zeros(n)
        self.derivative = np.zeros(n)
        self.scaler = np.ones(n)
        self.last_dt = np.zeros(n)
        self._last_error = np.zeros(n)
        self._has_last = np.zeros(n, dtype=bool)

    def update(
        self, idx: np.ndarray, target: np.ndarray, measurement: np.ndarray, dt: float
    ) -> np.ndarray:
        """One PID cycle for the lanes in ``idx``; mirrors PIDController."""
        error = target - measurement
        self.input_error[idx] = error
        self.last_dt[idx] = dt

        p_term = self.kp[idx] * error

        integ = np.clip(
            self.integrator[idx] + self.ki[idx] * error * dt, -self.imax, self.imax
        )
        self.integrator[idx] = integ

        raw_derivative = np.where(
            self._has_last[idx], (error - self._last_error[idx]) / dt, 0.0
        )
        self._last_error[idx] = error
        self._has_last[idx] = True
        alpha = alpha_from_cutoff(self.filt_hz, dt)
        deriv = self.derivative[idx]
        deriv = deriv + alpha * (raw_derivative - deriv)
        self.derivative[idx] = deriv
        d_term = self.kd[idx] * deriv

        ff_term = self.kff[idx] * target

        total = (p_term + integ + d_term + ff_term) * self.scaler[idx]
        return np.clip(total, -self.output_limit, self.output_limit)

    _ARRAYS = {
        "KP": "kp", "KI": "ki", "KD": "kd", "FF": "kff", "DT": "last_dt",
        "INTEG": "integrator", "INPUT": "input_error", "DERIV": "derivative",
        "SCALER": "scaler",
    }

    def set_state_variable(self, lane: int, name: str, value: float) -> None:
        """Per-lane equivalent of PIDController.set_state_variable."""
        attr = self._ARRAYS.get(name)
        if attr is None:
            raise ControlError(f"unknown state variable '{name}'")
        getattr(self, attr)[lane] = float(value)

    def get_state_variable(self, lane: int, name: str) -> float:
        attr = self._ARRAYS.get(name)
        if attr is None:
            raise ControlError(f"unknown state variable '{name}'")
        return float(getattr(self, attr)[lane])


class _SqrtBank:
    """N :class:`SqrtController` instances with batched update."""

    def __init__(self, n: int, proto):
        self.p = float(proto.p)
        self.accel_max = float(proto.accel_max)
        self.output_max = float(proto.output_max)
        self.linear_region = proto.linear_region
        self.error = np.zeros(n)
        self.output = np.zeros(n)

    def update(
        self, idx: np.ndarray, target: np.ndarray, measurement: np.ndarray
    ) -> np.ndarray:
        error = target - measurement
        self.error[idx] = error
        linear = self.linear_region
        abs_error = np.abs(error)
        with np.errstate(invalid="ignore"):
            sqrt_out = np.copysign(
                np.sqrt(2.0 * self.accel_max * (abs_error - linear / 2.0)), error
            )
        out = np.where(abs_error <= linear, self.p * error, sqrt_out)
        out = np.clip(out, -self.output_max, self.output_max)
        self.output[idx] = out
        return out


# --------------------------------------------------------------------- #
# Per-lane adapters: the Vehicle interface detectors/attacks expect
# --------------------------------------------------------------------- #
class _LaneState:
    """RigidBodyState view over one lane's batched plant state."""

    __slots__ = ("_f", "_i")

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i

    @property
    def position(self) -> np.ndarray:
        return self._f._pos[self._i]

    @property
    def velocity(self) -> np.ndarray:
        return self._f._vel[self._i]

    @property
    def quaternion(self) -> np.ndarray:
        return self._f._quat[self._i]

    @property
    def omega_body(self) -> np.ndarray:
        return self._f._omega[self._i]

    @property
    def euler(self) -> tuple[float, float, float]:
        return quat_to_euler(self._f._quat[self._i])

    @property
    def altitude(self) -> float:
        return -float(self._f._pos[self._i, 2])


class _LaneMotors:
    """MotorArray view over one lane (sensors read ``.thrusts``)."""

    __slots__ = ("_f", "_i")

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i

    @property
    def thrusts(self) -> np.ndarray:
        return self._f._thrusts[self._i]

    @property
    def commands(self) -> np.ndarray:
        return self._f._motor_cmd[self._i]


class _LanePlant:
    """QuadrotorModel view over one lane (what sensors sample)."""

    __slots__ = ("_f", "_i", "state", "motors")

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i
        self.state = _LaneState(fleet, i)
        self.motors = _LaneMotors(fleet, i)

    @property
    def airframe(self):
        return self._f.config.airframe

    @property
    def specific_force_body(self) -> np.ndarray:
        return self._f._sfb[self._i]

    @property
    def landed(self) -> bool:
        return bool(self._f._landed[self._i])

    @property
    def crashed(self) -> bool:
        return bool(self._f._crashed[self._i])

    @property
    def crash_reason(self) -> str | None:
        return self._f._crash_reason[self._i]

    @property
    def battery(self) -> Battery:
        return self._f._batteries[self._i]


class _LaneSim:
    """Simulator view over one lane (per-lane clock)."""

    __slots__ = ("_f", "_i", "vehicle")

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._f = fleet
        self._i = i
        self.vehicle = _LanePlant(fleet, i)

    @property
    def time(self) -> float:
        return self._f._time[self._i]

    @property
    def dt(self) -> float:
        return self._f.dt

    @property
    def step_count(self) -> int:
        return int(self._f._step_count[self._i])


class _LaneRegionView:
    """Compromised-region view routing writes into the batched PID banks.

    Mirrors :class:`repro.memory.attacker.CompromisedRegionView` for the
    stabilizer region: the write log records ``(name, value)`` tuples in
    injection order, exactly like the scalar view.
    """

    def __init__(self, fleet: "VectorizedFleet", lane: int, region: str):
        if region != STABILIZER_REGION:
            raise SimulationError(
                f"vectorized engine only models the {STABILIZER_REGION} region"
            )
        self._fleet = fleet
        self._lane = lane
        self.region_name = region
        self._writes: list[tuple[str, float]] = []

    def _bank(self, pid_name: str) -> _PidBank:
        bank = self._fleet._pid_banks.get(pid_name)
        if bank is None:
            raise SimulationError(
                f"variable owner '{pid_name}' is not vectorized"
            )
        return bank

    def write(self, name: str, value: float) -> None:
        pid_name, _, var = name.partition(".")
        self._bank(pid_name).set_state_variable(self._lane, var, value)
        self._writes.append((name, float(value)))

    def read(self, name: str) -> float:
        pid_name, _, var = name.partition(".")
        return self._bank(pid_name).get_state_variable(self._lane, var)

    @property
    def write_log(self) -> list[tuple[str, float]]:
        return list(self._writes)


class _LaneVehicle:
    """Vehicle-shaped adapter for one lane.

    Exposes the subset of the :class:`Vehicle` surface that detectors,
    attacks, ``stop_when`` predicates and the differential-oracle tests
    consume: ``sim``, ``armed``, ``estimated_state()``, ``last_motors``,
    ``mission``, ``modes``, the hook lists and ``compromised_view``.
    """

    def __init__(self, fleet: "VectorizedFleet", i: int):
        self._fleet = fleet
        self.index = i
        self.config = fleet.lane_configs[i]
        self.sim = _LaneSim(fleet, i)
        self.pre_control_hooks: list = []
        self.post_step_hooks: list = []
        self.target_hooks: list = []
        self.torque_hooks: list = []

    @property
    def armed(self) -> bool:
        return bool(self._fleet._armed[self.index])

    @property
    def mission(self) -> Mission | None:
        return self._fleet.missions[self.index]

    @mission.setter
    def mission(self, mission: Mission | None) -> None:
        self._fleet.missions[self.index] = mission

    @property
    def modes(self) -> ModeManager:
        return self._fleet._modes[self.index]

    @property
    def params(self) -> ParameterStore:
        return self._fleet.params

    @property
    def home(self) -> np.ndarray:
        return self._fleet._home[self.index]

    @property
    def last_motors(self) -> np.ndarray:
        return self._fleet._motor_cmd[self.index]

    @property
    def last_targets(self) -> AttitudeTargets:
        return self._fleet._last_targets[self.index]

    @property
    def manual_targets(self) -> AttitudeTargets:
        return self._fleet._manual_targets[self.index]

    @manual_targets.setter
    def manual_targets(self, targets: AttitudeTargets) -> None:
        self._fleet._manual_targets[self.index] = targets

    @property
    def guided_target(self) -> np.ndarray | None:
        return self._fleet._guided_target[self.index]

    @property
    def last_readings(self):
        return self._fleet._last_readings[self.index]

    @property
    def ekf(self) -> AttitudePositionEKF:
        return self._fleet._ekfs[self.index]

    @property
    def sensors(self) -> SensorSuite:
        return self._fleet._sensors[self.index]

    def estimated_state(self):
        """(position, velocity, euler, gyro), exactly as Vehicle returns."""
        fleet = self._fleet
        i = self.index
        readings = fleet._last_readings[i]
        gyro = readings.imu.gyro if readings is not None else np.zeros(3)
        ekf = fleet._ekfs[i]
        return (
            ekf.position, ekf.velocity, (ekf.roll, ekf.pitch, ekf.yaw), gyro,
        )

    def compromised_view(self, region: str = STABILIZER_REGION) -> _LaneRegionView:
        return _LaneRegionView(self._fleet, self.index, region)


# --------------------------------------------------------------------- #
# The fleet
# --------------------------------------------------------------------- #
class VectorizedFleet:
    """N same-parameter vehicles stepped as batched arrays.

    Parameters
    ----------
    config:
        Shared :class:`SimConfig`; the per-lane config is ``config`` with
        the lane's seed substituted. All physical and controller
        parameters are common across lanes — batching different airframes
        is not supported (campaigns batch same-parameter seed groups).
    seeds:
        One RNG seed per lane. Lane ``i`` reproduces the scalar
        ``Vehicle(SimConfig(seed=seeds[i], ...))`` bit for bit.
    """

    def __init__(self, config: SimConfig | None = None, seeds=(0,)):
        base = config or SimConfig()
        self.seeds = [int(s) for s in seeds]
        n = len(self.seeds)
        if n < 1:
            raise SimulationError("fleet needs at least one seed")
        self.n = n
        self.config = base
        self.dt = base.dt
        self.lane_configs = [replace(base, seed=s) for s in self.seeds]
        airframe = base.airframe

        # --- plant state ------------------------------------------------
        self._pos = np.zeros((n, 3))
        self._vel = np.zeros((n, 3))
        self._quat = np.tile(np.array([1.0, 0.0, 0.0, 0.0]), (n, 1))
        self._omega = np.zeros((n, 3))
        self._thrusts = np.zeros((n, 4))
        self._motor_cmd = np.zeros((n, 4))
        self._gust = np.zeros((n, 3))
        self._sfb = np.zeros((n, 3))
        self._landed = np.ones(n, dtype=bool)
        self._crashed = np.zeros(n, dtype=bool)
        self._crash_reason: list[str | None] = [None] * n
        self._time = [0.0] * n  # per-lane clock, accumulated like Simulator
        self._step_count = np.zeros(n, dtype=np.int64)
        self._env_rngs = [make_rng(s) for s in self.seeds]
        self._batteries = [Battery() for _ in range(n)]

        # Plant constants, computed exactly as the scalar stack does.
        body = RigidBody6DoF(airframe.mass, airframe.inertia)
        self._inertia_b = np.tile(np.asarray(body.inertia), (n, 1, 1))
        self._inertia_inv_b = np.tile(body._inertia_inv, (n, 1, 1))
        self._mass = airframe.mass
        self._weight = airframe.mass * base.gravity
        self._max_thrust = airframe.motor_max_thrust
        self._motor_tc = airframe.motor_time_constant
        self._torque_coeff = airframe.motor_torque_coeff
        self._positions = MOTOR_LAYOUT * airframe.arm_length
        self._spin = MOTOR_SPIN
        self._drag_coeff = airframe.linear_drag_coeff
        self._ang_drag = airframe.angular_drag_coeff
        self._ground = base.ground_altitude
        self._gravity_world = np.array([0.0, 0.0, base.gravity])
        self._neg_gravity_world = -np.array([0.0, 0.0, base.gravity])
        self._gravity_force = self._gravity_world * airframe.mass
        self._wind_mean = np.asarray(base.wind_mean)
        self._gust_std = base.wind_gust_std
        self._gust_tau = base.wind_gust_tau

        # --- estimation -------------------------------------------------
        self._sensors = [SensorSuite(seed=s) for s in self.seeds]
        self._ekfs = [AttitudePositionEKF() for _ in range(n)]
        self._sins = [StrapdownINS(gravity=base.gravity) for _ in range(n)]
        self._sins_gravity = np.array([0.0, 0.0, base.gravity])
        self._ahrs = [ComplementaryFilter() for _ in range(n)]
        self._ekf_timers = [
            {"gps": -np.inf, "baro": -np.inf, "mag": -np.inf, "accel": -np.inf}
            for _ in range(n)
        ]
        self._last_readings = [None] * n
        ekf_cfg = self._ekfs[0].config
        self._ekf_gravity_vec = np.array([0.0, 0.0, ekf_cfg.gravity])
        self._ekf_q_att = (ekf_cfg.gyro_noise * self.dt) ** 2
        self._ekf_q_vel = (ekf_cfg.accel_noise * self.dt) ** 2
        self._ekf_q_bias = (ekf_cfg.gyro_bias_noise * self.dt) ** 2
        self._ekf_Q = np.diag(
            [self._ekf_q_att] * 3 + [self._ekf_q_vel] * 3
            + [0.0] * 3 + [self._ekf_q_bias] * 3
        )

        # --- control ----------------------------------------------------
        atc = AttitudeController()
        self._angle_p = atc.angle_p
        self._rate_max = atc.rate_max
        pc = PositionController(hover_throttle=airframe.hover_throttle)
        self._hover_throttle = pc.hover_throttle
        self._ctrl_gravity = pc.gravity
        self._lean_max = pc.lean_angle_max
        self._accel_xy_max = pc.axis_x.accel_max
        self._accel_z_max = pc.axis_z.accel_max
        self._sqrt_x = _SqrtBank(n, pc.axis_x.pos_ctrl)
        self._sqrt_y = _SqrtBank(n, pc.axis_y.pos_ctrl)
        self._sqrt_z = _SqrtBank(n, pc.axis_z.pos_ctrl)
        self._pid_vel_x = _PidBank(n, pc.axis_x.vel_ctrl.gains, pc.axis_x.vel_ctrl.output_limit)
        self._pid_vel_y = _PidBank(n, pc.axis_y.vel_ctrl.gains, pc.axis_y.vel_ctrl.output_limit)
        self._pid_vel_z = _PidBank(n, pc.axis_z.vel_ctrl.gains, pc.axis_z.vel_ctrl.output_limit)
        self._pid_roll = _PidBank(n, atc.pid_roll.gains, atc.pid_roll.output_limit)
        self._pid_pitch = _PidBank(n, atc.pid_pitch.gains, atc.pid_pitch.output_limit)
        self._pid_yaw = _PidBank(n, atc.pid_yaw.gains, atc.pid_yaw.output_limit)
        #: Stabilizer-region variable owners the attacker's view can touch
        #: (PIDA is the vertical acceleration PID, as in Vehicle's map).
        self._pid_banks = {
            "PIDR": self._pid_roll, "PIDP": self._pid_pitch,
            "PIDY": self._pid_yaw, "PIDA": self._pid_vel_z,
        }
        self._mixer = MotorMixer(0.0, 1.0)
        self._torque = np.zeros((n, 3))

        # --- firmware ---------------------------------------------------
        self.params = ParameterStore()
        self.params.declare_all(arducopter_parameter_defs())
        self._modes = [ModeManager(FlightMode.STABILIZE) for _ in range(n)]
        self.missions: list[Mission | None] = [None] * n
        self._armed = np.zeros(n, dtype=bool)
        self._home = np.zeros((n, 3))
        self._guided_target: list[np.ndarray | None] = [None] * n
        self._yaw_target = [0.0] * n
        self._yaw_slew_rate = math.radians(60.0)
        self._last_targets = [AttitudeTargets() for _ in range(n)]
        self._manual_targets = [AttitudeTargets() for _ in range(n)]
        self.lanes = [_LaneVehicle(self, i) for i in range(n)]

        # Gust constants (python-float path identical to Environment.step).
        if self._gust_std > 0.0:
            decay = np.exp(-self.dt / self._gust_tau)
            self._gust_decay = decay
            self._gust_noise_scale = self._gust_std * np.sqrt(1.0 - decay**2)

    # ------------------------------------------------------------------ #
    # Flight state machine (mirrors Vehicle)
    # ------------------------------------------------------------------ #
    def lane(self, i: int) -> _LaneVehicle:
        """The vehicle-shaped adapter for lane ``i``."""
        return self.lanes[i]

    def arm(self) -> None:
        """Arm every lane; each lane's current position becomes home."""
        for i in range(self.n):
            self._armed[i] = True
            self._home[i] = self._pos[i].copy()

    def disarm(self) -> None:
        self._armed[:] = False

    def set_mission(self, factory) -> None:
        """Give every lane its own mission instance from ``factory()``."""
        for i in range(self.n):
            self.missions[i] = factory()

    def set_mode(self, mode: FlightMode) -> None:
        """Change flight mode on every lane."""
        for i in range(self.n):
            self._lane_set_mode(i, mode)

    def _lane_set_mode(self, i: int, mode: FlightMode) -> None:
        if mode is FlightMode.AUTO and self.missions[i] is None:
            raise MissionError("cannot enter AUTO without a mission")
        self._modes[i].set_mode(mode, self._time[i])
        if mode is FlightMode.AUTO and self.missions[i] is not None:
            if self.missions[i].status is MissionStatus.PENDING:
                self.missions[i].start()

    def set_guided_target(self, north: float, east: float, altitude: float) -> None:
        for i in range(self.n):
            self._guided_target[i] = np.array([north, east, -altitude])

    def takeoff(self, altitude: float, timeout: float = 30.0) -> list[bool]:
        """Arm and climb every lane to ``altitude``; per-lane success."""
        for i in range(self.n):
            if self._modes[i].mode is not FlightMode.GUIDED:
                self._lane_set_mode(i, FlightMode.GUIDED)
        self.arm()
        for i in range(self.n):
            start = self._pos[i]
            self._guided_target[i] = np.array(
                [float(start[0]), float(start[1]), -altitude]
            )
        self.run(
            timeout,
            stop_when=lambda v: abs(v.sim.vehicle.state.altitude - altitude)
            < TAKEOFF_ALT_TOLERANCE
            and float(np.linalg.norm(v.sim.vehicle.state.velocity))
            < TAKEOFF_VEL_TOLERANCE,
        )
        return [
            abs(-float(self._pos[i, 2]) - altitude) < TAKEOFF_SUCCESS_TOLERANCE
            for i in range(self.n)
        ]

    def run(self, duration: float, stop_when=None) -> None:
        """Run all lanes for ``duration`` seconds (per-lane early-out).

        Reproduces ``Vehicle.run`` per lane: each loop iteration checks
        the crash flag, then ``stop_when(lane)``, then steps. A lane that
        crashes or satisfies ``stop_when`` freezes — its clock and RNG
        streams stop exactly where the scalar run's would.
        """
        for lane in self.lanes:
            if lane.target_hooks or lane.torque_hooks:
                raise SimulationError(
                    "target/torque hooks are not vectorized; use the scalar engine"
                )
        steps = int(round(duration / self.dt))
        stopped = np.zeros(self.n, dtype=bool)
        for _ in range(steps):
            active: list[int] = []
            for i in range(self.n):
                if stopped[i]:
                    continue
                if self._crashed[i]:
                    stopped[i] = True
                    continue
                if stop_when is not None and stop_when(self.lanes[i]):
                    stopped[i] = True
                    continue
                active.append(i)
            if not active:
                break
            self.step_lanes(np.asarray(active, dtype=np.intp))

    # ------------------------------------------------------------------ #
    # One control cycle for a set of lanes
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Step every non-crashed lane once."""
        idx = np.flatnonzero(~self._crashed)
        if idx.size:
            self.step_lanes(idx)

    def step_lanes(self, idx: np.ndarray) -> None:
        """One full control cycle (sensors → estimate → control → physics)
        for the lanes in ``idx``, mirroring ``Vehicle.step``."""
        dt = self.dt
        self._estimation(idx)
        for i in idx:
            self._check_failsafes(int(i))
        for i in idx:
            lane = self.lanes[i]
            for hook in lane.pre_control_hooks:
                hook(lane)

        armed_idx = idx[self._armed[idx]]
        disarmed_idx = idx[~self._armed[idx]]
        if disarmed_idx.size:
            self._motor_cmd[disarmed_idx] = 0.0
        if armed_idx.size:
            self._control(armed_idx, dt)

        self._plant_step(idx)
        for i in idx:
            self._time[i] += dt
        self._step_count[idx] += 1

        for i in idx:
            lane = self.lanes[i]
            for hook in lane.post_step_hooks:
                hook(lane)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def _estimation(self, idx: np.ndarray) -> None:
        dt = self.dt
        readings_rows = []
        for i in idx:
            readings = self._sensors[i].sample(
                self.lanes[i].sim.vehicle, self._time[i], dt
            )
            self._last_readings[i] = readings
            readings_rows.append(readings)

        gyro = np.array([r.imu.gyro for r in readings_rows])
        accel = np.array([r.imu.accel for r in readings_rows])
        finite = np.isfinite(gyro).all(axis=1) & np.isfinite(accel).all(axis=1)
        self._ekf_predict(idx[finite], gyro[finite], accel[finite])
        for k in np.flatnonzero(~finite):
            ekf = self._ekfs[idx[k]]
            ekf.rejected_updates += 1
            ekf._metric_rejected.inc()

        self._sins_predict(idx[finite], gyro[finite], accel[finite])

        fin_rows = np.flatnonzero(finite)
        ahrs_row = {}
        if fin_rows.size:
            ahrs_q = _quat_integrate_cols(
                np.array([self._ahrs[int(idx[k])]._quat for k in fin_rows]),
                gyro[finite],
                dt,
            )
            ahrs_row = {int(k): j for j, k in enumerate(fin_rows)}

        for k, i in enumerate(idx):
            i = int(i)
            readings = readings_rows[k]
            imu = readings.imu
            imu_ok = bool(finite[k])
            if imu_ok:
                self._ahrs_update(
                    self._ahrs[i], ahrs_q[ahrs_row[k]], imu.gyro, imu.accel
                )
            time_s = self._time[i]
            timers = self._ekf_timers[i]
            ekf = self._ekfs[i]
            if time_s - timers["accel"] >= EKF_UPDATE_PERIODS["accel"]:
                ekf.update_accel_attitude(imu.accel)
                timers["accel"] = time_s
            if time_s - timers["mag"] >= EKF_UPDATE_PERIODS["mag"]:
                ekf.update_mag_yaw(readings.mag.field)
                timers["mag"] = time_s
            if time_s - timers["gps"] >= EKF_UPDATE_PERIODS["gps"]:
                ekf.update_gps(readings.gps.position, readings.gps.velocity)
                if bool(
                    np.isfinite(readings.gps.position).all()
                    and np.isfinite(readings.gps.velocity).all()
                ):
                    self._sins[i].correct_gps(
                        readings.gps.position, readings.gps.velocity
                    )
                timers["gps"] = time_s
            if time_s - timers["baro"] >= EKF_UPDATE_PERIODS["baro"]:
                ekf.update_baro(readings.baro.altitude)
                if math.isfinite(readings.baro.altitude):
                    self._sins[i].correct_baro(readings.baro.altitude)
                timers["baro"] = time_s

    @staticmethod
    def _ahrs_update(ahrs, q: np.ndarray, gyro: np.ndarray, accel: np.ndarray) -> None:
        """ComplementaryFilter.update (no mag), on the lane's filter state.

        ``q`` is the gyro-integrated quaternion (batched upstream via
        ``_quat_integrate_cols``); the accel correction and norms mirror
        the scalar filter, with ``math.sqrt(x.dot(x))`` bit-equal to
        ``np.linalg.norm``.
        """
        roll, pitch, yaw = quat_to_euler(q)
        accel_norm = float(math.sqrt(accel.dot(accel)))
        gyro_norm = float(math.sqrt(gyro.dot(gyro)))
        if 0.5 * 9.80665 < accel_norm < 1.5 * 9.80665 and gyro_norm < 1.0:
            accel_roll = math.atan2(-accel[1], -accel[2])
            accel_pitch = math.atan2(accel[0], math.hypot(accel[1], accel[2]))
            roll += ahrs.accel_gain * wrap_pi(accel_roll - roll)
            pitch += ahrs.accel_gain * wrap_pi(accel_pitch - pitch)
        ahrs._quat = quat_from_euler(roll, pitch, yaw)

    def _sins_predict(
        self, idx: np.ndarray, gyro: np.ndarray, accel: np.ndarray
    ) -> None:
        """Batched StrapdownINS.predict over the lanes in ``idx``.

        The attitude integration keeps the scalar ``quat_integrate`` call
        per lane (its norms do not batch bit-exactly); the rotate /
        gravity-compensate / integrate mechanisation is batched.
        """
        m = idx.size
        if not m:
            return
        dt = self.dt
        sinses = [self._sins[int(i)] for i in idx]
        quats = _quat_integrate_cols(
            np.array([sins._quat for sins in sinses]), gyro, dt
        )
        for k, sins in enumerate(sinses):
            sins._quat = quats[k]
        accel_world = _quat_rotate_cols(quats, accel) + self._sins_gravity
        dv = accel_world * dt
        vel = np.array([sins._velocity for sins in sinses]) + dv
        dp = vel * dt
        pos = np.array([sins._position for sins in sinses]) + dp
        for k, sins in enumerate(sinses):
            sins._velocity = vel[k]
            sins._position = pos[k]
            inter = sins.intermediates
            inter["ACC_N"] = float(accel_world[k, 0])
            inter["ACC_E"] = float(accel_world[k, 1])
            inter["ACC_D"] = float(accel_world[k, 2])
            inter["DV_N"] = float(dv[k, 0])
            inter["DV_E"] = float(dv[k, 1])
            inter["DV_D"] = float(dv[k, 2])
            inter["DP_N"] = float(dp[k, 0])
            inter["DP_E"] = float(dp[k, 1])
            inter["DP_D"] = float(dp[k, 2])

    def _ekf_predict(
        self, idx: np.ndarray, gyro: np.ndarray, accel: np.ndarray
    ) -> None:
        """Batched AttitudePositionEKF.predict over the lanes in ``idx``."""
        m = idx.size
        if not m:
            return
        dt = self.dt
        x = np.array([self._ekfs[i].x for i in idx])
        p = np.array([self._ekfs[i].P for i in idx])

        omega = gyro - x[:, 9:12]
        phi = x[:, 0]
        theta = x[:, 1]
        sphi = np.sin(phi)
        cphi = np.cos(phi)
        ctheta = np.cos(theta)
        # math.tan rounds differently from np.tan: keep the scalar call,
        # with the scalar gimbal-lock guard, per lane.
        ttheta = np.empty(m)
        for k in range(m):
            th = theta[k]
            ct = ctheta[k]
            if abs(ct) < 1e-3:
                ct = math.copysign(1e-3, ct if ct != 0.0 else 1.0)
                ctheta[k] = ct
                ttheta[k] = math.sin(th) / ct
            else:
                ttheta[k] = math.tan(th)

        er0 = omega[:, 0] + sphi * ttheta * omega[:, 1] + cphi * ttheta * omega[:, 2]
        er1 = cphi * omega[:, 1] - sphi * omega[:, 2]
        er2 = (sphi / ctheta) * omega[:, 1] + (cphi / ctheta) * omega[:, 2]
        x[:, 0] = x[:, 0] + er0 * dt
        x[:, 1] = x[:, 1] + er1 * dt
        x[:, 2] = x[:, 2] + er2 * dt
        x[:, 0] = _wrap_cols(x[:, 0])
        x[:, 2] = _wrap_cols(x[:, 2])

        dcm = _dcm_from_euler_cols(x[:, 0], x[:, 1], x[:, 2])
        f_ned = _matvec(dcm, accel)
        accel_ned = f_ned + self._ekf_gravity_vec
        x[:, 3:6] = x[:, 3:6] + accel_ned * dt
        x[:, 6:9] = x[:, 6:9] + x[:, 3:6] * dt

        f = np.tile(np.eye(12), (m, 1, 1))
        f[:, 6, 3] = dt
        f[:, 7, 4] = dt
        f[:, 8, 5] = dt
        f[:, 0, 9] = -dt
        f[:, 1, 10] = -dt
        f[:, 2, 11] = -dt
        f[:, 3, 1] = f_ned[:, 2] * dt
        f[:, 3, 2] = -f_ned[:, 1] * dt
        f[:, 4, 0] = -f_ned[:, 2] * dt
        f[:, 4, 2] = f_ned[:, 0] * dt
        f[:, 5, 0] = f_ned[:, 1] * dt
        f[:, 5, 1] = -f_ned[:, 0] * dt

        fp = f @ p
        ft = np.ascontiguousarray(f.transpose(0, 2, 1))
        p_new = fp @ ft + self._ekf_Q

        for k, i in enumerate(idx):
            ekf = self._ekfs[i]
            ekf.x = x[k]
            ekf.P = p_new[k]

    # ------------------------------------------------------------------ #
    # Failsafes (mirrors Vehicle._check_failsafes)
    # ------------------------------------------------------------------ #
    def _check_failsafes(self, i: int) -> None:
        if not self._armed[i] or self._modes[i].mode is FlightMode.LAND:
            return
        battery = self._batteries[i]
        params = self.params
        if battery.voltage <= params.get("BATT_CRT_VOLT") or battery.depleted:
            self._lane_set_mode(i, FlightMode.LAND)
            return
        if battery.voltage <= params.get("BATT_LOW_VOLT"):
            if (
                params.get("BATT_FS_LOW_ACT") >= 2.0
                and self._modes[i].mode is not FlightMode.RTL
            ):
                self._lane_set_mode(i, FlightMode.RTL)
                return
        if (
            params.get("FENCE_ENABLE") >= 1.0
            and self._modes[i].mode is not FlightMode.RTL
        ):
            position = self._pos[i]
            horizontal = float(np.hypot(
                position[0] - self._home[i][0], position[1] - self._home[i][1]
            ))
            breach = (
                horizontal > params.get("FENCE_RADIUS")
                or -float(position[2]) > params.get("FENCE_ALT_MAX")
            )
            if breach and params.get("FENCE_ACTION") >= 1.0:
                self._lane_set_mode(i, FlightMode.RTL)

    # ------------------------------------------------------------------ #
    # Control (navigation → position → attitude → mixer)
    # ------------------------------------------------------------------ #
    def _control(self, idx: np.ndarray, dt: float) -> None:
        m = idx.size
        # Estimated state, exactly as Vehicle.step reads it.
        pos_est = np.array([self._ekfs[i].x[6:9] for i in idx])
        vel_est = np.array([self._ekfs[i].x[3:6] for i in idx])
        roll_est = np.array([self._ekfs[i].x[0] for i in idx])
        pitch_est = np.array([self._ekfs[i].x[1] for i in idx])
        yaw_est = np.array([self._ekfs[i].x[2] for i in idx])
        gyro_rows = []
        for i in idx:
            readings = self._last_readings[i]
            gyro_rows.append(
                readings.imu.gyro if readings is not None else np.zeros(3)
            )
        gyro = np.array(gyro_rows)

        # Navigation (per-lane mode logic) → position setpoints.
        nav_rows: list[int] = []  # positions within idx that run the cascade
        sp_pos = np.zeros((m, 3))
        sp_yaw = np.zeros(m)
        for k, i in enumerate(idx):
            i = int(i)
            mode = self._modes[i].mode
            if mode is FlightMode.STABILIZE:
                continue  # manual targets; no position cascade
            if mode is FlightMode.GUIDED:
                target = (
                    self._guided_target[i]
                    if self._guided_target[i] is not None
                    else self._home[i]
                )
                yaw_sp = self._last_targets[i].yaw
            elif mode is FlightMode.AUTO:
                mission = self.missions[i]
                if mission is None:
                    raise MissionError("AUTO mode with no mission")
                position = self._ekfs[i].position
                wp = mission.update(position, self._time[i])
                desired_yaw = mission.desired_yaw(position)
                max_step = self._yaw_slew_rate * dt
                err = wrap_pi(desired_yaw - self._yaw_target[i])
                self._yaw_target[i] = wrap_pi(
                    self._yaw_target[i] + float(np.clip(err, -max_step, max_step))
                )
                target = wp.position
                yaw_sp = self._yaw_target[i]
            elif mode is FlightMode.RTL:
                rtl_alt = self.params.get("RTL_ALT")
                target = np.array(
                    [self._home[i][0], self._home[i][1], -rtl_alt]
                )
                yaw_sp = self._last_targets[i].yaw
            else:  # LAND
                land_speed = self.params.get("LAND_SPEED")
                position = self._ekfs[i].position
                target_down = position[2] + land_speed * 1.0
                target = np.array([position[0], position[1], target_down])
                yaw_sp = self._last_targets[i].yaw
            nav_rows.append(k)
            sp_pos[k] = target
            sp_yaw[k] = yaw_sp

        t_roll = np.zeros(m)
        t_pitch = np.zeros(m)
        t_yaw = np.zeros(m)
        t_thr = np.zeros(m)
        if nav_rows:
            rows = np.asarray(nav_rows, dtype=np.intp)
            nav_idx = idx[rows]
            accel_n = self._axis_update(
                self._sqrt_x, self._pid_vel_x, self._accel_xy_max, nav_idx,
                sp_pos[rows, 0], pos_est[rows, 0], vel_est[rows, 0], dt,
            )
            accel_e = self._axis_update(
                self._sqrt_y, self._pid_vel_y, self._accel_xy_max, nav_idx,
                sp_pos[rows, 1], pos_est[rows, 1], vel_est[rows, 1], dt,
            )
            accel_d = self._axis_update(
                self._sqrt_z, self._pid_vel_z, self._accel_z_max, nav_idx,
                sp_pos[rows, 2], pos_est[rows, 2], vel_est[rows, 2], dt,
            )
            yaw_rows = yaw_est[rows]
            cos_yaw = np.cos(yaw_rows)
            sin_yaw = np.sin(yaw_rows)
            accel_fwd = accel_n * cos_yaw + accel_e * sin_yaw
            accel_rgt = -accel_n * sin_yaw + accel_e * cos_yaw
            # math.atan2 rounds differently from np.arctan2: per lane.
            grav = self._ctrl_gravity
            lean = self._lean_max
            roll_t = np.empty(rows.size)
            pitch_t = np.empty(rows.size)
            for k in range(rows.size):
                pitch = -math.atan2(float(accel_fwd[k]), grav)
                pitch_t[k] = -lean if pitch < -lean else lean if pitch > lean else pitch
                roll = math.atan2(float(accel_rgt[k]), grav)
                roll_t[k] = -lean if roll < -lean else lean if roll > lean else roll
            tilt = np.cos(roll_t) * np.cos(pitch_t)
            tilt = np.maximum(tilt, 0.5)
            climb_accel = -accel_d
            throttle = self._hover_throttle * (1.0 + climb_accel / grav) / tilt
            throttle = np.clip(throttle, 0.0, 1.0)
            t_roll[rows] = roll_t
            t_pitch[rows] = pitch_t
            t_yaw[rows] = sp_yaw[rows]
            t_thr[rows] = throttle

        nav_set = set(nav_rows)
        for k, i in enumerate(idx):
            i = int(i)
            if k in nav_set:
                targets = AttitudeTargets(
                    roll=float(t_roll[k]), pitch=float(t_pitch[k]),
                    yaw=float(t_yaw[k]), throttle=float(t_thr[k]),
                )
            else:
                targets = self._manual_targets[i]
                t_roll[k] = targets.roll
                t_pitch[k] = targets.pitch
                t_yaw[k] = targets.yaw
                t_thr[k] = targets.throttle
            self._last_targets[i] = targets

        # Attitude controller (AttitudeController.update, batched).
        err_r = _wrap_cols(t_roll - roll_est)
        err_p = _wrap_cols(t_pitch - pitch_est)
        err_y = _wrap_cols(t_yaw - yaw_est)
        rt_r = np.clip(self._angle_p * err_r, -self._rate_max, self._rate_max)
        rt_p = np.clip(self._angle_p * err_p, -self._rate_max, self._rate_max)
        rt_y = np.clip(self._angle_p * err_y, -self._rate_max, self._rate_max)
        tq_r = np.clip(self._pid_roll.update(idx, rt_r, gyro[:, 0], dt), -1.0, 1.0)
        tq_p = np.clip(self._pid_pitch.update(idx, rt_p, gyro[:, 1], dt), -1.0, 1.0)
        tq_y = np.clip(self._pid_yaw.update(idx, rt_y, gyro[:, 2], dt), -1.0, 1.0)
        self._torque[idx, 0] = tq_r
        self._torque[idx, 1] = tq_p
        self._torque[idx, 2] = tq_y

        self._motor_cmd[idx] = self._mix_cols(t_thr, tq_r, tq_p, tq_y)

    def _mix_cols(
        self, thr: np.ndarray, tq_r: np.ndarray, tq_p: np.ndarray, tq_y: np.ndarray
    ) -> np.ndarray:
        """Batched MotorMixer.mix (all ops elementwise / exact comparisons).

        The saturation branches are evaluated with masks; ``np.where``
        selects exactly the branch the scalar mixer would take, and the
        divisions inside a discarded branch (0/0 etc.) are masked out.
        """
        mixer = self._mixer
        min_t = mixer.min_throttle
        max_t = mixer.max_throttle
        roll_f = mixer.ROLL_FACTORS
        pitch_f = mixer.PITCH_FACTORS
        yaw_f = mixer.YAW_FACTORS
        thr = np.clip(thr, 0.0, 1.0)
        headroom = np.minimum(thr - min_t, max_t - thr)
        mix = (
            roll_f * tq_r[:, None]
            + pitch_f * tq_p[:, None]
            + yaw_f * tq_y[:, None]
        )
        peak = np.max(np.abs(mix), axis=1)
        sat = (peak > headroom) & (peak > 0.0)
        if np.any(sat):
            rp_mix = roll_f * tq_r[sat, None] + pitch_f * tq_p[sat, None]
            rp_peak = np.max(np.abs(rp_mix), axis=1)
            hr = headroom[sat]
            rp_over = (rp_peak > hr) & (rp_peak > 0.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                rp_scaled = rp_mix * (hr / rp_peak)[:, None]
                yaw_hr = hr - rp_peak
                yaw_mix = yaw_f * tq_y[sat, None]
                yaw_peak = np.max(np.abs(yaw_mix), axis=1)
                yaw_over = (yaw_peak > yaw_hr) & (yaw_peak > 0.0)
                yaw_mix = np.where(
                    yaw_over[:, None],
                    yaw_mix * (yaw_hr / yaw_peak)[:, None],
                    yaw_mix,
                )
            mix[sat] = np.where(rp_over[:, None], rp_scaled, rp_mix + yaw_mix)
        return np.clip(thr[:, None] + mix, min_t, max_t)

    def _axis_update(
        self, sqrt_bank, vel_bank, accel_max, idx, pos_target, pos, vel, dt
    ) -> np.ndarray:
        """AxisCascade.update, batched."""
        vel_target = sqrt_bank.update(idx, pos_target, pos)
        raw_accel = vel_bank.update(idx, vel_target, vel, dt)
        return np.clip(raw_accel, -accel_max, accel_max)

    # ------------------------------------------------------------------ #
    # Plant (mirrors QuadrotorModel.step + Simulator.step)
    # ------------------------------------------------------------------ #
    def _plant_step(self, idx: np.ndarray) -> None:
        dt = self.dt
        cmds = np.clip(self._motor_cmd[idx], 0.0, 1.0)
        self._motor_cmd[idx] = cmds

        if self._gust_std > 0.0:
            noise = np.array(
                [self._env_rngs[int(i)].standard_normal(3) for i in idx]
            )
            self._gust[idx] = (
                self._gust_decay * self._gust[idx] + self._gust_noise_scale * noise
            )

        thrusts = self._thrusts[idx]
        target = cmds * self._max_thrust
        alpha = dt / (dt + self._motor_tc)
        thrusts = thrusts + alpha * (target - thrusts)
        self._thrusts[idx] = thrusts
        # Length-4 reductions done as sequential adds (== 1-D np.sum).
        total = thrusts[:, 0] + thrusts[:, 1] + thrusts[:, 2] + thrusts[:, 3]
        tx = -self._positions[:, 1] * thrusts
        tau_x = tx[:, 0] + tx[:, 1] + tx[:, 2] + tx[:, 3]
        ty = self._positions[:, 0] * thrusts
        tau_y = ty[:, 0] + ty[:, 1] + ty[:, 2] + ty[:, 3]
        tz = self._spin * thrusts * self._torque_coeff
        tau_z = tz[:, 0] + tz[:, 1] + tz[:, 2] + tz[:, 3]

        vel = self._vel[idx]
        quat = self._quat[idx]
        omega = self._omega[idx]
        wind = self._wind_mean + self._gust[idx]
        airspeed = vel - wind
        drag_world = -self._drag_coeff * airspeed
        force_body = np.zeros((idx.size, 3))
        force_body[:, 2] = -total
        thrust_world = _quat_rotate_cols(quat, force_body)
        force_world = thrust_world + drag_world + self._gravity_force
        torque_body = np.stack([tau_x, tau_y, tau_z], axis=1)
        torque_body = torque_body - self._ang_drag * omega

        altitude = -self._pos[idx, 2]
        rest = (
            (altitude <= self._ground + 1e-6)
            & (vel[:, 2] >= 0.0)
            & (total <= self._weight)
        )
        rest_lanes = idx[rest]
        if rest_lanes.size:
            self._landed[rest_lanes] = True
            self._pos[rest_lanes, 2] = -self._ground
            self._vel[rest_lanes] = 0.0
            self._omega[rest_lanes] = 0.0
            self._sfb[rest_lanes] = _quat_inverse_rotate_cols(
                self._quat[rest_lanes],
                np.tile(self._neg_gravity_world, (rest_lanes.size, 1)),
            )
            for k, i in enumerate(rest_lanes):
                self._battery_step(int(i), dt)

        dyn = ~rest
        dyn_lanes = idx[dyn]
        if not dyn_lanes.size:
            return
        total_d = total[dyn]
        unlatch = self._landed[dyn_lanes] & (total_d > self._weight)
        self._landed[dyn_lanes[unlatch]] = False

        omega_d = omega[dyn]
        i_omega = _matvec(self._inertia_b[: dyn_lanes.size], omega_d)
        gyroscopic = _cross_cols(omega_d, i_omega)
        omega_dot = _matvec(
            self._inertia_inv_b[: dyn_lanes.size], torque_body[dyn] - gyroscopic
        )
        omega_new = omega_d + omega_dot * dt
        self._quat[dyn_lanes] = _quat_integrate_cols(
            self._quat[dyn_lanes], omega_new, dt
        )
        self._omega[dyn_lanes] = omega_new
        accel = force_world[dyn] / self._mass
        vel_new = vel[dyn] + accel * dt
        self._vel[dyn_lanes] = vel_new
        self._pos[dyn_lanes] = self._pos[dyn_lanes] + vel_new * dt

        nongrav_world = thrust_world[dyn] + drag_world[dyn]
        self._sfb[dyn_lanes] = _quat_inverse_rotate_cols(
            self._quat[dyn_lanes], nongrav_world / self._mass
        )

        impact = np.flatnonzero(
            -self._pos[dyn_lanes, 2] < self._ground - 0.01
        )
        for k in impact:
            i = int(dyn_lanes[k])
            impact_speed = float(self._vel[i, 2])
            self._pos[i, 2] = -self._ground
            if impact_speed > 2.0 and not self._landed[i]:
                self._crashed[i] = True
                self._crash_reason[i] = f"ground impact at {impact_speed:.1f} m/s"
            self._vel[i] = 0.0
            self._omega[i] = 0.0
            self._landed[i] = True

        for i in dyn_lanes:
            i = int(i)
            self._battery_step(i, dt)
            if self._batteries[i].depleted and not self._landed[i]:
                self._motor_cmd[i] = 0.0

    def _battery_step(self, i: int, dt: float) -> None:
        cmd = self._motor_cmd[i]
        throttle_mean = (
            float(cmd[0]) + float(cmd[1]) + float(cmd[2]) + float(cmd[3])
        ) / 4.0
        self._batteries[i].step(throttle_mean, dt)
