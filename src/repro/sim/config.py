"""Simulation configuration and airframe presets.

Two virtual vehicles mirror the paper's evaluation targets: an IRIS+-like
quadrotor and a PX4/Pixhawk4-class frame (Section V-A). Both are X-frame
quadrotors differing in mass, geometry and motor authority.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["AirframeConfig", "SimConfig", "iris_plus_airframe", "pixhawk4_airframe"]


@dataclass
class AirframeConfig:
    """Physical description of one quadrotor airframe.

    Attributes
    ----------
    name:
        Human-readable frame identifier.
    mass:
        Take-off mass in kg.
    arm_length:
        Distance from the centre of gravity to each motor axis, metres.
    inertia_diag:
        Principal moments of inertia (Ixx, Iyy, Izz) in kg·m².
    motor_time_constant:
        First-order motor-response time constant, seconds.
    motor_max_thrust:
        Maximum thrust of a single motor, newtons.
    motor_torque_coeff:
        Yaw reaction torque per newton of thrust (m).
    linear_drag_coeff:
        Isotropic linear drag coefficient (N per m/s).
    angular_drag_coeff:
        Rotational damping coefficient (N·m per rad/s).
    max_tilt_rad:
        Structural tilt limit beyond which recovery is impossible; used by
        crash detection, not by the physics itself.
    """

    name: str
    mass: float
    arm_length: float
    inertia_diag: tuple[float, float, float]
    motor_time_constant: float
    motor_max_thrust: float
    motor_torque_coeff: float
    linear_drag_coeff: float
    angular_drag_coeff: float
    max_tilt_rad: float = np.deg2rad(80.0)

    def __post_init__(self) -> None:
        if self.mass <= 0.0:
            raise SimulationError(f"airframe mass must be positive, got {self.mass}")
        if self.arm_length <= 0.0:
            raise SimulationError("airframe arm length must be positive")
        if any(i <= 0.0 for i in self.inertia_diag):
            raise SimulationError("inertia diagonal entries must be positive")
        if self.motor_max_thrust * 4.0 <= self.mass * 9.80665:
            raise SimulationError(
                f"airframe '{self.name}' cannot hover: total max thrust "
                f"{self.motor_max_thrust * 4.0:.2f} N <= weight "
                f"{self.mass * 9.80665:.2f} N"
            )

    @property
    def inertia(self) -> np.ndarray:
        """3x3 inertia tensor (diagonal)."""
        return np.diag(self.inertia_diag)

    @property
    def hover_throttle(self) -> float:
        """Normalised per-motor throttle that balances gravity."""
        return self.mass * 9.80665 / (4.0 * self.motor_max_thrust)


def iris_plus_airframe() -> AirframeConfig:
    """3DR IRIS+-like quadrotor (the paper's primary vehicle)."""
    return AirframeConfig(
        name="IRIS+",
        mass=1.37,
        arm_length=0.26,
        inertia_diag=(0.0219, 0.0219, 0.0366),
        motor_time_constant=0.02,
        motor_max_thrust=9.0,
        motor_torque_coeff=0.016,
        linear_drag_coeff=0.35,
        angular_drag_coeff=0.003,
    )


def pixhawk4_airframe() -> AirframeConfig:
    """Pixhawk4/PX4 development-frame quadrotor (second evaluation vehicle)."""
    return AirframeConfig(
        name="Pixhawk4",
        mass=1.00,
        arm_length=0.22,
        inertia_diag=(0.0150, 0.0150, 0.0260),
        motor_time_constant=0.018,
        motor_max_thrust=7.0,
        motor_torque_coeff=0.014,
        linear_drag_coeff=0.30,
        angular_drag_coeff=0.0025,
    )


@dataclass
class SimConfig:
    """Global simulation settings.

    ``physics_hz`` is the integration rate; the firmware scheduler derives
    its 400 Hz control loop from the same clock (``SCHED_LOOP_RATE``).
    Reducing ``physics_hz`` (e.g. to 100 Hz for RL training) keeps all code
    paths identical while trading accuracy for speed.
    """

    physics_hz: float = 400.0
    gravity: float = 9.80665
    air_density: float = 1.225
    ground_altitude: float = 0.0
    seed: int | None = 0
    wind_mean: tuple[float, float, float] = (0.0, 0.0, 0.0)
    wind_gust_std: float = 0.0
    wind_gust_tau: float = 2.0
    airframe: AirframeConfig = field(default_factory=iris_plus_airframe)

    def __post_init__(self) -> None:
        if self.physics_hz <= 0.0:
            raise SimulationError("physics_hz must be positive")
        if self.gravity <= 0.0:
            raise SimulationError("gravity must be positive")
        if self.wind_gust_std < 0.0:
            raise SimulationError("wind gust std must be non-negative")
        if self.wind_gust_tau <= 0.0:
            raise SimulationError("wind gust time constant must be positive")

    @property
    def dt(self) -> float:
        """Physics integration step, seconds."""
        return 1.0 / self.physics_hz
