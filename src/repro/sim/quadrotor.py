"""Quadrotor plant: motors + rigid body + aerodynamic drag + ground contact."""

from __future__ import annotations

import numpy as np

from repro.sim.battery import Battery
from repro.sim.config import AirframeConfig, SimConfig
from repro.sim.environment import Environment
from repro.sim.motor import MotorArray
from repro.sim.rigidbody import RigidBody6DoF, RigidBodyState
from repro.utils.math3d import quat_inverse_rotate, quat_rotate

__all__ = ["QuadrotorModel"]


class QuadrotorModel:
    """X-frame quadrotor dynamics, the vehicle model Gazebo provides in
    the paper's testbed.

    The model exposes the physical truth the sensors sample: the rigid-body
    state and the specific force (what an accelerometer actually measures).
    """

    def __init__(self, config: SimConfig, environment: Environment | None = None):
        self.config = config
        self.airframe: AirframeConfig = config.airframe
        self.environment = environment or Environment(config)
        self.motors = MotorArray(self.airframe)
        self.body = RigidBody6DoF(self.airframe.mass, self.airframe.inertia)
        self.battery = Battery()
        self._specific_force_body = np.zeros(3)
        self._landed = True
        self._crashed = False
        self._crash_reason: str | None = None

    @property
    def state(self) -> RigidBodyState:
        """Ground-truth rigid-body state."""
        return self.body.state

    @property
    def specific_force_body(self) -> np.ndarray:
        """Non-gravitational acceleration in the body frame (m/s²).

        This is the ideal accelerometer signal: thrust + drag + contact
        forces divided by mass, excluding gravity.
        """
        return self._specific_force_body

    @property
    def landed(self) -> bool:
        """Whether the vehicle is resting on the ground."""
        return self._landed

    @property
    def crashed(self) -> bool:
        """Whether an unrecoverable impact has occurred."""
        return self._crashed

    @property
    def crash_reason(self) -> str | None:
        """Human-readable crash cause, if crashed."""
        return self._crash_reason

    def reset(self, position: np.ndarray | None = None, seed: int | None = None) -> None:
        """Return to rest at ``position`` (default: origin on the ground)."""
        state = RigidBodyState()
        if position is not None:
            state.position = np.asarray(position, dtype=float).copy()
        self.body.reset(state)
        self.motors.reset()
        self.battery.reset()
        self.environment.reset(seed)
        self._specific_force_body = np.zeros(3)
        self._landed = True
        self._crashed = False
        self._crash_reason = None

    def mark_crashed(self, reason: str) -> None:
        """Externally declare a crash (e.g. obstacle collision)."""
        self._crashed = True
        self._crash_reason = reason

    def step(self, motor_commands, dt: float) -> RigidBodyState:
        """Advance the plant one physics step.

        Parameters
        ----------
        motor_commands:
            Four normalised throttle commands in [0, 1].
        dt:
            Step size (s).
        """
        self.motors.set_commands(motor_commands)
        self.environment.step(dt)

        thrust_body, torque_body = self.motors.step(dt)
        state = self.body.state

        # Aerodynamics in the world frame.
        drag_world = self.environment.drag_force(
            state.velocity, self.airframe.linear_drag_coeff
        )
        thrust_world = quat_rotate(state.quaternion, thrust_body)
        gravity_world = self.environment.gravity_world * self.airframe.mass
        force_world = thrust_world + drag_world + gravity_world

        # Rotational damping in the body frame.
        torque_body = torque_body - self.airframe.angular_drag_coeff * state.omega_body

        # Ground contact: a stiff unilateral constraint. While landed and not
        # producing enough thrust to lift off, hold the vehicle still.
        altitude = state.altitude
        weight = self.airframe.mass * self.config.gravity
        total_thrust = float(self.motors.thrusts.sum())
        if altitude <= self.config.ground_altitude + 1e-6 and state.velocity[2] >= 0.0:
            if total_thrust <= weight:
                self._landed = True
                state.position[2] = -self.config.ground_altitude
                state.velocity[:] = 0.0
                state.omega_body[:] = 0.0
                self._specific_force_body = quat_inverse_rotate(
                    state.quaternion, -self.environment.gravity_world
                )
                self.battery.step(float(np.mean([m.command for m in self.motors.motors])), dt)
                return state
        if self._landed and total_thrust > weight:
            self._landed = False

        self.body.step(force_world, torque_body, dt)

        # Specific force excludes gravity — it is what the IMU feels.
        nongrav_world = thrust_world + drag_world
        self._specific_force_body = quat_inverse_rotate(
            state.quaternion, nongrav_world / self.airframe.mass
        )

        # Hard-impact crash detection: descending fast into the ground.
        if state.altitude < self.config.ground_altitude - 0.01:
            impact_speed = float(state.velocity[2])
            state.position[2] = -self.config.ground_altitude
            if impact_speed > 2.0 and not self._landed:
                self._crashed = True
                self._crash_reason = f"ground impact at {impact_speed:.1f} m/s"
            state.velocity[:] = 0.0
            state.omega_body[:] = 0.0
            self._landed = True

        self.battery.step(float(np.mean([m.command for m in self.motors.motors])), dt)
        if self.battery.depleted and not self._landed:
            self.motors.set_commands([0.0, 0.0, 0.0, 0.0])
        return state
