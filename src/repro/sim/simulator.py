"""Top-level simulation loop coupling the plant to a world and a clock."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.obs.metrics import get_registry
from repro.sim.config import SimConfig
from repro.sim.environment import Environment
from repro.sim.quadrotor import QuadrotorModel
from repro.sim.world import World

__all__ = ["Simulator"]


class Simulator:
    """Fixed-step simulator of one quadrotor in a static world.

    The firmware's scheduler calls :meth:`step` once per control cycle; the
    simulator advances the physics, checks world interactions (obstacle
    collisions, forbidden zones) and keeps the monotonic clock the logger
    and detectors time-stamp against.
    """

    def __init__(self, config: SimConfig | None = None, world: World | None = None):
        self.config = config or SimConfig()
        self.world = world or World(ground_altitude=self.config.ground_altitude)
        self.environment = Environment(self.config)
        self.vehicle = QuadrotorModel(self.config, self.environment)
        self._time = 0.0
        self._step_count = 0
        self._collision_callbacks: list[Callable[[str], None]] = []
        #: Optional repro.faults.ActuatorFaultInjector; None = healthy motors.
        self.actuator_faults = None
        # Telemetry instruments are resolved once here so the 400 Hz step
        # loop pays exactly one float add per event.
        registry = get_registry()
        self._metric_steps = registry.counter("sim.steps")
        self._metric_crashes = registry.counter("sim.crashes")

    @property
    def time(self) -> float:
        """Simulation time in seconds."""
        return self._time

    @property
    def step_count(self) -> int:
        """Number of physics steps taken since reset."""
        return self._step_count

    @property
    def dt(self) -> float:
        """Physics step size (s)."""
        return self.config.dt

    def on_collision(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the crash reason on impact."""
        self._collision_callbacks.append(callback)

    def reset(self, position: np.ndarray | None = None, seed: int | None = None) -> None:
        """Return the vehicle to rest and zero the clock."""
        self.vehicle.reset(position=position, seed=seed)
        self._time = 0.0
        self._step_count = 0
        if self.actuator_faults is not None:
            self.actuator_faults.reset()

    def step(self, motor_commands) -> None:
        """Advance one physics step with the given motor commands."""
        if self.actuator_faults is not None:
            motor_commands = self.actuator_faults.apply(
                motor_commands, self._time, self.dt
            )
        self.vehicle.step(motor_commands, self.dt)
        self._time += self.dt
        self._step_count += 1
        self._metric_steps.inc()

        position = self.vehicle.state.position
        obstacle = self.world.collided(position)
        if obstacle is not None and not self.vehicle.crashed:
            reason = f"collision with obstacle '{obstacle.name}'"
            self.vehicle.mark_crashed(reason)
            self._metric_crashes.inc()
            for callback in self._collision_callbacks:
                callback(reason)

    def run(self, controller: Callable[[float], np.ndarray], duration: float) -> None:
        """Run ``controller(time) -> motor_commands`` for ``duration`` seconds.

        Stops early on a crash. Useful for open-loop tests; the firmware
        layer provides the real closed-loop driver.
        """
        steps = int(round(duration / self.dt))
        for _ in range(steps):
            if self.vehicle.crashed:
                break
            self.step(controller(self._time))
