"""Environmental effects: gravity, wind and gusts.

Gusts follow an Ornstein–Uhlenbeck process so the disturbance spectrum is
realistic (correlated over ``wind_gust_tau`` seconds) — this is what forces
the detectors' thresholds to tolerate transient error, the slack ARES'
stealthy attacks live inside (Section III-A).
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import SimConfig
from repro.utils.rng import make_rng

__all__ = ["Environment"]


class Environment:
    """Gravity and stochastic wind for one simulation run."""

    def __init__(self, config: SimConfig):
        self.config = config
        self._rng = make_rng(config.seed)
        self._gust = np.zeros(3)

    @property
    def gravity_world(self) -> np.ndarray:
        """Gravity acceleration in NED (positive down)."""
        return np.array([0.0, 0.0, self.config.gravity])

    @property
    def wind(self) -> np.ndarray:
        """Current wind velocity in the world frame (m/s)."""
        return np.asarray(self.config.wind_mean) + self._gust

    def reset(self, seed: int | None = None) -> None:
        """Restart gusts (optionally re-seeding)."""
        if seed is not None:
            self._rng = make_rng(seed)
        self._gust = np.zeros(3)

    def step(self, dt: float) -> None:
        """Advance the gust process one step."""
        std = self.config.wind_gust_std
        if std <= 0.0:
            return
        tau = self.config.wind_gust_tau
        decay = np.exp(-dt / tau)
        noise_scale = std * np.sqrt(1.0 - decay**2)
        self._gust = decay * self._gust + noise_scale * self._rng.standard_normal(3)

    def drag_force(self, velocity_world: np.ndarray, drag_coeff: float) -> np.ndarray:
        """Linear drag opposing airspeed (velocity relative to the wind)."""
        airspeed = velocity_world - self.wind
        return -drag_coeff * airspeed
