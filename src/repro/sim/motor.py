"""Motor and propulsion models.

Each motor is a first-order lag from commanded throttle to produced thrust
plus a yaw reaction torque proportional to thrust. This captures the two
properties the attacks exercise: actuation latency (gradual manipulations
ride inside it) and saturation (naive attacks slam into it).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.math3d import constrain

__all__ = ["Motor", "MotorArray", "MOTOR_LAYOUT", "MOTOR_SPIN"]

#: Unit positions of each motor in the body X/Y plane for the QUAD/X frame
#: (front-right, back-left, front-left, back-right); scaled by arm length.
MOTOR_LAYOUT = np.array(
    [
        [0.7071, 0.7071],
        [-0.7071, -0.7071],
        [0.7071, -0.7071],
        [-0.7071, 0.7071],
    ]
)

#: +1 for CCW props (positive yaw reaction), -1 for CW.
MOTOR_SPIN = np.array([-1.0, -1.0, 1.0, 1.0])


class Motor:
    """Single brushless motor + ESC + propeller.

    Parameters
    ----------
    max_thrust:
        Thrust at full throttle, newtons.
    time_constant:
        First-order response time constant, seconds.
    torque_coeff:
        Reaction torque per newton of thrust (metres); sign applied by
        :class:`MotorArray` per spin direction.
    """

    def __init__(self, max_thrust: float, time_constant: float, torque_coeff: float):
        if max_thrust <= 0.0:
            raise SimulationError("max_thrust must be positive")
        if time_constant <= 0.0:
            raise SimulationError("time_constant must be positive")
        self.max_thrust = max_thrust
        self.time_constant = time_constant
        self.torque_coeff = torque_coeff
        self._thrust = 0.0
        self._command = 0.0

    @property
    def thrust(self) -> float:
        """Current produced thrust, newtons."""
        return self._thrust

    @property
    def command(self) -> float:
        """Last commanded throttle in [0, 1]."""
        return self._command

    def reset(self) -> None:
        """Spin down instantly (used between episodes)."""
        self._thrust = 0.0
        self._command = 0.0

    def set_command(self, throttle: float) -> None:
        """Command a throttle fraction; values outside [0, 1] are clamped."""
        self._command = constrain(float(throttle), 0.0, 1.0)

    def step(self, dt: float) -> float:
        """Advance the first-order lag by ``dt`` and return thrust (N)."""
        target = self._command * self.max_thrust
        alpha = dt / (dt + self.time_constant)
        self._thrust += alpha * (target - self._thrust)
        return self._thrust


class MotorArray:
    """Four motors in ArduPilot X-quad layout.

    Motor positions (body FRD frame, viewed from above)::

        3(CCW)   1(CW)
             \\ /
             / \\
        2(CW)   4(CCW)

    Index order matches ArduPilot's QUAD/X: motor 1 front-right, motor 2
    back-left, motor 3 front-left, motor 4 back-right. Spin directions
    alternate so yaw torque can be commanded differentially.
    """

    _LAYOUT = MOTOR_LAYOUT
    _SPIN = MOTOR_SPIN

    def __init__(self, airframe) -> None:
        self.airframe = airframe
        self.motors = [
            Motor(
                max_thrust=airframe.motor_max_thrust,
                time_constant=airframe.motor_time_constant,
                torque_coeff=airframe.motor_torque_coeff,
            )
            for _ in range(4)
        ]
        self._positions = self._LAYOUT * airframe.arm_length

    def __len__(self) -> int:
        return len(self.motors)

    def reset(self) -> None:
        """Spin down all motors."""
        for motor in self.motors:
            motor.reset()

    def set_commands(self, throttles) -> None:
        """Command all four throttles at once."""
        if len(throttles) != 4:
            raise SimulationError(f"expected 4 throttle commands, got {len(throttles)}")
        for motor, throttle in zip(self.motors, throttles):
            motor.set_command(throttle)

    @property
    def thrusts(self) -> np.ndarray:
        """Current per-motor thrusts (N)."""
        return np.array([m.thrust for m in self.motors])

    def step(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Advance motor dynamics, returning body force and torque.

        Returns
        -------
        force_body:
            Total thrust vector in the body frame (FRD: thrust is -Z).
        torque_body:
            Roll/pitch moments from thrust differentials plus yaw reaction.
        """
        thrusts = np.array([m.step(dt) for m in self.motors])
        total_thrust = float(thrusts.sum())
        force_body = np.array([0.0, 0.0, -total_thrust])

        # Roll torque: right-side motors push the left wing down (negative
        # body-Y positions roll positive). tau = sum(-y_i * T_i) for roll
        # about X... with FRD and thrust along -Z: tau_x = sum(-(-T) * y)?
        # Derive from r x F with F = (0, 0, -T):
        #   r x F = (y*(-T) - 0, 0 - x*(-T), 0) = (-y*T, x*T, 0)
        tau_x = float(np.sum(-self._positions[:, 1] * thrusts))
        tau_y = float(np.sum(self._positions[:, 0] * thrusts))
        tau_z = float(
            np.sum(self._SPIN * thrusts * self.airframe.motor_torque_coeff)
        )
        return force_body, np.array([tau_x, tau_y, tau_z])
