"""Battery model.

The paper's uncontrolled-failure outcome ends with the drone "eventually
crash[ing] after draining the battery"; the battery model provides that
terminal condition plus the CURR dataflash log fields (voltage, current).
"""

from __future__ import annotations

from repro.exceptions import SimulationError
from repro.utils.math3d import constrain

__all__ = ["Battery"]


class Battery:
    """LiPo battery with linear voltage sag and coulomb counting."""

    def __init__(
        self,
        capacity_mah: float = 5100.0,
        cells: int = 3,
        full_cell_voltage: float = 4.2,
        empty_cell_voltage: float = 3.3,
        base_current_a: float = 0.6,
        max_current_a: float = 60.0,
    ):
        if capacity_mah <= 0.0:
            raise SimulationError("battery capacity must be positive")
        if cells < 1:
            raise SimulationError("battery needs at least one cell")
        if empty_cell_voltage >= full_cell_voltage:
            raise SimulationError("empty voltage must be below full voltage")
        self.capacity_mah = capacity_mah
        self.cells = cells
        self.full_cell_voltage = full_cell_voltage
        self.empty_cell_voltage = empty_cell_voltage
        self.base_current_a = base_current_a
        self.max_current_a = max_current_a
        self._consumed_mah = 0.0
        self._current_a = base_current_a

    @property
    def remaining_fraction(self) -> float:
        """State of charge in [0, 1]."""
        return constrain(1.0 - self._consumed_mah / self.capacity_mah, 0.0, 1.0)

    @property
    def voltage(self) -> float:
        """Pack voltage under the linear sag model."""
        cell = self.empty_cell_voltage + self.remaining_fraction * (
            self.full_cell_voltage - self.empty_cell_voltage
        )
        return cell * self.cells

    @property
    def current(self) -> float:
        """Most recent draw (A)."""
        return self._current_a

    @property
    def consumed_mah(self) -> float:
        """Charge consumed so far (mAh)."""
        return self._consumed_mah

    @property
    def depleted(self) -> bool:
        """True once the pack is fully drained."""
        return self.remaining_fraction <= 0.0

    def reset(self) -> None:
        """Recharge to full."""
        self._consumed_mah = 0.0
        self._current_a = self.base_current_a

    def step(self, throttle_fraction: float, dt: float) -> None:
        """Advance consumption for one step.

        ``throttle_fraction`` is the mean normalised motor command; draw
        scales with its square (propeller power curve approximation).
        """
        throttle_fraction = constrain(throttle_fraction, 0.0, 1.0)
        self._current_a = self.base_current_a + (
            self.max_current_a - self.base_current_a
        ) * throttle_fraction**2
        self._consumed_mah += self._current_a * dt / 3.6  # A*s -> mAh
