"""World geometry: waypoint paths, obstacles and forbidden zones.

The RL reward functions (Eqs. 4 and 5) are defined over distances to the
mission path and to forbidden-zone surfaces; this module provides those
geometric queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MissionError

__all__ = ["BoxObstacle", "World", "point_segment_distance", "path_distance"]


def point_segment_distance(
    point: np.ndarray, seg_a: np.ndarray, seg_b: np.ndarray
) -> float:
    """Euclidean distance from ``point`` to the segment ``[seg_a, seg_b]``."""
    ab = seg_b - seg_a
    ab_len_sq = float(np.dot(ab, ab))
    if ab_len_sq < 1e-12:
        return float(np.linalg.norm(point - seg_a))
    t = float(np.dot(point - seg_a, ab)) / ab_len_sq
    t = max(0.0, min(1.0, t))
    closest = seg_a + t * ab
    return float(np.linalg.norm(point - closest))


def path_distance(point: np.ndarray, waypoints: list[np.ndarray]) -> float:
    """Minimum distance from ``point`` to the polyline through ``waypoints``.

    This is the observation ``d = min ||P_RV - Pth||`` of the uncontrolled
    failure case (Section V-D1).
    """
    if len(waypoints) == 0:
        raise MissionError("path_distance requires at least one waypoint")
    if len(waypoints) == 1:
        return float(np.linalg.norm(point - waypoints[0]))
    return min(
        point_segment_distance(point, waypoints[i], waypoints[i + 1])
        for i in range(len(waypoints) - 1)
    )


@dataclass
class BoxObstacle:
    """Axis-aligned box obstacle / forbidden zone in NED coordinates."""

    name: str
    min_corner: np.ndarray
    max_corner: np.ndarray

    def __post_init__(self) -> None:
        self.min_corner = np.asarray(self.min_corner, dtype=float)
        self.max_corner = np.asarray(self.max_corner, dtype=float)
        if self.min_corner.shape != (3,) or self.max_corner.shape != (3,):
            raise MissionError("obstacle corners must be 3-vectors")
        if np.any(self.min_corner >= self.max_corner):
            raise MissionError(
                f"obstacle '{self.name}' has inverted corners: "
                f"{self.min_corner} !< {self.max_corner}"
            )

    @property
    def center(self) -> np.ndarray:
        """Geometric centre of the box."""
        return (self.min_corner + self.max_corner) / 2.0

    def contains(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies inside (or on) the box."""
        return bool(
            np.all(point >= self.min_corner) and np.all(point <= self.max_corner)
        )

    def distance(self, point: np.ndarray) -> float:
        """Distance from ``point`` to the box surface (0 inside)."""
        clamped = np.minimum(np.maximum(point, self.min_corner), self.max_corner)
        return float(np.linalg.norm(point - clamped))


class World:
    """Static scene: ground plane, obstacles, forbidden zones."""

    def __init__(
        self,
        ground_altitude: float = 0.0,
        obstacles: list[BoxObstacle] | None = None,
        forbidden_zones: list[BoxObstacle] | None = None,
    ):
        self.ground_altitude = ground_altitude
        self.obstacles = list(obstacles or [])
        self.forbidden_zones = list(forbidden_zones or [])

    def add_obstacle(self, obstacle: BoxObstacle) -> None:
        """Register a solid obstacle (collision ends the flight)."""
        self.obstacles.append(obstacle)

    def add_forbidden_zone(self, zone: BoxObstacle) -> None:
        """Register a no-fly zone (entry is a mission violation)."""
        self.forbidden_zones.append(zone)

    def on_ground(self, position: np.ndarray, tolerance: float = 0.02) -> bool:
        """Whether the NED position is at or below ground level."""
        return float(-position[2]) <= self.ground_altitude + tolerance

    def collided(self, position: np.ndarray) -> BoxObstacle | None:
        """Return the obstacle containing ``position``, if any."""
        for obstacle in self.obstacles:
            if obstacle.contains(position):
                return obstacle
        return None

    def in_forbidden_zone(self, position: np.ndarray) -> BoxObstacle | None:
        """Return the forbidden zone containing ``position``, if any."""
        for zone in self.forbidden_zones:
            if zone.contains(position):
                return zone
        return None

    def nearest_forbidden_distance(self, position: np.ndarray) -> float:
        """Distance to the closest forbidden-zone surface (inf if none)."""
        if not self.forbidden_zones:
            return float("inf")
        return min(zone.distance(position) for zone in self.forbidden_zones)
