"""Quadrotor physics simulation substrate (stands in for ArduPilot SITL + Gazebo)."""

from repro.sim.battery import Battery
from repro.sim.config import (
    AirframeConfig,
    SimConfig,
    iris_plus_airframe,
    pixhawk4_airframe,
)
from repro.sim.environment import Environment
from repro.sim.motor import Motor, MotorArray
from repro.sim.quadrotor import QuadrotorModel
from repro.sim.rigidbody import RigidBody6DoF, RigidBodyState
from repro.sim.simulator import Simulator
from repro.sim.world import BoxObstacle, World, path_distance, point_segment_distance

__all__ = [
    "AirframeConfig",
    "Battery",
    "BoxObstacle",
    "Environment",
    "Motor",
    "MotorArray",
    "QuadrotorModel",
    "RigidBody6DoF",
    "RigidBodyState",
    "SimConfig",
    "Simulator",
    "VectorizedFleet",
    "World",
    "iris_plus_airframe",
    "path_distance",
    "pixhawk4_airframe",
    "point_segment_distance",
]


def __getattr__(name: str):
    # Imported lazily: the fleet pulls in firmware modules, which would
    # otherwise make ``repro.sim`` ↔ ``repro.firmware`` circular.
    if name == "VectorizedFleet":
        from repro.sim.vectorized import VectorizedFleet

        return VectorizedFleet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
