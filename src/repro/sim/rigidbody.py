"""6-DoF rigid-body dynamics.

State is (position, velocity) in the NED world frame plus (attitude
quaternion, angular velocity) with angular velocity in the body frame.
Integration is semi-implicit Euler for the translational states and the
exact exponential map for attitude, which is stable at the 400 Hz step and
cheap enough for RL training loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.math3d import (
    quat_identity,
    quat_integrate,
    quat_rotate,
    quat_to_euler,
)

__all__ = ["RigidBodyState", "RigidBody6DoF"]


@dataclass
class RigidBodyState:
    """Snapshot of the rigid-body state.

    Attributes
    ----------
    position:
        NED position (m); altitude above ground is ``-position[2]``.
    velocity:
        NED velocity (m/s).
    quaternion:
        Body→world unit quaternion, scalar first.
    omega_body:
        Angular velocity in the body frame (rad/s).
    """

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    quaternion: np.ndarray = field(default_factory=quat_identity)
    omega_body: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def copy(self) -> "RigidBodyState":
        """Deep copy (the arrays are duplicated)."""
        return RigidBodyState(
            position=self.position.copy(),
            velocity=self.velocity.copy(),
            quaternion=self.quaternion.copy(),
            omega_body=self.omega_body.copy(),
        )

    @property
    def euler(self) -> tuple[float, float, float]:
        """(roll, pitch, yaw) in radians."""
        return quat_to_euler(self.quaternion)

    @property
    def altitude(self) -> float:
        """Height above the NED origin plane (m, positive up)."""
        return -float(self.position[2])


class RigidBody6DoF:
    """Newton–Euler rigid body with a diagonal inertia tensor."""

    def __init__(self, mass: float, inertia: np.ndarray):
        if mass <= 0.0:
            raise SimulationError(f"mass must be positive, got {mass}")
        inertia = np.asarray(inertia, dtype=float)
        if inertia.shape != (3, 3):
            raise SimulationError("inertia must be a 3x3 matrix")
        if np.any(np.diag(inertia) <= 0.0):
            raise SimulationError("inertia diagonal must be positive")
        self.mass = mass
        self.inertia = inertia
        self._inertia_inv = np.linalg.inv(inertia)
        self.state = RigidBodyState()

    def reset(self, state: RigidBodyState | None = None) -> None:
        """Restore a given state (or the origin at rest)."""
        self.state = state.copy() if state is not None else RigidBodyState()

    def step(
        self,
        force_world: np.ndarray,
        torque_body: np.ndarray,
        dt: float,
    ) -> RigidBodyState:
        """Advance the state by ``dt`` under the given force and torque.

        Parameters
        ----------
        force_world:
            Net force in the world frame (N) — gravity, rotated thrust, drag.
        torque_body:
            Net torque in the body frame (N·m).
        dt:
            Step size (s).
        """
        if dt <= 0.0:
            raise SimulationError(f"dt must be positive, got {dt}")
        s = self.state

        # Rotational dynamics: I*domega = tau - omega x (I*omega)
        omega = s.omega_body
        gyroscopic = np.cross(omega, self.inertia @ omega)
        omega_dot = self._inertia_inv @ (torque_body - gyroscopic)
        omega_new = omega + omega_dot * dt
        s.quaternion = quat_integrate(s.quaternion, omega_new, dt)
        s.omega_body = omega_new

        # Translational dynamics (semi-implicit: velocity first).
        accel = force_world / self.mass
        s.velocity = s.velocity + accel * dt
        s.position = s.position + s.velocity * dt
        return s

    def body_to_world(self, v_body: np.ndarray) -> np.ndarray:
        """Rotate a body-frame vector into the world frame."""
        return quat_rotate(self.state.quaternion, v_body)
