"""ASCII chart rendering for figure reproductions.

The paper's figures are line charts, histograms and heat maps; with no
plotting stack available offline, the experiment `render()` methods use
these text charts so the reproduced series are actually *visible* in test
and bench output.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "line_chart", "histogram", "bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line miniature of a series (resampled to ``width`` columns)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).round().astype(int)
        arr = arr[idx]
    lo, hi = float(np.nanmin(arr)), float(np.nanmax(arr))
    if not math.isfinite(lo) or not math.isfinite(hi):
        return "?" * len(arr)
    span = hi - lo
    out = []
    for v in arr:
        if not math.isfinite(v):
            out.append(" ")
            continue
        level = 0 if span == 0 else int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart.

    ``series`` maps a label to ``(x, y)``; each series is drawn with the
    first character of its label. Axes are annotated with min/max values.
    """
    if not series:
        return "(no data)"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    finite = np.isfinite(xs_all) & np.isfinite(ys_all)
    if not finite.any():
        return "(no finite data)"
    x_lo, x_hi = float(xs_all[finite].min()), float(xs_all[finite].max())
    y_lo, y_hi = float(ys_all[finite].min()), float(ys_all[finite].max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, (x, y) in series.items():
        marker = label[0]
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        for xi, yi in zip(x, y):
            if not (math.isfinite(xi) and math.isfinite(yi)):
                continue
            col = int((xi - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yi - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if y_label:
        lines.append(f"  {y_label}")
    lines.append(f"  {y_hi:>10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("             │" + "".join(row))
    lines.append(f"  {y_lo:>10.3g} ┤" + "".join(grid[-1]))
    lines.append("             └" + "─" * width)
    lines.append(f"              {x_lo:<10.3g}" + " " * max(0, width - 20) + f"{x_hi:>10.3g}")
    legend = "   ".join(f"{label[0]}={label}" for label in series)
    lines.append(f"  {legend}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float], bins: int = 10, width: int = 40, title: str = ""
) -> str:
    """Horizontal ASCII histogram."""
    arr = np.asarray(list(values), dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return "(no data)"
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(count / peak * width))
        lines.append(f"  [{lo:>10.3g}, {hi:>10.3g})  {bar} {count}")
    return "\n".join(lines)


def bar_chart(items: Mapping[str, float], width: int = 40, title: str = "") -> str:
    """Labelled horizontal bar chart (non-negative values)."""
    if not items:
        return "(no data)"
    peak = max(max(items.values()), 1e-12)
    label_width = max(len(k) for k in items)
    lines = [title] if title else []
    for label, value in items.items():
        bar = "█" * int(round(max(value, 0.0) / peak * width))
        lines.append(f"  {label:<{label_width}s}  {bar} {value:.4g}")
    return "\n".join(lines)
