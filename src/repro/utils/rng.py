"""Seeded random-number helpers.

Every stochastic component in the library (sensor noise, wind gusts, RL
exploration) draws from an explicitly seeded :class:`numpy.random.Generator`
so that simulations, tests and benchmarks are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rng"]


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a generator from ``seed`` (``None`` gives OS entropy)."""
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The label is hashed into the child seed so distinct subsystems
    (e.g. "imu" vs "gps") get decorrelated streams even when spawned from
    the same parent in a different order across code versions.
    """
    label_seed = abs(hash(label)) % (2**31)
    child_seed = int(rng.integers(0, 2**31)) ^ label_seed
    return np.random.default_rng(child_seed)
