"""3-D rotation math used across the simulator and estimators.

Conventions
-----------
* World frame: NED (north, east, down).
* Body frame: FRD (forward, right, down).
* Euler angles: intrinsic Z-Y-X (yaw ``psi``, pitch ``theta``, roll ``phi``),
  the aerospace convention ArduPilot uses.
* Quaternions: scalar-first ``[w, x, y, z]``, unit norm, representing the
  rotation from body frame to world frame.

All functions accept and return plain :class:`numpy.ndarray` objects so they
compose with the vectorised simulation loop.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "wrap_pi",
    "wrap_2pi",
    "deg2rad",
    "rad2deg",
    "quat_identity",
    "quat_normalize",
    "quat_multiply",
    "quat_conjugate",
    "quat_rotate",
    "quat_inverse_rotate",
    "quat_from_euler",
    "quat_to_euler",
    "quat_to_dcm",
    "dcm_to_quat",
    "dcm_from_euler",
    "euler_from_dcm",
    "quat_derivative",
    "quat_integrate",
    "skew",
    "angle_between",
    "constrain",
    "vector_norm",
]


def wrap_pi(angle: float | np.ndarray) -> float | np.ndarray:
    """Wrap an angle (rad) into ``[-pi, pi)``."""
    return (np.asarray(angle) + np.pi) % (2.0 * np.pi) - np.pi if isinstance(
        angle, np.ndarray
    ) else (angle + math.pi) % (2.0 * math.pi) - math.pi


def wrap_2pi(angle: float) -> float:
    """Wrap an angle (rad) into ``[0, 2*pi)``."""
    return angle % (2.0 * math.pi)


def deg2rad(deg: float | np.ndarray) -> float | np.ndarray:
    """Convert degrees to radians."""
    return np.deg2rad(deg) if isinstance(deg, np.ndarray) else math.radians(deg)


def rad2deg(rad: float | np.ndarray) -> float | np.ndarray:
    """Convert radians to degrees."""
    return np.rad2deg(rad) if isinstance(rad, np.ndarray) else math.degrees(rad)


def constrain(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"constrain bounds inverted: low={low} > high={high}")
    return low if value < low else high if value > high else value


def vector_norm(v: np.ndarray) -> float:
    """Euclidean norm of a vector (convenience wrapper)."""
    return float(np.linalg.norm(v))


def quat_identity() -> np.ndarray:
    """Identity quaternion ``[1, 0, 0, 0]``."""
    return np.array([1.0, 0.0, 0.0, 0.0])


def quat_normalize(q: np.ndarray) -> np.ndarray:
    """Return ``q`` scaled to unit norm.

    Raises
    ------
    ValueError
        If the quaternion has (near-)zero norm and cannot be normalised.
    """
    norm = np.linalg.norm(q)
    if norm < 1e-12:
        raise ValueError("cannot normalise near-zero quaternion")
    return q / norm


def quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product ``q1 ⊗ q2`` (apply ``q2`` first, then ``q1``)."""
    w1, x1, y1, z1 = q1
    w2, x2, y2, z2 = q2
    return np.array(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ]
    )


def quat_conjugate(q: np.ndarray) -> np.ndarray:
    """Quaternion conjugate (inverse for unit quaternions)."""
    return np.array([q[0], -q[1], -q[2], -q[3]])


def quat_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate body-frame vector ``v`` into the world frame by ``q``.

    Uses the expanded sandwich product, avoiding two full quaternion
    multiplications.
    """
    w = q[0]
    u = q[1:]
    return v + 2.0 * np.cross(u, np.cross(u, v) + w * v)


def quat_inverse_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate world-frame vector ``v`` into the body frame by ``q``."""
    return quat_rotate(quat_conjugate(q), v)


def quat_from_euler(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Build a body→world quaternion from Z-Y-X Euler angles (rad)."""
    cr, sr = math.cos(roll / 2.0), math.sin(roll / 2.0)
    cp, sp = math.cos(pitch / 2.0), math.sin(pitch / 2.0)
    cy, sy = math.cos(yaw / 2.0), math.sin(yaw / 2.0)
    return np.array(
        [
            cy * cp * cr + sy * sp * sr,
            cy * cp * sr - sy * sp * cr,
            cy * sp * cr + sy * cp * sr,
            sy * cp * cr - cy * sp * sr,
        ]
    )


def quat_to_euler(q: np.ndarray) -> tuple[float, float, float]:
    """Extract ``(roll, pitch, yaw)`` in radians from a unit quaternion.

    Pitch is clamped to ``[-pi/2, pi/2]`` at the gimbal-lock singularity.
    """
    w, x, y, z = q
    roll = math.atan2(2.0 * (w * x + y * z), 1.0 - 2.0 * (x * x + y * y))
    sin_pitch = 2.0 * (w * y - z * x)
    sin_pitch = max(-1.0, min(1.0, sin_pitch))
    pitch = math.asin(sin_pitch)
    yaw = math.atan2(2.0 * (w * z + x * y), 1.0 - 2.0 * (y * y + z * z))
    return roll, pitch, yaw


def quat_to_dcm(q: np.ndarray) -> np.ndarray:
    """Direction cosine matrix (body→world) equivalent to quaternion ``q``."""
    w, x, y, z = q
    return np.array(
        [
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ]
    )


def dcm_to_quat(dcm: np.ndarray) -> np.ndarray:
    """Convert a rotation matrix to a unit quaternion (Shepperd's method)."""
    m = dcm
    trace = m[0, 0] + m[1, 1] + m[2, 2]
    if trace > 0.0:
        s = math.sqrt(trace + 1.0) * 2.0
        w = 0.25 * s
        x = (m[2, 1] - m[1, 2]) / s
        y = (m[0, 2] - m[2, 0]) / s
        z = (m[1, 0] - m[0, 1]) / s
    elif m[0, 0] > m[1, 1] and m[0, 0] > m[2, 2]:
        s = math.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2]) * 2.0
        w = (m[2, 1] - m[1, 2]) / s
        x = 0.25 * s
        y = (m[0, 1] + m[1, 0]) / s
        z = (m[0, 2] + m[2, 0]) / s
    elif m[1, 1] > m[2, 2]:
        s = math.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2]) * 2.0
        w = (m[0, 2] - m[2, 0]) / s
        x = (m[0, 1] + m[1, 0]) / s
        y = 0.25 * s
        z = (m[1, 2] + m[2, 1]) / s
    else:
        s = math.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1]) * 2.0
        w = (m[1, 0] - m[0, 1]) / s
        x = (m[0, 2] + m[2, 0]) / s
        y = (m[1, 2] + m[2, 1]) / s
        z = 0.25 * s
    return quat_normalize(np.array([w, x, y, z]))


def dcm_from_euler(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Body→world DCM from Z-Y-X Euler angles."""
    return quat_to_dcm(quat_from_euler(roll, pitch, yaw))


def euler_from_dcm(dcm: np.ndarray) -> tuple[float, float, float]:
    """Extract ``(roll, pitch, yaw)`` from a body→world DCM."""
    return quat_to_euler(dcm_to_quat(dcm))


def quat_derivative(q: np.ndarray, omega_body: np.ndarray) -> np.ndarray:
    """Time derivative of ``q`` for body angular velocity ``omega_body``."""
    omega_quat = np.array([0.0, omega_body[0], omega_body[1], omega_body[2]])
    return 0.5 * quat_multiply(q, omega_quat)


def quat_integrate(q: np.ndarray, omega_body: np.ndarray, dt: float) -> np.ndarray:
    """Integrate attitude one step using the exponential map.

    Exact for constant angular velocity over ``dt``, so the integration
    remains on the unit sphere for arbitrarily large rates.
    """
    angle = np.linalg.norm(omega_body) * dt
    if angle < 1e-12:
        dq = np.array([1.0, 0.0, 0.0, 0.0])
    else:
        axis = omega_body / np.linalg.norm(omega_body)
        half = angle / 2.0
        dq = np.concatenate(([math.cos(half)], math.sin(half) * axis))
    return quat_normalize(quat_multiply(q, dq))


def skew(v: np.ndarray) -> np.ndarray:
    """Skew-symmetric cross-product matrix of a 3-vector."""
    return np.array(
        [
            [0.0, -v[2], v[1]],
            [v[2], 0.0, -v[0]],
            [-v[1], v[0], 0.0],
        ]
    )


def angle_between(a: np.ndarray, b: np.ndarray) -> float:
    """Angle (rad) between two nonzero vectors, in ``[0, pi]``."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na < 1e-12 or nb < 1e-12:
        raise ValueError("angle_between requires nonzero vectors")
    cos = float(np.dot(a, b) / (na * nb))
    return math.acos(max(-1.0, min(1.0, cos)))
