"""Time-series containers for traces, detector windows and RL rollouts."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

__all__ = ["RingBuffer", "TimeSeries", "TraceTable"]


class RingBuffer:
    """Fixed-capacity numeric ring buffer backed by a numpy array.

    Used for detector sliding windows (e.g. the control-invariants monitor's
    1024-sample window). Appends are O(1); :meth:`to_array` returns samples
    in insertion order.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data = np.zeros(capacity)
        self._size = 0
        self._head = 0
        self._running_sum = 0.0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        """Whether the buffer has reached capacity."""
        return self._size == self.capacity

    @property
    def sum(self) -> float:
        """Sum of the samples currently stored (maintained incrementally)."""
        return self._running_sum

    def append(self, value: float) -> float | None:
        """Insert ``value``; return the evicted sample if the buffer was full."""
        evicted = None
        if self._size == self.capacity:
            evicted = float(self._data[self._head])
            self._running_sum -= evicted
        else:
            self._size += 1
        self._data[self._head] = value
        self._running_sum += value
        self._head = (self._head + 1) % self.capacity
        return evicted

    def clear(self) -> None:
        """Remove all samples."""
        self._size = 0
        self._head = 0
        self._running_sum = 0.0

    def to_array(self) -> np.ndarray:
        """Samples in insertion order (oldest first)."""
        if self._size < self.capacity:
            return self._data[: self._size].copy()
        return np.concatenate((self._data[self._head :], self._data[: self._head]))


class TimeSeries:
    """Growable (time, value) series for a single named signal."""

    def __init__(self, name: str):
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._values)

    def append(self, time_s: float, value: float) -> None:
        """Record one sample."""
        self._times.append(float(time_s))
        self._values.append(float(value))

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (seconds) as an array."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values)

    def window(self, t_start: float, t_end: float) -> "TimeSeries":
        """New series restricted to ``t_start <= t < t_end``."""
        out = TimeSeries(self.name)
        for t, v in zip(self._times, self._values):
            if t_start <= t < t_end:
                out.append(t, v)
        return out


class TraceTable:
    """Column-oriented store of many synchronously sampled signals.

    The profiling stage records one row per logging cycle; the statistical
    pipeline consumes the table as a matrix (rows = cycles, columns = state
    variables), the layout Algorithm 1 operates on.
    """

    def __init__(self, columns: Iterable[str]):
        self.columns = list(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("duplicate column names in trace table")
        self._index = {name: i for i, name in enumerate(self.columns)}
        self._rows: list[list[float]] = []
        self._times: list[float] = []

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, column: str) -> bool:
        return column in self._index

    def append_row(self, time_s: float, values: Mapping[str, float]) -> None:
        """Record one sampling cycle.

        Missing columns raise ``KeyError`` so silent schema drift between the
        tracer and the table cannot corrupt the statistics downstream.
        """
        row = [float(values[name]) for name in self.columns]
        self._rows.append(row)
        self._times.append(float(time_s))

    @property
    def times(self) -> np.ndarray:
        """Timestamps of all rows."""
        return np.asarray(self._times)

    def column(self, name: str) -> np.ndarray:
        """All samples of one signal, oldest first."""
        idx = self._index[name]
        return np.asarray([row[idx] for row in self._rows])

    def to_matrix(self) -> np.ndarray:
        """(n_rows, n_columns) matrix of every signal."""
        if not self._rows:
            return np.zeros((0, len(self.columns)))
        return np.asarray(self._rows)

    def select(self, names: Iterable[str]) -> "TraceTable":
        """New table containing only ``names`` (same rows, same order)."""
        names = list(names)
        missing = [n for n in names if n not in self._index]
        if missing:
            raise KeyError(f"unknown columns: {missing}")
        out = TraceTable(names)
        idxs = [self._index[n] for n in names]
        for t, row in zip(self._times, self._rows):
            out._rows.append([row[i] for i in idxs])
            out._times.append(t)
        return out

    def extend(self, other: "TraceTable") -> None:
        """Append all rows of ``other`` (same column schema) to this table."""
        if other.columns != self.columns:
            raise ValueError("cannot extend: column schema differs")
        self._rows.extend([list(row) for row in other._rows])
        self._times.extend(other._times)

    def iter_rows(self) -> Iterator[tuple[float, dict[str, float]]]:
        """Yield ``(time, {column: value})`` for every row."""
        for t, row in zip(self._times, self._rows):
            yield t, dict(zip(self.columns, row))
