"""Discrete-time signal filters used by sensors, estimators and PIDs.

These mirror the small filter library embedded in ArduPilot
(``Filter/LowPassFilter.h`` and friends): first/second-order low-pass
filters, a filtered derivative, a notch filter and a simple moving average.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "LowPassFilter",
    "SecondOrderLowPass",
    "DerivativeFilter",
    "NotchFilter",
    "MovingAverage",
    "alpha_from_cutoff",
]


def alpha_from_cutoff(cutoff_hz: float, dt: float) -> float:
    """Discrete smoothing factor for a one-pole low-pass filter.

    ``alpha = dt / (dt + 1/(2*pi*fc))``; ``cutoff_hz <= 0`` disables the
    filter (alpha = 1, output tracks input exactly), matching ArduPilot.
    """
    if dt <= 0.0:
        raise ValueError(f"dt must be positive, got {dt}")
    if cutoff_hz <= 0.0:
        return 1.0
    rc = 1.0 / (2.0 * math.pi * cutoff_hz)
    return dt / (dt + rc)


class LowPassFilter:
    """First-order (one-pole) low-pass filter.

    Works on scalars or numpy arrays; the first sample initialises the
    state so there is no start-up transient.
    """

    def __init__(self, cutoff_hz: float, dt: float):
        self.cutoff_hz = cutoff_hz
        self.dt = dt
        self._alpha = alpha_from_cutoff(cutoff_hz, dt)
        self._state: float | np.ndarray | None = None

    @property
    def value(self) -> float | np.ndarray | None:
        """Current filter output (``None`` until the first update)."""
        return self._state

    def reset(self, value: float | np.ndarray | None = None) -> None:
        """Clear the filter state, optionally seeding it with ``value``."""
        self._state = value

    def update(self, sample: float | np.ndarray) -> float | np.ndarray:
        """Feed one sample, returning the filtered output."""
        if self._state is None:
            self._state = sample * 1.0  # copy semantics for arrays
        else:
            self._state = self._state + self._alpha * (sample - self._state)
        return self._state


class SecondOrderLowPass:
    """Biquad low-pass filter (Butterworth Q by default)."""

    def __init__(self, cutoff_hz: float, sample_hz: float, q: float = math.sqrt(0.5)):
        if cutoff_hz <= 0.0 or sample_hz <= 0.0:
            raise ValueError("cutoff and sample frequencies must be positive")
        if cutoff_hz >= sample_hz / 2.0:
            raise ValueError(
                f"cutoff {cutoff_hz} Hz at or above Nyquist ({sample_hz / 2.0} Hz)"
            )
        omega = 2.0 * math.pi * cutoff_hz / sample_hz
        sn, cs = math.sin(omega), math.cos(omega)
        alpha = sn / (2.0 * q)
        a0 = 1.0 + alpha
        self._b0 = ((1.0 - cs) / 2.0) / a0
        self._b1 = (1.0 - cs) / a0
        self._b2 = self._b0
        self._a1 = (-2.0 * cs) / a0
        self._a2 = (1.0 - alpha) / a0
        self._x1 = self._x2 = 0.0
        self._y1 = self._y2 = 0.0
        self._primed = False

    def reset(self) -> None:
        """Zero the delay line."""
        self._x1 = self._x2 = self._y1 = self._y2 = 0.0
        self._primed = False

    def update(self, sample: float) -> float:
        """Feed one scalar sample, returning the filtered output."""
        if not self._primed:
            # Seed the delay line at steady state to avoid a step transient.
            self._x1 = self._x2 = sample
            self._y1 = self._y2 = sample
            self._primed = True
        y = (
            self._b0 * sample
            + self._b1 * self._x1
            + self._b2 * self._x2
            - self._a1 * self._y1
            - self._a2 * self._y2
        )
        self._x2, self._x1 = self._x1, sample
        self._y2, self._y1 = self._y1, y
        return y


class DerivativeFilter:
    """Low-pass-filtered finite-difference derivative.

    The raw difference quotient is smoothed with a one-pole filter, the same
    structure ArduPilot's PID D-term uses (``FLTD``).
    """

    def __init__(self, cutoff_hz: float, dt: float):
        self.dt = dt
        self._alpha = alpha_from_cutoff(cutoff_hz, dt)
        self._last_sample: float | None = None
        self._derivative = 0.0

    @property
    def value(self) -> float:
        """Most recent filtered derivative (0 before two samples)."""
        return self._derivative

    def reset(self) -> None:
        """Clear sample history and derivative state."""
        self._last_sample = None
        self._derivative = 0.0

    def update(self, sample: float) -> float:
        """Feed one sample, returning d(sample)/dt after smoothing."""
        if self._last_sample is None:
            self._last_sample = sample
            return 0.0
        raw = (sample - self._last_sample) / self.dt
        self._last_sample = sample
        self._derivative += self._alpha * (raw - self._derivative)
        return self._derivative


class NotchFilter:
    """Biquad notch filter for motor-vibration rejection on IMU signals."""

    def __init__(self, center_hz: float, sample_hz: float, bandwidth_hz: float):
        if center_hz <= 0.0 or bandwidth_hz <= 0.0:
            raise ValueError("center and bandwidth must be positive")
        if center_hz >= sample_hz / 2.0:
            raise ValueError(
                f"notch center {center_hz} Hz at or above Nyquist "
                f"({sample_hz / 2.0} Hz)"
            )
        omega = 2.0 * math.pi * center_hz / sample_hz
        alpha = math.sin(omega) * math.sinh(
            math.log(2.0) / 2.0 * (bandwidth_hz / center_hz) * omega / math.sin(omega)
        )
        a0 = 1.0 + alpha
        self._b0 = 1.0 / a0
        self._b1 = (-2.0 * math.cos(omega)) / a0
        self._b2 = 1.0 / a0
        self._a1 = self._b1
        self._a2 = (1.0 - alpha) / a0
        self._x1 = self._x2 = 0.0
        self._y1 = self._y2 = 0.0

    def update(self, sample: float) -> float:
        """Feed one scalar sample through the notch."""
        y = (
            self._b0 * sample
            + self._b1 * self._x1
            + self._b2 * self._x2
            - self._a1 * self._y1
            - self._a2 * self._y2
        )
        self._x2, self._x1 = self._x1, sample
        self._y2, self._y1 = self._y1, y
        return y


class MovingAverage:
    """Fixed-window moving average with O(1) updates."""

    def __init__(self, window: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._buffer: list[float] = []
        self._sum = 0.0
        self._index = 0

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def full(self) -> bool:
        """Whether the window has been completely filled."""
        return len(self._buffer) == self.window

    @property
    def value(self) -> float:
        """Mean over the samples currently in the window (0 if empty)."""
        if not self._buffer:
            return 0.0
        return self._sum / len(self._buffer)

    def reset(self) -> None:
        """Discard all samples."""
        self._buffer.clear()
        self._sum = 0.0
        self._index = 0

    def update(self, sample: float) -> float:
        """Insert one sample and return the updated mean."""
        if len(self._buffer) < self.window:
            self._buffer.append(sample)
            self._sum += sample
        else:
            self._sum += sample - self._buffer[self._index]
            self._buffer[self._index] = sample
            self._index = (self._index + 1) % self.window
        return self.value
