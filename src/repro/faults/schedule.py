"""Declarative fault schedules: what breaks, when, and how hard.

A :class:`FaultSchedule` is an ordered list of :class:`FaultSpec` windows.
Each spec names a fault ``kind`` (the taxonomy below), a start time, a
duration (``None`` = until the end of the run) and a dimensionless
``intensity`` that every injector maps onto its own physical scale, so a
single knob sweeps "barely degraded" → "badly broken" uniformly across
fault families:

========================  =====================================================
kind                      intensity semantics (at 1.0)
========================  =====================================================
``gps_dropout``           no fix: NaN position/velocity, 0 sats, HDOP 99.9
``gps_glitch``            per-cycle position jumps, sigma = 10 m * intensity
``imu_bias_step``         gyro bias step of 0.05 rad/s * intensity (+ accel)
``imu_noise_burst``       extra white noise, 0.05 rad/s / 0.5 m/s2 * intensity
``baro_drift``            altitude drift ramp of 0.5 m/s * intensity
``sensor_freeze``         all readings stuck at their window-entry values
``motor_efficiency``      thrust scale 1 - 0.5 * intensity on affected motors
``motor_lag``             extra first-order command lag, tau = 0.2 s * intensity
``link_loss``             extra packet-loss probability = intensity (cap 0.95)
``link_delay``            extra delivery delay of 40 steps * intensity
``link_reorder``          P(reorder) = intensity; bumped 1-8 steps later
``link_duplicate``        P(duplicate) = intensity
========================  =====================================================

Schedules serialise to/from JSON (``schemas/fault_schedule.schema.json``
describes the on-disk form) and every RNG an injector uses is derived
from ``(seed, spec index)``, never from global state — the whole fault
stream is a pure function of ``(seed, schedule)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import ReproError

__all__ = [
    "SENSOR_KINDS",
    "ACTUATOR_KINDS",
    "CHANNEL_KINDS",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultSchedule",
]

SENSOR_KINDS = (
    "gps_dropout",
    "gps_glitch",
    "imu_bias_step",
    "imu_noise_burst",
    "baro_drift",
    "sensor_freeze",
)
ACTUATOR_KINDS = ("motor_efficiency", "motor_lag")
CHANNEL_KINDS = ("link_loss", "link_delay", "link_reorder", "link_duplicate")
FAULT_KINDS = SENSOR_KINDS + ACTUATOR_KINDS + CHANNEL_KINDS


class FaultConfigError(ReproError):
    """A fault schedule was malformed (unknown kind, bad window...)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault window.

    ``motor`` restricts actuator faults to a single motor index (0-3);
    ``None`` affects all four. It is ignored by non-actuator kinds.
    """

    kind: str
    start: float = 0.0
    duration: float | None = None
    intensity: float = 1.0
    motor: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultConfigError(
                f"unknown fault kind '{self.kind}' "
                f"(choose from {', '.join(FAULT_KINDS)})"
            )
        if self.start < 0.0:
            raise FaultConfigError(f"fault start must be >= 0, got {self.start}")
        if self.duration is not None and self.duration <= 0.0:
            raise FaultConfigError(
                f"fault duration must be positive (or null), got {self.duration}"
            )
        if self.intensity < 0.0:
            raise FaultConfigError(
                f"fault intensity must be >= 0, got {self.intensity}"
            )
        if self.motor is not None and not 0 <= int(self.motor) <= 3:
            raise FaultConfigError(f"motor index must be 0-3, got {self.motor}")

    def active(self, time_s: float) -> bool:
        """Whether this window covers ``time_s``."""
        if time_s < self.start:
            return False
        if self.duration is None:
            return True
        return time_s < self.start + self.duration

    def to_dict(self) -> dict:
        """JSON-ready form (schema: one entry of ``faults``)."""
        out: dict = {"kind": self.kind, "start": self.start,
                     "intensity": self.intensity}
        out["duration"] = self.duration
        if self.motor is not None:
            out["motor"] = int(self.motor)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Parse one schedule entry, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise FaultConfigError(f"fault entry must be an object, got {data!r}")
        unknown = set(data) - {"kind", "start", "duration", "intensity", "motor"}
        if unknown:
            raise FaultConfigError(
                f"unknown fault entry keys: {sorted(unknown)}"
            )
        if "kind" not in data:
            raise FaultConfigError("fault entry missing required key 'kind'")
        return cls(
            kind=data["kind"],
            start=float(data.get("start", 0.0)),
            duration=(
                None if data.get("duration") is None
                else float(data["duration"])
            ),
            intensity=float(data.get("intensity", 1.0)),
            motor=(None if data.get("motor") is None else int(data["motor"])),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable collection of fault windows."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def empty(self) -> bool:
        """True when no fault windows are scheduled."""
        return not self.specs

    def of_kinds(self, kinds) -> list[tuple[int, FaultSpec]]:
        """(schedule index, spec) pairs whose kind is in ``kinds``.

        The schedule index — not a per-family position — keys each spec's
        derived RNG stream, so adding a spec of one family never shifts
        another family's noise.
        """
        return [(i, s) for i, s in enumerate(self.specs) if s.kind in kinds]

    def rng_for(self, seed: int | None, index: int) -> np.random.Generator:
        """The deterministic RNG stream of the spec at ``index``."""
        return np.random.default_rng([0 if seed is None else seed, index, 0x5FA])

    def to_dict(self) -> dict:
        """JSON-ready form matching ``schemas/fault_schedule.schema.json``."""
        return {"version": 1, "faults": [s.to_dict() for s in self.specs]}

    def to_json(self, path: str | Path) -> Path:
        """Write the schedule to ``path`` as JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Parse a schedule document, validating its structure."""
        if not isinstance(data, dict):
            raise FaultConfigError("fault schedule must be a JSON object")
        if data.get("version", 1) != 1:
            raise FaultConfigError(
                f"unsupported fault schedule version {data.get('version')!r}"
            )
        faults = data.get("faults")
        if not isinstance(faults, list):
            raise FaultConfigError("fault schedule needs a 'faults' array")
        return cls(specs=tuple(FaultSpec.from_dict(entry) for entry in faults))

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultSchedule":
        """Load and validate a schedule file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise FaultConfigError(f"fault schedule file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise FaultConfigError(
                f"fault schedule '{path}' is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    @classmethod
    def single(cls, kind: str, intensity: float = 1.0, start: float = 0.0,
               duration: float | None = None) -> "FaultSchedule":
        """Convenience: a schedule with exactly one fault window."""
        return cls(specs=(FaultSpec(kind=kind, start=start, duration=duration,
                                    intensity=intensity),))
