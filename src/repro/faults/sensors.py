"""Sensor fault injection: corrupt a :class:`SensorReadings` bundle.

The injector sits between :meth:`SensorSuite.sample` and the estimation
stack. It never mutates the sample objects it receives — rate-limited
sensors hand out the *same held object* across control cycles, so every
transformation builds new samples with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.faults.schedule import SENSOR_KINDS, FaultSchedule
from repro.sensors import barometer as _baro

__all__ = ["SensorFaultInjector"]


def _unit(rng: np.random.Generator) -> np.ndarray:
    v = rng.normal(size=3)
    n = float(np.linalg.norm(v))
    return v / n if n > 1e-12 else np.array([1.0, 0.0, 0.0])


class SensorFaultInjector:
    """Applies the sensor-family windows of a schedule to sensor readings.

    Deterministic from ``(seed, schedule)``: each spec draws from its own
    RNG stream keyed by its schedule index, and draws only while its
    window is active, so re-runs replay bit-identical corruption.
    """

    def __init__(self, schedule: FaultSchedule, seed: int | None = 0):
        self._schedule = schedule
        self._seed = seed
        self._entries = schedule.of_kinds(SENSOR_KINDS)
        self.reset()

    @property
    def empty(self) -> bool:
        """True when the schedule holds no sensor-family windows."""
        return not self._entries

    def reset(self) -> None:
        """Rewind every spec's RNG stream and transient state."""
        self._rngs = {i: self._schedule.rng_for(self._seed, i) for i, _ in self._entries}
        self._state: dict[int, dict] = {i: {} for i, _ in self._entries}
        self.applied: dict[str, int] = {}

    def apply(self, readings, time_s: float):
        """Return a (possibly) corrupted copy of ``readings``."""
        for index, spec in self._entries:
            if not spec.active(time_s):
                continue
            self.applied[spec.kind] = self.applied.get(spec.kind, 0) + 1
            rng = self._rngs[index]
            state = self._state[index]
            k = spec.intensity
            if spec.kind == "gps_dropout":
                readings = replace(
                    readings,
                    gps=replace(
                        readings.gps,
                        position=np.full(3, np.nan),
                        velocity=np.full(3, np.nan),
                        num_sats=0,
                        hdop=99.9,
                    ),
                )
            elif spec.kind == "gps_glitch":
                jump = rng.normal(0.0, 10.0 * k, size=3)
                readings = replace(
                    readings, gps=replace(readings.gps, position=readings.gps.position + jump)
                )
            elif spec.kind == "imu_bias_step":
                if "gyro_bias" not in state:
                    state["gyro_bias"] = 0.05 * k * _unit(rng)
                    state["accel_bias"] = 0.5 * k * _unit(rng)
                readings = replace(
                    readings,
                    imu=replace(
                        readings.imu,
                        gyro=readings.imu.gyro + state["gyro_bias"],
                        accel=readings.imu.accel + state["accel_bias"],
                    ),
                )
            elif spec.kind == "imu_noise_burst":
                readings = replace(
                    readings,
                    imu=replace(
                        readings.imu,
                        gyro=readings.imu.gyro + rng.normal(0.0, 0.05 * k, size=3),
                        accel=readings.imu.accel + rng.normal(0.0, 0.5 * k, size=3),
                    ),
                )
            elif spec.kind == "baro_drift":
                alt = readings.baro.altitude + 0.5 * k * (time_s - spec.start)
                pressure = _baro._P0 * np.exp(-max(alt, -100.0) / _baro._SCALE_HEIGHT)
                readings = replace(
                    readings,
                    baro=replace(readings.baro, altitude=alt, pressure=float(pressure)),
                )
            elif spec.kind == "sensor_freeze":
                if "frozen" not in state:
                    # Capture after any earlier windows corrupted the bundle:
                    # downstream sees the stuck post-fault values.
                    state["frozen"] = readings
                readings = state["frozen"]
        return readings
