"""Cyber-physical fault layer: declarative, seed-deterministic faults.

The paper provokes RAV failures by perturbing the cyber-physical loop;
this package does the same to our *reproduction testbed* so the science
layers (Algorithm 1, the three detector families, the EKF) can be
evaluated on the kind of degraded telemetry a real ArduPilot rig
produces. Distinct from :mod:`repro.experiments.faults`, which injects
faults into the *campaign infrastructure* (worker crashes, hangs); this
package injects faults into the *simulated vehicle* itself:

* sensor faults (GPS dropout/glitch, IMU bias step and noise burst,
  barometer drift, frozen readings) applied inside the sensor suite,
* actuator faults (motor efficiency loss, extra lag) applied to the
  motor commands entering the physics step,
* channel faults (packet loss, delay, reordering, duplication) applied
  to the GCS↔vehicle link.

Everything is driven by a :class:`FaultSchedule` — a declarative list of
:class:`FaultSpec` windows, JSON-(de)serialisable and validated against
``schemas/fault_schedule.schema.json``. Injection is fully deterministic
from ``(seed, schedule)``: each spec derives its own RNG stream, so a
re-run (serial or in campaign workers) replays bit-identical faults. An
empty schedule installs no injectors at all — the fault layer is provably
zero-cost when off.
"""

from repro.faults.actuators import ActuatorFaultInjector
from repro.faults.channel import ChannelFaultModel
from repro.faults.schedule import (
    ACTUATOR_KINDS,
    CHANNEL_KINDS,
    FAULT_KINDS,
    SENSOR_KINDS,
    FaultSchedule,
    FaultSpec,
)
from repro.faults.sensors import SensorFaultInjector

__all__ = [
    "ACTUATOR_KINDS",
    "CHANNEL_KINDS",
    "FAULT_KINDS",
    "SENSOR_KINDS",
    "FaultSchedule",
    "FaultSpec",
    "ActuatorFaultInjector",
    "ChannelFaultModel",
    "SensorFaultInjector",
]
