"""Channel fault injection: break the GCS↔vehicle link.

Consulted by :meth:`Link.send` for every GCS→vehicle message. The model
returns the *fate* of a transmission as a list of extra delivery delays
(in link steps): an empty list drops the message, ``[0]`` delivers it
normally, ``[0, d]`` duplicates it. Its RNG streams are separate from the
link's own loss RNG, so a link with an empty schedule consumes exactly
the same random numbers as one with no channel model at all.
"""

from __future__ import annotations

from repro.faults.schedule import CHANNEL_KINDS, FaultSchedule

__all__ = ["ChannelFaultModel"]


class ChannelFaultModel:
    """Applies the channel-family windows of a schedule to link sends.

    ``steps_per_second`` converts the link's step counter into seconds so
    fault windows (specified in seconds) line up with vehicle time; the
    vehicle pumps the link once per physics step.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        seed: int | None = 0,
        steps_per_second: float = 400.0,
    ):
        self._schedule = schedule
        self._seed = seed
        self.steps_per_second = float(steps_per_second)
        self._entries = schedule.of_kinds(CHANNEL_KINDS)
        self.reset()

    @property
    def empty(self) -> bool:
        """True when the schedule holds no channel-family windows."""
        return not self._entries

    def reset(self) -> None:
        """Rewind every spec's RNG stream and the fault counters."""
        self._rngs = {i: self._schedule.rng_for(self._seed, i) for i, _ in self._entries}
        self.dropped = 0
        self.delayed = 0
        self.reordered = 0
        self.duplicated = 0

    def transmit(self, step: int) -> list[int]:
        """Decide the fate of one message sent at link step ``step``.

        Returns extra delivery delays (steps) for each copy to deliver;
        an empty list means the message was lost.
        """
        time_s = step / self.steps_per_second
        delays = [0]
        for index, spec in self._entries:
            if not spec.active(time_s):
                continue
            rng = self._rngs[index]
            k = spec.intensity
            if spec.kind == "link_loss":
                if rng.random() < min(k, 0.95):
                    self.dropped += 1
                    return []
            elif spec.kind == "link_delay":
                extra = int(round(40.0 * k))
                if extra > 0:
                    self.delayed += 1
                    delays = [d + extra for d in delays]
            elif spec.kind == "link_reorder":
                if rng.random() < min(k, 1.0):
                    self.reordered += 1
                    bump = int(rng.integers(1, 9))
                    delays = [d + bump for d in delays]
            elif spec.kind == "link_duplicate":
                if rng.random() < min(k, 1.0):
                    self.duplicated += 1
                    delays = delays + [d + 1 for d in delays]
        return delays
