"""Actuator fault injection: degrade motor commands entering the mixer.

Applied by the simulator to the normalized per-motor commands (0..1)
*before* the motor first-order dynamics, mirroring ESC-side failures:
efficiency loss scales the command, extra lag low-passes it.
"""

from __future__ import annotations

import numpy as np

from repro.faults.schedule import ACTUATOR_KINDS, FaultSchedule

__all__ = ["ActuatorFaultInjector"]


class ActuatorFaultInjector:
    """Applies the actuator-family windows of a schedule to motor commands."""

    def __init__(self, schedule: FaultSchedule, seed: int | None = 0):
        self._schedule = schedule
        self._seed = seed
        self._entries = schedule.of_kinds(ACTUATOR_KINDS)
        self.reset()

    @property
    def empty(self) -> bool:
        """True when the schedule holds no actuator-family windows."""
        return not self._entries

    def reset(self) -> None:
        """Clear lag-filter state."""
        self._state: dict[int, dict] = {i: {} for i, _ in self._entries}

    @staticmethod
    def _mask(spec) -> np.ndarray:
        if spec.motor is None:
            return np.ones(4, dtype=bool)
        mask = np.zeros(4, dtype=bool)
        mask[spec.motor] = True
        return mask

    def apply(self, commands: np.ndarray, time_s: float, dt: float) -> np.ndarray:
        """Return a (possibly) degraded copy of the motor command vector."""
        out = np.asarray(commands, dtype=float)
        for index, spec in self._entries:
            if not spec.active(time_s):
                continue
            mask = self._mask(spec)
            if spec.kind == "motor_efficiency":
                scale = max(0.0, 1.0 - 0.5 * spec.intensity)
                out = np.where(mask, out * scale, out)
            elif spec.kind == "motor_lag":
                tau = 0.2 * spec.intensity
                state = self._state[index]
                filtered = state.get("filtered")
                if filtered is None:
                    # Seed the filter with the first in-window command so the
                    # lag starts from reality, not from zero thrust.
                    filtered = np.asarray(out, dtype=float).copy()
                alpha = dt / (tau + dt) if tau > 0.0 else 1.0
                filtered = filtered + alpha * (out - filtered)
                state["filtered"] = filtered
                out = np.where(mask, filtered, out)
        return out
