"""GCS↔vehicle link with optional latency and loss.

The vehicle end registers handlers per message type; the GCS end sends
messages and collects replies. Latency is modelled in *vehicle steps*: the
link's queue is drained by the vehicle's scheduler each control cycle.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.exceptions import LinkError
from repro.gcs.messages import Message
from repro.utils.rng import make_rng

__all__ = ["Link"]


class Link:
    """Bidirectional in-memory message channel."""

    def __init__(
        self,
        latency_steps: int = 0,
        loss_probability: float = 0.0,
        seed: int | None = 0,
    ):
        if latency_steps < 0:
            raise LinkError("latency must be non-negative")
        if not 0.0 <= loss_probability < 1.0:
            raise LinkError("loss probability must be in [0, 1)")
        self.latency_steps = latency_steps
        self.loss_probability = loss_probability
        self._rng = make_rng(seed)
        self._to_vehicle: deque[tuple[int, Message]] = deque()
        self._to_gcs: deque[Message] = deque()
        self._handlers: dict[type, Callable[[Message], Message | None]] = {}
        self._step = 0
        self._sequence = 0
        self.sent_count = 0
        self.dropped_count = 0

    def register_handler(
        self, msg_type: type, handler: Callable[[Message], Message | None]
    ) -> None:
        """Install the vehicle-side handler for one message type."""
        self._handlers[msg_type] = handler

    def send(self, message: Message) -> None:
        """GCS→vehicle send (subject to loss and latency)."""
        self.sent_count += 1
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.dropped_count += 1
            return
        self._sequence += 1
        deliver_at = self._step + self.latency_steps
        self._to_vehicle.append((deliver_at, message))

    def service(self) -> int:
        """Vehicle-side pump: dispatch all due messages, return the count."""
        self._step += 1
        dispatched = 0
        while self._to_vehicle and self._to_vehicle[0][0] <= self._step:
            _, message = self._to_vehicle.popleft()
            handler = self._handlers.get(type(message))
            if handler is None:
                raise LinkError(f"no handler for {type(message).__name__}")
            reply = handler(message)
            if reply is not None:
                self._to_gcs.append(reply)
            dispatched += 1
        return dispatched

    def receive(self) -> Message | None:
        """GCS-side receive of the next pending reply (None if empty)."""
        if self._to_gcs:
            return self._to_gcs.popleft()
        return None

    def drain(self) -> list[Message]:
        """GCS-side receive of every pending reply."""
        replies = list(self._to_gcs)
        self._to_gcs.clear()
        return replies
