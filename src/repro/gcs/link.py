"""GCS↔vehicle link with optional latency, loss and channel faults.

The vehicle end registers handlers per message type; the GCS end sends
messages and collects replies. Latency is modelled in *vehicle steps*: the
link's queue is drained by the vehicle's scheduler each control cycle.

Two robustness hooks ride on top of the healthy-channel model:

* ``channel_faults`` — an optional :class:`repro.faults.ChannelFaultModel`
  that can drop, delay, reorder or duplicate each GCS→vehicle message. Its
  RNG streams are independent of the link's own loss RNG, so installing an
  *empty* schedule consumes no extra randomness and the link behaves
  bit-identically to a fault-free one.
* Handler exceptions do not wedge the queue: :meth:`service` catches them,
  counts ``handler_errors`` (and the ``link.handler_errors`` metric) and
  keeps dispatching. A *missing* handler is still a loud
  :class:`LinkError` — that is a wiring bug, not a runtime fault.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.exceptions import LinkError
from repro.gcs.messages import Message
from repro.obs.metrics import get_registry
from repro.utils.rng import make_rng

__all__ = ["Link"]


class Link:
    """Bidirectional in-memory message channel."""

    def __init__(
        self,
        latency_steps: int = 0,
        loss_probability: float = 0.0,
        seed: int | None = 0,
        channel_faults=None,
    ):
        if latency_steps < 0:
            raise LinkError("latency must be non-negative")
        if not 0.0 <= loss_probability < 1.0:
            raise LinkError("loss probability must be in [0, 1)")
        self.latency_steps = latency_steps
        self.loss_probability = loss_probability
        self.channel_faults = channel_faults
        self._rng = make_rng(seed)
        # Min-heap on (deliver_at, arrival sequence): channel faults can
        # delay copies past later sends, so FIFO order is not guaranteed.
        # With equal deliver_at the arrival sequence breaks the tie, which
        # makes the fault-free case exactly the old FIFO behavior.
        self._to_vehicle: list[tuple[int, int, Message]] = []
        self._to_gcs: list[Message] = []
        self._handlers: dict[type, Callable[[Message], Message | None]] = {}
        self._step = 0
        self._sequence = 0
        self._arrival = 0
        self.sent_count = 0
        self.dropped_count = 0
        self.handler_errors = 0
        self._metric_handler_errors = get_registry().counter("link.handler_errors")

    def register_handler(
        self, msg_type: type, handler: Callable[[Message], Message | None]
    ) -> None:
        """Install the vehicle-side handler for one message type."""
        self._handlers[msg_type] = handler

    def send(self, message: Message) -> None:
        """GCS→vehicle send (subject to loss, latency and channel faults)."""
        self.sent_count += 1
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.dropped_count += 1
            return
        extra_delays = [0]
        if self.channel_faults is not None and not self.channel_faults.empty:
            extra_delays = self.channel_faults.transmit(self._step)
            if not extra_delays:
                self.dropped_count += 1
                return
        self._sequence += 1
        for extra in extra_delays:
            deliver_at = self._step + self.latency_steps + extra
            heapq.heappush(self._to_vehicle, (deliver_at, self._arrival, message))
            self._arrival += 1

    def service(self) -> int:
        """Vehicle-side pump: dispatch all due messages, return the count.

        A handler that raises loses only its own message: the exception is
        swallowed, ``handler_errors`` incremented, and dispatch continues.
        """
        self._step += 1
        dispatched = 0
        while self._to_vehicle and self._to_vehicle[0][0] <= self._step:
            _, _, message = heapq.heappop(self._to_vehicle)
            handler = self._handlers.get(type(message))
            if handler is None:
                raise LinkError(f"no handler for {type(message).__name__}")
            try:
                reply = handler(message)
            except Exception:
                self.handler_errors += 1
                self._metric_handler_errors.inc()
                reply = None
            if reply is not None:
                self._to_gcs.append(reply)
            dispatched += 1
        return dispatched

    def receive(self) -> Message | None:
        """GCS-side receive of the next pending reply (None if empty)."""
        if self._to_gcs:
            return self._to_gcs.pop(0)
        return None

    def drain(self) -> list[Message]:
        """GCS-side receive of every pending reply."""
        replies = list(self._to_gcs)
        self._to_gcs.clear()
        return replies
