"""MAVProxy-style ground-control client.

The convenience front end the paper's experiments drive: ``param set``,
mission upload, mode changes. The ARES exploit loop "injects a variable
manipulation of the target state variable through MAVProxy commands"
(Section V-A) — that path is :meth:`param_set` here; manipulations of
non-parameter intermediates go through the compromised memory view
instead.
"""

from __future__ import annotations

from repro.exceptions import LinkError
from repro.gcs.link import Link
from repro.gcs.messages import (
    CommandAck,
    MavResult,
    MissionItem,
    MissionUpload,
    ParamRequest,
    ParamSet,
    ParamValue,
    SetMode,
)

__all__ = ["MavProxy"]


class MavProxy:
    """Synchronous GCS client over a :class:`Link`.

    ``pump`` must advance the vehicle at least ``latency_steps`` cycles
    between a send and the expected reply; the vehicle object provides it.
    """

    def __init__(
        self,
        link: Link,
        pump,
        ack_timeout_steps: int = 400,
        retries: int = 3,
    ):
        if ack_timeout_steps <= 0:
            raise LinkError("ack timeout must be positive")
        if retries < 0:
            raise LinkError("retries must be non-negative")
        self.link = link
        self._pump = pump
        self.ack_timeout_steps = ack_timeout_steps
        self.retries = retries
        #: Resends issued because an ack timed out (all transactions).
        self.retry_count = 0
        #: Ack windows that expired without a reply (all transactions).
        self.timeout_count = 0
        #: Leftover replies discarded before starting a new transaction
        #: (late acks of an earlier, retried send on a slow channel).
        self.stale_replies = 0

    def _await_reply(self, max_steps: int = 1000):
        for _ in range(max_steps):
            reply = self.link.receive()
            if reply is not None:
                return reply
            self._pump()
        raise LinkError("no reply from vehicle (link stalled?)")

    def _transact(self, message):
        """Send with bounded retry + ack timeout (lossy-channel safe).

        Each attempt pumps the vehicle for ``ack_timeout_steps`` cycles; on
        silence the message is resent, up to ``retries`` times. Stale
        replies queued by a previous transaction's late ack are discarded
        first so retries can never cross-talk between transactions. Fully
        deterministic: the pump and the link RNGs are seeded, so the retry
        trace is a pure function of (seed, schedule).
        """
        while self.link.receive() is not None:
            self.stale_replies += 1
        for attempt in range(self.retries + 1):
            self.link.send(message)
            for _ in range(self.ack_timeout_steps):
                reply = self.link.receive()
                if reply is not None:
                    return reply
                self._pump()
            self.timeout_count += 1
            if attempt < self.retries:
                self.retry_count += 1
        raise LinkError(
            f"no ack for {type(message).__name__} after "
            f"{self.retries + 1} attempts of {self.ack_timeout_steps} steps"
        )

    def param_get(self, name: str) -> float:
        """Read one firmware parameter."""
        self.link.send(ParamRequest(name=name))
        reply = self._await_reply()
        if not isinstance(reply, ParamValue) or not reply.ok:
            raise LinkError(f"param get '{name}' failed: {getattr(reply, 'error', '?')}")
        return reply.value

    def param_set(self, name: str, value: float) -> ParamValue:
        """Write one firmware parameter (range-validated on the vehicle).

        Returns the vehicle's report; ``report.ok`` is False when range
        validation rejected the value — the firmware-side restriction the
        paper notes an attacker must work within on this path. Sends with
        bounded retry + ack timeout so the write survives a lossy channel
        (parameter writes are idempotent, making resends safe).
        """
        reply = self._transact(ParamSet(name=name, value=value))
        if not isinstance(reply, ParamValue):
            raise LinkError("unexpected reply to PARAM_SET")
        return reply

    def upload_mission(self, waypoints) -> CommandAck:
        """Upload a mission as (north, east, altitude[, hold]) tuples."""
        items = []
        for index, wp in enumerate(waypoints):
            north, east, altitude = wp[0], wp[1], wp[2]
            hold_s = wp[3] if len(wp) > 3 else 0.0
            items.append(
                MissionItem(
                    index=index, north=north, east=east,
                    altitude=altitude, hold_s=hold_s,
                )
            )
        self.link.send(MissionUpload(items=tuple(items)))
        reply = self._await_reply()
        if not isinstance(reply, CommandAck) or reply.result is not MavResult.ACCEPTED:
            raise LinkError(f"mission upload rejected: {getattr(reply, 'detail', '?')}")
        return reply

    def set_mode(self, mode_number: int) -> CommandAck:
        """Request a flight-mode change by ArduCopter mode number."""
        self.link.send(SetMode(mode_number=mode_number))
        reply = self._await_reply()
        if not isinstance(reply, CommandAck):
            raise LinkError("unexpected reply to SET_MODE")
        return reply
