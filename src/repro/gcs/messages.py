"""MAVLink-like message definitions for the GCS↔vehicle channel.

A small typed subset of the MAVLink command set sufficient for the paper's
threat model: parameter reads/writes, mission upload, mode changes and
acknowledgements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "MavResult",
    "Message",
    "ParamRequest",
    "ParamSet",
    "ParamValue",
    "MissionItem",
    "MissionUpload",
    "SetMode",
    "CommandAck",
    "Heartbeat",
]


class MavResult(Enum):
    """Command acknowledgement results (MAV_RESULT subset)."""

    ACCEPTED = 0
    DENIED = 2
    FAILED = 4


@dataclass(frozen=True)
class Message:
    """Base class for all channel messages."""

    sequence: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic liveness message."""

    mode_number: int = 0
    armed: bool = False


@dataclass(frozen=True)
class ParamRequest(Message):
    """Request the current value of one parameter."""

    name: str = ""


@dataclass(frozen=True)
class ParamSet(Message):
    """Write a parameter (the attacker-reachable PARAM_SET path)."""

    name: str = ""
    value: float = 0.0


@dataclass(frozen=True)
class ParamValue(Message):
    """Parameter value report."""

    name: str = ""
    value: float = 0.0
    ok: bool = True
    error: str = ""


@dataclass(frozen=True)
class MissionItem(Message):
    """One uploaded waypoint."""

    index: int = 0
    north: float = 0.0
    east: float = 0.0
    altitude: float = 0.0
    hold_s: float = 0.0


@dataclass(frozen=True)
class MissionUpload(Message):
    """Complete mission upload."""

    items: tuple[MissionItem, ...] = ()


@dataclass(frozen=True)
class SetMode(Message):
    """Flight-mode change request."""

    mode_number: int = 0


@dataclass(frozen=True)
class CommandAck(Message):
    """Acknowledgement for a command message."""

    command: str = ""
    result: MavResult = MavResult.ACCEPTED
    detail: str = ""
