"""Ground-control-station channel (MAVLink-like messages, link, proxy)."""

from repro.gcs.link import Link
from repro.gcs.messages import (
    CommandAck,
    Heartbeat,
    MavResult,
    Message,
    MissionItem,
    MissionUpload,
    ParamRequest,
    ParamSet,
    ParamValue,
    SetMode,
)
from repro.gcs.proxy import MavProxy

__all__ = [
    "CommandAck",
    "Heartbeat",
    "Link",
    "MavProxy",
    "MavResult",
    "Message",
    "MissionItem",
    "MissionUpload",
    "ParamRequest",
    "ParamSet",
    "ParamValue",
    "SetMode",
]
