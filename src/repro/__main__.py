"""Command-line interface: ``python -m repro <command>``.

Commands
--------
fly
    Fly a benign mission and print a flight summary.
assess
    Run the full ARES campaign (profile → identify → exploit → report).
table1 / table2
    Regenerate the paper's tables.
fig N
    Regenerate one of the paper's figures (3, 5, 6, 7, 8, 9, 10 or 11).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_fly(args: argparse.Namespace) -> int:
    from repro.firmware import Vehicle, line_mission, square_mission
    from repro.sim import SimConfig

    vehicle = Vehicle(SimConfig(seed=args.seed, wind_gust_std=0.3))
    mission = (
        square_mission(side=args.size, altitude=args.altitude)
        if args.shape == "square"
        else line_mission(length=args.size, altitude=args.altitude, legs=1)
    )
    status = vehicle.fly_mission(mission, timeout=300.0)
    state = vehicle.sim.vehicle.state
    print(f"mission {status.name} in {vehicle.sim.time:.1f}s; "
          f"final position N {state.position[0]:.1f} E {state.position[1]:.1f} "
          f"alt {state.altitude:.1f}; crashed={vehicle.sim.vehicle.crashed}")
    return 0 if status.name == "COMPLETE" else 1


def _cmd_assess(args: argparse.Namespace) -> int:
    from repro import Ares, AresConfig
    from repro.rl.env import EnvConfig

    config = AresConfig(
        controller_kind=args.kind,
        episodes=args.episodes,
        env=EnvConfig(
            max_episode_steps=args.steps, physics_hz=100.0, seed=args.seed,
            use_detector=args.with_detector,
        ),
    )
    ares = Ares(config)
    print("profiling ...")
    ares.profile()
    print("identifying ...")
    tsvl = ares.identify()
    print(f"TSVL: {', '.join(tsvl.tsvl)}")
    variable = args.variable or "PIDR.INTEG"
    print(f"training exploit against {variable} ...")
    ares.exploit(variable=variable, failure=args.failure)
    print()
    print(ares.report().render())
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.which == "1":
        from repro.experiments.table1 import run_table1

        print(run_table1().render())
    else:
        from repro.experiments.table2 import run_table2

        print(run_table2().render())
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from repro import experiments as exp

    runners = {
        "3": exp.run_fig3, "5": exp.run_fig5, "6": exp.run_fig6,
        "7": exp.run_fig7, "8": exp.run_fig8, "9": exp.run_fig9,
        "10": exp.run_fig10, "11": exp.run_fig11,
    }
    runner = runners.get(args.number)
    if runner is None:
        print(f"unknown figure '{args.number}' (choose from {sorted(runners)})",
              file=sys.stderr)
        return 2
    result = runner()
    print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARES reproduction: RAV vulnerability assessment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fly = sub.add_parser("fly", help="fly a benign mission")
    fly.add_argument("--shape", choices=("square", "line"), default="square")
    fly.add_argument("--size", type=float, default=25.0)
    fly.add_argument("--altitude", type=float, default=10.0)
    fly.add_argument("--seed", type=int, default=0)
    fly.set_defaults(func=_cmd_fly)

    assess = sub.add_parser("assess", help="run the full ARES campaign")
    assess.add_argument("--kind", choices=("PID", "Sqrt", "SINS"), default="PID")
    assess.add_argument("--episodes", type=int, default=15)
    assess.add_argument("--steps", type=int, default=40)
    assess.add_argument("--seed", type=int, default=0)
    assess.add_argument("--variable", default=None)
    assess.add_argument("--failure", choices=("uncontrolled", "controlled"),
                        default="uncontrolled")
    assess.add_argument("--with-detector", action="store_true")
    assess.set_defaults(func=_cmd_assess)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("which", choices=("1", "2"))
    table.set_defaults(func=_cmd_table)

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number")
    fig.set_defaults(func=_cmd_fig)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
