"""Command-line interface: ``python -m repro <command>``.

Commands
--------
fly
    Fly a benign mission and print a flight summary.
assess
    Run the full ARES campaign (profile → identify → exploit → report).
table1 / table2 / table robustness / table scenarios
    Regenerate the paper's tables, sweep the fault-injection
    robustness matrix (``--fault-schedule``/``--kinds``/``--intensities``
    and the other robustness flags scale the sweep), or run the
    scenario × attack × defense cube over named/sampled scenarios
    (``--scenarios FILE`` or ``--sample N`` with ``--sample-seed``/
    ``--space``; ``--coverage-out PATH`` writes the coverage report
    validated by ``schemas/scenario_coverage.schema.json``).
fig N
    Regenerate one of the paper's figures (3, 5, 6, 7, 8, 9, 10 or 11).
obs
    Telemetry tooling: ``obs summary PATH...`` renders phase-time and
    metric breakdown tables; ``obs validate FILE SCHEMA`` checks an
    emitted artifact against a checked-in JSON schema; ``obs tail FILE``
    pretty-prints a campaign event log (``--follow`` streams a running
    campaign until it finishes); ``obs blackbox PATH`` summarizes a
    crash flight-recorder artifact (``--last N`` trims, ``--export``
    writes the trimmed copy).

``table``/``fig`` run through the campaign runner: ``--workers N`` fans
campaign-style experiments over a process pool, ``--engine vectorized``
batches same-parameter seeds through the vectorized fleet engine
(bit-identical results, per-seed scalar fallback) — combined they shard
whole ``--batch-size`` chunks (an int, or ``auto``) across the pool —
and results are stored
in the content-addressed cache (``--cache-dir``, default
``.repro_cache/``; ``--no-cache`` disables) so a re-run only computes
what is missing. Resilience flags (campaign-style experiments only):
``--seed-timeout``/``--max-retries``/``--failure-budget`` control the
fault policy, ``--manifest PATH`` checkpoints each completed seed to a
JSONL file and ``--resume`` restarts an interrupted sweep with zero
recomputation of finished seeds (Ctrl-C exits 130 with the checkpoint
flushed).

Telemetry flags (``assess``/``table``/``fig``): ``--trace PATH`` writes a
Chrome-trace-event file (``.jsonl`` → span JSONL) loadable in
chrome://tracing / Perfetto; ``--metrics-out PATH`` writes the metrics
registry snapshot (``.prom`` → Prometheus text exposition format);
``--log-level``/``--log-json`` configure structured logging. Live
campaign streaming (``table``/``fig``): ``--progress`` renders a live
seeds-done/ETA line on stderr, ``--events PATH`` appends structured
progress events to a JSONL log (``schemas/events.schema.json``, follow
with ``obs tail --follow``), and ``--blackbox-dir DIR`` arms the
flight recorder — every seed that ends in crash/timeout/failure leaves
a content-addressed blackbox artifact of its final control cycles. All
of it is passive — enabling telemetry never changes a result or a
cache fingerprint.
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def _cmd_fly(args: argparse.Namespace) -> int:
    from repro.firmware import Vehicle, line_mission, square_mission
    from repro.sim import SimConfig

    vehicle = Vehicle(SimConfig(seed=args.seed, wind_gust_std=0.3))
    mission = (
        square_mission(side=args.size, altitude=args.altitude)
        if args.shape == "square"
        else line_mission(length=args.size, altitude=args.altitude, legs=1)
    )
    status = vehicle.fly_mission(mission, timeout=300.0)
    state = vehicle.sim.vehicle.state
    print(f"mission {status.name} in {vehicle.sim.time:.1f}s; "
          f"final position N {state.position[0]:.1f} E {state.position[1]:.1f} "
          f"alt {state.altitude:.1f}; crashed={vehicle.sim.vehicle.crashed}")
    return 0 if status.name == "COMPLETE" else 1


def _cmd_assess(args: argparse.Namespace) -> int:
    from repro import Ares, AresConfig
    from repro.rl.env import EnvConfig

    config = AresConfig(
        controller_kind=args.kind,
        episodes=args.episodes,
        env=EnvConfig(
            max_episode_steps=args.steps, physics_hz=100.0, seed=args.seed,
            use_detector=args.with_detector,
        ),
    )
    ares = Ares(config)
    finish = _setup_telemetry(args)
    try:
        print("profiling ...")
        ares.profile()
        print("identifying ...")
        tsvl = ares.identify()
        print(f"TSVL: {', '.join(tsvl.tsvl)}")
        variable = args.variable or "PIDR.INTEG"
        print(f"training exploit against {variable} ...")
        ares.exploit(variable=variable, failure=args.failure)
    finally:
        finish()
    print()
    print(ares.report().render())
    return 0


def _experiment_cache(args: argparse.Namespace):
    from repro.experiments.cache import default_cache

    return default_cache(
        cache_dir=args.cache_dir,
        enabled=False if args.no_cache else None,
    )


def _setup_telemetry(args: argparse.Namespace):
    """Configure logging/tracing from CLI flags; returns a finish callback.

    All telemetry knobs stay in this layer — the experiment entry points
    and cache fingerprints never see them, so ``--trace``/``--metrics-out``
    cannot change what is computed or which cache records are hit.
    """
    from repro import obs

    if getattr(args, "log_level", None) or getattr(args, "log_json", False):
        obs.configure_logging(
            level=args.log_level or "INFO",
            json_output=bool(getattr(args, "log_json", False)),
        )
    tracer = previous_tracer = None
    if getattr(args, "trace", None):
        tracer = obs.Tracer(enabled=True)
        previous_tracer = obs.set_tracer(tracer)
    run_id = f"run-{os.getpid()}-{int(time.time())}"
    context = obs.log_context(run_id=run_id)
    context.__enter__()

    def finish() -> None:
        context.__exit__(None, None, None)
        if previous_tracer is not None:
            obs.set_tracer(previous_tracer)
        if tracer is not None:
            path = tracer.export(args.trace)
            print(f"trace: {len(tracer.spans)} spans -> {path}",
                  file=sys.stderr)
        if getattr(args, "metrics_out", None):
            registry = obs.get_registry()
            if str(args.metrics_out).endswith(".prom"):
                # Prometheus text exposition format 0.0.4: drop the file
                # where a node_exporter textfile collector (or a test)
                # can scrape it.
                with open(args.metrics_out, "w") as handle:
                    handle.write(registry.expose_text())
                print(f"metrics: Prometheus text -> {args.metrics_out}",
                      file=sys.stderr)
            else:
                import json

                snapshot = registry.snapshot()
                with open(args.metrics_out, "w") as handle:
                    json.dump(snapshot, handle, sort_keys=True, indent=1)
                print(f"metrics: {len(snapshot['counters'])} counters -> "
                      f"{args.metrics_out}", file=sys.stderr)

    return finish


def _fault_policy(args: argparse.Namespace):
    """A FaultPolicy from the resilience flags, or None (legacy behaviour)
    when no flag was given."""
    if (args.seed_timeout is None and args.max_retries is None
            and args.failure_budget is None):
        return None
    from repro.experiments.faults import FaultPolicy

    return FaultPolicy(
        seed_timeout=args.seed_timeout,
        max_retries=args.max_retries if args.max_retries is not None else 2,
        failure_budget=args.failure_budget,
    )


def _batch_size_arg(text: str) -> int | str:
    """``--batch-size`` values: a positive int, or the string 'auto'."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 1, got {value}"
        )
    return value


def _robustness_kwargs(args: argparse.Namespace) -> dict | int:
    """Extra sweep kwargs from the robustness/scenario CLI flags.

    Returns an exit code instead when a sweep-only flag is used with the
    wrong ``table`` target. ``--trials``/``--detector-duration`` are
    shared by the robustness matrix and the scenario cube; the other
    robustness flags are robustness-only, and the scenario source/
    coverage flags are scenarios-only.
    """
    robustness_only = {
        "--fault-schedule": args.fault_schedule,
        "--kinds": args.kinds,
        "--intensities": args.intensities,
        "--physics-hz": args.physics_hz,
        "--profile-length": args.profile_length,
    }
    shared = {
        "--trials": args.trials,
        "--detector-duration": args.detector_duration,
    }
    scenarios_only = {
        "--scenarios": args.scenarios,
        "--sample": args.sample,
        "--sample-seed": args.sample_seed,
        "--space": args.space,
        "--coverage-out": args.coverage_out,
        "--profile-timeout": args.profile_timeout,
    }
    if args.which not in ("robustness", "scenarios"):
        used = [
            flag for flag, value in {**robustness_only, **shared}.items()
            if value is not None
        ]
        if used:
            print(
                f"{', '.join(used)}: only valid with 'table robustness' "
                "or 'table scenarios'",
                file=sys.stderr,
            )
            return 2
    if args.which != "scenarios":
        used = [
            flag for flag, value in scenarios_only.items()
            if value is not None
        ]
        if used:
            print(
                f"{', '.join(used)}: only valid with 'table scenarios'",
                file=sys.stderr,
            )
            return 2
    if args.which == "scenarios":
        used = [
            flag for flag, value in robustness_only.items()
            if value is not None
        ]
        if used:
            print(
                f"{', '.join(used)}: only valid with 'table robustness'",
                file=sys.stderr,
            )
            return 2
        kwargs = {}
        if args.scenarios is not None:
            with open(args.scenarios, encoding="utf-8") as fh:
                kwargs["scenarios_json"] = fh.read()
        if args.sample is not None:
            kwargs["sample"] = args.sample
        if args.sample_seed is not None:
            kwargs["sample_seed"] = args.sample_seed
        if args.space is not None:
            kwargs["space"] = args.space
        if args.profile_timeout is not None:
            kwargs["profile_timeout"] = args.profile_timeout
        if args.trials is not None:
            kwargs["trials"] = args.trials
        if args.detector_duration is not None:
            kwargs["detector_duration"] = args.detector_duration
        return kwargs
    if args.which != "robustness":
        return {}
    kwargs = {}
    if args.fault_schedule is not None:
        with open(args.fault_schedule, encoding="utf-8") as fh:
            kwargs["schedule_json"] = fh.read()
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.kinds is not None:
        kwargs["kinds"] = tuple(k for k in args.kinds.split(",") if k)
    if args.intensities is not None:
        kwargs["intensities"] = tuple(
            float(v) for v in args.intensities.split(",") if v
        )
    if args.physics_hz is not None:
        kwargs["physics_hz"] = args.physics_hz
    if args.profile_length is not None:
        kwargs["profile_length"] = args.profile_length
    if args.detector_duration is not None:
        kwargs["detector_duration"] = args.detector_duration
    return kwargs


_TABLE_NAMES = {"robustness": "robustness", "scenarios": "scenarios"}


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_experiment

    kwargs = _robustness_kwargs(args)
    if isinstance(kwargs, int):
        return kwargs
    name = _TABLE_NAMES.get(args.which, f"table{args.which}")
    finish = _setup_telemetry(args)
    try:
        result = run_experiment(
            name,
            **kwargs,
            cache=_experiment_cache(args),
            workers=args.workers,
            policy=_fault_policy(args),
            manifest=args.manifest,
            resume=args.resume,
            engine=args.engine,
            batch_size=args.batch_size,
            events=args.events,
            progress=args.progress,
            blackbox_dir=args.blackbox_dir,
        )
    finally:
        finish()
    if args.which == "scenarios" and args.coverage_out is not None:
        import json as _json

        with open(args.coverage_out, "w", encoding="utf-8") as fh:
            _json.dump(result.coverage_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
    print(result.render())
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_experiment

    if args.number not in ("3", "5", "6", "7", "8", "9", "10", "11"):
        print(f"unknown figure '{args.number}' "
              "(choose from ['10', '11', '3', '5', '6', '7', '8', '9'])",
              file=sys.stderr)
        return 2
    finish = _setup_telemetry(args)
    try:
        result = run_experiment(
            f"fig{args.number}",
            cache=_experiment_cache(args),
            workers=args.workers,
            policy=_fault_policy(args),
            manifest=args.manifest,
            resume=args.resume,
            engine=args.engine,
            batch_size=args.batch_size,
            events=args.events,
            progress=args.progress,
            blackbox_dir=args.blackbox_dir,
        )
    finally:
        finish()
    print(result.render())
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "summary":
        from repro.obs.summary import render_summary

        print(render_summary(args.paths))
        return 0
    if args.obs_command == "tail":
        from repro.obs.events import tail_events

        kinds = (
            tuple(k for k in args.kinds.split(",") if k)
            if args.kinds else None
        )
        printed = tail_events(args.path, follow=args.follow, kinds=kinds,
                              timeout_s=args.timeout)
        return 0 if printed or args.follow else 1
    if args.obs_command == "blackbox":
        from repro.obs.blackbox import export_blackbox, summarize_blackbox

        print(summarize_blackbox(args.path, last=args.last))
        if args.export:
            out = export_blackbox(args.path, args.export, last=args.last)
            print(f"exported -> {out}", file=sys.stderr)
        return 0
    # validate
    from repro.obs.schema import validate_file

    errors = validate_file(args.artifact, args.schema)
    if errors:
        for error in errors[:20]:
            print(f"invalid: {error}", file=sys.stderr)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    print(f"{args.artifact}: valid against {args.schema}")
    return 0


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    """Campaign-runner execution knobs shared by table/fig commands."""
    parser.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for campaign-style experiments "
             "(0 = serial)",
    )
    parser.add_argument(
        "--engine", choices=("scalar", "vectorized"), default="scalar",
        help="simulation engine for campaign-style experiments: "
             "'vectorized' batches same-parameter seeds through the "
             "VectorizedFleet (bit-identical results, falls back to "
             "scalar per seed for unsupported features)",
    )
    parser.add_argument(
        "--batch-size", type=_batch_size_arg, default=16,
        metavar="N|auto",
        help="seeds per vectorized chunk (default 16), or 'auto' to "
             "derive the width from the seed and worker counts; with "
             "--workers > 1 whole chunks shard across the process pool "
             "(never part of cache fingerprints — any width gives the "
             "same bits)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything, ignoring the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default: .repro_cache, or "
             "$REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--seed-timeout", type=float, default=None, metavar="S",
        help="per-seed wall-clock timeout in seconds; a hung worker is "
             "killed and the seed retried (forces pool execution)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retries per seed for transient failures (worker crash, "
             "timeout, corrupt payload); default 2 when any resilience "
             "flag is set",
    )
    parser.add_argument(
        "--failure-budget", type=int, default=None, metavar="N",
        help="abort the campaign once more than N seeds fail terminally",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="JSONL campaign checkpoint; one flushed record per "
             "completed seed (see schemas/manifest.schema.json)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="adopt finished seeds from --manifest instead of "
             "recomputing them",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render a live seeds-done/ETA progress line on stderr "
             "(campaign-style experiments; passive — results and cache "
             "entries are byte-identical either way)",
    )
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="append structured campaign progress events to a JSONL log "
             "(see schemas/events.schema.json; follow a running "
             "campaign with 'obs tail --follow PATH')",
    )
    parser.add_argument(
        "--blackbox-dir", default=None, metavar="DIR",
        help="arm the blackbox flight recorder: every seed ending in "
             "crash/timeout/failure leaves a content-addressed "
             "bb_<hash>.json artifact of its final control cycles in "
             "DIR (inspect with 'obs blackbox')",
    )


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by assess/table/fig commands."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a span trace (Chrome trace-event JSON; '.jsonl' for "
             "span JSONL) — load in chrome://tracing or Perfetto",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry snapshot as JSON",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("DEBUG", "INFO", "WARNING", "ERROR"),
        help="enable structured logging at this level",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines (implies --log-level INFO "
             "unless set)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARES reproduction: RAV vulnerability assessment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fly = sub.add_parser("fly", help="fly a benign mission")
    fly.add_argument("--shape", choices=("square", "line"), default="square")
    fly.add_argument("--size", type=float, default=25.0)
    fly.add_argument("--altitude", type=float, default=10.0)
    fly.add_argument("--seed", type=int, default=0)
    fly.set_defaults(func=_cmd_fly)

    assess = sub.add_parser("assess", help="run the full ARES campaign")
    assess.add_argument("--kind", choices=("PID", "Sqrt", "SINS"), default="PID")
    assess.add_argument("--episodes", type=int, default=15)
    assess.add_argument("--steps", type=int, default=40)
    assess.add_argument("--seed", type=int, default=0)
    assess.add_argument("--variable", default=None)
    assess.add_argument("--failure", choices=("uncontrolled", "controlled"),
                        default="uncontrolled")
    assess.add_argument("--with-detector", action="store_true")
    _add_obs_options(assess)
    assess.set_defaults(func=_cmd_assess)

    table = sub.add_parser(
        "table", help="regenerate a paper table or the robustness matrix"
    )
    table.add_argument("which", choices=("1", "2", "robustness", "scenarios"))
    robust = table.add_argument_group(
        "robustness options", "only valid with 'table robustness'"
    )
    robust.add_argument(
        "--fault-schedule", default=None, metavar="PATH",
        help="FaultSchedule JSON to sweep (scaled per intensity) instead "
             "of single-kind faults",
    )
    robust.add_argument("--trials", type=int, default=None, metavar="N",
                        help="seeds per matrix cell (default 3; also valid "
                        "with 'table scenarios', default 1)")
    robust.add_argument(
        "--kinds", default=None, metavar="K1,K2,...",
        help="comma-separated fault kinds (default: one per family)",
    )
    robust.add_argument(
        "--intensities", default=None, metavar="X1,X2,...",
        help="comma-separated intensity multipliers (default 0.25,1.0)",
    )
    robust.add_argument("--physics-hz", type=float, default=None, metavar="HZ",
                        help="simulation rate (default 400; CI smoke uses 100)")
    robust.add_argument("--profile-length", type=float, default=None,
                        metavar="M", help="profiling mission leg length (m)")
    robust.add_argument("--detector-duration", type=float, default=None,
                        metavar="S", help="monitored flight duration (s); "
                        "also valid with 'table scenarios'")
    scen = table.add_argument_group(
        "scenario options", "only valid with 'table scenarios'"
    )
    scen.add_argument(
        "--scenarios", default=None, metavar="PATH",
        help="scenario document (schemas/scenario.schema.json) naming the "
             "cube's cells",
    )
    scen.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="draw N scenarios from the sample space instead of naming them",
    )
    scen.add_argument(
        "--sample-seed", type=int, default=None, metavar="S",
        help="ScenarioSampler seed (default 0)",
    )
    scen.add_argument(
        "--space", default=None, metavar="NAME",
        help="named sample space for --sample (default/tiny; default "
             "'default')",
    )
    scen.add_argument(
        "--profile-timeout", type=float, default=None, metavar="S",
        help="sim-time budget of each Algorithm 1 profiling flight "
             "(default 150)",
    )
    scen.add_argument(
        "--coverage-out", default=None, metavar="PATH",
        help="write the coverage report JSON "
             "(schemas/scenario_coverage.schema.json)",
    )
    _add_runner_options(table)
    _add_obs_options(table)
    table.set_defaults(func=_cmd_table)

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number")
    _add_runner_options(fig)
    _add_obs_options(fig)
    fig.set_defaults(func=_cmd_fig)

    obs = sub.add_parser("obs", help="inspect emitted telemetry artifacts")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary", help="render phase-time and metric breakdowns"
    )
    obs_summary.add_argument(
        "paths", nargs="+",
        help="trace and/or metrics files emitted by --trace/--metrics-out",
    )
    obs_summary.set_defaults(func=_cmd_obs)
    obs_validate = obs_sub.add_parser(
        "validate", help="validate an artifact against a JSON schema"
    )
    obs_validate.add_argument("artifact", help="trace or metrics file")
    obs_validate.add_argument("schema", help="schema file (see schemas/)")
    obs_validate.set_defaults(func=_cmd_obs)
    obs_tail = obs_sub.add_parser(
        "tail", help="pretty-print a campaign event log (--events PATH)"
    )
    obs_tail.add_argument("path", help="event log written by --events")
    obs_tail.add_argument(
        "--follow", action="store_true",
        help="poll for new events until the campaign finishes",
    )
    obs_tail.add_argument(
        "--kinds", default=None, metavar="K1,K2,...",
        help="only print these event kinds (e.g. seed_failed,heartbeat)",
    )
    obs_tail.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="give up following after S seconds",
    )
    obs_tail.set_defaults(func=_cmd_obs)
    obs_blackbox = obs_sub.add_parser(
        "blackbox",
        help="summarize a crash flight-recorder artifact (--blackbox-dir)",
    )
    obs_blackbox.add_argument(
        "path", help="bb_<hash>.json artifact written by --blackbox-dir"
    )
    obs_blackbox.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only consider the last N buffered frames per vehicle",
    )
    obs_blackbox.add_argument(
        "--export", default=None, metavar="FILE",
        help="write the (trimmed) artifact as indented JSON to FILE",
    )
    obs_blackbox.set_defaults(func=_cmd_obs)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.exceptions import ReproError

    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The campaign layer flushes and closes its manifest on the way
        # out, so an interrupted sweep is resumable via --resume.
        note = ""
        if getattr(args, "manifest", None):
            note = f" (checkpoint flushed to '{args.manifest}'; use --resume)"
        print(f"interrupted{note}", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
