"""Assessment report structures and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExploitOutcome", "AssessmentReport"]


@dataclass
class ExploitOutcome:
    """Result of one RL exploit search against one target variable."""

    failure_category: str
    variable: str
    episodes: int
    best_return: float
    improved: bool
    any_crash: bool
    any_detection: bool

    @property
    def vulnerable(self) -> bool:
        """Whether the search produced evidence of a usable exploit."""
        return self.best_return > 0.0 and (self.improved or self.any_crash)


@dataclass
class AssessmentReport:
    """Full output of one ARES campaign."""

    controller_kind: str
    missions: int = 0
    samples: int = 0
    esvl_size: int = 0
    pruned_size: int = 0
    tsvl: list[str] = field(default_factory=list)
    exploits: list[ExploitOutcome] = field(default_factory=list)

    @property
    def vulnerable_variables(self) -> list[str]:
        """TSVL variables with a confirmed exploit."""
        return sorted({e.variable for e in self.exploits if e.vulnerable})

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"ARES assessment — controller function: {self.controller_kind}",
            f"  profiling: {self.missions} missions, {self.samples} samples",
            f"  ESVL size: {self.esvl_size}  (pruned: {self.pruned_size})",
            f"  TSVL ({len(self.tsvl)}): {', '.join(self.tsvl) or '-'}",
        ]
        if self.esvl_size:
            ratio = 100.0 * len(self.tsvl) / self.esvl_size
            lines.append(f"  selection ratio: {ratio:.1f}%")
        for e in self.exploits:
            verdict = "VULNERABLE" if e.vulnerable else "no exploit found"
            lines.append(
                f"  exploit [{e.failure_category}] {e.variable}: {verdict} "
                f"(best return {e.best_return:.2f}, episodes {e.episodes}, "
                f"crash={e.any_crash}, detected={e.any_detection})"
            )
        return "\n".join(lines)
