"""Defense-evasion matrix: the paper's Section V-C as an API.

Runs each attack class against each deployed monitor on a common mission
profile and tabulates who alarms, producing the evidence table behind the
paper's claim that ARES' gradual manipulations evade all three monitor
families while the naive baseline is caught by all of them.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.attacks.gradual import (
    GradualRollAttack,
    OutputPerturbationAttack,
    ScalerDriftAttack,
)
from repro.attacks.naive import NaiveRollAttack
from repro.attacks.sensor_spoof import GyroSpoofAttack
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.defenses.ekf_monitor import EKFResidualDetector
from repro.defenses.ml_monitor import MLOutputMonitor
from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import Vehicle
from repro.sim.config import SimConfig

__all__ = ["DefenseCell", "DefenseMatrix", "evaluate_defense_matrix"]


@dataclass
class DefenseCell:
    """Outcome of one (attack, detector) pairing."""

    attack: str
    detector: str
    detected: bool
    detection_time: float | None
    max_score: float
    threshold: float
    path_deviation: float
    crashed: bool

    @property
    def evaded(self) -> bool:
        """Whether the attack completed without an alarm."""
        return not self.detected


@dataclass
class DefenseMatrix:
    """All (attack, detector) outcomes from one evaluation."""

    cells: list[DefenseCell] = field(default_factory=list)

    def cell(self, attack: str, detector: str) -> DefenseCell:
        """Look up one pairing."""
        for cell in self.cells:
            if cell.attack == attack and cell.detector == detector:
                return cell
        raise KeyError((attack, detector))

    @property
    def attacks(self) -> list[str]:
        """Attack names in insertion order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.attack not in seen:
                seen.append(cell.attack)
        return seen

    @property
    def detectors(self) -> list[str]:
        """Detector names in insertion order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.detector not in seen:
                seen.append(cell.detector)
        return seen

    def render(self) -> str:
        """Paper-style evasion table (rows: attacks, columns: detectors)."""
        detectors = self.detectors
        header = "  attack              " + "".join(f"{d:>22s}" for d in detectors)
        lines = ["Defense-evasion matrix (EVADED / detected@t)", header]
        for attack in self.attacks:
            row = f"  {attack:18s} "
            for detector in detectors:
                cell = self.cell(attack, detector)
                if cell.evaded:
                    row += f"{'EVADED':>22s}"
                else:
                    row += f"{f'detected@{cell.detection_time:.0f}s':>22s}"
            lines.append(row)
        return "\n".join(lines)


def _default_attacks() -> dict[str, Callable[[], object]]:
    # Each ARES variant is tuned against the monitor its paper figure
    # targets (Fig. 6: integrator vs CI; Fig. 7: scaler vs ML; Fig. 8:
    # output perturbation vs EKF residual) — the magnitude search the RL
    # agent performs with the detector penalty in its reward.
    return {
        "ares-integrator": lambda: GradualRollAttack(rate_deg_s=2.5, start_time=5.0),
        "ares-scaler": lambda: ScalerDriftAttack(
            start_time=5.0, scaler_limit=0.85
        ),
        "ares-output": lambda: OutputPerturbationAttack(
            start_time=10.0, growth_per_s=0.0015, amplitude_limit=0.03,
        ),
        "naive-roll-30": lambda: NaiveRollAttack(start_time=5.0),
        "gyro-spoof": lambda: GyroSpoofAttack(bias_dps=40.0, start_time=5.0),
    }


def evaluate_defense_matrix(
    duration: float = 40.0,
    seed: int = 3,
    attacks: dict[str, Callable[[], object]] | None = None,
    train_ml_monitor: bool = True,
) -> DefenseMatrix:
    """Run every attack under all three monitors simultaneously.

    Each attack gets a fresh vehicle with the control-invariants, ML and
    EKF-residual monitors attached; detections are recorded per monitor.
    """
    attacks = attacks or _default_attacks()
    matrix = DefenseMatrix()

    ml_monitor = MLOutputMonitor()
    if train_ml_monitor:
        # Train on a representative benign mission so waypoint maneuvers
        # stay inside the approximator's envelope.
        ml_monitor.train_on_mission(
            lambda: Vehicle(SimConfig(seed=seed + 100, wind_gust_std=0.3)),
            lambda: line_mission(length=200.0, altitude=10.0, legs=1),
        )

    for attack_name, factory in attacks.items():
        vehicle = Vehicle(SimConfig(seed=seed, wind_gust_std=0.3))
        detectors = {
            "control-invariants": ControlInvariantsDetector(vehicle.config.airframe),
            "ekf-residual": EKFResidualDetector(),
        }
        if ml_monitor.approximator.trained:
            ml_monitor.reset()
            detectors["ml-output"] = ml_monitor
        for detector in detectors.values():
            detector.attach(vehicle)

        vehicle.mission = line_mission(length=300.0, altitude=10.0, legs=1)
        vehicle.takeoff(10.0)
        attack = factory()
        attack.attach(vehicle)
        vehicle.set_mode(FlightMode.AUTO)
        vehicle.run(duration)

        deviation = float(
            vehicle.mission.cross_track_distance(vehicle.sim.vehicle.state.position)
        )
        for detector_name, detector in detectors.items():
            matrix.cells.append(
                DefenseCell(
                    attack=attack_name,
                    detector=detector_name,
                    detected=detector.alarmed,
                    detection_time=detector.first_alarm_time,
                    max_score=detector.record.max_score,
                    threshold=detector.threshold,
                    path_deviation=deviation,
                    crashed=vehicle.sim.vehicle.crashed,
                )
            )
            detector.detach()
    return matrix
